"""The paper's motivating scenario, built from raw trace primitives.

A linked-list traversal (isolated misses — "misses due to
pointer-chasing loads") shares the cache with array sweeps (parallel
misses — "misses due to array accesses").  Under LRU the array stream
flushes the list nodes, so every list hop stalls the core for the full
444-cycle memory latency.  LIN keeps the list resident at the price of
extra — cheap, overlapped — array misses.

This is Figure 1 scaled up to a realistic set-associative cache, built
directly with :class:`repro.trace.TraceBuilder` rather than the
workload generators, to show the low-level tracing API.

Run::

    python examples/pointer_chasing.py
"""

from repro import Simulator, experiment_config
from repro.trace import TraceBuilder

LIST_NODES = 256        # linked-list working set (blocks)
ARRAY_BLOCKS = 9000     # array working set, larger than the 4096-block L2
ARRAY_BURSTS_PER_LAP = 600  # 4800 blocks/lap: floods every cache set
LAPS = 12


def build_workload() -> list:
    """Alternate list traversals with array sweeps."""
    builder = TraceBuilder(seed=42)
    array_cursor = 0
    for _ in range(LAPS):
        # Traverse the list: each hop depends on the last, so the gap
        # exceeds the 128-entry window and misses isolate.
        for node in range(LIST_NODES):
            builder.isolated(1_000_000 + node)
            builder.quiet(200)
        # Sweep a chunk of the array in bursts of 8 independent loads.
        for _ in range(ARRAY_BURSTS_PER_LAP):
            start = array_cursor
            array_cursor = (array_cursor + 8) % ARRAY_BLOCKS
            builder.burst(
                [start + i for i in range(8)], lead_gap=180
            )
    return builder.build()


def main() -> None:
    results = {}
    for policy in ("lru", "lin(4)"):
        simulator = Simulator(experiment_config(), policy)
        results[policy] = simulator.run(build_workload())

    lru, lin = results["lru"], results["lin(4)"]
    print("policy     IPC     misses  long-stalls  avg-mlp-cost")
    for name, result in results.items():
        print(
            "%-8s %6.4f  %7d  %11d  %9.0f"
            % (
                name,
                result.ipc,
                result.demand_misses,
                result.long_stalls,
                result.avg_mlp_cost,
            )
        )

    saved = lru.long_stalls - lin.long_stalls
    extra = lin.demand_misses - lru.demand_misses
    print(
        "\nLIN eliminated %d long-latency stalls (misses %+d, IPC %+.1f%%)."
        % (saved, extra, 100 * (lin.ipc - lru.ipc) / lru.ipc)
    )
    print(
        "Every stall saved was a full 444-cycle list hop; any misses LIN\n"
        "trades for them are array misses serviced in parallel."
    )


if __name__ == "__main__":
    main()
