"""Regeneration benchmark for figure8 of the paper."""

from repro.experiments import figure8


def test_figure8(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(figure8), rounds=1, iterations=1
    )
    assert report.render()
