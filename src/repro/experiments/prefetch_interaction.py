"""Extension: interaction between prefetching and MLP-aware replacement.

The paper's Section 2 lists prefetching among the techniques that
improve MLP.  A stride prefetcher converts streaming misses into
overlapped (or eliminated) ones, which reshapes the mlp-cost
distribution LIN feeds on: benchmarks whose LIN benefit comes from
protecting isolated misses keep it; benchmarks whose benefit came from
filtering prefetchable streams lose some of it to the prefetcher.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cpu.prefetch import StridePrefetcher
from repro.experiments.common import Report, fmt_pct, resolve_benchmarks
from repro.sim.runner import trace_scale
from repro.sim.simulator import Simulator
from repro.workloads import build_workload, experiment_config

DEFAULT_BENCHMARKS = ("art", "mcf", "vpr", "lucas")


def _run(benchmark: str, policy: str, prefetch: bool, scale: float):
    prefetcher = StridePrefetcher(degree=2) if prefetch else None
    simulator = Simulator(
        experiment_config(), policy, prefetcher=prefetcher
    )
    return simulator.run(build_workload(benchmark, scale=scale)), simulator


def run(
    scale: Optional[float] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Report:
    if scale is None:
        scale = trace_scale()
    names = (
        list(DEFAULT_BENCHMARKS)
        if benchmarks is None
        else resolve_benchmarks(benchmarks)
    )
    report = Report(
        "prefetch", "Extension: stride prefetching x MLP-aware replacement"
    )
    rows = []
    for name in names:
        lru_plain, _ = _run(name, "lru", False, scale)
        lin_plain, _ = _run(name, "lin(4)", False, scale)
        lru_pref, sim = _run(name, "lru", True, scale)
        lin_pref, _ = _run(name, "lin(4)", True, scale)
        gain_plain = 100 * (lin_plain.ipc - lru_plain.ipc) / lru_plain.ipc
        gain_pref = 100 * (lin_pref.ipc - lru_pref.ipc) / lru_pref.ipc
        coverage = 0.0
        if lru_plain.demand_misses:
            coverage = 100 * (
                1 - lru_pref.demand_misses / lru_plain.demand_misses
            )
        rows.append(
            (
                name,
                fmt_pct(coverage, signed=False),
                "%.0f" % lru_plain.avg_mlp_cost,
                "%.0f" % lru_pref.avg_mlp_cost,
                fmt_pct(gain_plain),
                fmt_pct(gain_pref),
            )
        )
    report.add_table(
        [
            "benchmark", "pf coverage", "avg cost", "avg cost+pf",
            "LIN gain", "LIN gain+pf",
        ],
        rows,
    )
    report.add_note(
        "'pf coverage' is the share of demand misses the prefetcher\n"
        "removed under LRU.  Prefetching raises the average cost of the\n"
        "*remaining* misses (the parallel ones get covered first), so\n"
        "what is left is more isolated - the benchmarks that keep their\n"
        "LIN gain are the ones whose gain came from isolated-miss\n"
        "protection rather than stream filtering."
    )
    return report
