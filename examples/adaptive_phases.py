"""SBAR adapting across program phases (the ammp case study, Sec 7.1).

Runs the phase-alternating ammp surrogate under LRU, LIN, and SBAR with
periodic sampling and prints a text timeline of per-interval IPC — the
same data as Figure 11(c) — plus the PSEL trajectory summary.

Run::

    python examples/adaptive_phases.py
"""

from repro import Simulator, build_workload, experiment_config

SAMPLE_INTERVAL = 500_000
POLICIES = ("lru", "lin(4)", "sbar")


def spark(value: float, low: float, high: float) -> str:
    """Map a value onto a small bar for the text timeline."""
    levels = " .:-=+*#%@"
    if high <= low:
        return levels[0]
    index = int((value - low) / (high - low) * (len(levels) - 1))
    return levels[max(0, min(index, len(levels) - 1))]


def main() -> None:
    results = {}
    for policy in POLICIES:
        simulator = Simulator(
            experiment_config(), policy, phase_interval=SAMPLE_INTERVAL
        )
        results[policy] = simulator.run(build_workload("ammp"))

    n_samples = min(len(results[p].phases) for p in POLICIES)
    all_ipcs = [
        sample.ipc
        for policy in POLICIES
        for sample in results[policy].phases[:n_samples]
    ]
    low, high = min(all_ipcs), max(all_ipcs)

    print("per-interval IPC timeline (one column per %dk instructions):"
          % (SAMPLE_INTERVAL // 1000))
    for policy in POLICIES:
        line = "".join(
            spark(sample.ipc, low, high)
            for sample in results[policy].phases[:n_samples]
        )
        print("  %-8s |%s|  overall IPC %.4f"
              % (policy, line, results[policy].ipc))

    baseline = results["lru"]
    print("\nIPC improvement over LRU:")
    for policy in ("lin(4)", "sbar"):
        delta = 100 * (results[policy].ipc - baseline.ipc) / baseline.ipc
        print("  %-8s %+6.1f%%" % (policy, delta))
    print(
        "\nThe dense/sparse banding is ammp's phase structure: LIN wins\n"
        "the isolated-miss phases, LRU wins the recency phases, and SBAR\n"
        "tracks whichever is better (Section 7.1 / Figure 11)."
    )


if __name__ == "__main__":
    main()
