"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments                 # everything, paper order
    python -m repro.experiments figure9 table1  # a subset
    python -m repro.experiments figure4 --scale 0.3 --benchmarks mcf,art
    python -m repro.experiments --workers 8     # fan simulations out

``--workers N`` first pushes every (benchmark x policy) cell the
selected experiments need through the parallel engine (populating the
persistent result store), then renders the reports serially from cache
hits.  The engine flags are the shared set from
:mod:`repro.sim.common_cli` — ``--max-retries``/``--deadline`` harden
the prewarm against flaky workers, and ``--resume RUN_ID`` replays an
interrupted prewarm's journal.  ``--no-cache`` disables both the
in-process memo and the store for a guaranteed-fresh run.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from repro import obs
from repro.cache.replacement.registry import split_specs
from repro.experiments import EXPERIMENTS
from repro.experiments.common import prewarm_tasks
from repro.sim import common_cli


def _prewarm(names, benchmarks, scale, options) -> bool:
    """Fan the experiments' shared simulation grid out over a pool.

    Returns False when the prewarm was interrupted (Ctrl-C) — the
    caller should stop instead of re-simulating everything serially.
    """
    from repro.sim.parallel import run_grid

    tasks = prewarm_tasks(names, benchmarks=benchmarks, scale=scale)
    if not tasks:
        return True
    grid = run_grid(tasks, options=options)
    # Worker-side runs finalize their telemetry in the worker process;
    # fold the merged per-result snapshots into this process's session
    # so --metrics-out sees the whole grid.
    obs.record_session(grid.merged_metrics())
    print(
        "[prewarm: %d tasks on %d workers in %.1fs — %.0f%% utilization, "
        "cache %d hit / %d miss, %d failed]"
        % (
            len(grid.reports),
            grid.workers,
            grid.elapsed,
            100.0 * grid.utilization,
            grid.cache_hits,
            grid.cache_misses,
            len(grid.failures),
        ),
        file=sys.stderr,
    )
    for task, failure in grid.failures.items():
        # The failure string is the full remote traceback; the last
        # line is the exception message.
        message = failure.strip().splitlines()[-1]
        print("[prewarm FAILED %s: %s]" % (task.label, message),
              file=sys.stderr)
    if grid.interrupted:
        print(
            "[prewarm interrupted — resume with: python -m "
            "repro.experiments --workers %d --resume %s]"
            % (grid.workers, grid.run_id),
            file=sys.stderr,
        )
        return False
    return True


def main(argv=None) -> int:
    common_cli.umbrella_pointer("experiments")
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
        parents=[common_cli.execution_parent(),
                 common_cli.telemetry_parent()],
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="experiment",
        help="experiments to run (default: all); one of %s"
        % ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="trace-length multiplier (default: REPRO_SCALE env or 1.0)",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated benchmark subset (default: all 14)",
    )
    args = parser.parse_args(argv)

    common_cli.apply_telemetry(args)
    options = common_cli.options_from_args(args)

    names = args.names or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error("unknown experiments: %s" % ", ".join(unknown))
    benchmarks = (
        split_specs(args.benchmarks) if args.benchmarks is not None else None
    )

    if not options.use_cache:
        from repro.sim.runner import clear_cache

        os.environ["REPRO_NO_STORE"] = "1"
        clear_cache()
    elif options.workers or options.resume:
        if not _prewarm(names, benchmarks, args.scale, options):
            return 130

    for name in names:
        started = time.time()
        report = EXPERIMENTS[name].run(scale=args.scale, benchmarks=benchmarks)
        print(report.render())
        print("[%s finished in %.1fs]\n" % (name, time.time() - started))
    if args.metrics_out:
        common_cli.write_metrics(args, obs.session_snapshot())
    return 0


if __name__ == "__main__":
    sys.exit(main())
