"""Figure 8: the analytical sampling model (Equations 3-5).

P(Best) — the probability that PSEL driven by k random leader sets
selects the globally better policy — as a function of k for several
values of p (the fraction of sets favoring the winner).  This is
closed-form mathematics and reproduces the paper exactly.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import Report
from repro.sbar.sampling_model import leaders_needed, probability_best_policy

P_VALUES = (0.5, 0.6, 0.7, 0.8, 0.9)
LEADER_COUNTS = (1, 2, 4, 8, 16, 32, 64)


def run(scale: Optional[float] = None, benchmarks=None) -> Report:
    report = Report(
        "figure8", "Figure 8: P(Best) vs number of leader sets (analytical)"
    )
    rows = []
    for k in LEADER_COUNTS:
        rows.append(
            [k]
            + ["%.3f" % probability_best_policy(k, p) for p in P_VALUES]
        )
    report.add_table(
        ["leader sets"] + ["p=%.1f" % p for p in P_VALUES], rows
    )
    needed_rows = [
        (
            "p=%.2f" % p,
            leaders_needed(p, target=0.95),
        )
        for p in (0.6, 0.7, 0.74, 0.8, 0.9, 0.99)
    ]
    report.add_note(
        "Leader sets needed for P(Best) >= 95% (the paper measures p\n"
        "between 0.74 and 0.99 across benchmarks, hence its conclusion\n"
        "that 16-32 leader sets suffice):"
    )
    report.add_table(["p", "leaders for 95%"], needed_rows)
    return report
