"""Regeneration benchmark for table3 of the paper."""

from repro.experiments import table3


def test_table3(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(table3), rounds=1, iterations=1
    )
    assert report.render()
