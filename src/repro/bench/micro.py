"""Micro-benchmarks of the three hot simulation kernels.

Each benchmark drives one kernel in isolation with a deterministic
synthetic workload (a fixed linear-congruential address stream, so
every run measures the same work) and reports best-of-``repeat``
wall time.  These are trend indicators for the optimization passes —
the macro benchmarks in :mod:`repro.bench.macro` are the numbers that
matter for end-to-end throughput.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List

from repro.cache.block import BlockState
from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.lin import LINPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.sets import CacheSet
from repro.config import CacheGeometry
from repro.mlp.mshr import MSHRFile

#: LCG constants (numerical recipes); any full-period generator works,
#: the stream just has to be deterministic and set-spreading.
_LCG_A = 1664525
_LCG_C = 1013904223
_LCG_MASK = (1 << 32) - 1


def _addresses(n: int, span: int) -> List[int]:
    """``n`` deterministic pseudo-random block numbers in ``[0, span)``."""
    value = 12345
    out = []
    for _ in range(n):
        value = (_LCG_A * value + _LCG_C) & _LCG_MASK
        out.append(value % span)
    return out


def bench_cache_access(
    n: int = 200_000, repeat: int = 3
) -> Dict[str, object]:
    """Time ``SetAssociativeCache.access`` on a mixed hit/miss stream."""
    blocks = _addresses(n, span=4096)
    best = float("inf")
    for _ in range(repeat):
        cache = SetAssociativeCache(
            CacheGeometry(64 * 1024, 64, 8, 2), LRUPolicy()
        )
        access = cache.access
        start = perf_counter()
        for block in blocks:
            access(block)
        best = min(best, perf_counter() - start)
    return {"name": "cache_access", "ops": n, "seconds": best,
            "ops_per_sec": n / best}


def bench_mshr_sweep(n: int = 100_000, repeat: int = 3) -> Dict[str, object]:
    """Time the Algorithm 1 cost sweep: allocate + advance per miss."""
    blocks = _addresses(n, span=1 << 20)
    best = float("inf")
    for _ in range(repeat):
        mshr = MSHRFile(n_entries=32)
        start = perf_counter()
        when = 0.0
        for index, block in enumerate(blocks):
            when += 7.0
            issue = mshr.admission_time(when)
            if issue < mshr.sweep_time:
                issue = mshr.sweep_time
            mshr.allocate(block + (index << 24), issue, issue + 400.0)
        mshr.drain()
        best = min(best, perf_counter() - start)
    return {"name": "mshr_sweep", "ops": n, "seconds": best,
            "ops_per_sec": n / best}


def bench_lin_victim(n: int = 100_000, repeat: int = 3) -> Dict[str, object]:
    """Time LIN's Equation 2 argmin over a full 16-way set."""
    policy = LINPolicy(4)
    cache_set = CacheSet(16)
    costs = _addresses(16, span=8)
    for way, cost_q in enumerate(costs):
        state = BlockState(way, way)
        state.cost_q = cost_q
        cache_set.insert_lru(state)
    choose = policy.choose_victim
    best = float("inf")
    for _ in range(repeat):
        start = perf_counter()
        for _ in range(n):
            choose(cache_set)
        best = min(best, perf_counter() - start)
    return {"name": "lin_victim", "ops": n, "seconds": best,
            "ops_per_sec": n / best}


def run_micro(quick: bool = False) -> List[Dict[str, object]]:
    """Run every micro-benchmark; ``quick`` shrinks them for smoke tests."""
    if quick:
        return [
            bench_cache_access(n=5_000, repeat=1),
            bench_mshr_sweep(n=2_000, repeat=1),
            bench_lin_victim(n=5_000, repeat=1),
        ]
    return [bench_cache_access(), bench_mshr_sweep(), bench_lin_victim()]
