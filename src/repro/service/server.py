"""The asyncio job service: many tenants, one simulation engine.

``python -m repro serve`` runs a long-lived :class:`JobService` that
accepts grid submissions (workload-spec x policy-spec matrices) over
the newline-delimited JSON protocol (:mod:`repro.service.protocol`),
expands them to cells, and schedules the cells across a pool of worker
slots.  The pieces, and where each came from:

* **Dedup by store key** — a cell is content-addressed by the same
  persistent-store key the engine uses
  (:func:`repro.sim.parallel.task_store_key`), so two tenants
  submitting overlapping grids share one execution per overlapping
  cell: the second submission attaches to the in-flight execution (or
  hits the store if it already finished).  Shared work runs exactly
  once; everyone gets bit-identical digests.
* **Worker slots** — each slot wraps one single-worker executor
  (a separate local process; remote hosts can back a slot later by
  speaking the same protocol).  Scheduling is not round-robin:
  :class:`repro.sim.resilience.WorkerHealth` ranks slots by recency +
  observed health (AWRP-flavored), trips a per-worker circuit after
  consecutive failures, and lets tripped slots back in as half-open
  probes — PR 5's pool-level breaker, re-targeted at workers.
* **Quotas and backpressure** — :class:`repro.service.jobs.TenantQuotas`
  bounds the global in-flight queue and each tenant's share; refused
  submissions get a 429-style response with ``retry_after_s``.
* **Journal-backed recovery** — every job appends to a run journal
  (``job-<id>.jsonl`` next to the result store); ``serve --resume``
  replays incomplete jobs at startup, serving journal-completed cells
  from the store and re-executing only the missing ones.
* **Progress streaming** — ``watch`` clients receive one event line
  per cell transition, ending with ``job_done``.

Results themselves live in the digest-prefix-sharded result store —
the service hands out digests and (on request) re-serves payloads from
the store, so restarting the service never loses a result.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import threading
import time
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro import obs
from repro.service import protocol
from repro.service.jobs import (
    CELL_CANCELLED,
    CELL_DONE,
    CELL_FAILED,
    CELL_PENDING,
    CELL_RUNNING,
    SOURCE_DEDUP,
    SOURCE_EXECUTED,
    SOURCE_RESUME,
    SOURCE_STORE,
    CellState,
    Job,
    TenantQuotas,
    expand_cells,
    new_job_id,
)
from repro.sim.options import RunOptions
from repro.sim.parallel import Task, execute_cell, task_store_key
from repro.sim.resilience import (
    RunJournal,
    WorkerHealth,
    backoff_delay,
    journal_root,
    load_journal,
)
from repro.sim.runner import trace_scale
from repro.sim.store import default_store, result_digest

#: Client-suppliable RunOptions fields.  Everything else (cache policy,
#: journaling, pool shape) is the server's call; these four only change
#: how hard one submission tries, and none of them can change result
#: bits (kernels are bit-identical by contract; chaos is for tests).
CLIENT_OPTION_FIELDS = ("kernel", "max_retries", "deadline", "chaos")


@dataclass
class ServiceConfig:
    """Everything ``python -m repro serve`` can configure."""

    host: str = "127.0.0.1"
    port: int = protocol.DEFAULT_PORT
    #: Worker slots (one process each). 0 means CPU count.
    workers: int = 2
    #: Thread-backed slots instead of process-backed (tests/demos:
    #: no fork cost, shares the parent's store and memo).
    inline: bool = False
    #: Global in-flight cell bound (backpressure); 0 disables.
    queue_limit: int = 1024
    #: Per-tenant in-flight cell quota; 0 disables.
    tenant_quota: int = 256
    #: Execution knobs applied to every cell (clients may override the
    #: CLIENT_OPTION_FIELDS subset per submission).
    options: RunOptions = field(default_factory=RunOptions)
    #: Consecutive failures before a worker slot's circuit trips, and
    #: the dispatch-tick cooldown before it is probed again.
    trip_threshold: int = 3
    cooldown: int = 8
    #: Replay incomplete job journals at startup.
    resume: bool = False
    #: Honor the ``shutdown`` op (leave on for tests/demos; a shared
    #: deployment would turn it off).
    allow_shutdown: bool = True


class _WorkerSlot:
    """One schedulable execution slot backed by a 1-worker executor."""

    def __init__(self, name: str, inline: bool) -> None:
        self.name = name
        self.inline = inline
        self.busy = False
        self.pool = self._make_pool()

    def _make_pool(self):
        if self.inline:
            return ThreadPoolExecutor(
                max_workers=1, thread_name_prefix=self.name
            )
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else "spawn"
        )
        return ProcessPoolExecutor(max_workers=1, mp_context=context)

    def rebuild(self) -> None:
        """Replace a broken executor (worker died hard)."""
        try:
            self.pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass
        self.pool = self._make_pool()

    def close(self) -> None:
        try:
            self.pool.shutdown(wait=False, cancel_futures=True)
        except Exception:
            pass


class _Execution:
    """One in-flight cell, shared by every job that wants it."""

    def __init__(self, key: str, task: Task, options: RunOptions) -> None:
        self.key = key
        self.task = task
        self.options = options
        self.subscribers: List[Tuple[Job, str]] = []
        self.cancelled = False
        self.attempts = 0


def list_service_jobs():
    """Journal states of every service job on disk, oldest first."""
    root = journal_root()
    if root is None or not root.is_dir():
        return []
    states = []
    for path in sorted(root.glob("job-*.jsonl")):
        try:
            states.append(load_journal(path.stem))
        except (OSError, ValueError):
            continue
    return states


class JobService:
    """The server.  Create, ``await start()``, then ``serve_forever``.

    All state mutation happens on the event loop (connection handlers
    and execution tasks are coroutines), so submission admission,
    dedup, and quota accounting are race-free by construction.
    """

    def __init__(self, config: Optional[ServiceConfig] = None) -> None:
        self.config = config or ServiceConfig()
        self.jobs: Dict[str, Job] = {}
        self.quotas = TenantQuotas(
            queue_limit=self.config.queue_limit,
            tenant_quota=self.config.tenant_quota,
        )
        self.health = WorkerHealth(
            trip_threshold=self.config.trip_threshold,
            cooldown=self.config.cooldown,
        )
        workers = self.config.workers or (multiprocessing.cpu_count() or 1)
        self._slots = [
            _WorkerSlot("worker-%d" % index, self.config.inline)
            for index in range(workers)
        ]
        self._slot_cond: Optional[asyncio.Condition] = None
        self._executions: Dict[str, _Execution] = {}
        self._execution_tasks: List[asyncio.Task] = []
        self._watchers: Dict[str, List[asyncio.Queue]] = {}
        self._journals: Dict[str, RunJournal] = {}
        self._server: Optional[asyncio.AbstractServer] = None
        self._stopping = False
        self.started_at = time.time()
        self.counters: Dict[str, int] = {
            "submissions": 0,
            "submissions_rejected": 0,
            "jobs_completed": 0,
            "jobs_cancelled": 0,
            "jobs_resumed": 0,
            "cells_total": 0,
            "cells_executed": 0,
            "cells_store_hits": 0,
            "cells_deduped": 0,
            "cells_resumed": 0,
            "cell_failures": 0,
            "cell_retries": 0,
            "worker_trips": 0,
            "worker_rebuilds": 0,
        }

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._slot_cond = asyncio.Condition()
        self._server = await asyncio.start_server(
            self._handle_client,
            host=self.config.host,
            port=self.config.port,
            limit=protocol.MAX_LINE_BYTES,
        )
        if self.config.resume:
            self._resume_jobs()

    @property
    def port(self) -> int:
        """The bound TCP port (useful with ``port=0``)."""
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[1]

    async def serve_forever(self) -> None:
        assert self._server is not None, "service not started"
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    async def stop(self) -> None:
        """Graceful shutdown: stop accepting, drop executions, close.

        Idempotent — the ``shutdown`` op and an explicit ``stop()``
        (tests do both) must not double-close or double-count.
        """
        if getattr(self, "_stopped", False):
            return
        self._stopped = True
        self._stopping = True
        if self._server is not None:
            self._server.close()
            try:
                await self._server.wait_closed()
            except Exception:
                pass
        for task in self._execution_tasks:
            task.cancel()
        if self._execution_tasks:
            await asyncio.gather(
                *self._execution_tasks, return_exceptions=True
            )
        for watchers in self._watchers.values():
            for queue in watchers:
                queue.put_nowait(None)
        for slot in self._slots:
            slot.close()
        for journal in self._journals.values():
            journal.close()
        self._record_service_metrics()

    def _record_service_metrics(self) -> None:
        """Fold service counters into the obs session (when enabled)."""
        if not obs.metrics_enabled():
            return
        registry = obs.MetricsRegistry()
        for name, help_text in (
            ("submissions", "grid submissions accepted"),
            ("submissions_rejected", "submissions refused by quota "
             "or backpressure"),
            ("jobs_completed", "jobs that reached a terminal state"),
            ("cells_executed", "cells simulated on a worker slot"),
            ("cells_store_hits", "cells served from the result store"),
            ("cells_deduped", "cells attached to an in-flight "
             "execution"),
            ("cell_retries", "cell attempts beyond the first"),
            ("worker_trips", "worker circuit-breaker trips"),
            ("worker_rebuilds", "worker executors rebuilt after hard "
             "failures"),
        ):
            registry.counter(
                "service_%s_total" % name, help_text
            ).inc(self.counters[name])
        obs.record_session(registry.snapshot())

    # -- submission ------------------------------------------------------

    def _merge_options(
        self, wire: Optional[Dict[str, object]]
    ) -> RunOptions:
        """Server options with the client's whitelisted overrides."""
        base = self.config.options
        if not wire:
            return base
        allowed = {
            key: value for key, value in wire.items()
            if key in CLIENT_OPTION_FIELDS
        }
        if not allowed:
            return base
        merged = base.to_wire()
        merged.update(allowed)
        return RunOptions.from_wire(merged)

    def submit_job(
        self,
        tenant: str,
        benchmarks,
        policies,
        scale: Optional[float] = None,
        options_wire: Optional[Dict[str, object]] = None,
        job_id: Optional[str] = None,
        force: bool = False,
        resume_keys=frozenset(),
    ):
        """Admit one submission; returns ``(job, None)`` or
        ``(None, Rejection)``.

        This is the whole tentpole in one method: quota admission,
        matrix expansion, store probe, in-flight dedup, and scheduling.
        Runs synchronously on the event loop so concurrent submitters
        interleave at message granularity, never mid-admission.
        """
        resolved_scale = scale if scale is not None else trace_scale()
        cells = expand_cells(benchmarks, policies, resolved_scale)
        rejection = self.quotas.try_admit(tenant, len(cells), force=force)
        if rejection is not None:
            self.counters["submissions_rejected"] += 1
            return None, rejection
        self.counters["submissions"] += 1
        self.counters["cells_total"] += len(cells)

        options = self._merge_options(options_wire)
        job = Job(
            job_id=job_id or new_job_id(),
            tenant=tenant,
            benchmarks=list(benchmarks),
            policies=list(policies),
            scale=resolved_scale,
            options_wire=dict(options_wire or {}),
        )
        self.jobs[job.job_id] = job
        if options.journal:
            journal = RunJournal.create(
                run_id=job.job_id,
                meta={
                    "service_job": True,
                    "tenant": tenant,
                    "benchmarks": list(benchmarks),
                    "policies": list(policies),
                    "scale": resolved_scale,
                    "options": dict(options_wire or {}),
                },
            )
            if journal is not None:
                self._journals[job.job_id] = journal

        store = default_store() if options.use_cache else None
        for label, task in cells:
            key = task_store_key(task)
            cell = CellState(task=task, key=key)
            job.cells[label] = cell
            cached = store.load(key) if store is not None else None
            if cached is not None:
                source = (
                    SOURCE_RESUME if key in resume_keys else SOURCE_STORE
                )
                self.counters[
                    "cells_resumed" if source == SOURCE_RESUME
                    else "cells_store_hits"
                ] += 1
                self._complete_cell(
                    job, cell, result_digest(cached.to_dict()),
                    source=source, wall=0.0, worker=None, attempts=0,
                )
                continue
            execution = self._executions.get(key)
            if execution is not None:
                self.counters["cells_deduped"] += 1
                cell.source = SOURCE_DEDUP
                cell.status = (
                    CELL_RUNNING if execution.attempts else CELL_PENDING
                )
                execution.subscribers.append((job, label))
                continue
            execution = _Execution(key, task, options)
            execution.subscribers.append((job, label))
            self._executions[key] = execution
            runner = asyncio.get_running_loop().create_task(
                self._run_execution(execution)
            )
            self._execution_tasks.append(runner)
            runner.add_done_callback(self._execution_tasks.remove)
        self._finish_job_if_done(job)
        return job, None

    # -- execution -------------------------------------------------------

    async def _acquire_slot(self) -> _WorkerSlot:
        """Best free slot per the health ranking; waits when all busy."""
        assert self._slot_cond is not None
        async with self._slot_cond:
            while True:
                free = [slot for slot in self._slots if not slot.busy]
                if free:
                    name = self.health.pick(
                        [slot.name for slot in free]
                    )
                    slot = next(
                        slot for slot in free if slot.name == name
                    )
                    slot.busy = True
                    return slot
                await self._slot_cond.wait()

    async def _release_slot(self, slot: _WorkerSlot) -> None:
        assert self._slot_cond is not None
        async with self._slot_cond:
            slot.busy = False
            self._slot_cond.notify_all()

    async def _run_execution(self, execution: _Execution) -> None:
        """Drive one cell to a terminal state with retry + backoff."""
        options = execution.options
        loop = asyncio.get_running_loop()
        while True:
            if execution.cancelled:
                return
            slot = await self._acquire_slot()
            execution.attempts += 1
            attempt = execution.attempts
            self.health.record_dispatch(slot.name)
            self._mark_running(execution, slot.name, attempt)
            # SIGALRM deadlines need the worker's main thread; thread
            # slots run cells off-main, so inline mode drops them.
            deadline = None if slot.inline else options.deadline
            trips_before = self.health.trips
            try:
                status, payload, wall, pid, tb = await loop.run_in_executor(
                    slot.pool,
                    execute_cell,
                    (execution.task, options.use_cache, deadline,
                     options.chaos, attempt, not slot.inline,
                     options.kernel),
                )
            except asyncio.CancelledError:
                await self._release_slot(slot)
                raise
            except Exception as exc:
                # The slot's process died hard (BrokenProcessPool et
                # al.): rebuild the executor and treat it as a failed
                # attempt charged to this worker.
                status = "error"
                payload = "%s: %s" % (type(exc).__name__, exc)
                wall, pid, tb = 0.0, None, None
                slot.rebuild()
                self.counters["worker_rebuilds"] += 1
            await self._release_slot(slot)

            if status == "ok":
                self.health.record_success(slot.name)
                self._executions.pop(execution.key, None)
                digest = result_digest(payload.to_dict())
                self.counters["cells_executed"] += 1
                for job, label in execution.subscribers:
                    self._complete_cell(
                        job, job.cells[label], digest,
                        source=job.cells[label].source or SOURCE_EXECUTED,
                        wall=wall, worker=slot.name, attempts=attempt,
                    )
                    self._finish_job_if_done(job)
                return

            self.health.record_failure(slot.name)
            self.counters["worker_trips"] += (
                self.health.trips - trips_before
            )
            if attempt > options.max_retries:
                self._executions.pop(execution.key, None)
                self.counters["cell_failures"] += 1
                for job, label in execution.subscribers:
                    self._fail_cell(
                        job, job.cells[label], payload, tb, attempt
                    )
                    self._finish_job_if_done(job)
                return
            self.counters["cell_retries"] += 1
            delay = backoff_delay(
                options.backoff_base, options.backoff_max, attempt,
                execution.task.label, options.retry_seed,
            )
            if delay > 0:
                await asyncio.sleep(delay)

    # -- cell/job state transitions --------------------------------------

    def _mark_running(
        self, execution: _Execution, worker: str, attempt: int
    ) -> None:
        for job, label in execution.subscribers:
            cell = job.cells[label]
            cell.status = CELL_RUNNING
            cell.worker = worker
            cell.attempts = attempt
            journal = self._journals.get(job.job_id)
            if journal is not None:
                journal.task_started(cell.task, attempt)
            self._emit(job, protocol.event(
                "cell_running", job_id=job.job_id, cell=label,
                worker=worker, attempt=attempt,
            ))

    def _complete_cell(
        self, job: Job, cell: CellState, digest: str, source: str,
        wall: float, worker: Optional[str], attempts: int,
    ) -> None:
        if cell.terminal:
            return
        cell.status = CELL_DONE
        cell.source = source
        cell.digest = digest
        cell.wall_time = wall
        cell.worker = worker
        cell.attempts = attempts
        self.quotas.release(job.tenant)
        journal = self._journals.get(job.job_id)
        if journal is not None:
            journal.task_finished(
                cell.task, cell.key,
                cache_hit=source in (SOURCE_STORE, SOURCE_RESUME),
                resumed=source == SOURCE_RESUME,
                wall=wall, worker=None, attempts=attempts,
            )
        self._emit(job, protocol.event(
            "cell_finished", job_id=job.job_id, cell=cell.label,
            digest=digest, source=source, wall_s=round(wall, 4),
            worker=worker,
        ))

    def _fail_cell(
        self, job: Job, cell: CellState, error: str,
        traceback_text: Optional[str], attempts: int,
    ) -> None:
        if cell.terminal:
            return
        cell.status = CELL_FAILED
        cell.error = error
        cell.traceback = traceback_text
        cell.attempts = attempts
        self.quotas.release(job.tenant)
        journal = self._journals.get(job.job_id)
        if journal is not None:
            journal.task_failed(
                cell.task, error, traceback_text, attempts
            )
        self._emit(job, protocol.event(
            "cell_failed", job_id=job.job_id, cell=cell.label,
            error=error, attempts=attempts,
        ))

    def _finish_job_if_done(self, job: Job) -> None:
        if not job.done:
            return
        journal = self._journals.pop(job.job_id, None)
        if journal is not None:
            counts = job.counts()
            journal.run_finished(
                completed=counts[CELL_DONE], failed=counts[CELL_FAILED],
                interrupted=job.cancelled,
            )
        if job.cancelled:
            self.counters["jobs_cancelled"] += 1
        else:
            self.counters["jobs_completed"] += 1
        self._emit(job, protocol.event(
            "job_done", job_id=job.job_id, status=job.status,
            digest=job.digest(), counts=job.counts(),
        ))

    def cancel_job(self, job: Job) -> None:
        """Cancel every non-terminal cell this job alone is waiting on.

        Cells shared with other jobs keep running (their other
        subscribers still want them); this job just stops listening.
        """
        job.cancelled = True
        for label, cell in job.cells.items():
            if cell.terminal:
                continue
            execution = self._executions.get(cell.key)
            if execution is not None:
                execution.subscribers = [
                    (subscriber, sub_label)
                    for subscriber, sub_label in execution.subscribers
                    if subscriber is not job
                ]
                if not execution.subscribers:
                    execution.cancelled = True
                    self._executions.pop(cell.key, None)
            cell.status = CELL_CANCELLED
            self.quotas.release(job.tenant)
            self._emit(job, protocol.event(
                "cell_cancelled", job_id=job.job_id, cell=label,
            ))
        self._finish_job_if_done(job)

    # -- resume ----------------------------------------------------------

    def _resume_jobs(self) -> None:
        """Replay incomplete job journals found next to the store."""
        for state in list_service_jobs():
            if state.finished or not state.meta.get("service_job"):
                continue
            if state.run_id in self.jobs:
                continue
            meta = state.meta
            job, rejection = self.submit_job(
                tenant=meta.get("tenant", "anonymous"),
                benchmarks=meta.get("benchmarks") or [],
                policies=meta.get("policies") or [],
                scale=meta.get("scale"),
                options_wire=meta.get("options"),
                job_id=state.run_id,
                force=True,
                resume_keys=set(state.completed),
            )
            if job is not None:
                self.counters["jobs_resumed"] += 1

    # -- events / watchers ----------------------------------------------

    def _emit(self, job: Job, payload: Dict[str, object]) -> None:
        for queue in self._watchers.get(job.job_id, ()):  # noqa: B020
            queue.put_nowait(payload)

    # -- connection handling ---------------------------------------------

    async def _handle_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        message: Dict[str, object] = {}
        try:
            line = await reader.readline()
            if not line:
                return
            try:
                message = protocol.decode(line)
                response, stream_job = self._dispatch(message)
            except protocol.ProtocolError as exc:
                response, stream_job = (
                    protocol.error_response(exc.code, str(exc)), None
                )
            writer.write(protocol.encode(response))
            await writer.drain()
            if stream_job is not None:
                await self._stream_events(stream_job, writer)
            if message.get("op") == "shutdown" and response.get("ok"):
                asyncio.get_running_loop().create_task(self.stop())
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            try:
                writer.close()
            except Exception:
                pass

    def _dispatch(
        self, message: Dict[str, object]
    ) -> Tuple[Dict[str, object], Optional[Job]]:
        """Route one request; returns (response, job-to-stream)."""
        op = message.get("op")
        if self._stopping:
            return protocol.error_response(
                "shutting-down", "service is shutting down"
            ), None
        if op == "ping":
            return protocol.ok_response(
                schema=protocol.PROTOCOL_SCHEMA,
                uptime_s=round(time.time() - self.started_at, 3),
            ), None
        if op == "stats":
            return protocol.ok_response(stats=self.stats()), None
        if op == "submit":
            fields = protocol.validate_submit(message)
            job, rejection = self.submit_job(
                tenant=fields["tenant"],
                benchmarks=fields["benchmarks"],
                policies=fields["policies"],
                scale=fields["scale"],
                options_wire=fields["options"],
                job_id=fields["job_id"],
            )
            if rejection is not None:
                return protocol.error_response(
                    rejection.code, rejection.message,
                    retry_after_s=rejection.retry_after_s,
                ), None
            counts = job.counts()
            return protocol.ok_response(
                job_id=job.job_id,
                cells=counts["total"],
                already_done=counts[CELL_DONE],
            ), None
        if op == "shutdown":
            if not self.config.allow_shutdown:
                return protocol.error_response(
                    "bad-request", "shutdown is disabled"
                ), None
            return protocol.ok_response(stopping=True), None
        if op in ("status", "watch", "result", "cancel"):
            job_id = message.get("job_id")
            job = self.jobs.get(job_id) if isinstance(job_id, str) else None
            if job is None:
                return protocol.error_response(
                    "unknown-job", "no such job: %r" % (job_id,)
                ), None
            if op == "status":
                return protocol.ok_response(job=job.snapshot()), None
            if op == "watch":
                return protocol.ok_response(job=job.snapshot()), job
            if op == "cancel":
                self.cancel_job(job)
                return protocol.ok_response(job=job.snapshot()), None
            # result
            payload = protocol.ok_response(job=job.snapshot())
            if message.get("include_results"):
                payload["results"] = self._load_results(job)
            return payload, None
        return protocol.error_response(
            "unknown-op", "unknown op: %r" % (op,)
        ), None

    def _load_results(self, job: Job) -> Dict[str, object]:
        """Re-serve completed cells' full payloads from the store."""
        store = default_store()
        results: Dict[str, object] = {}
        if store is None:
            return results
        for label, cell in job.cells.items():
            if cell.status != CELL_DONE:
                continue
            payload = store.load_payload(cell.key)
            if payload is not None:
                results[label] = payload
        return results

    async def _stream_events(
        self, job: Job, writer: asyncio.StreamWriter
    ) -> None:
        """Forward job events until ``job_done`` (or disconnect)."""
        queue: asyncio.Queue = asyncio.Queue()
        self._watchers.setdefault(job.job_id, []).append(queue)
        try:
            if job.done:
                writer.write(protocol.encode(protocol.event(
                    "job_done", job_id=job.job_id, status=job.status,
                    digest=job.digest(), counts=job.counts(),
                )))
                await writer.drain()
                return
            while True:
                payload = await queue.get()
                if payload is None:  # service shutdown
                    return
                writer.write(protocol.encode(payload))
                await writer.drain()
                if payload.get("event") == "job_done":
                    return
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            watchers = self._watchers.get(job.job_id)
            if watchers is not None:
                try:
                    watchers.remove(queue)
                except ValueError:
                    pass
                if not watchers:
                    self._watchers.pop(job.job_id, None)

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """JSON-safe service report (the ``stats`` op's payload)."""
        jobs_by_status: Dict[str, int] = {}
        for job in self.jobs.values():
            jobs_by_status[job.status] = (
                jobs_by_status.get(job.status, 0) + 1
            )
        return {
            "schema": protocol.PROTOCOL_SCHEMA,
            "uptime_s": round(time.time() - self.started_at, 3),
            "counters": dict(self.counters),
            "quotas": self.quotas.snapshot(),
            "workers": self.health.snapshot(),
            "slots": {
                slot.name: {"busy": slot.busy, "inline": slot.inline}
                for slot in self._slots
            },
            "jobs": {
                "total": len(self.jobs),
                "by_status": jobs_by_status,
                "in_flight_executions": len(self._executions),
            },
        }


class ServiceHandle:
    """A service running on a daemon thread (tests, demos, CLIs)."""

    def __init__(self, service: JobService, loop, thread) -> None:
        self.service = service
        self.loop = loop
        self.thread = thread

    @property
    def port(self) -> int:
        return self._call(lambda: self.service.port)

    def _call(self, fn):
        result: Dict[str, object] = {}
        done = threading.Event()

        def runner():
            result["value"] = fn()
            done.set()

        self.loop.call_soon_threadsafe(runner)
        done.wait(10)
        return result.get("value")

    def stop(self, timeout: float = 30.0) -> None:
        future = asyncio.run_coroutine_threadsafe(
            self.service.stop(), self.loop
        )
        try:
            future.result(timeout)
        except Exception:
            pass
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout)


def serve_in_thread(
    config: Optional[ServiceConfig] = None,
) -> ServiceHandle:
    """Start a :class:`JobService` on a background thread.

    Returns once the server socket is bound; ``handle.port`` gives the
    real port (bind with ``port=0`` for an ephemeral one).
    """
    started = threading.Event()
    holder: Dict[str, object] = {}

    def runner():
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        service = JobService(config)
        loop.run_until_complete(service.start())
        holder["service"] = service
        holder["loop"] = loop
        started.set()
        try:
            loop.run_forever()
        finally:
            loop.close()

    thread = threading.Thread(
        target=runner, name="repro-service", daemon=True
    )
    thread.start()
    if not started.wait(30):
        raise RuntimeError("job service failed to start within 30s")
    return ServiceHandle(holder["service"], holder["loop"], thread)


__all__ = [
    "CLIENT_OPTION_FIELDS",
    "JobService",
    "ServiceConfig",
    "ServiceHandle",
    "list_service_jobs",
    "serve_in_thread",
]
