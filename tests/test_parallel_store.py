"""Parallel engine and persistent-store tests.

Locks in the PR's two core guarantees: the worker pool returns
bit-identical results to the serial path, and the store keys on
everything that can change a result (and nothing that can't).
"""

import json

import pytest

from repro.config import scaled_config
from repro.sim.parallel import Task, run_grid
from repro.sim import runner
from repro.sim.runner import clear_cache, packed_trace, run_policy
from repro.sim.store import ResultStore, default_store, store_key
from repro.sim.suite import EXPORT_FIELDS, SuiteResult, run_suite
from repro.workloads import experiment_config

SCALE = 0.05
BENCHMARKS = ("lucas", "mcf")
POLICIES = ("lru", "lin(4)")


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    """Every test gets an empty memo and its own empty store."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    clear_cache()
    yield
    clear_cache()


def assert_results_identical(first, second):
    for field in EXPORT_FIELDS:
        assert getattr(first, field) == getattr(second, field), field
    assert first.cost_distribution.counts == second.cost_distribution.counts
    assert first.cost_distribution.cost_sum == (
        second.cost_distribution.cost_sum
    )
    assert first.delta_summary == second.delta_summary


class TestTraceMemo:
    def test_same_object_served_per_process(self):
        first = packed_trace("lucas", scale=SCALE)
        assert packed_trace("lucas", scale=SCALE) is first
        assert packed_trace("lucas", scale=2 * SCALE) is not first

    def test_memo_matches_direct_build(self):
        from repro.trace.packed import pack_trace
        from repro.workloads import build_trace

        memoized = packed_trace("lucas", scale=SCALE)
        direct = pack_trace(build_trace("lucas", scale=SCALE))
        assert memoized == direct
        assert memoized.content_digest() == direct.content_digest()

    def test_bounded_and_cleared(self):
        packed_trace("lucas", scale=SCALE)
        assert runner._TRACE_CACHE
        # Fill past the bound with distinct scales of one tiny workload;
        # the cache must never exceed TRACE_CACHE_MAX entries.
        for step in range(runner.TRACE_CACHE_MAX + 3):
            packed_trace("lucas", scale=SCALE * (1 + step) / 7)
            assert len(runner._TRACE_CACHE) <= runner.TRACE_CACHE_MAX
        clear_cache()
        assert not runner._TRACE_CACHE

    def test_run_policy_reuses_the_memoized_trace(self):
        before = runner._MEMO_HITS["trace_builds"]
        run_policy("lucas", "lru", scale=SCALE)
        run_policy("lucas", "lin(4)", scale=SCALE)
        assert runner._MEMO_HITS["trace_builds"] == before + 1


class TestParallelEqualsSerial:
    def test_bit_identical_matrix(self, tmp_path, monkeypatch):
        serial = run_suite(
            policies=POLICIES, benchmarks=BENCHMARKS, scale=SCALE
        )
        # Fresh store + memo so the pool really computes in workers.
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "parallel"))
        clear_cache()
        parallel = run_suite(
            policies=POLICIES, benchmarks=BENCHMARKS, scale=SCALE,
            workers=2,
        )
        assert not parallel.failures
        for benchmark in BENCHMARKS:
            for policy in POLICIES:
                assert_results_identical(
                    serial.result(benchmark, policy),
                    parallel.result(benchmark, policy),
                )

    def test_meta_surfaced_in_json(self):
        suite = run_suite(
            policies=("lru",), benchmarks=("lucas",), scale=SCALE,
            workers=2,
        )
        payload = json.loads(suite.to_json())
        meta = payload["meta"]
        assert meta["workers"] == 2
        assert meta["cache"] == {"hits": 0, "misses": 1}
        assert len(meta["tasks"]) == 1
        assert meta["tasks"][0]["ok"] is True
        assert meta["tasks"][0]["wall_time_s"] > 0

    def test_warm_store_turns_reruns_into_cache_hits(self):
        first = run_suite(
            policies=POLICIES, benchmarks=BENCHMARKS, scale=SCALE,
            workers=2,
        )
        assert first.meta["cache"]["misses"] == 4
        clear_cache()  # memo gone; the store must carry the rerun
        second = run_suite(
            policies=POLICIES, benchmarks=BENCHMARKS, scale=SCALE,
            workers=2,
        )
        assert second.meta["cache"] == {"hits": 4, "misses": 0}
        for benchmark in BENCHMARKS:
            for policy in POLICIES:
                assert_results_identical(
                    first.result(benchmark, policy),
                    second.result(benchmark, policy),
                )


class TestPartialFailure:
    def test_bad_policy_becomes_failure_entry(self):
        suite = run_suite(
            policies=("lru", "no-such-policy"), benchmarks=("lucas",),
            scale=SCALE, workers=2, retries=0,
        )
        assert suite.result("lucas", "lru").instructions > 0
        assert "no-such-policy" in suite.failures["lucas"]
        assert "unknown policy spec" in suite.failures["lucas"][
            "no-such-policy"
        ]
        # Renderings tolerate the hole.
        assert "FAILED" in suite.to_text()
        payload = json.loads(suite.to_json())
        assert len(payload["runs"]) == 1
        assert payload["failures"]["lucas"]
        assert suite.to_csv().count("\n") == 2  # header + one row

    def test_retries_are_bounded(self):
        grid = run_grid(
            [Task(benchmark="lucas", policy_spec="no-such-policy",
                  scale=SCALE)],
            workers=2, retries=2,
        )
        assert not grid.results
        (report,) = grid.reports
        assert report.ok is False
        assert report.attempts == 3

    def test_serial_workers_path_matches_pool(self):
        grid = run_grid(
            [Task(benchmark="lucas", policy_spec="lru", scale=SCALE)],
            workers=1,
        )
        (task, result), = grid.results.items()
        assert result.instructions > 0
        assert grid.reports[0].ok


class TestStoreKeying:
    def test_identical_rerun_hits(self):
        run_policy("lucas", "lru", scale=SCALE)
        clear_cache()
        store = default_store()
        hits_before = store.hits
        run_policy("lucas", "lru", scale=SCALE)
        assert store.hits == hits_before + 1

    def test_scale_and_config_changes_miss(self):
        config = experiment_config()
        base = store_key("lucas", "lru", SCALE, config)
        assert store_key("lucas", "lru", SCALE, config) == base
        assert store_key("lucas", "lru", 2 * SCALE, config) != base
        assert store_key(
            "lucas", "lru", SCALE, scaled_config(512)
        ) != base
        assert store_key("lucas", "lin(4)", SCALE, config) != base
        assert store_key("mcf", "lru", SCALE, config) != base
        assert store_key(
            "lucas", "lru", SCALE, config, phase_interval=1000
        ) != base

    def test_spec_keys_are_canonical(self):
        config = experiment_config()
        assert store_key("lucas", " LRU ", SCALE, config) == store_key(
            "lucas", "lru", SCALE, config
        )

    def test_result_roundtrip_is_exact(self, tmp_path):
        result = run_policy("mcf", "lin(4)", scale=SCALE, use_cache=False)
        store = ResultStore(tmp_path / "roundtrip")
        store.save("key", result)
        loaded = store.load("key")
        assert_results_identical(result, loaded)
        assert loaded.ipc == result.ipc
        assert loaded.policy_name == result.policy_name

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(tmp_path / "corrupt")
        store.root.mkdir(parents=True)
        (store.root / "bad.json").write_text("{not json")
        assert store.load("bad") is None
        assert not (store.root / "bad.json").exists()

    def test_no_store_env_disables_persistence(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_STORE", "1")
        assert default_store() is None
        run_policy("lucas", "lru", scale=SCALE)  # still works, memo-only


class TestSuiteResultFixes:
    def test_empty_matrix_csv_is_header_only(self):
        suite = run_suite(policies=("lru",), benchmarks=(), scale=SCALE)
        csv_text = suite.to_csv()
        lines = csv_text.strip().splitlines()
        assert len(lines) == 1
        assert lines[0].startswith("benchmark,policy")

    def test_to_csv_does_not_mutate_rows(self):
        suite = run_suite(
            policies=("lru",), benchmarks=("lucas",), scale=SCALE
        )
        assert suite.to_csv() == suite.to_csv()
        rows = suite.to_rows()
        suite.to_csv()
        assert isinstance(rows[0]["cost_histogram_pct"], list)


class TestExperimentsPrewarm:
    def test_prewarm_tasks_cover_declared_policies(self):
        from repro.experiments.common import prewarm_tasks

        tasks = prewarm_tasks(
            ["figure9"], benchmarks=["lucas"], scale=SCALE
        )
        assert {task.policy_spec for task in tasks} == {
            "lru", "lin(4)", "sbar",
        }
        assert all(task.benchmark == "lucas" for task in tasks)

    def test_experiments_cli_with_workers(self, capsys):
        from repro.experiments.__main__ import main

        code = main([
            "table1", "--benchmarks", "lucas", "--scale", str(SCALE),
            "--workers", "2",
        ])
        assert code == 0
        out = capsys.readouterr()
        assert "Table 1" in out.out
        assert "prewarm" in out.err
