"""Simulation telemetry: metrics, event traces, and profiling spans.

``repro.obs`` is the observability layer the rest of the package
reports into.  It has three independent channels, each opt-in and each
zero-cost when off (components hold ``observer = None`` and hot paths
guard with a single ``is not None`` check):

* **metrics** (:mod:`repro.obs.metrics`) — counters, gauges, and
  histograms.  Fully deterministic: a snapshot is a pure function of
  the simulated work, so serial and parallel runs of the same grid
  merge to bit-identical snapshots.
* **events** (:mod:`repro.obs.events`) — a JSONL narration of miss
  lifecycles, MSHR occupancy, cost quantization, PSEL updates, and
  victim selections, timestamped in simulated cycles.
* **profiling** (:mod:`repro.obs.profile`) — wall-time spans around
  trace replay, set lookup, and replacement decisions.  Wall times are
  nondeterministic, so they are reported separately from metrics.

Configuration lives in environment variables so worker processes
(fork or spawn) inherit it without plumbing:

=====================  =============================================
``REPRO_METRICS``      any non-empty value enables metrics
``REPRO_TRACE_EVENTS`` path of the JSONL event file (workers append
                       ``.<pid>``); empty/unset disables
``REPRO_PROFILE``      any non-empty value enables profiling spans
``REPRO_TRACE_VERBOSE`` include full set contents in victim events
=====================  =============================================

:func:`configure` mutates those variables programmatically (the CLIs'
``--metrics-out`` / ``--trace-events`` flags go through it), and
:func:`default_observer` builds the per-run :class:`Observer` the
simulator wires into its components — or returns ``None`` when every
channel is off.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional

from repro.mlp.cost import MAX_COST_Q, bucket_label
from repro.obs.events import (
    NULL_TRACE,
    EventTrace,
    MemoryEventTrace,
    NullEventTrace,
    read_events,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    merge_snapshots,
)
from repro.obs.profile import Profiler

ENV_METRICS = "REPRO_METRICS"
ENV_TRACE = "REPRO_TRACE_EVENTS"
ENV_TRACE_ORIGIN = "REPRO_TRACE_ORIGIN"
ENV_TRACE_VERBOSE = "REPRO_TRACE_VERBOSE"
ENV_PROFILE = "REPRO_PROFILE"

#: MSHR occupancy histogram bucket upper bounds (entries in flight).
OCCUPANCY_BOUNDS = [1, 2, 4, 8, 16, 24, 32, 64]

_UNSET = object()


# -- configuration -------------------------------------------------------


def metrics_enabled() -> bool:
    return bool(os.environ.get(ENV_METRICS))


def profiling_enabled() -> bool:
    return bool(os.environ.get(ENV_PROFILE))


def trace_events_path() -> Optional[str]:
    return os.environ.get(ENV_TRACE) or None


def verbose_events() -> bool:
    return bool(os.environ.get(ENV_TRACE_VERBOSE))


def enabled() -> bool:
    """Whether any telemetry channel is on."""
    return bool(
        metrics_enabled() or trace_events_path() or profiling_enabled()
    )


def configure(
    metrics=_UNSET,
    trace_events=_UNSET,
    profile=_UNSET,
    verbose=_UNSET,
) -> None:
    """Enable/disable telemetry channels process-wide (and for workers).

    Arguments left at their default are untouched.  ``metrics``,
    ``profile``, and ``verbose`` are booleans; ``trace_events`` is a
    JSONL path, or a falsy value to disable tracing.
    """
    if metrics is not _UNSET:
        _set_flag(ENV_METRICS, bool(metrics))
    if profile is not _UNSET:
        _set_flag(ENV_PROFILE, bool(profile))
    if verbose is not _UNSET:
        _set_flag(ENV_TRACE_VERBOSE, bool(verbose))
    if trace_events is not _UNSET:
        if trace_events:
            os.environ[ENV_TRACE] = str(trace_events)
            os.environ[ENV_TRACE_ORIGIN] = str(os.getpid())
        else:
            os.environ.pop(ENV_TRACE, None)
            os.environ.pop(ENV_TRACE_ORIGIN, None)


def _set_flag(name: str, value: bool) -> None:
    if value:
        os.environ[name] = "1"
    else:
        os.environ.pop(name, None)


_event_traces: Dict[str, EventTrace] = {}


def shared_event_trace() -> Optional[EventTrace]:
    """The per-process sink for the configured event path, if any."""
    path = trace_events_path()
    if path is None:
        return None
    trace = _event_traces.get(path)
    if trace is None:
        origin = int(os.environ.get(ENV_TRACE_ORIGIN, os.getpid()))
        trace = _event_traces[path] = EventTrace(path, origin_pid=origin)
    return trace


# -- the per-run observer ------------------------------------------------


class Observer:
    """One simulation run's telemetry bundle.

    Components call the hook methods below; every hook is cheap and
    degrades gracefully when a channel is off.  The simulator creates
    one Observer per run (via :func:`default_observer`) so metric
    snapshots are per-run and attachable to :class:`SimResult`.
    """

    __slots__ = (
        "registry",
        "events",
        "profiler",
        "verbose",
        "_evictions",
        "_occupancy",
        "_cost_events",
        "_cost_hist",
        "_psel_moves",
        "_tournament_charges",
        "_queue_full",
    )

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        events=None,
        profiler: Optional[Profiler] = None,
        verbose: bool = False,
    ) -> None:
        self.registry = registry
        self.events = events
        self.profiler = profiler
        self.verbose = verbose
        if registry is not None:
            self._evictions = registry.counter(
                "cache.evictions", "victims selected, by cache level"
            )
            self._occupancy = registry.histogram(
                "mshr.occupancy",
                OCCUPANCY_BOUNDS,
                "entries in flight at each allocation",
            )
            self._cost_events = registry.counter(
                "mlp.cost_quantized", "misses whose mlp-cost was finalized"
            )
            self._cost_hist = registry.histogram(
                "mlp.cost_q",
                list(range(MAX_COST_Q + 1)),
                "quantized cost written to tags (warm-up included)",
            )
            self._psel_moves = registry.counter(
                "sbar.psel_updates", "PSEL movements, by direction"
            )
            self._tournament_charges = registry.counter(
                "tournament.charges", "cost charged to tournament leaders"
            )
            self._queue_full = registry.counter(
                "memory.queue_full_waits",
                "requests delayed by the outstanding-request limit",
            )
        else:
            self._evictions = None
            self._occupancy = None
            self._cost_events = None
            self._cost_hist = None
            self._psel_moves = None
            self._tournament_charges = None
            self._queue_full = None

    # -- cache hooks -----------------------------------------------------

    def victim_selected(
        self, cache: str, set_index: int, victim, policy_name: str,
        cache_set=None,
    ) -> None:
        if self._evictions is not None:
            self._evictions.inc(cache=cache)
        if self.events is not None:
            fields = {
                "cache": cache,
                "set": set_index,
                "block": victim.block,
                "cost_q": victim.cost_q,
                "dirty": victim.dirty,
                "policy": policy_name,
            }
            if self.verbose and cache_set is not None:
                fields["ways"] = cache_set.snapshot()
            self.events.emit("victim_selected", **fields)

    # -- MSHR hooks ------------------------------------------------------

    def miss_start(
        self, block: int, issue: float, complete: float,
        is_demand: bool, occupancy: int,
    ) -> None:
        if self._occupancy is not None:
            self._occupancy.observe(occupancy)
        if self.events is not None:
            self.events.emit(
                "miss_start",
                block=block,
                issue=issue,
                complete=complete,
                demand=is_demand,
                occupancy=occupancy,
            )

    def miss_finish(
        self, block: int, complete: float, cost: float, outstanding: int
    ) -> None:
        if self.events is not None:
            self.events.emit(
                "miss_finish",
                block=block,
                complete=complete,
                cost=round(cost, 6),
                outstanding=outstanding,
            )

    # -- cost / PSEL hooks -----------------------------------------------

    def cost_quantized(self, block: int, cost: float, cost_q: int) -> None:
        if self._cost_events is not None:
            self._cost_events.inc()
            self._cost_hist.observe(cost_q)
        if self.events is not None:
            self.events.emit(
                "cost_quantized",
                block=block,
                cost=round(cost, 6),
                cost_q=cost_q,
                bucket=bucket_label(cost_q),
            )

    def psel_update(
        self, label: str, direction: str, amount: int, value: int
    ) -> None:
        if self._psel_moves is not None:
            self._psel_moves.inc(direction=direction, psel=label)
        if self.events is not None:
            self.events.emit(
                "psel_update",
                psel=label,
                direction=direction,
                amount=amount,
                value=value,
            )

    def tournament_update(self, policy_name: str, cost_q: int) -> None:
        if self._tournament_charges is not None:
            self._tournament_charges.inc(policy=policy_name)
        if self.events is not None:
            self.events.emit(
                "tournament_charge", policy=policy_name, cost_q=cost_q
            )

    # -- memory hooks ----------------------------------------------------

    def memory_queue_full(self, until: float) -> None:
        if self._queue_full is not None:
            self._queue_full.inc()
        if self.events is not None:
            self.events.emit("memory_queue_full", until=until)

    # -- end of run ------------------------------------------------------

    def finalize_run(self, simulator, result) -> Optional[Dict[str, object]]:
        """Fold the run's component counters into the registry.

        Called once by ``Simulator._finalize``.  Returns the metric
        snapshot to attach to the :class:`SimResult` (or ``None`` when
        metrics are off) and records the run into the process session.

        Counter semantics: ``sim.*`` values are warm-up-adjusted like
        the SimResult; ``cache.* / mshr.* / memory.*`` are raw
        whole-run component counters.
        """
        snapshot = None
        registry = self.registry
        if registry is not None:
            counter = registry.counter
            counter("sim.runs").inc()
            counter("sim.instructions").inc(result.instructions)
            counter("sim.cycles").inc(result.cycles)
            counter("sim.demand_misses").inc(result.demand_misses)
            counter("sim.compulsory_misses").inc(result.compulsory_misses)
            for label, cache in (
                ("l1i", simulator.l1i),
                ("l1d", simulator.l1d),
                ("l2", simulator.l2),
            ):
                counter("cache.accesses").inc(cache.accesses, cache=label)
                counter("cache.hits").inc(cache.hits, cache=label)
                counter("cache.misses").inc(cache.misses, cache=label)
                counter("cache.writebacks").inc(cache.writebacks, cache=label)
            window = simulator.window
            counter("window.stall_events").inc(window.stall_events)
            counter("window.long_stalls").inc(window.long_stalls)
            counter("window.stall_cycles").inc(window.stall_cycles)
            mshr = simulator.mshr
            counter("mshr.allocations").inc(mshr.allocations)
            counter("mshr.merges").inc(mshr.merges)
            counter("mshr.full_stalls").inc(mshr.full_stalls)
            registry.gauge(
                "mshr.peak_occupancy", "most entries ever in flight"
            ).set(mshr.peak_occupancy)
            memory = simulator.memory
            counter("memory.requests").inc(memory.requests)
            counter("memory.writebacks").inc(memory.writebacks)
            counter("memory.queueing_stalls").inc(memory.queueing_stalls)
            counter("memory.bank_conflicts").inc(memory.banks.conflicts)
            counter("memory.bus_contended").inc(memory.bus.contended)
            registry.gauge(
                "memory.peak_in_flight", "most outstanding memory requests"
            ).set(memory.peak_in_flight)
            snapshot = registry.snapshot()
        if self.events is not None:
            self.events.emit(
                "run_finished",
                policy=result.policy_name,
                instructions=result.instructions,
                cycles=result.cycles,
                demand_misses=result.demand_misses,
            )
            self.events.flush()
        record_session(snapshot, self.profiler)
        return snapshot


def default_observer() -> Optional[Observer]:
    """Build an Observer per the environment, or None when all off."""
    if not enabled():
        return None
    return Observer(
        registry=MetricsRegistry() if metrics_enabled() else None,
        events=shared_event_trace(),
        profiler=Profiler() if profiling_enabled() else None,
        verbose=verbose_events(),
    )


# -- process-wide session accumulation -----------------------------------

_session_snapshots: List[Dict[str, object]] = []
_session_profiler = Profiler()


def record_session(
    snapshot: Optional[Dict[str, object]],
    profiler: Optional[Profiler] = None,
) -> None:
    """Fold one run's telemetry into the process-wide session totals."""
    if snapshot is not None:
        _session_snapshots.append(snapshot)
    if profiler is not None:
        _session_profiler.merge(profiler)


def session_snapshot() -> Optional[Dict[str, object]]:
    """Merged metrics of every run finalized in this process, or None.

    Cache hits never reach ``finalize_run``, so the session counts each
    simulation actually executed here exactly once.
    """
    if not _session_snapshots:
        return None
    return merge_snapshots(_session_snapshots)


def session_profile() -> Dict[str, Dict[str, object]]:
    return _session_profiler.summary()


def reset_session() -> None:
    global _session_profiler
    _session_snapshots.clear()
    _session_profiler = Profiler()


__all__ = [
    "Observer",
    "MetricsRegistry",
    "Counter",
    "Gauge",
    "Histogram",
    "merge_snapshots",
    "Profiler",
    "EventTrace",
    "MemoryEventTrace",
    "NullEventTrace",
    "NULL_TRACE",
    "read_events",
    "configure",
    "default_observer",
    "enabled",
    "metrics_enabled",
    "profiling_enabled",
    "trace_events_path",
    "shared_event_trace",
    "record_session",
    "session_snapshot",
    "session_profile",
    "reset_session",
    "OCCUPANCY_BOUNDS",
]
