"""repro.api — the blessed public surface, in one import.

The package grew across many layers (simulator, parallel engine,
suite driver, analysis, job service), each with its own module path.
This facade re-exports the stable, supported names so user code needs
exactly one import and never reaches into internals::

    from repro.api import RunOptions, run_suite, submit

    # local execution (serial or multiprocess):
    suite = run_suite(policies=("lru", "lin(4)"),
                      options=RunOptions(workers=4))

    # or hand the same grid to a running job service:
    job = submit(["mcf", "art"], ["lru", "lin(4)"], port=7663)

What belongs here: entry points (:func:`run_policy`,
:func:`run_grid`, :func:`run_suite`, :func:`submit`), their options
object (:class:`RunOptions`), the extension registries
(:func:`register_policy`, :func:`register_workload`), the spec parsers
(:func:`parse_policy_spec`, :func:`parse_workload_spec`), and the
offline oracle (:func:`oracle_report`).  Everything else — kernels,
stores, schedulers — is implementation: importable, but not part of
the compatibility surface this module promises.

Names resolve lazily so ``import repro.api`` stays cheap even though
the surface spans heavy modules.
"""

from __future__ import annotations

#: name -> (module, attribute).  The compatibility surface; additions
#: are fine, removals/renames need a deprecation cycle.
_SURFACE = {
    # execute
    "run_policy": ("repro.sim.runner", "run_policy"),
    "run_grid": ("repro.sim.parallel", "run_grid"),
    "run_suite": ("repro.sim.suite", "run_suite"),
    "RunOptions": ("repro.sim.options", "RunOptions"),
    # extend
    "register_policy": ("repro.cache.replacement", "register_policy"),
    "register_workload": ("repro.workloads", "register_workload"),
    # parse specs
    "parse_policy_spec": ("repro.cache.replacement", "parse_policy_spec"),
    "parse_workload_spec": ("repro.workloads", "parse_workload_spec"),
    # analyze
    "oracle_report": ("repro.analysis.oracle", "oracle_report"),
    # the job service client
    "submit": ("repro.service.client", "submit"),
}

__all__ = sorted(_SURFACE)


def __getattr__(name: str):
    try:
        module_name, attr = _SURFACE[name]
    except KeyError:
        raise AttributeError(
            "module %r has no attribute %r (the public surface is: %s)"
            % (__name__, name, ", ".join(__all__))
        )
    import importlib

    value = getattr(importlib.import_module(module_name), attr)
    globals()[name] = value
    return value


def __dir__():
    return sorted(set(globals()) | set(_SURFACE))
