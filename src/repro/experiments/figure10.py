"""Figure 10: SBAR sensitivity to leader-set policy and count.

Six configurations: {simple-static, rand-dynamic} x {8, 16, 32} leader
sets.  The paper's finding: performance is insensitive to both knobs
for every benchmark except ammp, whose widely-varying per-set demand
favors rand-dynamic at small leader counts.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import Report, fmt_pct, resolve_benchmarks
from repro.sim.runner import ipc_improvement, run_policy

CONFIGS = (
    ("simple-static", 8),
    ("rand-dynamic", 8),
    ("simple-static", 16),
    ("rand-dynamic", 16),
    ("simple-static", 32),
    ("rand-dynamic", 32),
)

PREWARM_POLICIES = ("lru",) + tuple(
    "sbar(%s,%d)" % (selection, count) for selection, count in CONFIGS
)


def run(
    scale: Optional[float] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Report:
    report = Report(
        "figure10",
        "Figure 10: SBAR vs leader-set selection policy and count",
    )
    rows = []
    for name in resolve_benchmarks(benchmarks):
        baseline = run_policy(name, "lru", scale=scale)
        row = [name]
        for selection, count in CONFIGS:
            result = run_policy(
                name, "sbar(%s,%d)" % (selection, count), scale=scale
            )
            row.append(fmt_pct(ipc_improvement(result, baseline)))
        rows.append(row)
    headers = ["benchmark"] + [
        "%s/%d" % ("static" if sel == "simple-static" else "rand", count)
        for sel, count in CONFIGS
    ]
    report.add_table(headers, rows)
    report.add_note(
        "Most benchmarks are insensitive to both knobs; ammp (skewed\n"
        "per-set demand) is the benchmark where selection policy and\n"
        "leader count matter most, as in the paper."
    )
    return report
