"""Trace substrate: access records and synthetic trace construction.

A *trace* is a sequence of :class:`~repro.trace.record.Access` objects.
Each access carries the number of non-memory instructions that precede it
(``gap``), so a trace compactly represents a full dynamic instruction
stream without storing every ALU instruction.
"""

from repro.trace.record import (
    IFETCH,
    LOAD,
    STORE,
    Access,
    Trace,
    kind_name,
    validate_access_fields,
)
from repro.trace.synthetic import (
    TraceBuilder,
    interleave,
    pointer_chase,
    random_working_set,
    strided_stream,
)
from repro.trace.figure1 import figure1_trace, FIGURE1_BLOCKS
from repro.trace.packed import PackedTrace, pack_trace
from repro.trace.trace_io import load_packed_trace, load_trace, save_trace

__all__ = [
    "Access",
    "Trace",
    "PackedTrace",
    "pack_trace",
    "LOAD",
    "STORE",
    "IFETCH",
    "kind_name",
    "TraceBuilder",
    "strided_stream",
    "pointer_chase",
    "random_working_set",
    "interleave",
    "figure1_trace",
    "FIGURE1_BLOCKS",
    "save_trace",
    "load_trace",
    "load_packed_trace",
    "validate_access_fields",
]
