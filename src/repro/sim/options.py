"""One options object for every execution entry point.

``run_policy``, ``run_grid``, and ``run_suite`` historically grew their
own overlapping keyword arguments (``workers``, ``use_cache``,
``timeout``, ``retries``, ``progress``, ...) that had to be threaded
through every layer and kept in sync across four CLIs.
:class:`RunOptions` replaces that scatter with a single frozen
dataclass: build it once (the CLIs do, via
:mod:`repro.sim.common_cli`), pass it anywhere, and derive variants
with :meth:`RunOptions.replace`.

The old keyword arguments still work — :func:`resolve_options` folds
them into a ``RunOptions`` and emits a :class:`DeprecationWarning`,
mirroring the ``build_l2_policy`` shim precedent — but new code should
construct options directly::

    from repro.sim import RunOptions, run_suite

    suite = run_suite(
        policies=("lru", "sbar"),
        options=RunOptions(workers=8, max_retries=3, deadline=120.0),
    )
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from typing import Callable, Optional

#: Shared "argument not passed" sentinel.  Entry points use it as the
#: default for their deprecated legacy keywords so :func:`resolve_options`
#: can tell "not passed" from every real value (including None).
UNSET = _UNSET = object()


@dataclass(frozen=True)
class RunOptions:
    """Everything about *how* to execute simulations (not *what*).

    The what — benchmarks, policies, scale — stays in the entry
    points' positional API; RunOptions carries the execution knobs:

    * ``workers`` — pool size.  ``0`` means serial for
      :func:`~repro.sim.suite.run_suite` and "CPU count" for the
      inherently-parallel :func:`~repro.sim.parallel.run_grid`.
    * ``use_cache`` — consult/populate the in-process memo and the
      persistent result store.
    * ``max_retries`` — re-executions allowed per task after a failure
      (``attempts = max_retries + 1``).
    * ``deadline`` — per-task wall-clock budget in seconds (SIGALRM in
      the worker); replaces the old one-shot ``timeout``.
    * ``backoff_base`` / ``backoff_max`` / ``retry_seed`` — exponential
      backoff with deterministic jitter between retry attempts (see
      :func:`repro.sim.resilience.backoff_delay`).
    * ``pool_failure_threshold`` — consecutive broken-pool rounds
      before the circuit breaker opens and the engine degrades to
      serial in-process execution.  ``0`` disables the breaker.
    * ``resume`` — run id of an interrupted run whose journal +
      store entries should be replayed; only missing cells re-execute.
    * ``run_id`` — explicit id for this run's journal (default:
      generated).
    * ``journal`` — write a JSONL run journal (on by default; a no-op
      when persistence is disabled via ``REPRO_NO_STORE``).
    * ``progress`` — callback ``(TaskReport, done, total)`` per
      finished task.
    * ``chaos`` — optional :class:`repro.sim.chaos.ChaosConfig` for
      deterministic fault injection (tests/CI only).
    * ``kernel`` — replay kernel ceiling passed to every
      :class:`~repro.sim.simulator.Simulator` (``"auto"``,
      ``"native"``, ``"batched"``, ``"fused"``, or ``"generic"``).
      All kernels are bit-identical, so the choice never enters memo
      or store keys — a cached result satisfies a request under any
      kernel, and ``SimResult.meta["kernel_used"]`` records which rung
      actually produced it.
    """

    workers: int = 0
    use_cache: bool = True
    max_retries: int = 1
    deadline: Optional[float] = None
    backoff_base: float = 0.05
    backoff_max: float = 2.0
    retry_seed: int = 0
    pool_failure_threshold: int = 3
    resume: Optional[str] = None
    run_id: Optional[str] = None
    journal: bool = True
    progress: Optional[Callable] = None
    chaos: Optional[object] = None  # repro.sim.chaos.ChaosConfig
    kernel: str = "auto"

    def __post_init__(self) -> None:
        from repro.sim.simulator import REPLAY_KERNELS

        if self.kernel not in REPLAY_KERNELS:
            raise ValueError(
                "kernel must be one of %s, got %r"
                % (", ".join(REPLAY_KERNELS), self.kernel)
            )

    def replace(self, **changes) -> "RunOptions":
        """A copy with ``changes`` applied (dataclasses.replace)."""
        return dataclasses.replace(self, **changes)

    #: Fields that cannot cross a process boundary (callbacks) or that
    #: are owned by whichever engine executes the options (journaling
    #: identity is per-run, not part of a submission's intent).
    _NON_WIRE_FIELDS = ("progress",)

    def to_wire(self) -> dict:
        """JSON-safe dict form for service submissions and journals.

        Everything except the ``progress`` callback round-trips;
        ``chaos`` serializes through
        :meth:`repro.sim.chaos.ChaosConfig.to_dict`.  The inverse is
        :meth:`from_wire`.
        """
        payload = {}
        for field in dataclasses.fields(self):
            if field.name in self._NON_WIRE_FIELDS:
                continue
            payload[field.name] = getattr(self, field.name)
        if self.chaos is not None:
            payload["chaos"] = self.chaos.to_dict()
        return payload

    @classmethod
    def from_wire(cls, payload: Optional[dict]) -> "RunOptions":
        """Rebuild options from :meth:`to_wire` output.

        Unknown keys are ignored (a newer client may send fields an
        older server does not know), and a ``chaos`` dict is revived
        into a :class:`~repro.sim.chaos.ChaosConfig`.
        """
        if not payload:
            return cls()
        known = {
            field.name for field in dataclasses.fields(cls)
            if field.name not in cls._NON_WIRE_FIELDS
        }
        fields = {
            key: value for key, value in payload.items() if key in known
        }
        chaos = fields.get("chaos")
        if isinstance(chaos, dict):
            from repro.sim.chaos import ChaosConfig

            fields["chaos"] = ChaosConfig(**chaos)
        return cls(**fields)


def resolve_options(
    options: Optional[RunOptions],
    caller: str,
    workers=_UNSET,
    use_cache=_UNSET,
    timeout=_UNSET,
    retries=_UNSET,
    progress=_UNSET,
) -> RunOptions:
    """Fold an entry point's deprecated kwargs into one RunOptions.

    Passing any legacy kwarg emits a :class:`DeprecationWarning` naming
    the replacement field; combining legacy kwargs with an explicit
    ``options`` object is ambiguous and raises ``TypeError``.
    """
    legacy = {}
    renames = []
    if workers is not _UNSET:
        legacy["workers"] = workers
        renames.append("workers=N -> RunOptions(workers=N)")
    if use_cache is not _UNSET:
        legacy["use_cache"] = use_cache
        renames.append("use_cache=B -> RunOptions(use_cache=B)")
    if timeout is not _UNSET:
        legacy["deadline"] = timeout
        renames.append("timeout=S -> RunOptions(deadline=S)")
    if retries is not _UNSET:
        legacy["max_retries"] = retries
        renames.append("retries=N -> RunOptions(max_retries=N)")
    if progress is not _UNSET:
        legacy["progress"] = progress
        renames.append("progress=F -> RunOptions(progress=F)")
    if not legacy:
        return options if options is not None else RunOptions()
    if options is not None:
        raise TypeError(
            "%s: pass options=RunOptions(...) or the legacy keyword "
            "arguments, not both" % caller
        )
    warnings.warn(
        "%s keyword arguments are deprecated; pass "
        "options=repro.sim.RunOptions(...) instead (%s)"
        % (caller, "; ".join(renames)),
        DeprecationWarning,
        stacklevel=3,
    )
    return RunOptions(**legacy)


__all__ = ["RunOptions", "resolve_options", "UNSET"]
