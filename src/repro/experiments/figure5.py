"""Figure 5: mlp-cost distribution, baseline vs LIN(4), with insets.

For each benchmark the paper overlays the LIN(4) cost distribution on
the baseline one and annotates the change in misses and IPC.  This
experiment prints both distributions side by side plus the insets,
compared against the published values.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import Report, fmt_pct, resolve_benchmarks
from repro.experiments.figure2 import bucket_labels
from repro.sim.runner import ipc_improvement, miss_change, run_policy
from repro.workloads import PAPER_FIG5

PREWARM_POLICIES = ("lru", "lin(4)")


def run(
    scale: Optional[float] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Report:
    report = Report(
        "figure5",
        "Figure 5: mlp-cost distribution and MISS/IPC change, LRU vs LIN(4)",
    )
    labels = bucket_labels()
    summary_rows = []
    for name in resolve_benchmarks(benchmarks):
        baseline = run_policy(name, "lru", scale=scale)
        lin = run_policy(name, "lin(4)", scale=scale)
        miss_delta = miss_change(lin, baseline)
        ipc_delta = ipc_improvement(lin, baseline)
        paper_miss, paper_ipc = PAPER_FIG5[name]
        report.add_note(
            "%s: MISS %s (paper %s), IPC %s (paper %s)"
            % (
                name,
                fmt_pct(miss_delta),
                fmt_pct(paper_miss),
                fmt_pct(ipc_delta),
                fmt_pct(paper_ipc),
            )
        )
        rows = [
            (
                label,
                "%.1f%%" % base_pct,
                "%.1f%%" % lin_pct,
            )
            for label, base_pct, lin_pct in zip(
                labels,
                baseline.cost_distribution.percentages,
                lin.cost_distribution.percentages,
            )
        ]
        rows.append(
            (
                "avg cost",
                "%.0f" % baseline.cost_distribution.average,
                "%.0f" % lin.cost_distribution.average,
            )
        )
        report.add_table(["cycles", "base", "lin(4)"], rows)
        summary_rows.append(
            (
                name,
                fmt_pct(miss_delta), fmt_pct(paper_miss),
                fmt_pct(ipc_delta), fmt_pct(paper_ipc),
            )
        )
    report.add_note("Summary (the Figure 5 insets):")
    report.add_table(
        ["benchmark", "dMISS", "paper", "dIPC", "paper"], summary_rows
    )
    return report
