"""Figure 3(b): quantization of mlp-cost into the 3-bit cost_q.

Mostly illustrative: prints the interval table and spot-checks the
boundary values used everywhere else in the reproduction.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import Report
from repro.mlp.cost import MAX_COST_Q, QUANTIZATION_STEP, quantize_cost


def run(scale: Optional[float] = None, benchmarks=None) -> Report:
    report = Report(
        "figure3", "Figure 3(b): quantization of mlp-cost to 3-bit cost_q"
    )
    rows = []
    for cost_q in range(MAX_COST_Q + 1):
        low = cost_q * QUANTIZATION_STEP
        if cost_q < MAX_COST_Q:
            interval = "%d to %d cycles" % (low, low + QUANTIZATION_STEP - 1)
        else:
            interval = "%d+ cycles" % low
        rows.append((interval, cost_q))
    report.add_table(["computed mlp-cost", "cost_q"], rows)
    checks = [0, 59, 60, 444, 10_000]
    report.add_note(
        "Spot checks: "
        + ", ".join("%d -> %d" % (c, quantize_cost(c)) for c in checks)
    )
    return report
