"""Regeneration benchmark for figure5 of the paper."""

from repro.experiments import figure5


def test_figure5(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(figure5), rounds=1, iterations=1
    )
    assert report.render()
