"""Deterministic chaos harness for the fault-tolerant engine.

Adaptive-policy evaluation is only trustworthy if the evaluation
harness itself is reliable, so this module makes the failure modes the
resilience layer guards against *injectable and seeded*: worker
crashes, worker delays, and result-store corruption.  Every decision
is a pure function of ``(seed, kind, task label, attempt)`` — no RNG
state, no wall clock — so a chaos run is exactly reproducible and CI
can assert the hard property that matters:

    with faults injected, ``run_suite`` completes and its merged
    results are **bit-identical** to the fault-free serial run.

``python -m repro.sim.chaos`` runs that differential end-to-end
against a throwaway store (fault-free serial baseline, then store
corruption + a chaotic parallel run) and exits non-zero on any digest
mismatch; CI's chaos-smoke job is exactly this command.

Crash injection has two modes:

* **raise** (default) — the worker raises :class:`ChaosCrash`; the
  task fails cleanly and is retried with backoff.
* **hard** (``hard=True``) — the worker process calls ``os._exit``,
  which breaks the whole ``ProcessPoolExecutor``; this exercises pool
  rebuild and the circuit breaker.  Hard mode only ever exits inside a
  pool worker — in-parent (serial/fallback) execution always raises.
"""

from __future__ import annotations

import argparse
import hashlib
import json
import os
import sys
import tempfile
import time
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional


class ChaosCrash(RuntimeError):
    """Injected worker crash (raise-mode)."""


@dataclass(frozen=True)
class ChaosConfig:
    """Seeded fault-injection knobs.

    Rates are probabilities in ``[0, 1]`` evaluated per (task,
    attempt) via :meth:`_roll`; ``delay_s`` is the injected sleep.
    """

    seed: int = 0
    crash_rate: float = 0.0
    delay_rate: float = 0.0
    delay_s: float = 0.005
    hard: bool = False

    def _roll(self, kind: str, label: str, attempt: int) -> float:
        """Uniform [0, 1) deterministic in (seed, kind, label, attempt)."""
        digest = hashlib.sha256(
            ("%d|%s|%s|%d" % (self.seed, kind, label, attempt)).encode()
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    def should_crash(self, label: str, attempt: int) -> bool:
        return (
            self.crash_rate > 0
            and self._roll("crash", label, attempt) < self.crash_rate
        )

    def delay(self, label: str, attempt: int) -> float:
        if (
            self.delay_rate > 0
            and self._roll("delay", label, attempt) < self.delay_rate
        ):
            return self.delay_s
        return 0.0

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def parse(cls, spec: str) -> "ChaosConfig":
        """Parse ``"crash=0.2,delay=0.3,delay-s=0.01,seed=7,hard=1"``."""
        fields: Dict[str, object] = {}
        for part in spec.split(","):
            part = part.strip()
            if not part:
                continue
            try:
                name, value = part.split("=", 1)
            except ValueError:
                raise ValueError(
                    "chaos spec entries look like key=value, got %r" % part
                )
            name = name.strip().lower().replace("-", "_")
            if name == "crash":
                name = "crash_rate"
            elif name == "delay":
                name = "delay_rate"
            if name in ("crash_rate", "delay_rate", "delay_s"):
                fields[name] = float(value)
            elif name == "seed":
                fields[name] = int(value)
            elif name == "hard":
                fields[name] = value.strip().lower() not in ("0", "false", "")
            else:
                raise ValueError("unknown chaos knob %r" % name)
        return cls(**fields)


def inject(
    chaos: Optional[ChaosConfig],
    label: str,
    attempt: int,
    in_worker: bool,
) -> None:
    """Apply the configured faults for one task attempt.

    Called at the top of task execution.  Delays sleep (and therefore
    count against the task's deadline); crashes either raise
    :class:`ChaosCrash` or — hard mode inside a pool worker — kill the
    process outright.
    """
    if chaos is None:
        return
    delay = chaos.delay(label, attempt)
    if delay > 0:
        time.sleep(delay)
    if chaos.should_crash(label, attempt):
        if chaos.hard and in_worker:
            os._exit(13)
        raise ChaosCrash(
            "chaos: injected crash for %s attempt %d" % (label, attempt)
        )


def corrupt_store(store, fraction: float = 0.5, seed: int = 0) -> List[str]:
    """Deterministically corrupt a fraction of stored results.

    Alternates two corruption shapes so both integrity defenses get
    exercised: entries at even positions get a *silent* payload
    mutation (still valid JSON — only the content digest catches it),
    odd positions get a torn write (truncated file, invalid JSON).
    Returns the corrupted file names.
    """
    corrupted = []
    index = 0
    for path in store.entry_paths():
        roll = int.from_bytes(
            hashlib.sha256(
                ("%d|corrupt|%s" % (seed, path.name)).encode()
            ).digest()[:8],
            "big",
        ) / 2.0**64
        if roll >= fraction:
            continue
        if index % 2 == 0:
            payload = json.loads(path.read_text())
            result = payload.get("result", {})
            for field in ("cycles", "instructions", "ipc"):
                if field in result:
                    result[field] = result[field] + 1
                    break
            path.write_text(json.dumps(payload))
        else:
            data = path.read_bytes()
            path.write_bytes(data[: max(1, len(data) // 2)])
        corrupted.append(path.name)
        index += 1
    return corrupted


# -- CLI: the chaos differential -----------------------------------------


def main(argv=None) -> int:
    from repro.cache.replacement.registry import split_specs
    from repro.sim.common_cli import umbrella_pointer

    umbrella_pointer("chaos")
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.chaos",
        description="Differential chaos test: a fault-free serial suite "
        "run vs a parallel run with injected crashes, delays, and store "
        "corruption must produce bit-identical results.",
    )
    parser.add_argument("--policies", default="lru,lin(4)")
    parser.add_argument("--benchmarks", default="mcf,art")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--workers", type=int, default=2)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--crash-rate", type=float, default=0.2)
    parser.add_argument("--delay-rate", type=float, default=0.3)
    parser.add_argument("--delay-s", type=float, default=0.002)
    parser.add_argument(
        "--corrupt", type=float, default=0.5, metavar="FRACTION",
        help="fraction of store entries to corrupt between runs",
    )
    parser.add_argument(
        "--hard", action="store_true",
        help="crash via os._exit in workers (breaks pools) instead of "
        "raising",
    )
    parser.add_argument("--max-retries", type=int, default=6)
    args = parser.parse_args(argv)

    # Everything below runs against a throwaway store so the chaos run
    # can never poison (or be poisoned by) a developer's warm cache.
    from repro.sim import runner
    from repro.sim.options import RunOptions
    from repro.sim.store import default_store
    from repro.sim.suite import run_suite

    policies = split_specs(args.policies)
    benchmarks = split_specs(args.benchmarks)
    saved = os.environ.get("REPRO_CACHE_DIR")
    tmp = tempfile.mkdtemp(prefix="repro-chaos-")
    os.environ["REPRO_CACHE_DIR"] = tmp
    try:
        runner.clear_cache()
        print("[chaos] fault-free serial baseline...", file=sys.stderr)
        baseline = run_suite(
            policies=policies, benchmarks=benchmarks, scale=args.scale,
        )
        want = baseline.content_digest()

        store = default_store()
        corrupted = corrupt_store(store, fraction=args.corrupt,
                                  seed=args.seed)
        runner.clear_cache()
        chaos = ChaosConfig(
            seed=args.seed,
            crash_rate=args.crash_rate,
            delay_rate=args.delay_rate,
            delay_s=args.delay_s,
            hard=args.hard,
        )
        print(
            "[chaos] parallel run: workers=%d crash=%.2f delay=%.2f "
            "corrupted=%d/%d entries%s"
            % (args.workers, args.crash_rate, args.delay_rate,
               len(corrupted), len(store),
               " (hard)" if args.hard else ""),
            file=sys.stderr,
        )
        suite = run_suite(
            policies=policies, benchmarks=benchmarks, scale=args.scale,
            options=RunOptions(
                workers=args.workers,
                max_retries=args.max_retries,
                chaos=chaos,
            ),
        )
        got = suite.content_digest()
        resilience = (suite.meta or {}).get("resilience", {})
        print(
            "[chaos] retries=%s pool_rebuilds=%s circuit_open=%s "
            "quarantined=%s failures=%d"
            % (
                resilience.get("retries"),
                resilience.get("pool_rebuilds"),
                resilience.get("circuit_open"),
                resilience.get("store_quarantined"),
                len(suite.failures),
            ),
            file=sys.stderr,
        )
        if suite.failures:
            print("FAIL: chaos run left failed cells: %s"
                  % json.dumps(suite.failures), file=sys.stderr)
            return 1
        if got != want:
            print(
                "FAIL: digest mismatch — chaos run %s != fault-free %s"
                % (got, want),
                file=sys.stderr,
            )
            return 1
        print("OK: chaos run digest %s matches the fault-free baseline"
              % got)
        return 0
    finally:
        if saved is not None:
            os.environ["REPRO_CACHE_DIR"] = saved
        else:
            os.environ.pop("REPRO_CACHE_DIR", None)
        runner.clear_cache()
        import shutil

        shutil.rmtree(tmp, ignore_errors=True)


__all__ = [
    "ChaosConfig",
    "ChaosCrash",
    "corrupt_store",
    "inject",
    "main",
]


if __name__ == "__main__":
    sys.exit(main())
