"""Tests pinning down the compiled native replay kernel (PR 9).

The ``native`` rung is a hand-written C extension running the fused
loop body over the packed-trace columns.  Three contracts matter:

* **bit-exactness** — for every admitted policy family the native
  kernel produces :class:`SimResult` payloads *and* dueling-controller
  end states identical to the batched, fused, and generic kernels;
* **graceful degradation** — a host without the extension (no compiler
  at install time) resolves a ``native`` request to ``batched`` with
  identical results, never an error;
* **cache neutrality** — the kernel never enters memo or store keys, a
  result computed under one kernel satisfies a request under any
  other, and ``SimResult.meta["kernel_used"]`` (which records the
  producing rung) never leaks into digests or persisted payloads.
"""

from __future__ import annotations

import pytest

from repro.sim import RunOptions, native
from repro.sim.runner import cache_stats, clear_cache, run_policy
from repro.sim.simulator import Simulator
from repro.workloads import build_workload, experiment_config

from tests.test_fastpath import controller_fingerprint

#: Whether this host built the optional C extension.  The differential
#: battery still runs without it (a native request resolves one rung
#: down), so the full suite passes on compiler-less hosts.
HAVE_NATIVE = native.load_extension() is not None

#: The rung a ``native`` request actually resolves to on this host.
NATIVE_RUNG = "native" if HAVE_NATIVE else "batched"

POLICIES = (
    "lru", "lin(4)", "sbar", "cbs-global", "cbs-local", "ehc", "awrp",
)


class TestNativeDifferential:
    """Four-way kernel equivalence for every admitted policy family."""

    @pytest.mark.parametrize("policy", POLICIES)
    @pytest.mark.parametrize("workload", ("mcf", "art"))
    def test_native_matches_batched_fused_generic(self, workload, policy):
        trace = build_workload(workload, scale=0.05)
        runs = {}
        sims = {}
        for kernel in ("native", "batched", "fused", "generic"):
            sim = Simulator(experiment_config(), policy, kernel=kernel)
            runs[kernel] = sim.run(trace).to_dict()
            sims[kernel] = sim
            expected = NATIVE_RUNG if kernel == "native" else kernel
            assert sim.replay_kernel == expected, (policy, kernel)
        for kernel in ("batched", "fused", "generic"):
            assert runs["native"] == runs[kernel], (policy, kernel)
        if sims["native"].controller is not None:
            reference = controller_fingerprint(sims["native"].controller)
            for kernel in ("batched", "fused", "generic"):
                assert reference == controller_fingerprint(
                    sims[kernel].controller
                ), (policy, kernel)

    @pytest.mark.skipif(not HAVE_NATIVE, reason="extension not built")
    def test_native_really_runs(self):
        # Guard against the battery silently degenerating into
        # batched-vs-batched: on a host with the extension, auto and
        # native requests must actually resolve to the C kernel.
        for kernel in ("auto", "native"):
            sim = Simulator(experiment_config(), "sbar", kernel=kernel)
            sim.run(build_workload("mcf", scale=0.05))
            assert sim.replay_kernel == "native", kernel
            assert sim.native_replay, kernel
            assert not sim.batched_replay, kernel


class TestLadderDegradation:
    def test_missing_extension_falls_back_to_batched(self, monkeypatch):
        trace = build_workload("mcf", scale=0.05)
        reference = Simulator(
            experiment_config(), "sbar", kernel="native"
        ).run(trace)
        # Simulate a host whose optional build_ext found no compiler:
        # the import fails, load_extension caches None, and a native
        # request must resolve to batched with identical results.
        monkeypatch.setattr(native, "_extension", None)
        sim = Simulator(experiment_config(), "sbar", kernel="native")
        degraded = sim.run(trace)
        assert sim.replay_kernel == "batched"
        assert sim.batched_replay
        assert not sim.native_replay
        assert degraded.to_dict() == reference.to_dict()

    def test_unsupported_policy_falls_back(self):
        # dip is not an admitted native policy family; the request is
        # a ceiling, so the run degrades (batched admits it) rather
        # than erroring, and results match the generic loop.
        trace = build_workload("mcf", scale=0.05)
        sim = Simulator(experiment_config(), "dip", kernel="native")
        result = sim.run(trace)
        assert sim.replay_kernel != "native"
        generic = Simulator(
            experiment_config(), "dip", kernel="generic"
        ).run(trace)
        assert result.to_dict() == generic.to_dict()

    def test_list_trace_never_native(self):
        # The native kernel consumes packed columns; an Access list
        # drops below batched too, landing on fused.
        sim = Simulator(experiment_config(), "lru", kernel="native")
        sim.run(build_workload("mcf", scale=0.05).to_accesses())
        assert sim.replay_kernel == "fused"
        assert not sim.native_replay


class TestKernelUsedMeta:
    def test_meta_records_resolved_rung(self):
        trace = build_workload("art", scale=0.05)
        for kernel in ("native", "batched", "fused", "generic"):
            sim = Simulator(experiment_config(), "lru", kernel=kernel)
            result = sim.run(trace)
            expected = NATIVE_RUNG if kernel == "native" else kernel
            assert result.meta == {"kernel_used": expected}, kernel

    def test_meta_excluded_from_digest_and_dict(self):
        trace = build_workload("art", scale=0.05)
        native_run = Simulator(
            experiment_config(), "lru", kernel="native"
        ).run(trace)
        generic_run = Simulator(
            experiment_config(), "lru", kernel="generic"
        ).run(trace)
        assert native_run.meta != generic_run.meta or not HAVE_NATIVE
        assert "meta" not in native_run.to_dict()
        assert "kernel_used" not in native_run.to_dict()
        assert native_run.to_dict() == generic_run.to_dict()
        from repro.sim.store import result_digest

        assert (result_digest(native_run.to_dict())
                == result_digest(generic_run.to_dict()))


class TestKernelNeverKeysCaches:
    def test_memo_shared_across_kernels(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_STORE", "1")
        clear_cache()
        first = run_policy(
            "mcf", "lru", scale=0.05,
            options=RunOptions(kernel="generic"),
        )
        assert first.meta == {"kernel_used": "generic"}
        before = cache_stats()["memo_hits"]
        second = run_policy(
            "mcf", "lru", scale=0.05,
            options=RunOptions(kernel="native"),
        )
        # One memo entry serves both requests: the native request is a
        # hit on the generic run's result, object-identically.
        assert second is first
        assert cache_stats()["memo_hits"] == before + 1
        clear_cache()

    def test_store_shared_across_kernels(self, monkeypatch, tmp_path):
        monkeypatch.delenv("REPRO_NO_STORE", raising=False)
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        clear_cache()
        first = run_policy(
            "mcf", "lru", scale=0.05,
            options=RunOptions(kernel="generic"),
        )
        # Drop the in-process memo so the second request must go to
        # the persistent store; a kernel-keyed store would miss here.
        clear_cache()
        from repro.sim.store import default_store

        before = default_store().counters()["store_hits"]
        second = run_policy(
            "mcf", "lru", scale=0.05,
            options=RunOptions(kernel="native"),
        )
        assert default_store().counters()["store_hits"] == before + 1
        assert second.to_dict() == first.to_dict()
        # Provenance never persists: a store-loaded result carries no
        # meta, proving kernel_used stays out of the payload on disk.
        assert second.meta is None
        clear_cache()
