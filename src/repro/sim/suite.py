"""Suite runner: benchmark x policy matrices with machine-readable output.

Downstream users typically want the whole comparison grid, not single
runs.  :func:`run_suite` executes a (benchmarks x policies) matrix —
reusing the per-process result cache — and returns a
:class:`SuiteResult` that renders as text, JSON, or CSV, so results
can feed external plotting without re-simulation.

CLI::

    python -m repro.sim.suite --policies lru,lin(4),sbar --json out.json
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.sim.runner import ipc_improvement, run_policy
from repro.sim.stats import SimResult
from repro.workloads import BENCHMARKS

DEFAULT_POLICIES = ("lru", "lin(4)", "sbar")

#: Scalar fields exported per run.
EXPORT_FIELDS = (
    "ipc",
    "instructions",
    "cycles",
    "demand_misses",
    "mpki",
    "compulsory_misses",
    "long_stalls",
    "stall_cycles",
    "avg_mlp_cost",
    "writebacks",
)


@dataclass
class SuiteResult:
    """Results of one suite run, indexed [benchmark][policy]."""

    policies: List[str]
    benchmarks: List[str]
    results: Dict[str, Dict[str, SimResult]]
    scale: Optional[float]

    def result(self, benchmark: str, policy: str) -> SimResult:
        return self.results[benchmark][policy]

    def improvement(self, benchmark: str, policy: str) -> float:
        """IPC improvement over the first policy in the matrix."""
        baseline = self.results[benchmark][self.policies[0]]
        return ipc_improvement(self.results[benchmark][policy], baseline)

    # -- renderings -----------------------------------------------------

    def to_rows(self) -> List[Dict[str, object]]:
        """Flat list of dicts, one per (benchmark, policy) run."""
        rows: List[Dict[str, object]] = []
        for benchmark in self.benchmarks:
            for policy in self.policies:
                result = self.results[benchmark][policy]
                row: Dict[str, object] = {
                    "benchmark": benchmark,
                    "policy": policy,
                    "ipc_improvement_pct": round(
                        self.improvement(benchmark, policy), 3
                    ),
                }
                for field in EXPORT_FIELDS:
                    row[field] = getattr(result, field)
                row["cost_histogram_pct"] = [
                    round(p, 3)
                    for p in result.cost_distribution.percentages
                ]
                rows.append(row)
        return rows

    def to_json(self) -> str:
        return json.dumps(
            {"scale": self.scale, "runs": self.to_rows()}, indent=2
        )

    def to_csv(self) -> str:
        rows = self.to_rows()
        for row in rows:
            row["cost_histogram_pct"] = "|".join(
                str(v) for v in row["cost_histogram_pct"]
            )
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(rows[0].keys()))
        writer.writeheader()
        writer.writerows(rows)
        return buffer.getvalue()

    def to_text(self) -> str:
        lines = ["%-10s" % "benchmark" + "".join(
            "%14s" % policy for policy in self.policies
        )]
        for benchmark in self.benchmarks:
            cells = []
            for policy in self.policies:
                result = self.results[benchmark][policy]
                if policy == self.policies[0]:
                    cells.append("%14s" % ("IPC %.4f" % result.ipc))
                else:
                    cells.append(
                        "%14s" % ("%+.1f%%" % self.improvement(benchmark, policy))
                    )
            lines.append("%-10s" % benchmark + "".join(cells))
        return "\n".join(lines)


def run_suite(
    policies: Sequence[str] = DEFAULT_POLICIES,
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
) -> SuiteResult:
    """Run the matrix; the first policy is the baseline column."""
    if not policies:
        raise ValueError("need at least one policy")
    names = list(benchmarks) if benchmarks is not None else list(BENCHMARKS)
    results: Dict[str, Dict[str, SimResult]] = {}
    for benchmark in names:
        results[benchmark] = {}
        for policy in policies:
            results[benchmark][policy] = run_policy(
                benchmark, policy, scale=scale
            )
    return SuiteResult(
        policies=list(policies),
        benchmarks=names,
        results=results,
        scale=scale,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.suite",
        description="Run a benchmark x policy matrix.",
    )
    parser.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES),
        help="comma-separated policy specs (first = baseline)",
    )
    parser.add_argument("--benchmarks", default=None)
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument("--json", metavar="FILE", default=None)
    parser.add_argument("--csv", metavar="FILE", default=None)
    args = parser.parse_args(argv)

    suite = run_suite(
        policies=args.policies.split(","),
        benchmarks=args.benchmarks.split(",") if args.benchmarks else None,
        scale=args.scale,
    )
    print(suite.to_text())
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(suite.to_json())
        print("wrote %s" % args.json)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(suite.to_csv())
        print("wrote %s" % args.csv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
