"""Tests for trace records, synthetic primitives, and the Figure 1 loop."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.figure1 import (
    FIGURE1_BLOCKS,
    FIGURE1_PATTERN,
    block_names,
    figure1_trace,
)
from repro.trace.record import (
    IFETCH,
    LOAD,
    STORE,
    Access,
    kind_name,
    memory_footprint_blocks,
    total_instructions,
    validate_access_fields,
)
from repro.trace.packed import PackedTrace, pack_trace
from repro.trace.synthetic import (
    BURST_GAP,
    ISOLATING_GAP,
    TraceBuilder,
    interleave,
    pointer_chase,
    random_working_set,
    repeat_trace,
    strided_stream,
)


class TestAccess:
    def test_fields(self):
        access = Access(0x1000, STORE, gap=7)
        assert access.address == 0x1000
        assert access.kind == STORE
        assert access.gap == 7
        assert not access.wrong_path

    def test_rejects_negative_gap(self):
        # Validation lives at the trace entry points now, not in the
        # Access constructor (bulk synthesis pays it once per record
        # otherwise).
        with pytest.raises(ValueError):
            TraceBuilder().access(0, LOAD, gap=-1)
        with pytest.raises(ValueError):
            validate_access_fields(0, LOAD, -1)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            TraceBuilder().access(0, kind=99)
        with pytest.raises(ValueError):
            validate_access_fields(0, 99, 0)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            TraceBuilder().access(-1)
        with pytest.raises(ValueError):
            validate_access_fields(-64, LOAD, 0)

    def test_equality(self):
        assert Access(64, LOAD, 3) == Access(64, LOAD, 3)
        assert Access(64, LOAD, 3) != Access(64, STORE, 3)

    def test_kind_names(self):
        assert kind_name(LOAD) == "load"
        assert kind_name(STORE) == "store"
        assert kind_name(IFETCH) == "ifetch"

    def test_repr_mentions_wrong_path(self):
        assert "wrong-path" in repr(Access(0, LOAD, 0, wrong_path=True))


class TestTraceHelpers:
    def test_total_instructions_counts_gaps_and_accesses(self):
        trace = [Access(0, LOAD, 10), Access(64, LOAD, 5)]
        assert total_instructions(trace) == 17

    def test_total_instructions_skips_wrong_path(self):
        trace = [Access(0, LOAD, 10), Access(64, LOAD, 5, wrong_path=True)]
        assert total_instructions(trace) == 11

    def test_memory_footprint(self):
        trace = [Access(0), Access(32), Access(64), Access(128)]
        assert memory_footprint_blocks(trace) == 3  # 0,32 share a block


class TestTraceBuilder:
    def test_access_scales_block_to_address(self):
        trace = TraceBuilder().access(5).build()
        assert trace[0].address == 5 * 64

    def test_burst_gaps(self):
        trace = TraceBuilder().burst([1, 2, 3], lead_gap=100).build()
        assert [a.gap for a in trace] == [100, BURST_GAP, BURST_GAP]

    def test_isolated_uses_isolating_gap(self):
        trace = TraceBuilder().isolated(9).build()
        assert trace[0].gap == ISOLATING_GAP
        assert ISOLATING_GAP > 128  # larger than the window

    def test_quiet_folds_into_next_access(self):
        trace = TraceBuilder().quiet(500).access(1, gap=4).build()
        assert trace[0].gap == 504

    def test_quiet_rejects_negative(self):
        with pytest.raises(ValueError):
            TraceBuilder().quiet(-1)

    def test_build_resets(self):
        builder = TraceBuilder()
        builder.access(1)
        assert len(builder.build()) == 1
        assert builder.build() == []


class TestGenerators:
    def test_strided_stream_addresses(self):
        trace = strided_stream(10, 4, burst=2)
        blocks = [a.address // 64 for a in trace]
        assert blocks == [10, 11, 12, 13]

    def test_strided_stream_burst_boundaries(self):
        trace = strided_stream(0, 6, burst=3, lead_gap=200, intra_gap=1)
        assert [a.gap for a in trace] == [200, 1, 1, 200, 1, 1]

    def test_pointer_chase_is_isolated(self):
        trace = pointer_chase([1, 2, 3])
        assert all(a.gap == ISOLATING_GAP for a in trace)

    def test_random_working_set_stays_in_pool(self):
        rng = random.Random(1)
        pool = [3, 5, 7]
        trace = random_working_set(rng, pool, 50)
        assert {a.address // 64 for a in trace} <= set(pool)

    def test_random_working_set_store_fraction(self):
        rng = random.Random(1)
        trace = random_working_set(rng, [1], 500, store_fraction=0.5)
        stores = sum(1 for a in trace if a.kind == STORE)
        assert 150 < stores < 350

    def test_interleave_preserves_order(self):
        rng = random.Random(2)
        left = [Access(i * 64) for i in range(10)]
        right = [Access((100 + i) * 64) for i in range(10)]
        merged = interleave(rng, left, right)
        assert len(merged) == 20
        left_order = [a for a in merged if a.address < 100 * 64]
        assert left_order == left

    def test_repeat_trace(self):
        trace = [Access(0), Access(64)]
        assert len(repeat_trace(trace, 3)) == 6
        assert repeat_trace(trace, 0) == []


def _packable_accesses():
    """Arbitrary valid records, including wrong-path bits and big gaps."""
    return st.lists(
        st.builds(
            Access,
            st.integers(min_value=0, max_value=2**62),
            st.sampled_from([LOAD, STORE, IFETCH]),
            st.integers(min_value=0, max_value=10**9),
            st.booleans(),
        ),
        max_size=150,
    )


class TestPackedTrace:
    @settings(max_examples=120, deadline=None)
    @given(accesses=_packable_accesses())
    def test_roundtrip_is_exact(self, accesses):
        packed = PackedTrace.from_accesses(accesses)
        assert len(packed) == len(accesses)
        # Exact record-for-record round trip: addresses, kinds, gaps,
        # AND wrong-path bits (Access.__eq__ compares all four).
        assert packed.to_accesses() == accesses
        assert packed.wrong_path_count == sum(
            1 for a in accesses if a.wrong_path
        )
        for index, access in enumerate(accesses):
            assert packed[index] == access
            assert packed.wrong_path(index) == access.wrong_path

    @settings(max_examples=60, deadline=None)
    @given(accesses=_packable_accesses())
    def test_iter_tuples_matches_records(self, accesses):
        packed = PackedTrace.from_accesses(accesses)
        tuples = list(packed.iter_tuples())
        assert len(tuples) == len(accesses)
        for (address, kind, gap, wrong), access in zip(tuples, accesses):
            assert (address, kind, gap, bool(wrong)) == (
                access.address, access.kind, access.gap, access.wrong_path
            )

    @settings(max_examples=60, deadline=None)
    @given(accesses=_packable_accesses())
    def test_digest_depends_only_on_content(self, accesses):
        first = PackedTrace.from_accesses(accesses)
        second = PackedTrace.from_accesses(list(accesses))
        assert first == second
        assert first.content_digest() == second.content_digest()
        assert first.total_instructions() == sum(
            a.gap + 1 for a in accesses if not a.wrong_path
        )

    def test_digest_sees_wrong_path_bits(self):
        plain = PackedTrace.from_accesses([Access(64, LOAD, 3)])
        flagged = PackedTrace.from_accesses(
            [Access(64, LOAD, 3, wrong_path=True)]
        )
        assert plain != flagged
        assert plain.content_digest() != flagged.content_digest()

    def test_negative_indexing_and_bounds(self):
        packed = PackedTrace.from_accesses([Access(0), Access(64)])
        assert packed[-1] == Access(64)
        with pytest.raises(IndexError):
            packed[2]
        with pytest.raises(TypeError):
            packed["0"]

    def test_bulk_validation_rejects_bad_columns(self):
        with pytest.raises(ValueError):
            PackedTrace.from_accesses([Access(-64)])
        with pytest.raises(ValueError):
            PackedTrace.from_accesses([Access(0, LOAD, -1)])
        with pytest.raises(ValueError):
            PackedTrace.from_accesses([Access(0, 17)])

    def test_pack_trace_is_idempotent(self):
        packed = pack_trace([Access(0), Access(64)])
        assert pack_trace(packed) is packed

    def test_empty_trace(self):
        packed = PackedTrace.from_accesses([])
        assert len(packed) == 0
        assert packed.to_accesses() == []
        assert packed.total_instructions() == 0
        packed.validate()  # empty columns are trivially valid


class TestFigure1:
    def test_pattern_matches_paper(self):
        assert FIGURE1_PATTERN == (
            "P1", "P2", "P3", "P4", "P4", "P3", "P2", "P1", "S1", "S2", "S3",
        )

    def test_trace_length(self):
        assert len(figure1_trace(3)) == 33

    def test_seven_distinct_blocks(self):
        assert memory_footprint_blocks(figure1_trace(2)) == 7

    def test_segment_boundaries_are_isolating(self):
        trace = figure1_trace(1)
        gaps = [a.gap for a in trace]
        # A, B, C, D, E points carry the big gap.
        big = [i for i, gap in enumerate(gaps) if gap == ISOLATING_GAP]
        assert big == [0, 4, 8, 9, 10]

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            figure1_trace(0)

    def test_block_names_roundtrip(self):
        names = block_names()
        assert names[FIGURE1_BLOCKS["S2"] * 64] == "S2"
