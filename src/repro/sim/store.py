"""Persistent on-disk result store: simulate once, reuse everywhere.

Every figure in the paper reads from the same (benchmark x policy)
matrix, but the old memo in :mod:`repro.sim.runner` was a per-process
dict — a new process (or a worker pool) re-simulated everything.  The
store upgrades that memo to content-addressed JSON files, one per
result, so repeat runs are free across processes and across sessions:

* **Location** — ``$REPRO_CACHE_DIR`` if set, else ``~/.cache/repro``.
  Set ``REPRO_NO_STORE=1`` to disable persistence entirely (the
  in-process memo still works).
* **Keying** — a SHA-256 over the canonical workload spec (plus its
  content fingerprint: imported trace files hash their bytes),
  canonical policy spec, trace scale, full machine config, phase
  interval, the repro package's source hash, and (for user-registered
  policies) the factory's source hash.  Any code, configuration, or
  workload-content change therefore misses cleanly instead of
  returning stale results.
* **Format** — one JSON file per key holding the key fields (for
  debugging) and ``SimResult.to_dict()``.  Floats round-trip
  bit-identically through Python's json, so a stored result is
  indistinguishable from a fresh simulation.

Writes are atomic (temp file + ``os.replace``), so concurrent workers
racing on the same key at worst both compute it; neither ever reads a
torn file.

**Shard layout** — entries live under 256 digest-prefix shard
directories (``<root>/<key[:2]>/<key>.json``), so many concurrent
writers (the distributed job service fans a grid across worker hosts)
never contend on one directory and ``--stats`` can report per-shard
counts.  Pre-shard flat layouts migrate lazily: a read that misses the
shard path checks the flat path and re-homes the entry in place — no
flag day, and a store written by an old checkout keeps serving.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import asdict
from pathlib import Path
from typing import Dict, List, Optional

from repro import obs
from repro.config import MachineConfig
from repro.sim.stats import SimResult

# Version 4: keys identify workloads by canonical registry spec plus a
# workload content fingerprint (imported trace files hash their bytes),
# so composed/imported workloads key exactly like surrogates and a
# changed trace file invalidates instead of aliasing.
# (Version 3 added payload content digests with read-side quarantine;
# version 2 added telemetry snapshots and a metrics flag in the key.)
_FORMAT_VERSION = 4

_code_version: Optional[str] = None


def code_version() -> str:
    """Hash of every ``repro`` source file, cached per process.

    Keys include this hash so editing the simulator invalidates every
    stored result; the walk costs ~1 ms and runs once per process.
    """
    global _code_version
    if _code_version is None:
        import repro

        digest = hashlib.sha256()
        package_root = Path(repro.__file__).resolve().parent
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(path.read_bytes())
        _code_version = digest.hexdigest()[:16]
    return _code_version


def store_key(
    benchmark,
    policy_spec: str,
    scale: float,
    config: MachineConfig,
    phase_interval: Optional[int] = None,
) -> str:
    """Content hash identifying one simulation, stable across processes.

    ``benchmark`` is any workload spec; the key holds its *canonical*
    spelling plus the workload's content fingerprint, so spellings of
    one spec share a key, distinct specs never alias, and an imported
    trace file silently replaced on disk misses cleanly.
    """
    from repro.cache.replacement.registry import policy_fingerprint
    from repro.workloads import (
        canonical_workload_spec,
        workload_fingerprint,
    )

    fields = {
        "version": _FORMAT_VERSION,
        "workload": canonical_workload_spec(benchmark),
        "policy_spec": policy_spec.strip().lower(),
        "scale": repr(float(scale)),
        "config": asdict(config),
        "phase_interval": phase_interval,
        "metrics": obs.metrics_enabled(),
        "code": code_version(),
        "policy_code": policy_fingerprint(policy_spec),
        "workload_code": workload_fingerprint(benchmark),
    }
    blob = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def shard_of(key: str) -> str:
    """Digest-prefix shard directory name for ``key`` (2 hex chars)."""
    return key[:2].lower()


def result_digest(result_dict: Dict) -> str:
    """Content digest over a serialized SimResult (canonical JSON)."""
    blob = json.dumps(result_dict, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


class _IntegrityError(ValueError):
    """A stored payload failed its content-digest check."""


class ResultStore:
    """JSON-per-key result store rooted at one directory.

    Tracks ``hits``/``misses``/``quarantined`` counters for
    observability; the suite runner surfaces them in
    ``SuiteResult.to_json()``.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get("REPRO_CACHE_DIR") or (
                Path.home() / ".cache" / "repro"
            )
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.quarantined = 0

    def _path(self, key: str) -> Path:
        return self.root / shard_of(key) / ("%s.json" % key)

    def _flat_path(self, key: str) -> Path:
        """Where a pre-shard checkout would have written ``key``."""
        return self.root / ("%s.json" % key)

    def _locate(self, key: str) -> Path:
        """The on-disk path for ``key``, lazily migrating flat entries.

        Reads prefer the sharded path; when only the legacy flat path
        exists the entry is re-homed into its shard directory first
        (atomic ``os.replace``), so old stores upgrade one read at a
        time with no flag day.  Losing a migration race to another
        process is fine — the entry is then already at the sharded
        path.
        """
        path = self._path(key)
        if path.exists():
            return path
        flat = self._flat_path(key)
        if flat.exists():
            try:
                path.parent.mkdir(parents=True, exist_ok=True)
                os.replace(flat, path)
            except OSError:
                if flat.exists():
                    return flat
        return path

    def entry_paths(self) -> List[Path]:
        """Every stored entry, sharded and legacy-flat, sorted by key."""
        if not self.root.is_dir():
            return []
        paths = list(self.root.glob("*.json"))
        for child in sorted(self.root.iterdir()):
            if child.is_dir() and child.name not in ("quarantine", "runs"):
                paths.extend(child.glob("*.json"))
        return sorted(paths, key=lambda p: p.name)

    def shard_stats(self) -> Dict[str, object]:
        """Entry counts by shard, plus flat/quarantine remainders."""
        shards: Dict[str, int] = {}
        flat = 0
        for path in self.entry_paths():
            if path.parent == self.root:
                flat += 1
            else:
                name = path.parent.name
                shards[name] = shards.get(name, 0) + 1
        quarantined = (
            sum(1 for _ in self.quarantine_dir.glob("*.json"))
            if self.quarantine_dir.is_dir() else 0
        )
        return {
            "entries": flat + sum(shards.values()),
            "flat": flat,
            "shards": shards,
            "quarantined": quarantined,
        }

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def _quarantine(self, path: Path) -> None:
        """Move a corrupt entry aside (never serve it, never crash)."""
        self.quarantined += 1
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError:
            try:
                path.unlink()
            except OSError:
                pass

    def load(self, key: str) -> Optional[SimResult]:
        """Return the stored result for ``key``, or None on a miss.

        Every read verifies the payload's content digest, so torn
        writes, manual edits, and bit-rot all count as misses: the
        offending file is moved to ``quarantine/`` (for post-mortems)
        instead of being served or crashing the run.
        """
        path = self._locate(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result_dict = payload["result"]
            if payload["digest"] != result_digest(result_dict):
                raise _IntegrityError("digest mismatch for %s" % key)
            result = SimResult.from_dict(result_dict)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result

    def load_payload(self, key: str) -> Optional[Dict]:
        """Return the raw stored dict for ``key``, or None on a miss.

        The generic sibling of :meth:`load` for entries that are not
        ``SimResult`` payloads (e.g. oracle reports): same digest
        verification and quarantine behavior, no deserialization —
        callers own the payload's shape.
        """
        path = self._locate(key)
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            result_dict = payload["result"]
            if payload["digest"] != result_digest(result_dict):
                raise _IntegrityError("digest mismatch for %s" % key)
            if not isinstance(result_dict, dict):
                raise _IntegrityError("non-dict payload for %s" % key)
        except FileNotFoundError:
            self.misses += 1
            return None
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self.misses += 1
            return None
        self.hits += 1
        return result_dict

    def save_payload(self, key: str, payload_dict: Dict, **key_fields) -> None:
        """Atomically persist an arbitrary JSON-safe dict under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        self._write(key, payload_dict, key_fields)

    def save(self, key: str, result: SimResult, **key_fields) -> None:
        """Atomically persist ``result`` under ``key``."""
        self.root.mkdir(parents=True, exist_ok=True)
        self._write(key, result.to_dict(), key_fields)

    def _write(self, key: str, result_dict: Dict, key_fields: Dict) -> None:
        payload = {
            "key_fields": key_fields,
            "code": code_version(),
            "digest": result_digest(result_dict),
            "result": result_dict,
        }
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                json.dump(payload, handle)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    def contains(self, key: str) -> bool:
        return self._path(key).exists() or self._flat_path(key).exists()

    def __len__(self) -> int:
        return len(self.entry_paths())

    def clear(self) -> int:
        """Delete every stored result; returns the number removed."""
        removed = 0
        for path in self.entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed

    def gc(self, dry_run: bool = False) -> Dict[str, int]:
        """Prune entries written by other code versions, plus junk.

        Store keys include the code version, so entries written by an
        older checkout can never be *served* — but they linger on disk
        forever.  ``gc`` removes them (and anything unparseable, and
        everything previously quarantined); entries from the current
        code version are kept.  ``dry_run`` only counts.
        """
        current = code_version()
        removed = kept = 0
        for path in self.entry_paths():
            try:
                payload = json.loads(path.read_text(encoding="utf-8"))
                stale = payload.get("code") != current
            except (OSError, ValueError):
                stale = True
            if stale:
                removed += 1
                if not dry_run:
                    try:
                        path.unlink()
                    except OSError:
                        pass
            else:
                kept += 1
                if not dry_run and path.parent == self.root:
                    # Eagerly re-home surviving flat entries: gc is the
                    # natural "tidy the store" moment, so a full pass
                    # finishes what lazy read-side migration started.
                    self._locate(path.stem)
        purged = 0
        if self.quarantine_dir.is_dir():
            for path in sorted(self.quarantine_dir.glob("*.json")):
                purged += 1
                if not dry_run:
                    try:
                        path.unlink()
                    except OSError:
                        pass
        return {"removed": removed, "kept": kept,
                "quarantine_purged": purged}

    def counters(self) -> Dict[str, int]:
        return {
            "store_hits": self.hits,
            "store_misses": self.misses,
            "store_quarantined": self.quarantined,
        }


_stores: Dict[str, ResultStore] = {}


def default_store() -> Optional[ResultStore]:
    """The process-wide store for the current environment, or None.

    Re-reads ``REPRO_CACHE_DIR``/``REPRO_NO_STORE`` on every call so
    tests (and CLIs) can redirect or disable persistence by mutating
    the environment; instances are cached per root so hit/miss
    counters accumulate.
    """
    if os.environ.get("REPRO_NO_STORE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR") or str(
        Path.home() / ".cache" / "repro"
    )
    store = _stores.get(root)
    if store is None:
        store = _stores[root] = ResultStore(root)
    return store


def main(argv=None) -> int:
    """``python -m repro.sim.store``: inspect and garbage-collect.

    ``--stats`` (default) prints the store location, entry counts
    (per shard, plus any pre-shard flat remainder), and the quarantine
    count; ``--gc`` prunes entries from old code versions and re-homes
    surviving flat entries into their shards (``--dry-run`` to
    preview); ``--clear`` deletes everything.
    """
    import argparse
    import sys

    from repro.sim.common_cli import umbrella_pointer

    umbrella_pointer("store")
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.store",
        description="Inspect and maintain the persistent result store.",
    )
    action = parser.add_mutually_exclusive_group()
    action.add_argument(
        "--stats", action="store_true",
        help="print store location and entry counts (default)",
    )
    action.add_argument(
        "--gc", action="store_true",
        help="prune entries written by other code versions (and purge "
        "the quarantine directory)",
    )
    action.add_argument(
        "--clear", action="store_true",
        help="delete every stored result",
    )
    parser.add_argument(
        "--dry-run", action="store_true",
        help="with --gc: report what would be removed without removing",
    )
    args = parser.parse_args(argv)

    store = default_store()
    if store is None:
        print("persistence is disabled (REPRO_NO_STORE is set)",
              file=sys.stderr)
        return 1
    if args.clear:
        removed = store.clear()
        print("cleared %d entries from %s" % (removed, store.root))
        return 0
    if args.gc:
        stats = store.gc(dry_run=args.dry_run)
        print(
            "%s%s: removed %d stale, kept %d current, purged %d "
            "quarantined (code %s)"
            % ("[dry run] " if args.dry_run else "", store.root,
               stats["removed"], stats["kept"],
               stats["quarantine_purged"], code_version()),
        )
        return 0
    stats = store.shard_stats()
    print("store: %s" % store.root)
    print("  entries: %d  quarantined: %d  code: %s"
          % (stats["entries"], stats["quarantined"], code_version()))
    shards = stats["shards"]
    if shards:
        print("  shards: %d populated" % len(shards))
        line = "  ".join(
            "%s:%d" % (name, shards[name]) for name in sorted(shards)
        )
        print("    %s" % line)
    if stats["flat"]:
        print(
            "  flat (pre-shard) entries: %d — migrated lazily on read, "
            "or eagerly by --gc" % stats["flat"]
        )
    return 0


__all__ = [
    "ResultStore",
    "default_store",
    "store_key",
    "code_version",
    "result_digest",
    "shard_of",
]


if __name__ == "__main__":
    import sys

    sys.exit(main())
