"""Regeneration benchmark for table1 of the paper."""

from repro.experiments import table1


def test_table1(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(table1), rounds=1, iterations=1
    )
    assert report.render()
