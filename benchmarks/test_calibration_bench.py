"""Regeneration benchmark for the calibration scorecard."""

from repro.experiments import calibration


def test_calibration(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(calibration), rounds=1, iterations=1
    )
    assert "sign" in report.render()
