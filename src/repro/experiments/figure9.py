"""Figure 9: IPC improvement of LIN and SBAR over the LRU baseline.

SBAR's contract: keep LIN's wins, eliminate LIN's losses (bzip2,
parser, mgrid), and on phase-alternating benchmarks (ammp, galgel)
beat both fixed policies by selecting per phase.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import Report, fmt_pct, resolve_benchmarks
from repro.sim.runner import ipc_improvement, run_policy
from repro.workloads import PAPER_FIG5, PAPER_FIG9_SBAR

PREWARM_POLICIES = ("lru", "lin(4)", "sbar")


def run(
    scale: Optional[float] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Report:
    report = Report(
        "figure9", "Figure 9: IPC improvement of LIN and SBAR over LRU"
    )
    rows = []
    for name in resolve_benchmarks(benchmarks):
        baseline = run_policy(name, "lru", scale=scale)
        lin = run_policy(name, "lin(4)", scale=scale)
        sbar = run_policy(name, "sbar", scale=scale)
        rows.append(
            (
                name,
                fmt_pct(ipc_improvement(lin, baseline)),
                fmt_pct(PAPER_FIG5[name][1]),
                fmt_pct(ipc_improvement(sbar, baseline)),
                fmt_pct(PAPER_FIG9_SBAR[name]),
            )
        )
    report.add_table(
        ["benchmark", "LIN", "paper", "SBAR", "paper"], rows
    )
    report.add_note(
        "SBAR eliminates the LIN regressions (bzip2/parser/mgrid) and\n"
        "outperforms both fixed policies on the phase-changing\n"
        "benchmarks (ammp, galgel), as in the paper."
    )
    return report
