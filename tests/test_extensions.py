"""Tests for the extension substrates: prefetcher, DIP family,
row-buffer DRAM, and their experiments."""

import pytest
from dataclasses import replace

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.dip import BIPPolicy, DIPController, LIPPolicy
from repro.config import CacheGeometry, MemoryConfig
from repro.cpu.prefetch import StridePrefetcher
from repro.memory.dram import RowBufferBankArray
from repro.sim.simulator import Simulator, build_l2_policy
from repro.trace.synthetic import TraceBuilder
from repro.workloads import build_trace, experiment_config


class TestStridePrefetcher:
    def test_learns_unit_stride(self):
        prefetcher = StridePrefetcher(degree=2)
        predictions = []
        for block in range(10):
            predictions = prefetcher.observe(block)
        assert predictions == [10, 11]

    def test_learns_negative_stride(self):
        prefetcher = StridePrefetcher(degree=1)
        predictions = []
        for block in range(100, 80, -2):
            predictions = prefetcher.observe(block)
        assert predictions == [80]

    def test_needs_confidence(self):
        prefetcher = StridePrefetcher(degree=1, confidence_threshold=2)
        assert prefetcher.observe(0) == []
        assert prefetcher.observe(1) == []   # stride learned, conf 0->?
        # After a couple of confirmations the prediction fires.
        fired = False
        for block in range(2, 8):
            if prefetcher.observe(block):
                fired = True
                break
        assert fired

    def test_random_stream_stays_quiet(self):
        import random
        rng = random.Random(3)
        prefetcher = StridePrefetcher(degree=2)
        fired = 0
        for _ in range(300):
            fired += len(prefetcher.observe(rng.randrange(10_000_000)))
        assert fired < 30  # <5% of a confident stream's rate

    def test_table_capacity_fifo(self):
        prefetcher = StridePrefetcher(n_entries=2, region_blocks=10)
        for region in range(5):
            prefetcher.observe(region * 10)
        assert prefetcher.table_occupancy == 2

    def test_never_predicts_negative_blocks(self):
        prefetcher = StridePrefetcher(degree=4)
        for block in range(40, 0, -10):
            predictions = prefetcher.observe(block)
        assert all(candidate >= 0 for candidate in predictions)

    def test_validation(self):
        with pytest.raises(ValueError):
            StridePrefetcher(n_entries=0)
        with pytest.raises(ValueError):
            StridePrefetcher(degree=0)


class TestPrefetchIntegration:
    def test_prefetching_reduces_stream_misses(self):
        plain = Simulator(experiment_config(), "lru")
        plain_result = plain.run(build_trace("art", scale=0.15))
        prefetched = Simulator(
            experiment_config(), "lru", prefetcher=StridePrefetcher(degree=2)
        )
        prefetched_result = prefetched.run(build_trace("art", scale=0.15))
        assert prefetched.prefetches_issued > 1000
        assert (
            prefetched_result.demand_misses < plain_result.demand_misses * 0.8
        )
        assert prefetched_result.ipc > plain_result.ipc

    def test_prefetches_are_not_demand_misses(self):
        simulator = Simulator(
            experiment_config(), "lru", prefetcher=StridePrefetcher()
        )
        result = simulator.run(build_trace("art", scale=0.1))
        # Demand misses + prefetch fills = total L2 install traffic.
        assert result.l2_misses >= result.demand_misses

    def test_duplicate_prefetches_suppressed(self):
        simulator = Simulator(experiment_config(), "lru")
        simulator.l2.access(42)  # resident
        simulator._prefetch_block(42, 10.0)
        assert simulator.prefetch_hits_suppressed == 1
        assert simulator.prefetches_issued == 0
        simulator._prefetch_block(43, 10.0)
        assert simulator.prefetches_issued == 1
        # In flight now: a repeat prefetch is suppressed too.
        simulator._prefetch_block(43, 11.0)
        assert simulator.prefetch_hits_suppressed == 2


class TestDIPFamily:
    def geometry(self):
        return CacheGeometry(4 * 2 * 64, 64, 2, 1)

    def test_lip_inserts_at_lru(self):
        cache = SetAssociativeCache(self.geometry(), LIPPolicy())
        cache.access(0)
        cache.access(4)
        # Block 4 went to the LRU slot, so it is the next victim.
        result = cache.access(8)
        assert result.victim_block == 4

    def test_lip_promotes_on_reuse(self):
        cache = SetAssociativeCache(self.geometry(), LIPPolicy())
        cache.access(0)
        cache.access(4)
        cache.access(4)  # promoted to MRU
        result = cache.access(8)
        assert result.victim_block == 0

    def test_bip_occasionally_inserts_mru(self):
        policy = BIPPolicy(epsilon=0.5)  # every 2nd fill at MRU
        cache = SetAssociativeCache(self.geometry(), policy)
        cache.access(0)   # fill 1 -> LRU slot
        cache.access(4)   # fill 2 -> MRU
        result = cache.access(8)  # fill 3 -> LRU; victim chosen first
        assert result.victim_block == 0

    def test_bip_epsilon_validation(self):
        with pytest.raises(ValueError):
            BIPPolicy(epsilon=0.0)

    def test_lip_beats_lru_on_thrash(self):
        # Cyclic sweep of 3 blocks through a 2-way set: LRU gets 0%
        # hits, LIP retains a resident subset.
        geometry = CacheGeometry(2 * 64, 64, 2, 1)
        from repro.cache.replacement import LRUPolicy

        lru = SetAssociativeCache(geometry, LRUPolicy())
        lip = SetAssociativeCache(geometry, LIPPolicy())
        for _ in range(50):
            for block in range(3):
                lru.access(block)
                lip.access(block)
        assert lip.hits > lru.hits

    def test_dip_controller_interface(self):
        controller = DIPController(64, 4, n_leaders=8)
        lru_leader = next(iter(controller.lru_leaders))
        bip_leader = next(iter(controller.bip_leaders))
        assert controller.policy_for_set(lru_leader) is controller.lru
        assert controller.policy_for_set(bip_leader) is controller.bip
        assert not (controller.lru_leaders & controller.bip_leaders)

    def test_dip_duel_moves_psel(self):
        controller = DIPController(64, 4, n_leaders=8)
        from repro.cache.block import BlockState
        from repro.cache.cache import AccessResult

        lru_leader = next(iter(controller.lru_leaders))
        miss = AccessResult(False, BlockState(0), lru_leader)
        before = controller.psel.value
        controller.observe_access(lru_leader, 0, miss)
        assert controller.psel.value == before + 1
        hit = AccessResult(True, BlockState(0), lru_leader)
        controller.observe_access(lru_leader, 0, hit)
        assert controller.psel.value == before + 1  # hits don't count

    def test_dip_follower_obeys_psel(self):
        controller = DIPController(64, 4, n_leaders=8)
        follower = next(
            s for s in range(64)
            if s not in controller.lru_leaders
            and s not in controller.bip_leaders
        )
        controller.psel.decrement(2048)
        assert controller.policy_for_set(follower) is controller.lru
        controller.psel.increment(4096)
        assert controller.policy_for_set(follower) is controller.bip

    def test_policy_specs(self, small_machine):
        for spec, expect in (
            ("lip", LIPPolicy),
            ("bip", BIPPolicy),
        ):
            fixed, controller = build_l2_policy(spec, small_machine)
            assert isinstance(fixed, expect)
        fixed, controller = build_l2_policy("dip", small_machine)
        assert isinstance(controller, DIPController)

    def test_dip_end_to_end_beats_lru_on_thrash(self):
        lru = Simulator(experiment_config(), "lru").run(
            build_trace("art", scale=0.2)
        )
        dip = Simulator(experiment_config(), "dip").run(
            build_trace("art", scale=0.2)
        )
        assert dip.ipc > lru.ipc


class TestRowBufferDram:
    def test_row_hit_is_faster(self):
        banks = RowBufferBankArray(4, 400, row_hit_latency=140, row_blocks=8)
        first = banks.access(0, 0.0)
        second = banks.access(4, first)  # same bank 0, same row
        assert first == 400.0
        assert second - first == 140.0
        assert banks.row_hits == 1

    def test_row_conflict_pays_full_latency(self):
        banks = RowBufferBankArray(4, 400, row_hit_latency=140, row_blocks=8)
        first = banks.access(0, 0.0)
        far = banks.access(4 * 8 * 4, first)  # bank 0, different row
        assert far - first == 400.0
        assert banks.row_hits == 0

    def test_row_mapping(self):
        banks = RowBufferBankArray(4, 400, row_blocks=8)
        assert banks.row_of(0) == 0
        assert banks.row_of(4 * 7) == 0   # 7th block of bank 0, row 0
        assert banks.row_of(4 * 8) == 1   # 8th block of bank 0, row 1

    def test_reset_closes_rows(self):
        banks = RowBufferBankArray(2, 400)
        banks.access(0, 0.0)
        banks.reset()
        banks.access(0, 0.0)
        assert banks.row_hits == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            RowBufferBankArray(4, 400, row_hit_latency=500)
        with pytest.raises(ValueError):
            RowBufferBankArray(4, 400, row_blocks=0)

    def test_controller_uses_row_buffer_when_configured(self):
        from repro.memory.controller import MemoryController

        controller = MemoryController(MemoryConfig(row_buffer=True))
        assert isinstance(controller.banks, RowBufferBankArray)

    def test_streaming_benefits_end_to_end(self):
        flat_config = experiment_config()
        row_config = replace(
            flat_config, memory=MemoryConfig(row_buffer=True)
        )
        builder = TraceBuilder()
        for start in range(0, 8000, 8):
            builder.burst(list(range(start, start + 8)), lead_gap=200)
        flat = Simulator(flat_config, "lru").run(builder.build())
        builder = TraceBuilder()
        for start in range(0, 8000, 8):
            builder.burst(list(range(start, start + 8)), lead_gap=200)
        rows = Simulator(row_config, "lru").run(builder.build())
        assert rows.ipc > flat.ipc
        assert rows.avg_mlp_cost < flat.avg_mlp_cost


class TestExtensionExperiments:
    def test_dip_experiment(self):
        from repro.experiments import dip_comparison
        from repro.sim.runner import clear_cache

        clear_cache()
        text = dip_comparison.run(scale=0.05, benchmarks=["art"]).render()
        assert "lip" in text and "dip" in text

    def test_prefetch_experiment(self):
        from repro.experiments import prefetch_interaction

        text = prefetch_interaction.run(
            scale=0.05, benchmarks=["art"]
        ).render()
        assert "pf coverage" in text

    def test_sensitivity_experiment(self):
        from repro.experiments import sensitivity

        text = sensitivity.run(scale=0.05, benchmarks=["lucas"]).render()
        assert "MSHR" in text
