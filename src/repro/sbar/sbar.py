"""Sampling Based Adaptive Replacement (Section 6.4, Figure 7c).

The main tag directory's sets are split into *leader* sets, which
always run LIN and update PSEL, and *follower* sets, which run whatever
PSEL currently favors.  A single sparse ATD implementing LRU shadows
only the leader sets; on divergent outcomes between a leader MTD set
(playing the role of ATD-LIN) and its ATD-LRU shadow, PSEL moves by the
quantized cost of the miss the losing policy incurred:

* leader MTD hit, ATD-LRU miss  ->  PSEL += cost_q (LIN avoided a miss);
  the cost comes from the MTD tag entry (footnote 6).
* leader MTD miss, ATD-LRU hit  ->  PSEL -= cost_q (LRU avoided it);
  the miss is real and its mlp-cost is known when it is serviced, so
  the update is deferred — :meth:`SBARController.observe_access`
  returns a callback the simulator invokes with the serviced cost_q.

This cost-weighted update is what makes the contest about *stall
cycles* rather than raw misses (Section 6.1).
"""

from __future__ import annotations

import random
from typing import Callable, FrozenSet, Optional

from repro.cache.cache import AccessResult
from repro.cache.replacement import LINPolicy, LRUPolicy, ReplacementPolicy
from repro.cache.tag_directory import SparseTagDirectory
from repro.sbar.leader_sets import rand_dynamic_leaders, simple_static_leaders
from repro.sbar.psel import PolicySelector

#: Leader-selection policy names accepted by the controller.
SIMPLE_STATIC = "simple-static"
RAND_DYNAMIC = "rand-dynamic"


class SBARController:
    """Drives SBAR for one cache.

    Plug :meth:`policy_for_set` into the cache's ``policy_selector`` and
    call :meth:`observe_access` after every demand access; when it
    returns a callback, invoke it with the serviced miss's cost_q.
    """

    def __init__(
        self,
        n_sets: int,
        associativity: int,
        lam: int = 4,
        n_leaders: int = 32,
        selection: str = SIMPLE_STATIC,
        psel_bits: int = 6,
        seed: int = 0,
        epoch_instructions: Optional[int] = None,
    ) -> None:
        if selection not in (SIMPLE_STATIC, RAND_DYNAMIC):
            raise ValueError("unknown leader selection %r" % selection)
        self.n_sets = n_sets
        self.associativity = associativity
        self.n_leaders = n_leaders
        self.selection = selection
        self.lin = LINPolicy(lam)
        self.lru = LRUPolicy()
        self.psel = PolicySelector(psel_bits)
        self._rng = random.Random(seed)
        self.epoch_instructions = epoch_instructions
        # Only rand-dynamic epochs consume the instruction clock; the
        # simulator skips the per-record note_instructions call (and
        # may hoist the leader set) when this is False.
        self.needs_instruction_clock = (
            selection == RAND_DYNAMIC and epoch_instructions is not None
        )
        self._epoch = 0
        self.leaders: FrozenSet[int] = self._draw_leaders()
        self.atd_lru = SparseTagDirectory(
            self.leaders, associativity, LRUPolicy()
        )
        # Statistics.
        self.follower_lin_accesses = 0
        self.follower_lru_accesses = 0
        self.deferred_updates = 0

    @property
    def name(self) -> str:
        return "sbar(%s,%d)" % (self.selection, self.n_leaders)

    def _draw_leaders(self) -> FrozenSet[int]:
        if self.selection == SIMPLE_STATIC:
            return simple_static_leaders(self.n_sets, self.n_leaders)
        return rand_dynamic_leaders(self.n_sets, self.n_leaders, self._rng)

    # -- simulator hooks -------------------------------------------------

    def note_instructions(self, instr_index: int) -> None:
        """Advance the rand-dynamic epoch clock (Section 6.6)."""
        if self.epoch_instructions is None or self.selection != RAND_DYNAMIC:
            return
        epoch = instr_index // self.epoch_instructions
        if epoch != self._epoch:
            self._epoch = epoch
            self.leaders = self._draw_leaders()
            self.atd_lru = SparseTagDirectory(
                self.leaders, self.associativity, LRUPolicy()
            )

    def policy_for_set(self, set_index: int) -> ReplacementPolicy:
        """Leader sets always run LIN; followers obey PSEL."""
        if set_index in self.leaders:
            return self.lin
        if self.psel.msb:
            self.follower_lin_accesses += 1
            return self.lin
        self.follower_lru_accesses += 1
        return self.lru

    def observe_access(
        self, set_index: int, block: int, mtd_result: AccessResult
    ) -> Optional[Callable[[int], None]]:
        """Race the ATD-LRU shadow against a leader set.

        Returns a deferred PSEL update for the "MTD miss, ATD hit"
        case; None otherwise.
        """
        if set_index not in self.leaders:
            return None
        atd_result = self.atd_lru.access(set_index, block)
        if mtd_result.hit == atd_result.hit:
            return None
        if mtd_result.hit:
            # LIN kept the block, LRU would have missed it.
            self.psel.increment(mtd_result.state.cost_q)
            return None
        # LRU kept the block, LIN missed: charge LIN the serviced cost.
        self.deferred_updates += 1
        return self.psel.decrement
