"""Benchmark report schema, machine fingerprint, and validation.

A report is a plain JSON-safe dict:

.. code-block:: text

    {
      "schema": "repro.bench/v1",
      "tag": "pr3",
      "created_unix": 1754400000.0,
      "machine": {"platform": ..., "python": ..., "cpus": ...},
      "code_version": "<git commit or 'unknown'>",
      "micro": [{"name", "ops", "seconds", "ops_per_sec"}, ...],
      "macro": [{"workload", "policy", "accesses", "seconds",
                 "accesses_per_sec", "result": {"l2_misses", "cycles",
                 "demand_misses"}}, ...]
    }

``validate_report`` is the single source of truth for that shape; the
CI perf-smoke job and the bench CLI both call it, so a report that
lands in the repo is guaranteed parseable by future tooling.
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from typing import Dict, List, Optional

#: Current report schema identifier; bump the suffix on breaking shape
#: changes so old reports stay recognizable.
SCHEMA = "repro.bench/v1"

_MICRO_FIELDS = {"name": str, "ops": int, "seconds": float,
                 "ops_per_sec": float}
_MACRO_FIELDS = {"workload": str, "policy": str, "accesses": int,
                 "seconds": float, "accesses_per_sec": float,
                 "result": dict}
_RESULT_FIELDS = {"l2_misses": int, "cycles": float, "demand_misses": int}


def machine_fingerprint() -> Dict[str, object]:
    """Describe the host well enough to judge report comparability."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": "%s %s" % (
            platform.python_implementation(), platform.python_version()
        ),
        "cpus": os.cpu_count() or 0,
    }


def code_version() -> str:
    """Current git commit, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def build_report(
    micro: List[Dict[str, object]],
    macro: List[Dict[str, object]],
    tag: str = "local",
    created_unix: Optional[float] = None,
) -> Dict[str, object]:
    """Assemble and validate a full benchmark report."""
    report = {
        "schema": SCHEMA,
        "tag": tag,
        "created_unix": (
            time.time() if created_unix is None else float(created_unix)
        ),
        "machine": machine_fingerprint(),
        "code_version": code_version(),
        "micro": micro,
        "macro": macro,
    }
    validate_report(report)
    return report


def _check_fields(entry: object, spec: Dict[str, type], where: str) -> None:
    if not isinstance(entry, dict):
        raise ValueError("%s: expected an object, got %r" % (where, entry))
    for field, expected in spec.items():
        if field not in entry:
            raise ValueError("%s: missing field %r" % (where, field))
        value = entry[field]
        # Accept ints where floats are declared (JSON round-trips may
        # narrow whole floats), never the reverse.
        if expected is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    "%s: field %r must be a number, got %r"
                    % (where, field, value)
                )
        elif not isinstance(value, expected) or (
            expected is int and isinstance(value, bool)
        ):
            raise ValueError(
                "%s: field %r must be %s, got %r"
                % (where, field, expected.__name__, value)
            )


def validate_report(report: object) -> None:
    """Raise ``ValueError`` when ``report`` violates the v1 schema."""
    if not isinstance(report, dict):
        raise ValueError("report must be an object, got %r" % (report,))
    if report.get("schema") != SCHEMA:
        raise ValueError(
            "unknown schema %r (expected %r)" % (report.get("schema"), SCHEMA)
        )
    for field, expected in (
        ("tag", str), ("created_unix", float), ("machine", dict),
        ("code_version", str), ("micro", list), ("macro", list),
    ):
        _check_fields(report, {field: expected}, "report")
    for index, entry in enumerate(report["micro"]):
        where = "micro[%d]" % index
        _check_fields(entry, _MICRO_FIELDS, where)
        if entry["seconds"] <= 0 or entry["ops_per_sec"] <= 0:
            raise ValueError("%s: timings must be positive" % where)
    for index, entry in enumerate(report["macro"]):
        where = "macro[%d]" % index
        _check_fields(entry, _MACRO_FIELDS, where)
        if entry["seconds"] <= 0 or entry["accesses_per_sec"] <= 0:
            raise ValueError("%s: timings must be positive" % where)
        _check_fields(entry["result"], _RESULT_FIELDS, where + ".result")
