"""The set-associative tag store (MTD of Figure 3a).

The cache operates on *block numbers* (byte address divided by line
size); the hierarchy layer does the division.  Because this is a timing
simulator, no data is stored — the cache is exactly the paper's "tag
directory", which is also why the same class implements the ATDs.

Per-set replacement is delegated to a policy object; a *policy
selector* callable can override the policy per set, which is how SBAR
makes leader sets run LIN while follower sets obey the PSEL counter.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Set

from repro.cache.block import BlockState
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.sets import CacheSet
from repro.config import CacheGeometry


class AccessResult:
    """Outcome of one cache access.

    Attributes:
        hit: whether the block was resident.
        state: the tag entry touched (on hit) or installed (on miss).
            The simulator patches ``state.cost_q`` when the miss's
            mlp-cost is serviced.
        set_index: the set the access mapped to.
        victim_block: block number evicted to make room, or None.
        victim_dirty: whether the victim needs a writeback.
        compulsory: True when the block was never seen before (cold
            miss); used for the Table 3 compulsory-miss percentages.
    """

    __slots__ = (
        "hit", "state", "set_index", "victim_block", "victim_dirty",
        "compulsory",
    )

    def __init__(self, hit: bool, state: BlockState, set_index: int) -> None:
        self.hit = hit
        self.state = state
        self.set_index = set_index
        self.victim_block: Optional[int] = None
        self.victim_dirty = False
        self.compulsory = False


class SetAssociativeCache:
    """Tag store with pluggable replacement.

    Args:
        geometry: size/line/associativity description.
        policy: default replacement policy for every set.
        policy_selector: optional ``set_index -> policy`` override used
            by adaptive schemes (SBAR); when provided it wins over
            ``policy``.
        track_compulsory: record first-touch blocks so results can be
            classified as compulsory misses (Table 3).
    """

    def __init__(
        self,
        geometry: CacheGeometry,
        policy: ReplacementPolicy,
        policy_selector: Optional[Callable[[int], ReplacementPolicy]] = None,
        track_compulsory: bool = True,
        label: str = "cache",
    ) -> None:
        self.geometry = geometry
        self.policy = policy
        self.policy_selector = policy_selector
        #: Telemetry identity ("l1i"/"l1d"/"l2") and optional sink; the
        #: simulator installs a :class:`repro.obs.Observer` here.  All
        #: hooks are behind ``is not None`` so the disabled path costs
        #: one pointer test on evictions only.
        self.label = label
        self.observer = None
        self.n_sets = geometry.n_sets
        self._sets: List[CacheSet] = [
            CacheSet(geometry.associativity) for _ in range(self.n_sets)
        ]
        self._seen: Optional[Set[int]] = set() if track_compulsory else None
        self._seq = 0
        # Aggregate counters.
        self.accesses = 0
        self.hits = 0
        self.misses = 0
        self.compulsory_misses = 0
        self.writebacks = 0

    def set_index(self, block: int) -> int:
        return block % self.n_sets

    def set_state(self, set_index: int) -> CacheSet:
        """Direct access to a set, for tests and the SBAR controller."""
        return self._sets[set_index]

    def contains(self, block: int) -> bool:
        """Non-destructive residency probe (no recency update)."""
        return self._sets[self.set_index(block)].find(block) >= 0

    def access(self, block: int, is_write: bool = False) -> AccessResult:
        """Look up ``block``; on a miss, install it, evicting if needed."""
        set_index = self.set_index(block)
        cache_set = self._sets[set_index]
        policy = (
            self.policy_selector(set_index)
            if self.policy_selector is not None
            else self.policy
        )
        seq = self._seq
        self._seq += 1
        self.accesses += 1
        policy.note_access(block, seq)

        observer = self.observer
        profiler = observer.profiler if observer is not None else None
        if profiler is None:
            position = cache_set.find(block)
        else:
            with profiler.span("cache.lookup"):
                position = cache_set.find(block)
        if position >= 0:
            self.hits += 1
            policy.on_hit(cache_set, position)
            state = cache_set.get(block)
            assert state is not None
            if is_write:
                state.dirty = True
            return AccessResult(True, state, set_index)

        self.misses += 1
        result = AccessResult(False, BlockState(block, seq), set_index)
        if cache_set.full:
            if profiler is None:
                victim_position = policy.choose_victim(cache_set)
            else:
                with profiler.span("cache.replacement"):
                    victim_position = policy.choose_victim(cache_set)
            victim = cache_set.evict(victim_position)
            result.victim_block = victim.block
            result.victim_dirty = victim.dirty
            if victim.dirty:
                self.writebacks += 1
            if observer is not None:
                observer.victim_selected(
                    self.label, set_index, victim, policy.name, cache_set
                )
        policy.on_fill(cache_set, result.state)
        if is_write:
            result.state.dirty = True
        if self._seen is not None:
            if block not in self._seen:
                self._seen.add(block)
                result.compulsory = True
                self.compulsory_misses += 1
        return result

    def invalidate(self, block: int) -> bool:
        """Drop ``block`` if resident (inclusion enforcement); no writeback."""
        cache_set = self._sets[self.set_index(block)]
        position = cache_set.find(block)
        if position < 0:
            return False
        cache_set.evict(position)
        return True

    @property
    def miss_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.misses / self.accesses

    def resident_blocks(self) -> Set[int]:
        """All blocks currently in the cache (test helper)."""
        resident: Set[int] = set()
        for cache_set in self._sets:
            for state in cache_set.ways:
                resident.add(state.block)
        return resident
