"""CDF-driven datacenter traffic: key-value streams from flow-size CDFs.

Server-class cache studies (and the successor work on learned eviction)
evaluate on datacenter key-value traces rather than SPEC slices.  This
module synthesizes such streams the way datacenter network simulators
synthesize load — by sampling object sizes from published flow-size
CDFs (the web-search and data-mining distributions used throughout the
DCTCP/PrintQueue line of work) and popularity from a Zipf law:

* every *object* draws its size from the inverse CDF (deterministic in
  the seed), and occupies a contiguous block range;
* every *request* picks an object Zipf-style and streams up to
  ``chunk`` consecutive blocks from the object's cursor;
* tiny objects (at most :data:`ISOLATED_THRESHOLD_BLOCKS` blocks) are
  requested with isolating gaps — the latency-bound short-flow
  population, producing isolated (high-cost) misses — while large
  objects stream with burst gaps, producing high-MLP (low-cost) miss
  clusters.

That mapping gives the two distributions opposite MLP characters: the
data-mining CDF is dominated by 1–3 KB objects (mostly isolated
misses), web-search by multi-MB streams (mostly parallel misses), so
MLP-aware replacement sees genuinely different cost mixes than on any
SPEC surrogate.  Spec form: ``cdf(web_search,ops=2e6,seed=7)``.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from random import Random
from typing import Dict, List, Tuple

from repro.trace.packed import PackedTrace
from repro.trace.record import LOAD, STORE
from repro.trace.synthetic import BURST_GAP, ISOLATING_GAP
from repro.workloads.registry import (
    Workload,
    WorkloadSpecError,
    format_number,
)

#: Flow-size CDFs as (cumulative probability, size in KB) steps.
#: Transcribed from the web-search (DCTCP) and data-mining (VL2)
#: distributions as published in the PrintQueue traffic generator.
CDFS: Dict[str, List[Tuple[float, int]]] = {
    "web_search": [
        (0.15, 6), (0.2, 13), (0.3, 19), (0.4, 33), (0.53, 53),
        (0.6, 133), (0.7, 667), (0.8, 1333), (0.9, 3333),
        (0.97, 6667), (1.0, 20000),
    ],
    "data_mining": [
        (0.5, 1), (0.6, 2), (0.7, 3), (0.8, 7), (0.9, 267),
        (0.95, 2107), (0.99, 66667), (1.0, 666667),
    ],
}

#: Objects at most this many cache blocks are treated as short flows
#: and requested with isolating gaps (2 KB at 64-byte lines).
ISOLATED_THRESHOLD_BLOCKS = 32

#: Block-index namespace base; clear of every surrogate traffic class.
_BASE_BLOCK = 1 << 27

_LINE_BYTES = 64


def _sample_size_kb(cdf: List[Tuple[float, int]], u: float) -> int:
    """Inverse-CDF step lookup: the first entry whose cumulative
    probability covers ``u`` (the PrintQueue sampling rule)."""
    probabilities = [entry[0] for entry in cdf]
    return cdf[min(bisect_left(probabilities, u), len(cdf) - 1)][1]


class CDFWorkload(Workload):
    """A Zipf-over-CDF key-value access stream (see module docstring)."""

    DEFAULTS = {
        "ops": 150_000, "seed": 0, "objects": 2048, "chunk": 32,
        "zipf": 0.9, "stores": 0.1,
    }

    def __init__(
        self,
        distribution: str = "web_search",
        ops: float = DEFAULTS["ops"],
        seed: int = DEFAULTS["seed"],
        objects: int = DEFAULTS["objects"],
        chunk: int = DEFAULTS["chunk"],
        zipf: float = DEFAULTS["zipf"],
        stores: float = DEFAULTS["stores"],
    ) -> None:
        if distribution not in CDFS:
            raise WorkloadSpecError(
                "unknown CDF distribution %r; choose from %s"
                % (distribution, ", ".join(sorted(CDFS)))
            )
        self.distribution = distribution
        self.ops = int(float(ops))
        self.seed = int(seed)
        self.objects = int(objects)
        self.chunk = int(chunk)
        self.zipf = float(zipf)
        self.stores = float(stores)
        if self.ops < 1 or self.objects < 1 or self.chunk < 1:
            raise WorkloadSpecError(
                "cdf ops/objects/chunk must be positive"
            )
        if not 0.0 <= self.stores <= 1.0:
            raise WorkloadSpecError(
                "cdf stores fraction must be in [0, 1]"
            )

    @property
    def canonical(self) -> str:
        parts = [
            self.distribution,
            "ops=%s" % format_number(self.ops),
            "seed=%d" % self.seed,
        ]
        for name in ("chunk", "objects", "stores", "zipf"):
            value = getattr(self, name)
            if value != self.DEFAULTS[name]:
                parts.append("%s=%s" % (name, format_number(value)))
        return "cdf(%s)" % ",".join(parts)

    def with_seed(self, seed: int) -> "CDFWorkload":
        return CDFWorkload(
            self.distribution, ops=self.ops, seed=int(seed),
            objects=self.objects, chunk=self.chunk, zipf=self.zipf,
            stores=self.stores,
        )

    def build(self, scale: float = 1.0) -> PackedTrace:
        target = max(1, int(self.ops * scale))
        rng = Random(self.seed)
        cdf = CDFS[self.distribution]

        # Object sizes in blocks, then contiguous base offsets.
        blocks = [
            max(1, _sample_size_kb(cdf, rng.random()) * 1024 // _LINE_BYTES)
            for _ in range(self.objects)
        ]
        bases = [0] * self.objects
        offset = 0
        for index, size in enumerate(blocks):
            bases[index] = offset
            offset += size

        # Zipf popularity over a shuffled rank order, so size and
        # popularity are independent draws.
        ranks = list(range(self.objects))
        rng.shuffle(ranks)
        weights = [0.0] * self.objects
        total = 0.0
        for obj, rank in enumerate(ranks):
            total += (rank + 1) ** -self.zipf
            weights[obj] = total

        addresses = array("q")
        kinds = array("b")
        gaps = array("q")
        cursors = [0] * self.objects
        emitted = 0
        while emitted < target:
            obj = min(
                bisect_left(weights, rng.random() * total),
                self.objects - 1,
            )
            size = blocks[obj]
            count = min(self.chunk, size, target - emitted)
            kind = STORE if rng.random() < self.stores else LOAD
            isolated = size <= ISOLATED_THRESHOLD_BLOCKS
            start = cursors[obj]
            for position in range(count):
                block = bases[obj] + (start + position) % size
                addresses.append((_BASE_BLOCK + block) * _LINE_BYTES)
                kinds.append(kind)
                gaps.append(
                    ISOLATING_GAP
                    if isolated or position == 0
                    else BURST_GAP
                )
            cursors[obj] = (start + count) % size
            emitted += count
        return PackedTrace.from_columns(addresses, kinds, gaps)


__all__ = ["CDFWorkload", "CDFS", "ISOLATED_THRESHOLD_BLOCKS"]
