"""Per-traffic-class miss attribution.

The surrogate engine name-spaces its traffic classes into disjoint
block ranges (see :mod:`repro.workloads.engine`).  Wrapping a
simulator's L2 with :func:`attach_classifier` counts accesses, misses,
and serviced mlp-cost per class, which answers the questions the
paper's analysis sections ask: *which* misses did LIN save, and at what
cost elsewhere?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict

from repro.sim.simulator import Simulator

#: Class boundaries within one phase namespace, matching the engine's
#: block-number layout.
_PHASE_MASK = (1 << 26) - 1


def classify_block(block: int) -> str:
    """Traffic class of an engine-generated block number.

    The checks descend through the engine's namespace bases
    (companion 7<<23, cold 3<<24, flip 5<<23, transient 1<<25,
    isolated-S 1<<24, stream at the bottom).
    """
    offset = block & _PHASE_MASK
    if offset >= (7 << 23):
        return "companion"
    if offset >= (3 << 24):
        return "cold"
    if offset >= (5 << 23):
        return "flip"
    if offset >= (1 << 25):
        return "transient"
    if offset >= (1 << 24):
        return "isolated"
    return "stream"


@dataclass
class ClassStats:
    """Counts for one traffic class."""

    accesses: int = 0
    misses: int = 0
    cost_sum: float = 0.0

    @property
    def hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return 1.0 - self.misses / self.accesses

    @property
    def avg_cost(self) -> float:
        if not self.misses:
            return 0.0
        return self.cost_sum / self.misses


@dataclass
class ClassifiedRun:
    """Attribution results, filled in while the simulator runs."""

    classes: Dict[str, ClassStats] = field(default_factory=dict)

    def stats(self, name: str) -> ClassStats:
        if name not in self.classes:
            self.classes[name] = ClassStats()
        return self.classes[name]

    def table(self):
        """Rows of (class, accesses, misses, hit%, avg mlp-cost)."""
        rows = []
        for name in sorted(self.classes):
            stats = self.classes[name]
            rows.append(
                (
                    name,
                    stats.accesses,
                    stats.misses,
                    "%.1f%%" % (100 * stats.hit_rate),
                    "%.0f" % stats.avg_cost,
                )
            )
        return rows


def attach_classifier(
    simulator: Simulator,
    classifier: Callable[[int], str] = classify_block,
) -> ClassifiedRun:
    """Instrument a simulator's L2 accesses per traffic class.

    Must be called before :meth:`Simulator.run`.  Returns the
    :class:`ClassifiedRun` that accumulates during the run.  Serviced
    miss costs are attributed through the existing delta-tracker hook,
    so the attribution sees exactly the demand misses the statistics
    see.
    """
    run = ClassifiedRun()
    original_access = simulator.l2.access
    original_record = simulator.delta.record

    def wrapped_access(block: int, is_write: bool = False):
        result = original_access(block, is_write)
        stats = run.stats(classifier(block))
        stats.accesses += 1
        if not result.hit:
            stats.misses += 1
        return result

    def wrapped_record(block: int, cost: float) -> None:
        run.stats(classifier(block)).cost_sum += cost
        original_record(block, cost)

    simulator.l2.access = wrapped_access  # type: ignore[method-assign]
    simulator.delta.record = wrapped_record  # type: ignore[method-assign]
    return run
