"""Job-service tests: protocol, quotas, worker health, end to end.

The tentpole guarantees locked in here:

* two tenants submitting overlapping grids share executions — every
  unique cell runs exactly once, and both receive bit-identical
  digests that match a serial ``run_policy`` baseline;
* quota/backpressure rejections are 429-shaped (code +
  ``retry_after_s``) and deterministic;
* the per-worker circuit breaker trips on consecutive failures and
  recovers via half-open probes;
* ``serve --resume`` replays a crashed job's journal, re-serving
  journal-completed cells from the store;
* the umbrella ``python -m repro`` CLI reaches every subcommand.
"""

import json
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.service import protocol
from repro.service.client import ServiceClient, ServiceError, submit
from repro.service.jobs import TenantQuotas, expand_cells, new_job_id
from repro.service.server import ServiceConfig, serve_in_thread
from repro.sim.chaos import ChaosConfig
from repro.sim.options import RunOptions
from repro.sim.parallel import task_store_key
from repro.sim.resilience import RunJournal, WorkerHealth
from repro.sim.runner import clear_cache, run_policy
from repro.sim.store import result_digest

SCALE = 0.05
BENCHMARKS = ("lucas", "mcf")
POLICIES = ("lru", "lin(4)")


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    """Every test gets an empty memo and its own empty store."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    clear_cache()
    yield
    clear_cache()


def start_service(**overrides):
    defaults = dict(port=0, workers=2, inline=True)
    defaults.update(overrides)
    return serve_in_thread(ServiceConfig(**defaults))


class TestProtocol:
    def test_encode_decode_roundtrip(self):
        message = {"op": "submit", "benchmarks": ["mcf"], "scale": 0.25}
        line = protocol.encode(message)
        assert line.endswith(b"\n")
        assert protocol.decode(line) == message

    def test_decode_rejects_garbage(self):
        for line in (b"not json\n", b"[1,2]\n", b"\xff\xfe\n"):
            with pytest.raises(protocol.ProtocolError):
                protocol.decode(line)

    def test_validate_submit_defaults(self):
        fields = protocol.validate_submit({
            "op": "submit",
            "benchmarks": ["mcf", "art"],
            "policies": ["lru"],
        })
        assert fields["tenant"] == "anonymous"
        assert fields["scale"] is None
        assert fields["benchmarks"] == ["mcf", "art"]

    @pytest.mark.parametrize("message", [
        {"policies": ["lru"]},                       # no benchmarks
        {"benchmarks": [], "policies": ["lru"]},     # empty list
        {"benchmarks": ["mcf"], "policies": [""]},   # blank entry
        {"benchmarks": ["mcf"], "policies": ["lru"], "scale": -1},
        {"benchmarks": ["mcf"], "policies": ["lru"], "scale": "big"},
        {"benchmarks": ["mcf"], "policies": ["lru"], "tenant": ""},
        {"benchmarks": ["mcf"], "policies": ["lru"], "options": 7},
    ])
    def test_validate_submit_rejects(self, message):
        with pytest.raises(protocol.ProtocolError):
            protocol.validate_submit(message)

    def test_error_response_carries_retry_hint(self):
        response = protocol.error_response(
            "queue-full", "busy", retry_after_s=1.25
        )
        assert response["ok"] is False
        assert response["error"]["code"] == "queue-full"
        assert response["retry_after_s"] == 1.25


class TestTenantQuotas:
    def test_admit_and_release(self):
        quotas = TenantQuotas(queue_limit=10, tenant_quota=10)
        assert quotas.try_admit("a", 4) is None
        assert quotas.inflight_total == 4
        for _ in range(4):
            quotas.release("a")
        assert quotas.inflight_total == 0
        assert quotas.inflight == {}

    def test_queue_full_rejection(self):
        quotas = TenantQuotas(queue_limit=3, tenant_quota=100)
        assert quotas.try_admit("a", 3) is None
        rejection = quotas.try_admit("b", 1)
        assert rejection is not None
        assert rejection.code == "queue-full"
        assert rejection.retry_after_s > 0
        assert quotas.rejected_queue == 1

    def test_tenant_quota_rejection_is_per_tenant(self):
        quotas = TenantQuotas(queue_limit=100, tenant_quota=2)
        assert quotas.try_admit("noisy", 2) is None
        rejection = quotas.try_admit("noisy", 1)
        assert rejection is not None
        assert rejection.code == "quota-exceeded"
        # Another tenant is unaffected by the noisy one's quota.
        assert quotas.try_admit("quiet", 2) is None

    def test_force_bypasses_checks_but_still_accounts(self):
        quotas = TenantQuotas(queue_limit=1, tenant_quota=1)
        assert quotas.try_admit("a", 5, force=True) is None
        assert quotas.inflight_total == 5

    def test_retry_after_is_deterministic_and_bounded(self):
        quotas = TenantQuotas(queue_limit=0, tenant_quota=0)
        assert quotas.retry_after(10) == quotas.retry_after(10)
        quotas.inflight_total = 10**6
        assert quotas.retry_after(1) == 30.0


class TestWorkerHealth:
    def test_trips_after_consecutive_failures(self):
        health = WorkerHealth(trip_threshold=3, cooldown=8)
        for _ in range(3):
            health.record_dispatch("w0")
            health.record_failure("w0")
        assert health.is_tripped("w0")
        assert health.trips == 1

    def test_success_resets_the_streak(self):
        health = WorkerHealth(trip_threshold=3, cooldown=8)
        for _ in range(2):
            health.record_dispatch("w0")
            health.record_failure("w0")
        health.record_dispatch("w0")
        health.record_success("w0")
        health.record_dispatch("w0")
        health.record_failure("w0")
        assert not health.is_tripped("w0")
        assert health.trips == 0

    def test_pick_avoids_tripped_worker(self):
        health = WorkerHealth(trip_threshold=2, cooldown=50)
        for _ in range(2):
            health.record_dispatch("w0")
            health.record_failure("w0")
        health.record_dispatch("w1")
        health.record_success("w1")
        assert health.pick(["w0", "w1"]) == "w1"
        assert health.rank(["w0", "w1"]) == ["w1", "w0"]

    def test_all_tripped_pool_yields_half_open_probe(self):
        health = WorkerHealth(trip_threshold=1, cooldown=50)
        health.record_dispatch("w0")
        health.record_failure("w0")
        health.record_dispatch("w1")
        health.record_failure("w1")
        # w0 tripped first, so it is the least-recently-tripped probe.
        assert health.pick(["w0", "w1"]) == "w0"
        assert health.probes == 1

    def test_failed_probe_re_arms_the_circuit(self):
        health = WorkerHealth(trip_threshold=1, cooldown=2)
        health.record_dispatch("w0")
        health.record_failure("w0")
        # Burn the cooldown on another worker, then fail the probe.
        for _ in range(3):
            health.record_dispatch("w1")
            health.record_success("w1")
        assert not health.is_tripped("w0")
        health.record_dispatch("w0")
        health.record_failure("w0")
        assert health.is_tripped("w0")
        assert health.trips == 1  # transition counted once per episode

    def test_snapshot_is_json_safe(self):
        health = WorkerHealth()
        health.record_dispatch("w0")
        health.record_success("w0")
        json.dumps(health.snapshot())


class TestServiceEndToEnd:
    def test_two_clients_share_cells_and_digests_match_serial(
        self, tmp_path, monkeypatch
    ):
        # Seeded delays keep cells in flight long enough for the
        # second tenant's identical grid to attach to the first's
        # executions (any cell already finished is a store hit —
        # either way, nothing executes twice).
        chaos = ChaosConfig(delay_rate=1.0, delay_s=0.2, seed=7)
        handle = start_service(
            options=RunOptions(chaos=chaos), workers=2
        )
        try:
            snapshots = {}

            def run_client(name):
                client = ServiceClient(port=handle.port, tenant=name)
                job_id = client.submit(
                    BENCHMARKS, POLICIES, scale=SCALE
                )
                snapshots[name] = client.wait(job_id)

            threads = [
                threading.Thread(target=run_client, args=(name,))
                for name in ("alice", "bob")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            stats = ServiceClient(port=handle.port).stats()
        finally:
            handle.stop()

        alice, bob = snapshots["alice"], snapshots["bob"]
        assert alice["status"] == "done"
        assert bob["status"] == "done"
        assert alice["digest"] == bob["digest"] is not None

        unique = len(BENCHMARKS) * len(POLICIES)
        counters = stats["counters"]
        assert counters["cells_executed"] == unique
        assert (
            counters["cells_deduped"] + counters["cells_store_hits"]
            == unique
        )

        # Bit-identical to a serial baseline computed against a second
        # fresh store (a genuine recompute, not a shared cache read).
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "serial"))
        clear_cache()
        for benchmark in BENCHMARKS:
            for policy in POLICIES:
                result = run_policy(benchmark, policy, scale=SCALE)
                label = "%s/%s" % (benchmark, policy)
                assert alice["cells"][label]["digest"] == result_digest(
                    result.to_dict()
                ), label

    def test_second_submission_hits_the_store(self):
        handle = start_service(workers=1)
        try:
            client = ServiceClient(port=handle.port)
            first = client.wait(
                client.submit(("lucas",), ("lru",), scale=SCALE)
            )
            second = client.wait(
                client.submit(("lucas",), ("lru",), scale=SCALE)
            )
            stats = client.stats()
        finally:
            handle.stop()
        assert first["digest"] == second["digest"]
        assert stats["counters"]["cells_executed"] == 1
        assert stats["counters"]["cells_store_hits"] == 1
        cell = second["cells"]["lucas/lru"]
        assert cell["source"] == "store"

    def test_quota_rejection_over_the_wire(self):
        handle = start_service(tenant_quota=1, queue_limit=100)
        try:
            client = ServiceClient(port=handle.port, tenant="noisy")
            with pytest.raises(ServiceError) as excinfo:
                client.submit(BENCHMARKS, POLICIES, scale=SCALE)
        finally:
            handle.stop()
        assert excinfo.value.code == "quota-exceeded"
        assert excinfo.value.retry_after_s > 0

    def test_queue_backpressure_over_the_wire(self):
        handle = start_service(queue_limit=1, tenant_quota=100)
        try:
            client = ServiceClient(port=handle.port)
            with pytest.raises(ServiceError) as excinfo:
                client.submit(BENCHMARKS, POLICIES, scale=SCALE)
        finally:
            handle.stop()
        assert excinfo.value.code == "queue-full"
        assert excinfo.value.retry_after_s > 0

    def test_submit_helper_retries_after_rejection(self):
        # Quota admits one cell at a time: the helper's retry loop
        # (honoring retry_after_s) must eventually land both jobs.
        handle = start_service(tenant_quota=1, queue_limit=100)
        try:
            first = submit(
                ("lucas",), ("lru",), scale=SCALE, port=handle.port
            )
            second = submit(
                ("lucas",), ("lin(4)",), scale=SCALE, port=handle.port
            )
        finally:
            handle.stop()
        assert first["status"] == "done"
        assert second["status"] == "done"

    def test_unknown_job_and_unknown_op(self):
        handle = start_service()
        try:
            client = ServiceClient(port=handle.port)
            with pytest.raises(ServiceError) as excinfo:
                client.status("job-nope")
            assert excinfo.value.code == "unknown-job"
            with pytest.raises(ServiceError) as excinfo:
                client._request({"op": "frobnicate"})
            assert excinfo.value.code == "unknown-op"
        finally:
            handle.stop()

    def test_ping_reports_schema(self):
        handle = start_service()
        try:
            response = ServiceClient(port=handle.port).ping()
        finally:
            handle.stop()
        assert response["schema"] == protocol.PROTOCOL_SCHEMA

    def test_watch_streams_cell_events(self):
        handle = start_service(workers=1)
        try:
            client = ServiceClient(port=handle.port)
            job_id = client.submit(("lucas",), ("lru",), scale=SCALE)
            events = list(client.watch(job_id))
        finally:
            handle.stop()
        names = [event["event"] for event in events]
        assert names[-1] == "job_done"
        assert "cell_finished" in names

    def test_cancel_terminates_a_pending_job(self):
        # One slot + long seeded delays: the first job occupies the
        # slot while the second job's distinct cell waits — cancelling
        # the second must drop its pending cell immediately.
        chaos = ChaosConfig(delay_rate=1.0, delay_s=0.5, seed=7)
        handle = start_service(
            workers=1, options=RunOptions(chaos=chaos)
        )
        try:
            client = ServiceClient(port=handle.port)
            blocker = client.submit(("lucas",), ("lru",), scale=SCALE)
            victim = client.submit(("mcf",), ("lru",), scale=SCALE)
            cancelled = client.cancel(victim)
            assert cancelled["status"] == "cancelled"
            final = client.wait(blocker)
        finally:
            handle.stop()
        assert final["status"] == "done"

    def test_result_includes_payloads_on_request(self):
        handle = start_service(workers=1)
        try:
            client = ServiceClient(port=handle.port)
            job_id = client.submit(("lucas",), ("lru",), scale=SCALE)
            client.wait(job_id)
            job = client.result(job_id, include_results=True)
        finally:
            handle.stop()
        payload = job["results"]["lucas/lru"]
        assert payload["policy_name"] == "lru"
        assert payload["instructions"] > 0

    def test_client_option_whitelist(self):
        from repro.service.server import JobService

        service = JobService(ServiceConfig())
        merged = service._merge_options({
            "max_retries": 7,
            "use_cache": False,       # not client-settable
            "queue_limit": 0,         # not a RunOptions field
        })
        assert merged.max_retries == 7
        assert merged.use_cache is True


class TestResume:
    def test_resume_replays_an_interrupted_job(self):
        # Forge the aftermath of a crash: a job journal with one cell
        # recorded finished (and its result in the store) and one cell
        # missing, with no run_finished line.
        done_result = run_policy("lucas", "lru", scale=SCALE)
        cells = expand_cells(BENCHMARKS[:1], POLICIES, SCALE)
        labels = {label: task for label, task in cells}
        done_task = labels["lucas/lru"]
        job_id = new_job_id()
        journal = RunJournal.create(run_id=job_id, meta={
            "service_job": True,
            "tenant": "crashy",
            "benchmarks": list(BENCHMARKS[:1]),
            "policies": list(POLICIES),
            "scale": SCALE,
            "options": {},
        })
        journal.task_finished(
            done_task, task_store_key(done_task), cache_hit=False,
            resumed=False, wall=0.1, worker=None, attempts=1,
        )
        journal.close()

        handle = start_service(resume=True)
        try:
            client = ServiceClient(port=handle.port)
            snapshot = client.wait(job_id)
            stats = client.stats()
        finally:
            handle.stop()

        assert snapshot["status"] == "done"
        assert snapshot["tenant"] == "crashy"
        assert stats["counters"]["jobs_resumed"] == 1
        resumed_cell = snapshot["cells"]["lucas/lru"]
        assert resumed_cell["source"] == "resume"
        assert resumed_cell["digest"] == result_digest(
            done_result.to_dict()
        )
        # The missing cell actually executed.
        other = snapshot["cells"]["lucas/lin(4)"]
        assert other["status"] == "done"
        assert other["source"] == "executed"

    def test_finished_journals_are_not_replayed(self):
        handle = start_service(workers=1)
        try:
            client = ServiceClient(port=handle.port)
            client.wait(client.submit(("lucas",), ("lru",), scale=SCALE))
        finally:
            handle.stop()
        # Restart over the same store: the completed journal must not
        # resurrect the job.
        second = start_service(resume=True)
        try:
            stats = ServiceClient(port=second.port).stats()
        finally:
            second.stop()
        assert stats["counters"]["jobs_resumed"] == 0
        assert stats["jobs"]["total"] == 0


class TestUmbrellaCLI:
    REPO_ROOT = Path(__file__).parent.parent

    def _run(self, *argv):
        return subprocess.run(
            [sys.executable, "-m", "repro"] + list(argv),
            capture_output=True, text=True,
            cwd=str(self.REPO_ROOT),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            timeout=120,
        )

    def test_bare_help_lists_every_subcommand(self):
        out = self._run("--help")
        assert out.returncode == 0
        for sub in ("run", "suite", "experiments", "bench",
                    "workloads", "store", "chaos", "serve", "submit"):
            assert sub in out.stdout

    @pytest.mark.parametrize("sub", [
        "run", "suite", "experiments", "bench", "workloads", "store",
        "chaos", "serve", "submit",
    ])
    def test_every_subcommand_answers_help(self, sub):
        out = self._run(sub, "--help")
        assert out.returncode == 0, out.stderr
        assert out.stdout.strip()
        # Delegated invocations never print the legacy-pointer line.
        assert "unified CLI spelling" not in out.stderr

    def test_unknown_subcommand_fails_with_usage(self):
        out = self._run("frobnicate")
        assert out.returncode == 2
        assert "unknown command" in out.stderr

    def test_legacy_spelling_prints_pointer(self):
        out = subprocess.run(
            [sys.executable, "-m", "repro.workloads", "--list"],
            capture_output=True, text=True,
            cwd=str(self.REPO_ROOT),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
            timeout=120,
        )
        assert out.returncode == 0
        assert "unified CLI spelling" in out.stderr


class TestApiFacade:
    def test_surface_is_complete(self):
        import repro.api as api

        expected = {
            "run_policy", "run_grid", "run_suite", "RunOptions",
            "register_policy", "register_workload",
            "parse_policy_spec", "parse_workload_spec",
            "oracle_report", "submit",
        }
        assert set(api.__all__) == expected
        for name in expected:
            assert getattr(api, name) is not None

    def test_unknown_attribute_names_the_surface(self):
        import repro.api as api

        with pytest.raises(AttributeError, match="run_policy"):
            api.not_a_thing
