"""Experiment registry: one module per table/figure of the paper.

Run everything with ``python -m repro.experiments``, or a single
experiment with ``python -m repro.experiments figure9``.  Each module
exposes ``run(scale=None, benchmarks=None) -> Report``.
"""

from repro.experiments import (
    calibration,
    cbs_comparison,
    cost_validation,
    dip_comparison,
    prefetch_interaction,
    sensitivity,
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    figure6,
    figure8,
    figure9,
    figure10,
    figure11,
    oracle_regret,
    overhead,
    table1,
    table2,
    table3,
)

#: Registry in paper order.  Values are the experiment modules.
EXPERIMENTS = {
    "figure1": figure1,
    "figure2": figure2,
    "figure3": figure3,
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "figure8": figure8,
    "figure9": figure9,
    "figure10": figure10,
    "figure11": figure11,
    "cbs": cbs_comparison,
    "oracle": oracle_regret,
    "overhead": overhead,
    "sensitivity": sensitivity,
    "dip": dip_comparison,
    "prefetch": prefetch_interaction,
    "costmodel": cost_validation,
    "calibration": calibration,
}

__all__ = ["EXPERIMENTS"]
