"""Split-transaction bus between the L2 cache and memory.

Table 2 specifies a 16-byte-wide split-transaction bus running at a 4:1
frequency ratio, contributing 44 cycles to an isolated miss.  A 64-byte
line occupies the bus for four bus cycles = 16 CPU cycles; the remaining
delay is arbitration and flight time that does not occupy the bus, so
back-to-back transfers pipeline at 16-cycle spacing while each transfer
still observes the full 44-cycle delay.
"""

from __future__ import annotations


class SplitTransactionBus:
    """Timing model of the shared L2<->memory data bus."""

    def __init__(self, transfer_delay: int, occupancy: int) -> None:
        if occupancy < 1:
            raise ValueError("occupancy must be positive")
        if transfer_delay < occupancy:
            raise ValueError(
                "transfer delay %d cannot be shorter than occupancy %d"
                % (transfer_delay, occupancy)
            )
        self.transfer_delay = transfer_delay
        self.occupancy = occupancy
        self._free_at = 0.0
        self.transfers = 0
        self.contended = 0

    def transfer(self, ready: float) -> float:
        """Move one line whose data is ready at ``ready``.

        Returns the time the line arrives at the cache.  The bus is held
        for ``occupancy`` cycles; the line lands ``transfer_delay``
        cycles after the transfer starts.
        """
        start = self._free_at
        if start > ready:
            self.contended += 1
        else:
            start = ready
        self._free_at = start + self.occupancy
        self.transfers += 1
        return start + self.transfer_delay

    def reset(self) -> None:
        self._free_at = 0.0
        self.transfers = 0
        self.contended = 0

    @property
    def contention_rate(self) -> float:
        """Fraction of transfers that waited for the bus."""
        if not self.transfers:
            return 0.0
        return self.contended / self.transfers
