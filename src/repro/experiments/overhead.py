"""Hardware overhead of SBAR (Sections 1.2 and 6.4): the 1854 B budget.

On the paper's 1 MB, 16-way, 1024-set cache, SBAR needs a sparse
ATD-LRU for 32 leader sets plus one 6-bit PSEL: with a 40-bit physical
address that is 32*16 entries of 29 bits + 6 bits ~ 1857 B, matching
the paper's 1854 B to within a few bytes (<0.2 % of the cache's area).
"""

from __future__ import annotations

from typing import Optional

from repro.config import baseline_config
from repro.experiments.common import Report
from repro.sbar.overhead import cbs_overhead, sbar_overhead

PAPER_OVERHEAD_BYTES = 1854


def run(scale: Optional[float] = None, benchmarks=None) -> Report:
    report = Report("overhead", "SBAR hardware overhead (1 MB baseline cache)")
    geometry = baseline_config().l2
    sbar = sbar_overhead(geometry, n_leaders=32, psel_bits=6)
    rows = [
        ("ATD entries (32 leader sets x 16 ways)", sbar.atd_entries),
        ("bits per entry (24b tag + valid + 4b LRU)", sbar.bits_per_entry),
        ("PSEL counters x bits", "%d x %d" % (sbar.psel_counters, sbar.psel_bits)),
        ("total bits", sbar.total_bits),
        ("total bytes", "%.1f" % sbar.total_bytes),
        ("paper's figure", "%d bytes" % PAPER_OVERHEAD_BYTES),
        (
            "fraction of cache area",
            "%.3f%%" % (100.0 * sbar.fraction_of_cache(geometry)),
        ),
    ]
    report.add_table(["quantity", "value"], rows)

    cbs_global = cbs_overhead(geometry, per_set_psel=False)
    cbs_local = cbs_overhead(geometry, per_set_psel=True)
    report.add_note(
        "For contrast, CBS-global needs %.0f B and CBS-local %.0f B\n"
        "(%.0fx and %.0fx SBAR's budget): the two full ATDs are what\n"
        "made hybrid replacement impractical before sampling."
        % (
            cbs_global.total_bytes,
            cbs_local.total_bytes,
            cbs_global.total_bytes / sbar.total_bytes,
            cbs_local.total_bytes / sbar.total_bytes,
        )
    )
    return report
