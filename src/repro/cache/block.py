"""Tag-store entry state.

Figure 3(a) extends each tag entry with the quantized MLP-based cost of
the miss that brought the block in; :class:`BlockState` is that entry.
"""

from __future__ import annotations


class BlockState:
    """One tag-store entry.

    Attributes:
        block: full cache-block number (tag and index combined; keeping
            the whole number is simpler in a simulator and loses no
            information).
        dirty: set by stores; a dirty victim generates a writeback.
        cost_q: 3-bit quantized mlp-cost (Figure 3b) written when the
            miss that fetched this block was serviced.  New fills start
            at 0 and are patched by the MSHR's completion callback.
        fill_seq: access sequence number of the fill, used by FIFO.
        next_use: position of the block's next access, maintained only
            when a Belady policy drives the cache.
    """

    __slots__ = ("block", "dirty", "cost_q", "fill_seq", "next_use")

    def __init__(self, block: int, fill_seq: int = 0) -> None:
        self.block = block
        self.dirty = False
        self.cost_q = 0
        self.fill_seq = fill_seq
        self.next_use = 0

    def __repr__(self) -> str:
        flags = "D" if self.dirty else "-"
        return "BlockState(0x%x %s cost_q=%d)" % (
            self.block, flags, self.cost_q
        )
