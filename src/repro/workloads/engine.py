"""Surrogate-trace generation engine.

A surrogate is described by a :class:`SurrogateSpec` and emitted as a
mixture of five traffic classes, each reproducing one ingredient of
the paper's benchmark behaviours:

* **P traffic** - bursts of spatially-sequential blocks from a
  streaming pool.  Bursts are separated by a window-draining gap, so a
  burst of size B that misses produces exactly B parallel misses
  (MLP = B).  Cyclic pools (``p_random=False``) have deterministic
  reuse with per-block-stable burst contexts (small deltas, and the
  structure LIN's filtering exploits); random pools have stochastic
  reuse that degrades gracefully under way-stealing.
* **S traffic** - single accesses to a reused pool, isolated on both
  sides by window-draining gaps: the savable isolated misses that LIN
  protects (the mcf/vpr/sixtrack win mechanism).
* **Transient traffic** - isolated touches to blocks never reused;
  under LIN these acquire maximal cost_q and pollute sets.
* **Cold random traffic** - a pool far larger than the cache visited
  uniformly at random, isolated with probability ``random_isolated``:
  unsavable stall mass plus the stale-cost pinning that produces the
  bzip2/parser/mgrid LIN regressions.
* **Flip traffic** - a pool folded onto a few self-thrashing sets
  whose visit context alternates isolated/parallel every lap: the
  controlled source of large Table 1 deltas (cost unpredictability).

*Context noise* additionally makes a fraction of S visits ride inside
a burst (and P visits occur isolated).

Block-number name-spacing keeps all classes in disjoint ranges so
instrumentation can attribute misses per class.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.trace.record import LOAD, STORE, Access, Trace
from repro.trace.synthetic import BURST_GAP, ISOLATING_GAP

#: Name-space bases keeping traffic classes in disjoint block ranges.
_S_BASE = 1 << 24
_TRANSIENT_BASE = 1 << 25
_RANDOM_BASE = 3 << 24
_FLIP_BASE = 5 << 23
_COMPANION_BASE = 7 << 23
_PHASE_STRIDE = 1 << 26


@dataclass(frozen=True)
class SurrogateSpec:
    """Tunable description of one benchmark surrogate.

    Pool sizes are expressed as fractions of the L2 block count so the
    same spec scales with the experiment cache.
    """

    #: Memory accesses emitted at scale 1.0.
    accesses: int = 150_000
    #: P-pool size as a fraction of L2 blocks (streaming pool).
    p_pool_factor: float = 1.5
    #: Burst sizes cycled through for P traffic (MLP degrees).
    burst_sizes: Tuple[int, ...] = (4,)
    #: False: the P pool is swept cyclically (guaranteed reuse at a
    #: fixed distance - the pattern LIN's filtering exploits fully).
    #: True: bursts start at random pool offsets, so reuse distances
    #: are stochastic and per-block protection pays off gradually.
    p_random: bool = False
    #: Fraction of accesses that are isolated S references.
    mix_isolated: float = 0.15
    #: S-pool size as a fraction of L2 blocks.
    s_pool_factor: float = 0.2
    #: Fraction of accesses that are isolated never-reused transients.
    transient_rate: float = 0.0
    #: Probability a visit happens in the "wrong" context (S in a
    #: burst / P isolated), driving the Table 1 delta.
    context_noise: float = 0.0
    #: Cold random pool (as a fraction of L2 blocks): blocks drawn
    #: uniformly, so any individual block's short-term reuse probability
    #: is near zero.  High-cost visits to this pool are what LIN
    #: wrongly protects in the bzip2/parser/mgrid family.
    random_pool_factor: float = 0.0
    #: Fraction of accesses that go to the cold random pool.
    mix_random: float = 0.0
    #: Probability a cold-pool visit is isolated (cost ~444) rather
    #: than embedded in a parallel burst (cost ~444/3); revisits flip
    #: contexts at random, producing large Table 1 deltas.
    random_isolated: float = 0.7
    #: Fraction of accesses that are stores.
    store_fraction: float = 0.05
    #: Restrict all traffic to a sub-range of sets: (start, width) as
    #: fractions of the set count.  None = uniform over all sets.
    set_skew: Optional[Tuple[float, float]] = None
    #: Flip pool: blocks revisited round-robin whose context alternates
    #: every lap between isolated (cost ~444) and burst-embedded
    #: (cost ~150).  Every revisit is a miss with a large Table 1 delta;
    #: this is the controlled source of cost unpredictability.
    flip_pool_factor: float = 0.5
    #: Fraction of accesses that go to the flip pool.
    mix_flip: float = 0.0
    #: Alternating phases: (spec, accesses_per_visit) entries cycled
    #: until the access budget is spent.  Outer spec fields other than
    #: ``accesses`` are ignored when phases are present.
    phases: Optional[Tuple[Tuple["SurrogateSpec", int], ...]] = None

    def scaled(self, scale: float) -> "SurrogateSpec":
        """Scale the access budget (and phase visit lengths) together.

        Phase quotas must shrink with the budget or a scaled-down trace
        would degenerate to a single phase.
        """
        phases = self.phases
        if phases is not None and scale < 1.0:
            phases = tuple(
                (phase_spec, max(1, int(quota * scale)))
                for phase_spec, quota in phases
            )
        return replace(
            self,
            accesses=max(1, int(self.accesses * scale)),
            phases=phases,
        )


class _PhaseState:
    """Mutable pools and cursors for one phase's traffic."""

    def __init__(
        self,
        spec: SurrogateSpec,
        l2_blocks: int,
        rng: random.Random,
        namespace: int,
    ) -> None:
        self.spec = spec
        base = namespace * _PHASE_STRIDE
        pattern = sum(spec.burst_sizes)
        pool = max(pattern, int(spec.p_pool_factor * l2_blocks))
        if not spec.p_random:
            # Round cyclic pools to a whole number of burst patterns so
            # every lap regroups identically: each block keeps the same
            # parallelism context visit after visit (small deltas).
            pool = max(pattern, (pool // pattern) * pattern)
        self.p_pool = pool
        self.burst_rotation = 0
        self.p_base = base
        self.p_cursor = 0
        s_pool = max(0, int(spec.s_pool_factor * l2_blocks))
        self.s_blocks: List[int] = [
            base + _S_BASE + index for index in range(s_pool)
        ]
        rng.shuffle(self.s_blocks)
        self.s_cursor = 0
        self.transient_base = base + _TRANSIENT_BASE
        self.transients_used = 0
        self.random_base = base + _RANDOM_BASE
        self.random_pool = max(0, int(spec.random_pool_factor * l2_blocks))
        flip_pool = 0
        if spec.mix_flip > 0:
            flip_pool = max(1, int(spec.flip_pool_factor * l2_blocks))
        self.flip_base = base + _FLIP_BASE
        self.flip_pool = flip_pool
        self.flip_cursor = 0
        self.flip_lap = 0
        self.companion_base = base + _COMPANION_BASE
        self.companions_used = 0

    def next_p_blocks(self, count: int, rng: random.Random) -> List[int]:
        if self.spec.p_random:
            # Spatially sequential burst at a random pool offset.
            start = rng.randrange(self.p_pool)
            return [
                self.p_base + (start + index) % self.p_pool
                for index in range(count)
            ]
        blocks = []
        for _ in range(count):
            blocks.append(self.p_base + self.p_cursor)
            self.p_cursor = (self.p_cursor + 1) % self.p_pool
        return blocks

    def next_s_block(self) -> Optional[int]:
        if not self.s_blocks:
            return None
        block = self.s_blocks[self.s_cursor]
        self.s_cursor = (self.s_cursor + 1) % len(self.s_blocks)
        return block

    def next_transient(self) -> int:
        block = self.transient_base + self.transients_used
        self.transients_used += 1
        return block

    def random_block(self, rng: random.Random) -> Optional[int]:
        if not self.random_pool:
            return None
        return self.random_base + rng.randrange(self.random_pool)

    #: Flip blocks per cache set: far above the 16-way associativity so
    #: the flip pool thrashes its sets and *re-misses* on every lap
    #: (a resident flip block would stop producing deltas, and a pool
    #: close to the associativity would be mostly LIN-protectable).
    FLIP_BLOCKS_PER_SET = 64

    #: Set-stride for flip lanes; a multiple of any power-of-two set
    #: count up to 64K, so all lanes of one offset share a cache set.
    FLIP_LANE_STRIDE = 1 << 16

    def next_flip_block(self) -> Tuple[int, bool]:
        """Next flip-pool block and whether this lap is the isolated one.

        The pool is folded onto a few cache sets (FLIP_BLOCKS_PER_SET
        blocks each) so consecutive laps always miss.
        """
        spread = max(1, self.flip_pool // self.FLIP_BLOCKS_PER_SET)
        lane, offset = divmod(self.flip_cursor, spread)
        block = self.flip_base + offset + lane * self.FLIP_LANE_STRIDE
        self.flip_cursor += 1
        if self.flip_cursor >= self.flip_pool:
            self.flip_cursor = 0
            self.flip_lap += 1
        return block, self.flip_lap % 2 == 0

    def next_companions(self, count: int) -> List[int]:
        """Fresh never-reused blocks that are guaranteed to miss.

        Burst-context visits need real parallel misses next to them; a
        companion drawn from a resident pool would hit and leave the
        visit isolated after all.
        """
        start = self.companions_used
        self.companions_used += count
        return [self.companion_base + start + index for index in range(count)]

    def next_burst_size(self) -> int:
        sizes = self.spec.burst_sizes
        burst = sizes[self.burst_rotation % len(sizes)]
        self.burst_rotation += 1
        return burst


def _skew_block(block: int, n_sets: int, skew: Tuple[float, float]) -> int:
    """Remap a block so its set index falls in a restricted range."""
    start = int(skew[0] * n_sets)
    width = max(1, int(skew[1] * n_sets))
    lane, offset = divmod(block, width)
    return lane * n_sets + start + offset


def generate_surrogate(
    spec: SurrogateSpec,
    l2_blocks: int,
    n_sets: int,
    seed: int = 0,
    line_bytes: int = 64,
) -> Trace:
    """Emit one surrogate trace.

    The trace is deterministic in (spec, l2_blocks, n_sets, seed).
    """
    rng = random.Random(seed)
    trace: List[Access] = []

    if spec.phases:
        schedule = list(spec.phases)
        states = [
            _PhaseState(phase_spec, l2_blocks, rng, index + 1)
            for index, (phase_spec, _) in enumerate(schedule)
        ]
    else:
        schedule = [(spec, spec.accesses)]
        states = [_PhaseState(spec, l2_blocks, rng, 1)]

    budget = spec.accesses
    pending_gap = 0
    phase_index = 0
    while budget > 0:
        phase_spec, quota = schedule[phase_index % len(schedule)]
        state = states[phase_index % len(states)]
        emitted = _emit_phase(
            trace, phase_spec, state, min(quota, budget), rng,
            n_sets, line_bytes, pending_gap,
        )
        pending_gap = 0
        budget -= emitted
        phase_index += 1
    return trace


def _draw_thresholds(
    spec: SurrogateSpec,
) -> Tuple[float, float, float, float]:
    """Cumulative draw probabilities making mix_* *access* fractions.

    A P draw emits a whole burst, so category draw weights are the
    desired access fraction divided by the accesses one draw emits.
    """
    avg_burst = sum(spec.burst_sizes) / len(spec.burst_sizes)
    cold_accesses = 1.0 + 2.0 * (1.0 - spec.random_isolated)
    p_fraction = max(
        0.0,
        1.0 - spec.mix_isolated - spec.transient_rate
        - spec.mix_random - spec.mix_flip,
    )
    weight_s = spec.mix_isolated
    weight_t = spec.transient_rate
    weight_r = spec.mix_random / cold_accesses
    weight_f = spec.mix_flip / 2.0  # flip draws average ~2 accesses
    weight_p = p_fraction / avg_burst
    total = weight_s + weight_t + weight_r + weight_f + weight_p
    if total <= 0:
        raise ValueError("surrogate spec emits no traffic")
    return (
        weight_s / total,
        (weight_s + weight_t) / total,
        (weight_s + weight_t + weight_r) / total,
        (weight_s + weight_t + weight_r + weight_f) / total,
    )


def _emit_phase(
    trace: List[Access],
    spec: SurrogateSpec,
    state: _PhaseState,
    quota: int,
    rng: random.Random,
    n_sets: int,
    line_bytes: int,
    pending_gap: int,
) -> int:
    """Emit up to ``quota`` accesses for one phase visit."""
    emitted = 0
    carry_gap = pending_gap
    threshold_s, threshold_t, threshold_r, threshold_f = _draw_thresholds(spec)

    store_threshold = int(spec.store_fraction * 100)

    def push(block: int, gap: int) -> None:
        nonlocal emitted, carry_gap
        if spec.set_skew is not None:
            block = _skew_block(block, n_sets, spec.set_skew)
        # Store placement is a deterministic hash of the block so a
        # given block keeps the same access kind on every visit; random
        # placement would perturb the window-stall structure between
        # laps and fabricate mlp-cost deltas out of thin air.
        is_store = (block * 2654435761) % 100 < store_threshold
        kind = STORE if is_store else LOAD
        trace.append(Access(block * line_bytes, kind, gap + carry_gap))
        carry_gap = 0
        emitted += 1

    while emitted < quota:
        draw = rng.random()
        if draw < threshold_s and state.s_blocks:
            block = state.next_s_block()
            if rng.random() < spec.context_noise:
                # Wrong context: the S block rides inside a P burst and
                # its miss is serviced in parallel (low cost this time).
                push(block, ISOLATING_GAP)
                for companion in state.next_companions(2):
                    push(companion, BURST_GAP)
                carry_gap = ISOLATING_GAP
            else:
                push(block, ISOLATING_GAP)
                carry_gap = ISOLATING_GAP  # isolate on both sides
        elif draw < threshold_t:
            push(state.next_transient(), ISOLATING_GAP)
            carry_gap = ISOLATING_GAP
        elif draw < threshold_r and state.random_pool:
            block = state.random_block(rng)
            if rng.random() < spec.random_isolated:
                push(block, ISOLATING_GAP)
                carry_gap = ISOLATING_GAP
            else:
                # Cold-pool visit riding in a parallel burst.
                push(block, ISOLATING_GAP)
                for companion in state.next_companions(2):
                    push(companion, BURST_GAP)
                carry_gap = ISOLATING_GAP
        elif draw < threshold_f and state.flip_pool:
            block, isolated_lap = state.next_flip_block()
            if isolated_lap:
                push(block, ISOLATING_GAP)
                carry_gap = ISOLATING_GAP
            else:
                push(block, ISOLATING_GAP)
                for companion in state.next_companions(2):
                    push(companion, BURST_GAP)
                carry_gap = ISOLATING_GAP
        else:
            burst = state.next_burst_size()
            blocks = state.next_p_blocks(burst, rng)
            if rng.random() < spec.context_noise:
                # Wrong context: the stream is visited one block at a
                # time with window-draining gaps (isolated misses).
                for block in blocks:
                    push(block, ISOLATING_GAP)
                carry_gap = ISOLATING_GAP
            else:
                push(blocks[0], ISOLATING_GAP)
                for block in blocks[1:]:
                    push(block, BURST_GAP)
    return emitted
