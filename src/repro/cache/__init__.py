"""Cache substrate: tag stores, sets, and the replacement framework.

A :class:`~repro.cache.cache.SetAssociativeCache` is a pure tag store
(a timing simulator never needs the data), so the same class serves as
the paper's Main Tag Directory (MTD) and — instantiated sparsely — as
the Auxiliary Tag Directories (ATDs) of Section 6.

Replacement policies live in :mod:`repro.cache.replacement`; the cache
asks its policy for a victim and notifies it of hits and fills, so any
cost-sensitive scheme (the CARE engine of Figure 3a) plugs in without
touching the cache itself.
"""

from repro.cache.block import BlockState
from repro.cache.sets import CacheSet
from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.tag_directory import SparseTagDirectory
from repro.cache.replacement import (
    BeladyPolicy,
    CostThresholdPolicy,
    FIFOPolicy,
    LINPolicy,
    LRUPolicy,
    RandomPolicy,
    ReplacementPolicy,
)

__all__ = [
    "BlockState",
    "CacheSet",
    "SetAssociativeCache",
    "SparseTagDirectory",
    "AccessResult",
    "ReplacementPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "BeladyPolicy",
    "LINPolicy",
    "CostThresholdPolicy",
]
