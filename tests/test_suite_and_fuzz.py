"""Suite-runner tests and whole-simulator fuzz invariants."""

import json

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.runner import clear_cache
from repro.sim.suite import main as suite_main, run_suite
from repro.sim.simulator import Simulator
from repro.trace.record import IFETCH, LOAD, STORE, Access


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestSuiteRunner:
    def suite(self):
        return run_suite(
            policies=("lru", "lin(4)"),
            benchmarks=("lucas", "mcf"),
            scale=0.05,
        )

    def test_matrix_shape(self):
        suite = self.suite()
        assert suite.benchmarks == ["lucas", "mcf"]
        assert suite.policies == ["lru", "lin(4)"]
        assert suite.result("mcf", "lru").demand_misses > 0

    def test_baseline_improvement_is_zero(self):
        suite = self.suite()
        assert suite.improvement("lucas", "lru") == 0.0

    def test_json_roundtrip(self):
        suite = self.suite()
        payload = json.loads(suite.to_json())
        assert payload["scale"] == 0.05
        assert len(payload["runs"]) == 4
        run = payload["runs"][0]
        assert {"benchmark", "policy", "ipc", "mpki"} <= set(run)
        assert len(run["cost_histogram_pct"]) == 8

    def test_csv_has_header_and_rows(self):
        csv_text = self.suite().to_csv()
        lines = csv_text.strip().splitlines()
        assert lines[0].startswith("benchmark,policy")
        assert len(lines) == 5

    def test_text_rendering(self):
        text = self.suite().to_text()
        assert "mcf" in text and "IPC" in text

    def test_cli(self, tmp_path, capsys):
        json_path = str(tmp_path / "out.json")
        csv_path = str(tmp_path / "out.csv")
        code = suite_main(
            [
                "--policies", "lru,lip",
                "--benchmarks", "lucas",
                "--scale", "0.05",
                "--json", json_path,
                "--csv", csv_path,
            ]
        )
        assert code == 0
        assert json.load(open(json_path))["runs"]
        assert open(csv_path).read().startswith("benchmark")

    def test_empty_policies_rejected(self):
        with pytest.raises(ValueError):
            run_suite(policies=())


@st.composite
def random_traces(draw):
    """Small arbitrary traces mixing kinds, gaps, and wrong-path refs."""
    n = draw(st.integers(min_value=1, max_value=60))
    trace = []
    for _ in range(n):
        trace.append(
            Access(
                address=draw(st.integers(min_value=0, max_value=1 << 20)) * 8,
                kind=draw(st.sampled_from([LOAD, STORE, IFETCH])),
                gap=draw(st.integers(min_value=0, max_value=500)),
                wrong_path=draw(
                    st.booleans() if draw(st.booleans()) else st.just(False)
                ),
            )
        )
    return trace


class TestSimulatorFuzzInvariants:
    # small_machine is an immutable config; reusing it across examples
    # is safe, so the function-scoped-fixture health check is moot.
    @settings(
        max_examples=60, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(
        trace=random_traces(),
        policy=st.sampled_from(["lru", "lin(4)", "sbar", "dip"]),
    )
    def test_invariants_hold_on_arbitrary_traces(
        self, trace, policy, small_machine
    ):
        simulator = Simulator(small_machine, policy)
        result = simulator.run(trace)

        committed = [a for a in trace if not a.wrong_path]
        expected_instructions = sum(a.gap + 1 for a in committed)
        assert result.instructions == expected_instructions

        # Accounting invariants.
        assert 0 <= result.demand_misses <= len(committed)
        assert result.compulsory_misses <= result.demand_misses
        assert result.l2_misses <= result.l2_accesses
        assert result.stall_cycles <= result.cycles
        assert result.long_stalls <= result.stall_events
        # Every serviced demand miss got a cost; merged re-requests may
        # leave a small gap but never an excess.
        assert result.cost_distribution.total <= result.demand_misses
        # Costs are bounded below by overlap and above by queueing.
        if result.cost_distribution.total:
            assert 0 < result.cost_distribution.average < 10_000
        # Cycles cover the dispatch stream.
        assert result.cycles >= expected_instructions / 8 - 1e-6
        # Cache structure stays sane.
        for set_index in range(simulator.l2.n_sets):
            ways = simulator.l2.set_state(set_index).ways
            assert len(ways) <= small_machine.l2.associativity
            assert len({w.block for w in ways}) == len(ways)
            for way in ways:
                assert 0 <= way.cost_q <= 7

    @settings(
        max_examples=30, deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(trace=random_traces())
    def test_determinism(self, trace, small_machine):
        first = Simulator(small_machine, "lin(4)").run(list(trace))
        second = Simulator(small_machine, "lin(4)").run(list(trace))
        assert first.ipc == second.ipc
        assert first.demand_misses == second.demand_misses
        assert first.stall_cycles == second.stall_cycles
