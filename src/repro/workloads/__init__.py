"""Workloads: SPEC CPU2000 surrogates plus the workload registry.

The paper evaluates on 14 SPEC CPU2000 SimPoint slices.  Without the
Alpha binaries and reference inputs, each benchmark is replaced by a
parameterized synthetic *surrogate* whose generator is tuned to the
benchmark's published fingerprint:

* the mlp-cost distribution shape of Figure 2 (burst sizes and the
  isolated-access fraction),
* the delta predictability of Table 1 (context noise: blocks whose
  parallelism context changes between visits),
* the working-set-vs-cache relationship that determines whether LIN
  helps (mcf, vpr, art, ...) or hurts (bzip2, parser, mgrid), and
* phase structure (ammp's two alternating phases, Section 7.1).

Beyond the surrogates, :mod:`repro.workloads.registry` opens the
scenario space: imported address traces (``champsim:/path.xz``),
CDF-driven datacenter streams (``cdf(web_search,ops=2e6)``), and
composition operators (``interleave(mcf,art)``, ``splice(mcf@0.5,
ammp)``, ``scale(twolf,0.25)``) are all first-class workload specs —
usable anywhere a benchmark name is, including CLIs and the persistent
result store.  ``build_workload(spec)`` produces the packed trace;
``experiment_config()`` is the Table 2 machine with the L2 scaled to
256 KB so that working-set effects converge within Python-feasible
trace lengths (see DESIGN.md section 2).
"""

import warnings
from typing import Optional

from repro.trace.record import Trace
from repro.workloads.engine import SurrogateSpec, generate_surrogate
from repro.workloads.registry import (
    SurrogateWorkload,
    UnknownWorkloadError,
    Workload,
    WorkloadSpecError,
    available_workloads,
    build_workload,
    canonical_workload_spec,
    parse_workload_spec,
    register_workload,
    split_specs,
    workload_fingerprint,
)
from repro.workloads.spec2000 import (
    BENCHMARKS,
    PAPER_FIG5,
    PAPER_FIG9_SBAR,
    PAPER_TABLE1,
    PAPER_TABLE3,
    SPECS,
    experiment_config,
)


def build_trace(
    name: str, scale: float = 1.0, seed: Optional[int] = None
) -> Trace:
    """Deprecated: build a workload's trace as an ``Access`` list.

    Routed through the registry, so ``name`` may be any workload spec,
    not just a surrogate name.  New code should call
    :func:`build_workload`, which returns the packed column form every
    execution path now consumes — or go through :mod:`repro.api`
    (``repro.api.parse_workload_spec``), the supported import surface.
    """
    warnings.warn(
        "repro.workloads.build_trace() is deprecated; use "
        "build_workload(spec) or repro.api.parse_workload_spec()",
        DeprecationWarning,
        stacklevel=2,
    )
    workload = parse_workload_spec(name)
    if seed is not None:
        reseed = getattr(workload, "with_seed", None)
        if reseed is None:
            raise ValueError(
                "seed override is not supported for workload %r"
                % canonical_workload_spec(workload)
            )
        workload = reseed(seed)
    accesses = getattr(workload, "build_accesses", None)
    if accesses is not None:
        return accesses(scale)
    return workload.build(scale).to_accesses()


__all__ = [
    "SurrogateSpec",
    "generate_surrogate",
    "SPECS",
    "BENCHMARKS",
    "build_trace",
    "build_workload",
    "experiment_config",
    "Workload",
    "SurrogateWorkload",
    "register_workload",
    "parse_workload_spec",
    "available_workloads",
    "canonical_workload_spec",
    "workload_fingerprint",
    "split_specs",
    "UnknownWorkloadError",
    "WorkloadSpecError",
    "PAPER_TABLE1",
    "PAPER_TABLE3",
    "PAPER_FIG5",
    "PAPER_FIG9_SBAR",
]
