"""Differential tests: policies that must be behaviorally identical.

Two families of equivalences the paper's constructions imply:

* **LIN with lambda = 0 is LRU** (Equation 2 degenerates to pure
  recency).  Checked both directly on randomized cache sets and
  end-to-end: full simulations under ``lin(0)`` and ``lru`` must make
  bit-identical victim choices on randomized traces, observed through
  the event trace.
* **CBS with a saturated PSEL is its winning policy.**  When the
  selector's MSB cannot flip during a run, every follower set obeys
  the same fixed policy, so the victim stream matches the standalone
  policy exactly (saturated high -> ``lin(4)``, low -> ``lru``).
* **AWRP with equal weights is LRU.**  With ``weight = 0`` the
  adaptive rank reduces to pure recency and the frequency counters
  carry nothing, so every victim choice must match LRU's.
"""

from __future__ import annotations

import random

import pytest

from repro import obs
from repro.cache.block import BlockState
from repro.cache.replacement import AWRPPolicy, LINPolicy, LRUPolicy
from repro.cache.sets import CacheSet
from repro.sbar.cbs import CBSController
from repro.sim.simulator import Simulator
from repro.trace.record import LOAD, STORE, Access


def random_trace(seed: int, n_accesses: int = 1500, n_blocks: int = 48):
    """Seeded random access stream with reuse, stores, and bursts."""
    rng = random.Random(seed)
    trace = []
    hot = [rng.randrange(n_blocks) for _ in range(8)]
    for _ in range(n_accesses):
        if rng.random() < 0.3:
            block = rng.choice(hot)
        else:
            block = rng.randrange(n_blocks)
        kind = STORE if rng.random() < 0.15 else LOAD
        trace.append(Access(64 * block, kind, gap=rng.randrange(6)))
    return trace


def victim_stream(policy, config, trace):
    """Run ``trace`` and return L2 victim_selected events, policy-less.

    The ``policy`` field is stripped (the two runs carry different
    names by construction); everything else — order, set, block,
    cost_q, dirtiness — must match exactly.
    """
    sink = obs.MemoryEventTrace()
    observer = obs.Observer(events=sink)
    simulator = Simulator(config, policy, observer=observer)
    result = simulator.run(list(trace))
    events = [
        {k: v for k, v in event.items() if k != "policy"}
        for event in sink.of_type("victim_selected")
        if event["cache"] == "l2"
    ]
    return events, result


class TestLinZeroIsLru:
    def test_choose_victim_identical_on_random_sets(self):
        """Direct property: LIN(0) scores reduce to recency alone."""
        rng = random.Random(1234)
        lin0 = LINPolicy(0)
        lru = LRUPolicy()
        for _ in range(300):
            associativity = rng.choice([2, 4, 8])
            cache_set = CacheSet(associativity)
            for block in rng.sample(range(1000), associativity):
                state = BlockState(block, 0)
                state.cost_q = rng.randrange(8)
                cache_set.insert_mru(state)
            assert lin0.choose_victim(cache_set) == lru.choose_victim(
                cache_set
            )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_identical_victim_streams(self, small_machine, seed):
        trace = random_trace(seed)
        lin_events, lin_result = victim_stream("lin(0)", small_machine,
                                               trace)
        lru_events, lru_result = victim_stream("lru", small_machine, trace)
        assert lin_events == lru_events
        assert lin_events, "trace produced no L2 evictions"
        assert lin_result.demand_misses == lru_result.demand_misses
        assert lin_result.cycles == lru_result.cycles
        assert lin_result.ipc == lru_result.ipc

    def test_lin_four_actually_diverges(self, small_machine):
        """Sanity: the comparison has teeth — lambda=4 differs."""
        for seed in range(5):
            trace = random_trace(seed)
            lin_events, _ = victim_stream("lin(4)", small_machine, trace)
            lru_events, _ = victim_stream("lru", small_machine, trace)
            if lin_events != lru_events:
                return
        pytest.fail("lin(4) never diverged from lru on any seed")


class TestAwrpZeroIsLru:
    def test_choose_victim_identical_on_random_sets(self):
        """Direct property: weight 0 zeroes the frequency term."""
        rng = random.Random(4321)
        awrp0 = AWRPPolicy(0)
        lru = LRUPolicy()
        for _ in range(300):
            associativity = rng.choice([2, 4, 8])
            cache_set = CacheSet(associativity)
            for block in rng.sample(range(1000), associativity):
                state = BlockState(block, 0)
                cache_set.insert_mru(state)
                # Seed arbitrary frequency history; weight 0 must
                # make it irrelevant.
                awrp0._counts[block] = rng.randrange(16)
            assert awrp0.choose_victim(cache_set) == lru.choose_victim(
                cache_set
            )

    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_identical_victim_streams(self, small_machine, seed):
        trace = random_trace(seed)
        awrp_events, awrp_result = victim_stream("awrp(0)", small_machine,
                                                 trace)
        lru_events, lru_result = victim_stream("lru", small_machine, trace)
        assert awrp_events == lru_events
        assert awrp_events, "trace produced no L2 evictions"
        assert awrp_result.demand_misses == lru_result.demand_misses
        assert awrp_result.cycles == lru_result.cycles
        assert awrp_result.ipc == lru_result.ipc

    def test_weighted_awrp_actually_diverges(self, small_machine):
        """Sanity: the comparison has teeth — a real weight differs."""
        for seed in range(10):
            trace = random_trace(seed)
            awrp_events, _ = victim_stream("awrp(8)", small_machine, trace)
            lru_events, _ = victim_stream("lru", small_machine, trace)
            if awrp_events != lru_events:
                return
        pytest.fail("awrp(8) never diverged from lru on any seed")


def saturated_cbs(config, high: bool) -> CBSController:
    """A CBS controller whose PSEL MSB cannot flip during a short run.

    With 20 selector bits the MSB threshold sits at 2**19; pinning the
    counter to the saturation rail leaves ~5 * 10**5 of slack, orders
    of magnitude more than a few thousand accesses can move it (each
    divergence shifts at most cost_q <= 7).
    """
    controller = CBSController(
        n_sets=config.l2.n_sets,
        associativity=config.l2.associativity,
        lam=4,
        scope="global",
        psel_bits=20,
    )
    psel = controller.psel_for_set(0)
    psel.value = psel.max_value if high else 0
    return controller


class TestSaturatedCbsMatchesWinner:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_saturated_high_is_lin(self, small_machine, seed):
        trace = random_trace(seed)
        cbs_events, cbs_result = victim_stream(
            saturated_cbs(small_machine, high=True), small_machine, trace
        )
        lin_events, lin_result = victim_stream("lin(4)", small_machine,
                                               trace)
        assert cbs_events == lin_events
        assert cbs_events, "trace produced no L2 evictions"
        assert cbs_result.demand_misses == lin_result.demand_misses
        assert cbs_result.cycles == lin_result.cycles

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_saturated_low_is_lru(self, small_machine, seed):
        trace = random_trace(seed)
        cbs_events, cbs_result = victim_stream(
            saturated_cbs(small_machine, high=False), small_machine, trace
        )
        lru_events, lru_result = victim_stream("lru", small_machine, trace)
        assert cbs_events == lru_events
        assert cbs_result.demand_misses == lru_result.demand_misses
        assert cbs_result.cycles == lru_result.cycles

    def test_msb_never_flipped(self, small_machine):
        """The saturation premise itself: the MSB holds for the run."""
        for high in (True, False):
            controller = saturated_cbs(small_machine, high=high)
            Simulator(small_machine, controller).run(random_trace(7))
            assert controller.psel_for_set(0).msb is high
