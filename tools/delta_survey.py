"""Table 1 tuning aid."""
import sys
from repro.sim.runner import run_policy
from repro.workloads import BENCHMARKS, PAPER_TABLE1

names = sys.argv[1:] or BENCHMARKS
print('%-9s %6s %6s %6s %6s | paper %4s %4s %4s %5s' % (
    'bench', '<60', '60-119', '>=120', 'avg', '<60', '6-12', '>=120', 'avg'))
for b in names:
    r = run_policy(b, 'lru', scale=1.0)
    d = r.delta_summary
    p = PAPER_TABLE1[b]
    print('%-9s %5.0f%% %5.0f%% %5.0f%% %6.0f | paper %3d%% %3d%% %4d%% %5s' % (
        b, d.pct_below_60, d.pct_60_to_119, d.pct_120_plus, d.average,
        p[0], p[1], p[2], p[3] if p[3] else '-'))
