"""First-class policy registry: spec strings in, CARE engines out.

Historically :func:`repro.sim.simulator.build_l2_policy` owned an
if/elif ladder mapping spec strings (``"lru"``, ``"lin(4)"``,
``"sbar(simple-static,16)"``) to policy objects, which made user
policies second-class: a custom :class:`ReplacementPolicy` could be
passed as an *instance* but never named in a CLI, a suite matrix, or a
persistent-store key.  This module turns the ladder into a registry:

* :func:`register_policy` — decorator adding a name to the registry.
  Works on factory functions ``factory(config, *args) -> policy |
  controller | (fixed, controller)`` and directly on
  :class:`ReplacementPolicy` subclasses (spec arguments are coerced to
  int/float/str and passed to the constructor).
* :func:`parse_policy_spec` — resolve a spec string (or pass through a
  ready-made policy/controller instance) into the
  ``(fixed_policy, adaptive_controller)`` pair the simulator wires in.
* :func:`available_policies` — sorted registered names, quoted by the
  unknown-spec error message.
* :func:`split_specs` — the paren-aware comma splitter CLIs must use
  (``"lru,sbar(simple-static,16)"`` is two specs, not three).
* :func:`policy_fingerprint` — a content hash of the factory backing a
  spec, so the persistent result store can key on user-policy code.

Every built-in spec documented in ``docs/api.md`` is registered here;
the factories import their policy classes lazily because the sbar and
dip modules themselves import the cache package.
"""

from __future__ import annotations

import hashlib
import inspect
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.cache.replacement.base import ReplacementPolicy

#: factory signature: ``factory(config, *spec_args) -> built policy``.
PolicyFactory = Callable[..., object]

_REGISTRY: Dict[str, PolicyFactory] = {}
_BUILTIN: set = set()


class UnknownPolicyError(ValueError):
    """Raised for a spec naming no registered policy."""


def register_policy(
    name: str, *, overwrite: bool = False
) -> Callable[[PolicyFactory], PolicyFactory]:
    """Class/function decorator registering ``name`` as a policy spec.

    A registered *function* is called as ``factory(config, *args)``
    with the parenthesized spec arguments as raw strings.  A registered
    :class:`ReplacementPolicy` *subclass* is called as ``cls(*args)``
    with arguments coerced (int, then float, then str) — convenient for
    user policies whose constructors do not take a machine config::

        @register_policy("cost-biased-random")
        class CostBiasedRandomPolicy(ReplacementPolicy):
            def __init__(self, threshold=4): ...

        run_suite(policies=("lru", "cost-biased-random(7)"))
    """
    key = name.strip().lower()
    if not key or "(" in key or ")" in key or "," in key:
        raise ValueError("invalid policy name %r" % (name,))

    def decorator(factory: PolicyFactory) -> PolicyFactory:
        if key in _REGISTRY and not overwrite:
            raise ValueError(
                "policy %r is already registered; pass overwrite=True "
                "to replace it" % (key,)
            )
        _REGISTRY[key] = factory
        return factory

    return decorator


def available_policies() -> List[str]:
    """Sorted names accepted by :func:`parse_policy_spec`."""
    return sorted(_REGISTRY)


def split_specs(text: str) -> List[str]:
    """Split a comma-separated spec list, respecting parentheses.

    ``"lru,sbar(simple-static,16),lin(4)"`` →
    ``["lru", "sbar(simple-static,16)", "lin(4)"]``.  Empty fragments
    are dropped, so trailing commas are harmless.
    """
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for char in text:
        if char == "," and depth == 0:
            parts.append("".join(current))
            current = []
            continue
        if char == "(":
            depth += 1
        elif char == ")":
            depth = max(0, depth - 1)
        current.append(char)
    parts.append("".join(current))
    return [part.strip() for part in parts if part.strip()]


def _split_name_args(spec: str) -> Tuple[str, Tuple[str, ...]]:
    """``"sbar(simple-static,16)"`` → ``("sbar", ("simple-static", "16"))``."""
    name = spec.strip().lower()
    if "(" not in name:
        return name, ()
    if not name.endswith(")"):
        raise ValueError("malformed policy spec %r (unbalanced parens)" % spec)
    head, _, tail = name.partition("(")
    args = tuple(
        part.strip() for part in tail[:-1].split(",") if part.strip()
    )
    return head.strip(), args


def _coerce(arg: str) -> Union[int, float, str]:
    for cast in (int, float):
        try:
            return cast(arg)
        except ValueError:
            pass
    return arg


def parse_policy_spec(spec, config=None):
    """Resolve ``spec`` into ``(fixed_policy, adaptive_controller)``.

    Exactly one of the pair is non-None.  ``spec`` may be a registered
    spec string, a :class:`ReplacementPolicy` instance, or an adaptive
    controller (anything exposing ``policy_for_set``); instances pass
    through unchanged.  ``config`` defaults to the Table 2 baseline and
    is consulted by factories that size themselves to the cache
    geometry (sbar/dip leader-set counts).
    """
    if not isinstance(spec, str):
        if isinstance(spec, ReplacementPolicy):
            return spec, None
        if hasattr(spec, "policy_for_set"):
            return None, spec
        raise UnknownPolicyError(
            "policy spec must be a string, a ReplacementPolicy, or a "
            "controller with policy_for_set; got %r" % (spec,)
        )
    if config is None:
        from repro.config import baseline_config

        config = baseline_config()
    name, args = _split_name_args(spec)
    factory = _REGISTRY.get(name)
    if factory is None:
        raise UnknownPolicyError(
            "unknown policy spec %r; available policies: %s"
            % (spec, ", ".join(available_policies()))
        )
    if inspect.isclass(factory) and issubclass(factory, ReplacementPolicy):
        built = factory(*[_coerce(arg) for arg in args])
    else:
        built = factory(config, *args)
    if isinstance(built, tuple):
        return built
    if isinstance(built, ReplacementPolicy):
        return built, None
    return None, built


def policy_fingerprint(spec: str) -> str:
    """Content hash of the code backing ``spec``'s base name.

    Built-in policies are covered by the repro package hash already, so
    they fingerprint to a constant.  Externally registered factories
    hash their own source so the persistent result store invalidates
    when user-policy code changes.
    """
    name, _ = _split_name_args(spec)
    factory = _REGISTRY.get(name)
    if factory is None or name in _BUILTIN:
        return "builtin"
    try:
        source = inspect.getsource(factory)
    except (OSError, TypeError):
        source = repr(factory)
    return hashlib.sha256(source.encode("utf-8")).hexdigest()[:16]


# -- built-in policies ----------------------------------------------------
#
# Factories import lazily: sbar/dip import the cache package, so eager
# imports here would cycle.  The geometry-derived leader-set heuristics
# are unchanged from the original build_l2_policy ladder.


def _builtin(name: str) -> Callable[[PolicyFactory], PolicyFactory]:
    def decorator(factory: PolicyFactory) -> PolicyFactory:
        register_policy(name)(factory)
        _BUILTIN.add(name)
        return factory

    return decorator


@_builtin("lru")
def _build_lru(config):
    from repro.cache.replacement.lru import LRUPolicy

    return LRUPolicy()


@_builtin("lin")
def _build_lin(config, lam: Optional[str] = None):
    from repro.cache.replacement.lin import LINPolicy

    return LINPolicy(int(lam)) if lam is not None else LINPolicy()


@_builtin("sbar")
def _build_sbar(config, selection: Optional[str] = None, count=None):
    from repro.sbar.sbar import SBARController

    n_sets = config.l2.n_sets
    assoc = config.l2.associativity
    if selection is None:
        # 32 leaders at the paper's 1024-set geometry; proportionally
        # denser (1/16 of sets, floor 8) on scaled-down caches, where
        # shorter traces put a premium on detection speed.  Tiny caches
        # clamp to one leader per set.
        n_leaders = min(n_sets, max(8, min(32, n_sets // 16)))
        return SBARController(n_sets, assoc, n_leaders=n_leaders)
    if count is None:
        raise ValueError("sbar(<selection>,<leaders>) needs both arguments")
    return SBARController(
        n_sets,
        assoc,
        n_leaders=int(count),
        selection=selection.strip(),
        epoch_instructions=2_000_000,
    )


@_builtin("ehc")
def _build_ehc(config, horizon: Optional[str] = None):
    from repro.cache.replacement.ehc import EHCPolicy

    return EHCPolicy(int(horizon)) if horizon is not None else EHCPolicy()


@_builtin("awrp")
def _build_awrp(config, weight: Optional[str] = None):
    from repro.cache.replacement.awrp import AWRPPolicy

    return AWRPPolicy(float(weight)) if weight is not None else AWRPPolicy()


@_builtin("plru")
def _build_plru(config):
    from repro.cache.replacement.plru import TreePLRUPolicy

    return TreePLRUPolicy()


@_builtin("cost-plru")
def _build_cost_plru(config):
    from repro.cache.replacement.plru import CostAwareTreePLRUPolicy

    return CostAwareTreePLRUPolicy()


@_builtin("lip")
def _build_lip(config):
    from repro.cache.replacement.dip import LIPPolicy

    return LIPPolicy()


@_builtin("bip")
def _build_bip(config):
    from repro.cache.replacement.dip import BIPPolicy

    return BIPPolicy()


@_builtin("dip")
def _build_dip(config):
    from repro.cache.replacement.dip import DIPController

    n_sets = config.l2.n_sets
    n_leaders = min(32, max(8, n_sets // 16))
    return DIPController(n_sets, config.l2.associativity, n_leaders=n_leaders)


@_builtin("tournament")
def _build_tournament(config):
    from repro.cache.replacement.dip import BIPPolicy
    from repro.cache.replacement.lin import LINPolicy
    from repro.cache.replacement.lru import LRUPolicy
    from repro.sbar.tournament import TournamentController

    n_sets = config.l2.n_sets
    # A representative three-way field: recency, cost, insertion.
    return TournamentController(
        n_sets,
        [LRUPolicy(), LINPolicy(4), BIPPolicy()],
        n_leaders_per_policy=max(1, min(16, n_sets // 32)),
    )


@_builtin("cbs-local")
def _build_cbs_local(config):
    from repro.sbar.cbs import CBSController

    return CBSController(
        config.l2.n_sets, config.l2.associativity, scope="local"
    )


@_builtin("cbs-global")
def _build_cbs_global(config):
    from repro.sbar.cbs import CBSController

    return CBSController(
        config.l2.n_sets, config.l2.associativity, scope="global"
    )


__all__ = [
    "register_policy",
    "parse_policy_spec",
    "available_policies",
    "split_specs",
    "policy_fingerprint",
    "UnknownPolicyError",
]
