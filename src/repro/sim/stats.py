"""Simulation statistics and results.

Everything the paper's evaluation section reads off a run is collected
here: IPC, L2 demand misses and their mlp-cost distribution, the
Table 1 delta study, and the Figure 11 phase samples.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional

from repro.mlp.cost import QUANTIZATION_STEP, quantize_cost
from repro.mlp.delta import DeltaSummary

N_COST_BINS = 8


@dataclass
class PhaseSample:
    """One Figure 11 sampling interval (10M instructions in the paper)."""

    start_instruction: int
    end_instruction: int = 0
    start_cycle: float = 0.0
    end_cycle: float = 0.0
    misses: int = 0
    cost_q_sum: int = 0
    cost_count: int = 0

    @property
    def instructions(self) -> int:
        return self.end_instruction - self.start_instruction

    @property
    def ipc(self) -> float:
        cycles = self.end_cycle - self.start_cycle
        if cycles <= 0:
            return 0.0
        return self.instructions / cycles

    @property
    def misses_per_1000(self) -> float:
        if not self.instructions:
            return 0.0
        return 1000.0 * self.misses / self.instructions

    @property
    def avg_cost_q(self) -> float:
        if not self.cost_count:
            return 0.0
        return self.cost_q_sum / self.cost_count


class CostDistribution:
    """Histogram of mlp-cost over 60-cycle buckets (Figures 2 and 5)."""

    __slots__ = ("counts", "total", "cost_sum")

    def __init__(self) -> None:
        self.counts = [0] * N_COST_BINS
        self.total = 0
        self.cost_sum = 0.0

    def record(self, cost: float) -> None:
        bucket = int(cost // QUANTIZATION_STEP)
        if bucket >= N_COST_BINS:
            bucket = N_COST_BINS - 1
        self.counts[bucket] += 1
        self.total += 1
        self.cost_sum += cost

    @property
    def percentages(self) -> List[float]:
        if not self.total:
            return [0.0] * N_COST_BINS
        return [100.0 * count / self.total for count in self.counts]

    @property
    def average(self) -> float:
        if not self.total:
            return 0.0
        return self.cost_sum / self.total

    @property
    def pct_isolated(self) -> float:
        """Share of misses in the open 420+ bucket (isolated misses)."""
        if not self.total:
            return 0.0
        return 100.0 * self.counts[-1] / self.total

    def to_dict(self) -> Dict[str, object]:
        return {
            "counts": list(self.counts),
            "total": self.total,
            "cost_sum": self.cost_sum,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CostDistribution":
        distribution = cls()
        distribution.counts = [int(c) for c in data["counts"]]
        distribution.total = int(data["total"])
        distribution.cost_sum = float(data["cost_sum"])
        return distribution


@dataclass
class SimResult:
    """Outcome of one simulation run."""

    #: Run provenance (currently ``{"kernel_used": ...}``), attached by
    #: the simulator after every run.  Deliberately an *unannotated*
    #: class attribute, not a dataclass field: ``asdict``/``to_dict``
    #: skip it, so content digests, store keys, and ``from_dict`` round
    #: trips never see it — all kernels are bit-identical by contract,
    #: and which rung actually ran is provenance, not content.  Results
    #: loaded from the store or memo therefore carry the *producing*
    #: run's kernel (or None when deserialized), which is the truth.
    meta = None

    policy_name: str
    instructions: int
    cycles: float
    l2_accesses: int
    l2_misses: int
    demand_misses: int
    compulsory_misses: int
    stall_events: int
    stall_cycles: float
    long_stalls: int
    cost_distribution: CostDistribution
    delta_summary: DeltaSummary
    phases: List[PhaseSample] = field(default_factory=list)
    l1d_accesses: int = 0
    l1d_misses: int = 0
    mshr_merges: int = 0
    mshr_full_stalls: int = 0
    bank_conflicts: int = 0
    bus_contended: int = 0
    writebacks: int = 0
    psel_final: Optional[int] = None
    #: Telemetry snapshot (:meth:`repro.obs.MetricsRegistry.snapshot`)
    #: attached by the simulator when metrics are enabled; plain nested
    #: dicts, so ``to_dict``/``from_dict`` round-trip it unchanged.
    metrics: Optional[Dict[str, object]] = None
    #: Oracle bounds and regret, attached by the suite's ``--oracle``
    #: annotation pass (:func:`repro.analysis.oracle.annotate_result`),
    #: never by the simulator itself — stored/cached results stay
    #: oracle-free and these default to None.  ``miss_regret`` is
    #: ``demand_misses - oracle_misses`` (excess over per-set OPT);
    #: ``stall_regret`` is ``stall_cycles - oracle_stall_cycles``
    #: (excess over the cost-weighted-OPT stall floor).
    oracle_misses: Optional[int] = None
    oracle_stall_cycles: Optional[float] = None
    miss_regret: Optional[int] = None
    stall_regret: Optional[float] = None

    @property
    def ipc(self) -> float:
        if self.cycles <= 0:
            return 0.0
        return self.instructions / self.cycles

    @property
    def mpki(self) -> float:
        """Demand misses per thousand instructions."""
        if not self.instructions:
            return 0.0
        return 1000.0 * self.demand_misses / self.instructions

    @property
    def compulsory_fraction(self) -> float:
        if not self.demand_misses:
            return 0.0
        return self.compulsory_misses / self.demand_misses

    @property
    def avg_mlp_cost(self) -> float:
        return self.cost_distribution.average

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe dict; exact inverse of :meth:`from_dict`.

        Floats survive the round trip bit-identically (Python's json
        emits shortest-repr floats), which the persistent result store
        relies on for serial-vs-cached equality.
        """
        data = asdict(self)
        data["cost_distribution"] = self.cost_distribution.to_dict()
        data["delta_summary"] = asdict(self.delta_summary)
        data["phases"] = [asdict(phase) for phase in self.phases]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "SimResult":
        payload = dict(data)
        payload["cost_distribution"] = CostDistribution.from_dict(
            payload["cost_distribution"]
        )
        payload["delta_summary"] = DeltaSummary(**payload["delta_summary"])
        payload["phases"] = [
            PhaseSample(**phase) for phase in payload["phases"]
        ]
        return cls(**payload)

    def summary_line(self) -> str:
        return (
            "%-22s IPC=%.4f misses=%d (%.1f MPKI, %.1f%% compulsory) "
            "avg-cost=%.0f stalls=%d"
            % (
                self.policy_name,
                self.ipc,
                self.demand_misses,
                self.mpki,
                100.0 * self.compulsory_fraction,
                self.avg_mlp_cost,
                self.stall_events,
            )
        )


__all__ = [
    "SimResult",
    "PhaseSample",
    "CostDistribution",
    "N_COST_BINS",
    "quantize_cost",
]
