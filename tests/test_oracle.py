"""The oracle referee: property, differential, and regression battery.

Three layers, per the oracle's contract:

* **Property tests** (seeded-random always; hypothesis-generated when
  available): no registered policy may ever report fewer demand misses
  than the per-set OPT bound, or fewer stall cycles than the
  cost-weighted-OPT floor, on the same trace and machine config.  Run
  over random small traces and the committed ChampSim fixture.
* **Differential tests**: ``ehc(1)`` (predict "last interval repeats")
  must make Belady's per-set decisions on strictly periodic streams,
  where the prediction is exact.
* **Regression tests** for the ``collapse_consecutive`` /
  ``next_use_distances`` edge cases the oracle leans on — previously
  only exercised indirectly through the Figure 1 analysis.
"""

from __future__ import annotations

import random
from pathlib import Path

import pytest

from repro.analysis.oracle import (
    annotate_result,
    oracle_report,
    oracle_store_key,
)
from repro.cache.replacement.belady import (
    NEVER,
    BeladyPolicy,
    collapse_consecutive,
    next_use_distances,
)
from repro.config import (
    CacheGeometry,
    MachineConfig,
    MemoryConfig,
    MSHRConfig,
    ProcessorConfig,
)
from repro.sim.simulator import Simulator
from repro.trace.packed import PackedTrace
from repro.trace.record import IFETCH, LOAD, STORE, Access

try:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - hypothesis ships in CI
    HAVE_HYPOTHESIS = False

FIXTURE = Path(__file__).parent / "fixtures" / "mix4k.champsim.gz"

#: Registered fixed policies the property battery referees.
PROPERTY_POLICIES = ("lru", "lin(4)", "plru", "lip", "ehc", "awrp")


def random_trace(seed: int, n_accesses: int = 1200, n_blocks: int = 40):
    """Seeded stream with hot blocks, stores, ifetches, and gaps."""
    rng = random.Random(seed)
    hot = [rng.randrange(n_blocks) for _ in range(6)]
    trace = []
    for _ in range(n_accesses):
        block = (
            rng.choice(hot) if rng.random() < 0.3
            else rng.randrange(n_blocks)
        )
        roll = rng.random()
        kind = STORE if roll < 0.1 else (IFETCH if roll < 0.2 else LOAD)
        trace.append(Access(64 * block, kind, gap=rng.randrange(8)))
    return trace


def assert_bounded(result, report, label=""):
    """The two floor properties, plus regret-field consistency."""
    annotated = annotate_result(result, report)
    assert annotated.miss_regret >= 0, (
        "%s: policy reported %d misses, below the OPT bound %d"
        % (label, result.demand_misses, report.opt_misses)
    )
    assert annotated.stall_regret >= 0, (
        "%s: policy reported %.0f stall cycles, below the floor %.0f"
        % (label, result.stall_cycles, report.cost_opt_stall_cycles)
    )
    assert annotated.oracle_misses == report.opt_misses
    assert annotated.oracle_stall_cycles == report.cost_opt_stall_cycles
    # Annotation must never mutate the cached original.
    assert result.miss_regret is None
    assert result.oracle_misses is None


class TestNextUseEdgeCases:
    """Regression coverage for the oracle's building blocks."""

    def test_empty_trace(self):
        assert collapse_consecutive([]) == []
        assert next_use_distances([]) == []

    def test_single_block(self):
        assert collapse_consecutive([5, 5, 5]) == [5]
        assert next_use_distances([5]) == [NEVER]

    def test_all_distinct_blocks_never_reuse(self):
        blocks = [3, 1, 4, 1, 5]
        assert collapse_consecutive(blocks) == blocks
        assert next_use_distances([3, 1, 4, 5]) == [NEVER] * 4

    def test_never_sentinel_at_trace_tail(self):
        # Every block's final occurrence carries the sentinel, and the
        # sentinel is the collation maximum (farther than any index).
        blocks = [1, 2, 1, 2]
        distances = next_use_distances(blocks)
        assert distances == [2, 3, NEVER, NEVER]
        assert all(d == NEVER or d > i for i, d in enumerate(distances))
        assert NEVER > len(blocks)

    def test_collapse_only_drops_adjacent_repeats(self):
        assert collapse_consecutive([7, 7, 2, 7, 7, 7, 2]) == [7, 2, 7, 2]

    def test_oracle_handles_empty_trace(self, small_machine):
        report = oracle_report(
            PackedTrace.from_accesses([]), small_machine, use_store=False
        )
        assert report.opt_misses == 0
        assert report.cost_opt_stall_cycles == 0.0
        assert report.l2_accesses == 0


class TestOracleBoundsRandomTraces:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4, 5])
    def test_no_policy_beats_the_oracle(self, small_machine, seed):
        trace = random_trace(seed)
        report = oracle_report(
            PackedTrace.from_accesses(list(trace)),
            small_machine,
            use_store=False,
        )
        for spec in PROPERTY_POLICIES:
            result = Simulator(small_machine, spec).run(list(trace))
            assert_bounded(result, report, "seed %d %s" % (seed, spec))

    def test_oracle_miss_bound_is_attainable_shape(self, small_machine):
        # The bound counts demand misses over the same L1-filtered
        # stream the machine sees: it can never exceed the stream's
        # demand length and never undercut its compulsory misses.
        trace = random_trace(99)
        report = oracle_report(
            PackedTrace.from_accesses(list(trace)),
            small_machine,
            use_store=False,
        )
        assert (
            report.compulsory_misses
            <= report.opt_misses
            <= report.l2_demand_accesses
        )
        assert report.cost_opt_misses >= report.compulsory_misses

    def test_report_round_trips_and_is_deterministic(self, small_machine):
        from repro.analysis.oracle import OracleReport

        trace = PackedTrace.from_accesses(list(random_trace(7)))
        first = oracle_report(trace, small_machine, use_store=False)
        second = oracle_report(trace, small_machine, use_store=False)
        assert first == second
        assert OracleReport.from_dict(first.to_dict()) == first


@pytest.mark.skipif(not HAVE_HYPOTHESIS, reason="hypothesis not installed")
class TestOracleBoundsGenerated:
    @settings(max_examples=20, deadline=None)
    @given(
        accesses=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=31),
                st.sampled_from([LOAD, STORE, IFETCH]),
                st.integers(min_value=0, max_value=3),
            ),
            max_size=250,
        )
    )
    def test_lru_and_ehc_never_beat_the_bounds(self, accesses):
        config = MachineConfig(
            processor=ProcessorConfig(),
            l1i=CacheGeometry(64, 64, 1, 1),
            l1d=CacheGeometry(64, 64, 1, 1),
            l2=CacheGeometry(4 * 4 * 64, 64, 4, 15),
            mshr=MSHRConfig(n_entries=32),
            memory=MemoryConfig(),
        )
        trace = [
            Access(64 * block, kind, gap=gap)
            for block, kind, gap in accesses
        ]
        report = oracle_report(
            PackedTrace.from_accesses(list(trace)), config, use_store=False
        )
        for spec in ("lru", "ehc"):
            result = Simulator(config, spec).run(list(trace))
            assert result.demand_misses >= report.opt_misses
            assert result.stall_cycles >= report.cost_opt_stall_cycles


class TestOracleBoundsChampsimFixture:
    @pytest.fixture(scope="class")
    def fixture_setup(self):
        from repro.workloads import build_workload, experiment_config

        trace = build_workload("champsim:%s" % FIXTURE, scale=1.0)
        config = experiment_config()
        report = oracle_report(trace, config, use_store=False)
        return trace, config, report

    @pytest.mark.parametrize(
        "spec", ["lru", "lin(4)", "sbar", "ehc", "awrp"]
    )
    def test_fixture_policies_respect_bounds(self, fixture_setup, spec):
        trace, config, report = fixture_setup
        result = Simulator(config, spec).run(trace)
        assert_bounded(result, report, "mix4k %s" % spec)


class TestEhcHorizonOneIsBelady:
    """``ehc(1)`` degenerates to Belady where its prediction is exact.

    On a strictly periodic stream in which every block recurs with a
    constant interval ([A,B,A,C] per set, so A has period 2 and B/C
    period 4 in L2-visible accesses), "last interval repeats" *is* the
    oracle, and first-touch blocks (predicted never-reused) coincide
    with Belady's farthest-next-use choice; the victim streams must be
    identical from the first eviction on.
    """

    @staticmethod
    def _config() -> MachineConfig:
        # One-block L1s pass the (repeat-free) stream through; 4-set
        # 2-way L2 so a 3-block per-set working set forces evictions.
        return MachineConfig(
            processor=ProcessorConfig(),
            l1i=CacheGeometry(64, 64, 1, 1),
            l1d=CacheGeometry(64, 64, 1, 1),
            l2=CacheGeometry(4 * 2 * 64, 64, 2, 15),
            mshr=MSHRConfig(n_entries=32),
            memory=MemoryConfig(),
        )

    @staticmethod
    def _periodic_trace(reps: int = 60):
        # Per set s: blocks s, s+4, s, s+8 — the unit repeats `reps`
        # times, interleaved across sets so no block repeats
        # back-to-back globally.
        trace = []
        for _ in range(reps):
            for offset in (0, 4, 0, 8):
                for set_index in range(4):
                    trace.append(
                        Access(64 * (set_index + offset), LOAD, gap=0)
                    )
        return trace

    def test_victim_streams_identical(self):
        from tests.test_differential import victim_stream

        config = self._config()
        trace = self._periodic_trace()
        blocks = [access.address >> 6 for access in trace]
        # Belady over the periodic *extension* (doubled stream, first
        # half's distances): ehc(1) models an endless periodic stream,
        # so the oracle must not "know" the trace stops — with the raw
        # distances the two legitimately diverge in the final period,
        # where true OPT evicts the blocks whose next use is NEVER.
        next_use = next_use_distances(blocks * 2)[: len(blocks)]
        belady = BeladyPolicy(next_use, expected_blocks=blocks)
        ehc_events, ehc_result = victim_stream("ehc(1)", config, trace)
        opt_events, opt_result = victim_stream(belady, config, trace)
        assert ehc_events, "periodic trace produced no L2 evictions"
        assert ehc_events == opt_events
        assert ehc_result.demand_misses == opt_result.demand_misses
        assert ehc_result.cycles == opt_result.cycles

    def test_ehc_diverges_from_lru_somewhere(self, small_machine):
        """Sanity: the equivalence above has teeth."""
        from tests.test_differential import victim_stream

        for seed in range(5):
            trace = random_trace(seed)
            ehc_events, _ = victim_stream("ehc(1)", small_machine, trace)
            lru_events, _ = victim_stream("lru", small_machine, trace)
            if ehc_events != lru_events:
                return
        pytest.fail("ehc(1) never diverged from lru on any seed")


class TestOracleStoreCaching:
    def test_report_cached_by_content_digest(self, small_machine):
        from repro.sim.store import default_store

        trace = PackedTrace.from_accesses(list(random_trace(11)))
        store = default_store()
        assert store is not None, "conftest should isolate a store"
        key = oracle_store_key(trace.content_digest(), small_machine)
        first = oracle_report(trace, small_machine)
        assert store.contains(key)
        hits_before = store.hits
        second = oracle_report(trace, small_machine)
        assert second == first
        assert store.hits == hits_before + 1

    def test_key_varies_with_trace_and_config(self, small_machine):
        from repro.workloads import experiment_config

        a = PackedTrace.from_accesses(list(random_trace(1)))
        b = PackedTrace.from_accesses(list(random_trace(2)))
        key_a = oracle_store_key(a.content_digest(), small_machine)
        assert key_a != oracle_store_key(b.content_digest(), small_machine)
        assert key_a != oracle_store_key(
            a.content_digest(), experiment_config()
        )


class TestSuiteOracleIntegration:
    def test_suite_rows_carry_regret_columns(self):
        from repro.sim.suite import run_suite

        suite = run_suite(
            policies=("lru", "ehc"),
            benchmarks=("art",),
            scale=0.05,
            oracle=True,
        )
        rows = suite.to_rows()
        assert len(rows) == 2
        for row in rows:
            assert row["oracle_misses"] == suite.oracle["art"]["opt_misses"]
            assert row["miss_regret"] >= 0
            assert row["stall_regret"] >= 0
        header = suite.to_csv().splitlines()[0]
        for column in ("oracle_misses", "oracle_stall_cycles",
                       "miss_regret", "stall_regret"):
            assert column in header

    def test_columns_default_to_none_without_oracle(self):
        from repro.sim.suite import run_suite

        suite = run_suite(
            policies=("lru",), benchmarks=("art",), scale=0.05
        )
        (row,) = suite.to_rows()
        assert row["miss_regret"] is None
        assert suite.oracle is None
