"""One cache set: an ordered collection of tag entries.

Ways are kept in recency order, MRU first, so the paper's recency value
``R(i)`` (highest = MRU, lowest = LRU) of the entry at position ``p`` is
``associativity - 1 - p``.  All policies, including LIN, read recency
straight from this ordering.
"""

from __future__ import annotations

from typing import List, Optional

from repro.cache.block import BlockState


class CacheSet:
    """A single set holding up to ``associativity`` blocks, MRU first."""

    __slots__ = ("associativity", "ways")

    def __init__(self, associativity: int) -> None:
        if associativity < 1:
            raise ValueError("associativity must be positive")
        self.associativity = associativity
        self.ways: List[BlockState] = []

    def find(self, block: int) -> int:
        """Position of ``block`` in the set, or -1."""
        for position, state in enumerate(self.ways):
            if state.block == block:
                return position
        return -1

    def recency(self, position: int) -> int:
        """The paper's R(i): ``assoc - 1`` for MRU down to 0 for LRU.

        Positions past the current fill level still map onto the LRU end
        (an under-filled set behaves as if padded with invalid ways).
        """
        return self.associativity - 1 - position

    def touch(self, position: int) -> BlockState:
        """Move the entry at ``position`` to MRU and return it."""
        state = self.ways.pop(position)
        self.ways.insert(0, state)
        return state

    @property
    def full(self) -> bool:
        return len(self.ways) >= self.associativity

    def insert_mru(self, state: BlockState) -> None:
        """Insert a freshly filled block at the MRU position."""
        if self.full:
            raise RuntimeError("insert into a full set without eviction")
        self.ways.insert(0, state)

    def evict(self, position: int) -> BlockState:
        """Remove and return the entry at ``position``."""
        return self.ways.pop(position)

    def snapshot(self) -> List[dict]:
        """JSON-safe view of the set, MRU first (event-trace payloads)."""
        return [
            {"block": state.block, "cost_q": state.cost_q,
             "dirty": state.dirty}
            for state in self.ways
        ]

    def get(self, block: int) -> Optional[BlockState]:
        position = self.find(block)
        if position < 0:
            return None
        return self.ways[position]

    def __len__(self) -> int:
        return len(self.ways)

    def __repr__(self) -> str:
        return "CacheSet(%s)" % ", ".join(hex(w.block) for w in self.ways)
