"""Shared experiment runner: memo + persistent store in front of the sim.

Most figures reuse the same (benchmark, policy) simulations — Figure 4
needs LIN(1..4) and LRU, Figure 9 reuses LRU and LIN(4) and adds SBAR —
so :func:`run_policy` is a two-level cache in front of
:class:`~repro.sim.simulator.Simulator`:

1. an in-process memo (free repeat lookups within one process), and
2. the persistent :mod:`repro.sim.store` (free repeat runs across
   processes, worker pools, and sessions).

Both levels key on the full (benchmark, policy-spec, scale, config,
phase-interval) tuple; the store additionally keys on code version so
it can never serve stale results.  ``use_cache=False`` bypasses both.
"""

from __future__ import annotations

import os
import warnings
from typing import Dict, Optional, Tuple

from repro import obs
from repro.config import MachineConfig
from repro.sim.options import RunOptions
from repro.sim.simulator import Simulator
from repro.sim.stats import SimResult
from repro.trace.packed import PackedTrace

_UNSET = object()

_CACHE: Dict[Tuple, SimResult] = {}

#: Per-process memo of built (and packed) workload traces, keyed on
#: (canonical workload spec, scale).  Synthesizing a macro trace costs
#: ~100ms and grid fan-out used to pay it once per *task*; with the
#: memo each worker process builds each workload at most once (workers
#: inherit this module, so :mod:`repro.sim.parallel` gets the benefit
#: for free).  Keying on the *canonical spec* — not the given spelling
#: — means ``" MCF "`` and ``"mcf"`` share an entry while distinct
#: specs (``"mcf"`` vs ``"interleave(mcf,art)"``) can never alias.
#: Packed columns are ~10x smaller than Access lists, which is what
#: makes caching several workloads at once affordable.
_TRACE_CACHE: Dict[Tuple[str, float], PackedTrace] = {}

#: Traces kept resident per process; oldest-inserted evicted beyond this.
TRACE_CACHE_MAX = 8

#: In-process memo counters, surfaced by :func:`cache_stats`.
_MEMO_HITS = {"memo_hits": 0, "simulations": 0,
              "trace_builds": 0, "trace_memo_hits": 0}


def trace_scale() -> float:
    """Global trace-length multiplier, settable via REPRO_SCALE.

    Benchmarks default to 1.0; set e.g. ``REPRO_SCALE=4`` for longer,
    more converged runs, or ``0.25`` for a quick smoke pass.
    """
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def packed_trace(benchmark, scale: Optional[float] = None) -> PackedTrace:
    """The packed trace for one workload spec, memoized per process.

    ``benchmark`` is any registry workload spec (a surrogate name, an
    imported trace, a composition — see
    :func:`repro.workloads.parse_workload_spec`) or a ready
    :class:`~repro.workloads.Workload`.  Each (canonical spec, scale)
    pair is built at most :data:`TRACE_CACHE_MAX`-bounded once per
    process.  Builds are deterministic, so the memo can never serve a
    stale trace.
    """
    from repro.workloads import parse_workload_spec

    workload = parse_workload_spec(benchmark)
    if scale is None:
        scale = trace_scale()
    key = (workload.canonical, scale)
    packed = _TRACE_CACHE.get(key)
    if packed is None:
        packed = workload.build(scale)
        if len(_TRACE_CACHE) >= TRACE_CACHE_MAX:
            _TRACE_CACHE.pop(next(iter(_TRACE_CACHE)))
        _TRACE_CACHE[key] = packed
        _MEMO_HITS["trace_builds"] += 1
    else:
        _MEMO_HITS["trace_memo_hits"] += 1
    return packed


def _memo_key(
    benchmark,
    policy_spec: str,
    scale: float,
    config: Optional[MachineConfig],
    phase_interval: Optional[int],
) -> Tuple:
    from repro.workloads import canonical_workload_spec

    # Metrics enablement is part of the key: a result computed with
    # telemetry off has no metrics snapshot to serve once it's on.
    # The workload canonicalizes like the policy spec does, so two
    # spellings of one spec share an entry and two specs never alias.
    return (canonical_workload_spec(benchmark),
            policy_spec.strip().lower(), scale, config,
            phase_interval, obs.metrics_enabled())


def run_policy(
    benchmark,
    policy_spec: str,
    scale: Optional[float] = None,
    config: Optional[MachineConfig] = None,
    phase_interval: Optional[int] = None,
    use_cache=_UNSET,
    options: Optional[RunOptions] = None,
) -> SimResult:
    """Simulate one workload under one policy.

    ``benchmark`` is any workload spec — a surrogate name (``"mcf"``),
    an imported trace (``"champsim:/path.xz"``), or a composition
    (``"interleave(mcf,art)"``); see
    :func:`repro.workloads.parse_workload_spec`.  ``policy_spec`` is a
    policy registry spec string (see
    :func:`repro.cache.replacement.registry.parse_policy_spec`).
    Results come from the in-process memo, then the persistent store,
    then a fresh simulation; ``RunOptions(use_cache=False)`` forces the
    simulation and skips both caches.  The bare ``use_cache`` keyword
    is a deprecated shim for ``options=RunOptions(use_cache=...)``.
    """
    from repro import workloads  # deferred: workloads import the sim layer
    from repro.sim.store import default_store, store_key

    if use_cache is _UNSET:
        use_cache = options.use_cache if options is not None else True
    else:
        if options is not None:
            raise TypeError(
                "run_policy: pass options=RunOptions(...) or use_cache, "
                "not both"
            )
        warnings.warn(
            "run_policy(use_cache=...) is deprecated; pass "
            "options=repro.sim.RunOptions(use_cache=...)",
            DeprecationWarning,
            stacklevel=2,
        )
    if scale is None:
        scale = trace_scale()
    key = _memo_key(benchmark, policy_spec, scale, config, phase_interval)
    if use_cache and key in _CACHE:
        _MEMO_HITS["memo_hits"] += 1
        return _CACHE[key]

    resolved_config = config if config is not None else (
        workloads.experiment_config()
    )
    store = default_store() if use_cache else None
    persistent_key = None
    if store is not None:
        persistent_key = store_key(
            benchmark, policy_spec, scale, resolved_config, phase_interval
        )
        result = store.load(persistent_key)
        if result is not None:
            _CACHE[key] = result
            return result

    trace = packed_trace(benchmark, scale=scale)
    simulator = Simulator(
        resolved_config,
        policy_spec,
        phase_interval=phase_interval,
        kernel=options.kernel if options is not None else "auto",
    )
    result = simulator.run(trace)
    _MEMO_HITS["simulations"] += 1
    if store is not None:
        store.save(
            persistent_key,
            result,
            workload=key[0],  # canonical spec (JSON-safe)
            policy_spec=policy_spec,
            scale=scale,
            phase_interval=phase_interval,
        )
    if use_cache:
        _CACHE[key] = result
    return result


def seed_cache(
    benchmark: str,
    policy_spec: str,
    scale: float,
    result: SimResult,
    config: Optional[MachineConfig] = None,
    phase_interval: Optional[int] = None,
) -> None:
    """Install a result into the in-process memo.

    The parallel engine uses this so results computed by workers are
    free for subsequent :func:`run_policy` calls in the parent.
    """
    _CACHE[_memo_key(benchmark, policy_spec, scale, config,
                     phase_interval)] = result


def ipc_improvement(result: SimResult, baseline: SimResult) -> float:
    """Percent IPC improvement over a baseline run (the figures' y-axis)."""
    if baseline.ipc <= 0:
        return 0.0
    return 100.0 * (result.ipc - baseline.ipc) / baseline.ipc


def miss_change(result: SimResult, baseline: SimResult) -> float:
    """Percent change in demand misses relative to a baseline run."""
    if baseline.demand_misses == 0:
        return 0.0
    return (
        100.0
        * (result.demand_misses - baseline.demand_misses)
        / baseline.demand_misses
    )


def cache_stats() -> Dict[str, int]:
    """Counters for both cache levels (memo + persistent store)."""
    from repro.sim.store import default_store

    stats = dict(_MEMO_HITS)
    store = default_store()
    stats.update(
        store.counters() if store is not None
        else {"store_hits": 0, "store_misses": 0, "store_quarantined": 0}
    )
    return stats


def clear_cache() -> None:
    """Drop memoized results and traces (tests use this for isolation)."""
    _CACHE.clear()
    _TRACE_CACHE.clear()
