"""Metrics registry: counters, gauges, and histograms with labels.

The registry is the deterministic half of the observability layer:
every value in a snapshot is a pure function of the simulated work
(wall-clock timing lives in :mod:`repro.obs.profile` instead), so two
runs of the same simulation — serial or fanned out across a worker
pool — produce bit-identical snapshots, and snapshots merge by simple
arithmetic:

* **counters** sum,
* **gauges** combine according to their declared aggregation
  (``max``/``min``/``sum``),
* **histograms** add their per-bucket counts (bucket bounds must
  match).

Labels are free-form keyword arguments (``counter.inc(cache="l2")``);
each label combination keys its own value.  Label sets serialize to a
sorted ``k=v`` string so snapshots are JSON-safe and deterministic.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

#: Gauge aggregation modes understood by :func:`merge_snapshots`.
GAUGE_AGGREGATIONS = ("max", "min", "sum")


def _label_key(labels: Dict[str, object]) -> str:
    """``{"cache": "l2", "kind": "rd"}`` → ``"cache=l2,kind=rd"`` (sorted)."""
    if not labels:
        return ""
    return ",".join(
        "%s=%s" % (key, labels[key]) for key in sorted(labels)
    )


class Counter:
    """Monotonically increasing value, one per label combination."""

    kind = "counter"
    __slots__ = ("name", "help", "_values")

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._values: Dict[str, float] = {}

    def inc(self, amount: float = 1, **labels) -> None:
        if amount < 0:
            raise ValueError("counters only go up, got %r" % amount)
        key = _label_key(labels)
        self._values[key] = self._values.get(key, 0) + amount

    def value(self, **labels) -> float:
        return self._values.get(_label_key(labels), 0)


class Gauge:
    """Point-in-time value with a declared cross-snapshot aggregation."""

    kind = "gauge"
    __slots__ = ("name", "help", "agg", "_values")

    def __init__(self, name: str, help: str = "", agg: str = "max") -> None:
        if agg not in GAUGE_AGGREGATIONS:
            raise ValueError(
                "gauge aggregation must be one of %s, got %r"
                % (", ".join(GAUGE_AGGREGATIONS), agg)
            )
        self.name = name
        self.help = help
        self.agg = agg
        self._values: Dict[str, float] = {}

    def set(self, value: float, **labels) -> None:
        """Record ``value``, folding it in by the gauge's aggregation."""
        key = _label_key(labels)
        current = self._values.get(key)
        self._values[key] = (
            value if current is None else _fold(self.agg, current, value)
        )

    def value(self, **labels) -> Optional[float]:
        return self._values.get(_label_key(labels))


class Histogram:
    """Counts of observations bucketed by fixed upper bounds.

    ``bounds`` are inclusive upper edges; an observation larger than
    every bound lands in the trailing overflow bucket, so ``counts``
    has ``len(bounds) + 1`` entries per label combination.
    """

    kind = "histogram"
    __slots__ = ("name", "help", "bounds", "_values", "_count_sum")

    def __init__(
        self, name: str, bounds: Sequence[float], help: str = ""
    ) -> None:
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        ordered = list(bounds)
        if ordered != sorted(ordered):
            raise ValueError("histogram bounds must be sorted")
        self.name = name
        self.help = help
        self.bounds = ordered
        self._values: Dict[str, List[int]] = {}

    def observe(self, value: float, **labels) -> None:
        key = _label_key(labels)
        counts = self._values.get(key)
        if counts is None:
            counts = self._values[key] = [0] * (len(self.bounds) + 1)
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                counts[index] += 1
                return
        counts[-1] += 1

    def counts(self, **labels) -> List[int]:
        counts = self._values.get(_label_key(labels))
        if counts is None:
            return [0] * (len(self.bounds) + 1)
        return list(counts)


def _fold(agg: str, current: float, incoming: float) -> float:
    if agg == "max":
        return current if current >= incoming else incoming
    if agg == "min":
        return current if current <= incoming else incoming
    return current + incoming  # "sum"


class MetricsRegistry:
    """Home of one simulation run's (or one process's) metrics.

    Instruments are get-or-create: asking twice for the same name
    returns the same object, and asking with a conflicting kind raises.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get(self, name: str, kind: str):
        metric = self._metrics.get(name)
        if metric is not None and metric.kind != kind:
            raise ValueError(
                "metric %r already registered as a %s" % (name, metric.kind)
            )
        return metric

    def counter(self, name: str, help: str = "") -> Counter:
        metric = self._get(name, "counter")
        if metric is None:
            metric = self._metrics[name] = Counter(name, help)
        return metric

    def gauge(self, name: str, help: str = "", agg: str = "max") -> Gauge:
        metric = self._get(name, "gauge")
        if metric is None:
            metric = self._metrics[name] = Gauge(name, help, agg)
        return metric

    def histogram(
        self, name: str, bounds: Sequence[float], help: str = ""
    ) -> Histogram:
        metric = self._get(name, "histogram")
        if metric is None:
            metric = self._metrics[name] = Histogram(name, bounds, help)
        return metric

    def snapshot(self) -> Dict[str, object]:
        """JSON-safe, deterministic dump of every instrument.

        Instruments with no recorded values are omitted so a snapshot
        only speaks about things that actually happened.
        """
        counters: Dict[str, object] = {}
        gauges: Dict[str, object] = {}
        histograms: Dict[str, object] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if not metric._values:
                continue
            values = {key: metric._values[key] for key in sorted(metric._values)}
            if metric.kind == "counter":
                counters[name] = values
            elif metric.kind == "gauge":
                gauges[name] = {"agg": metric.agg, "values": values}
            else:
                histograms[name] = {
                    "bounds": list(metric.bounds),
                    "values": {k: list(v) for k, v in values.items()},
                }
        return {
            "counters": counters,
            "gauges": gauges,
            "histograms": histograms,
        }


def merge_snapshots(
    snapshots: Iterable[Dict[str, object]],
) -> Dict[str, object]:
    """Combine snapshots into one; commutative except for nothing.

    Counters and histogram buckets sum; gauges fold by their recorded
    aggregation.  The result is independent of input order, which is
    what lets the parallel engine merge per-worker snapshots in any
    deterministic order and match the serial run exactly.
    """
    counters: Dict[str, Dict[str, float]] = {}
    gauges: Dict[str, Dict[str, object]] = {}
    histograms: Dict[str, Dict[str, object]] = {}
    for snapshot in snapshots:
        for name, values in snapshot.get("counters", {}).items():
            into = counters.setdefault(name, {})
            for key, value in values.items():
                into[key] = into.get(key, 0) + value
        for name, payload in snapshot.get("gauges", {}).items():
            agg = payload["agg"]
            into = gauges.setdefault(name, {"agg": agg, "values": {}})
            if into["agg"] != agg:
                raise ValueError(
                    "gauge %r merged with conflicting aggregations" % name
                )
            for key, value in payload["values"].items():
                current = into["values"].get(key)
                into["values"][key] = (
                    value if current is None else _fold(agg, current, value)
                )
        for name, payload in snapshot.get("histograms", {}).items():
            into = histograms.setdefault(
                name, {"bounds": list(payload["bounds"]), "values": {}}
            )
            if into["bounds"] != list(payload["bounds"]):
                raise ValueError(
                    "histogram %r merged with conflicting bounds" % name
                )
            for key, counts in payload["values"].items():
                current = into["values"].get(key)
                if current is None:
                    into["values"][key] = list(counts)
                else:
                    for index, count in enumerate(counts):
                        current[index] += count
    return {
        "counters": {k: _sorted_values(v) for k, v in sorted(counters.items())},
        "gauges": {
            k: {"agg": v["agg"], "values": _sorted_values(v["values"])}
            for k, v in sorted(gauges.items())
        },
        "histograms": {
            k: {"bounds": v["bounds"], "values": _sorted_values(v["values"])}
            for k, v in sorted(histograms.items())
        },
    }


def _sorted_values(values: Dict[str, object]) -> Dict[str, object]:
    return {key: values[key] for key in sorted(values)}


__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "merge_snapshots",
    "GAUGE_AGGREGATIONS",
]
