"""Section 6.6: SBAR vs CBS-global vs CBS-local.

The paper reports that SBAR is within 1% of the better of CBS-global /
CBS-local everywhere except art (CBS-local wins by ~2%) and ammp
(CBS-global 20.3% vs SBAR 18.3%), while needing 64x fewer ATD entries.
CBS carries two full auxiliary directories, so this experiment is the
most expensive one; it defaults to a representative benchmark subset.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.config import CacheGeometry
from repro.experiments.common import Report, fmt_pct, resolve_benchmarks
from repro.sbar.overhead import cbs_overhead, sbar_overhead
from repro.sim.runner import ipc_improvement, run_policy
from repro.workloads import experiment_config

DEFAULT_BENCHMARKS = ("art", "mcf", "ammp", "parser", "mgrid")

POLICIES = ("sbar", "cbs-global", "cbs-local")

PREWARM_POLICIES = ("lru",) + POLICIES


def run(
    scale: Optional[float] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Report:
    names = (
        list(DEFAULT_BENCHMARKS)
        if benchmarks is None
        else resolve_benchmarks(benchmarks)
    )
    report = Report(
        "cbs", "Section 6.6: SBAR vs CBS-global vs CBS-local"
    )
    rows = []
    for name in names:
        baseline = run_policy(name, "lru", scale=scale)
        row = [name]
        for policy in POLICIES:
            result = run_policy(name, policy, scale=scale)
            row.append(fmt_pct(ipc_improvement(result, baseline)))
        rows.append(row)
    report.add_table(["benchmark"] + list(POLICIES), rows)

    geometry: CacheGeometry = experiment_config().l2
    sbar_bytes = sbar_overhead(geometry).total_bytes
    global_bytes = cbs_overhead(geometry, per_set_psel=False).total_bytes
    local_bytes = cbs_overhead(geometry, per_set_psel=True).total_bytes
    report.add_note(
        "Storage on this cache geometry: SBAR %.0f B, CBS-global %.0f B,\n"
        "CBS-local %.0f B (CBS needs ~%.0fx more ATD storage than SBAR)."
        % (sbar_bytes, global_bytes, local_bytes, global_bytes / sbar_bytes)
    )
    return report
