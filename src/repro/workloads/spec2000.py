"""The 14 benchmark surrogates and the paper's published reference data.

Each :class:`SurrogateSpec` is tuned to the benchmark's fingerprint in
the paper (see the module docstring of :mod:`repro.workloads` and
DESIGN.md).  The ``PAPER_*`` dictionaries hold the published numbers so
experiment reports can print paper-vs-measured side by side.

Values transcribed from the paper:

* ``PAPER_TABLE1`` — delta distribution (% <60, % 60-119, % >=120) and,
  where the text states it, the average delta in cycles.
* ``PAPER_TABLE3`` — benchmark type, L2 misses (thousands) and
  compulsory-miss percentage.  A few Table 3 cells are corrupted in the
  source text; those are marked None.
* ``PAPER_FIG5`` — LIN(lambda=4) vs LRU: (miss change %, IPC change %).
* ``PAPER_FIG9_SBAR`` — SBAR IPC improvement (%), read off Figure 9
  (exact where the text states it: ammp 18.3, art 16).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.config import MachineConfig, scaled_config
from repro.trace.record import Trace
from repro.workloads.engine import SurrogateSpec, generate_surrogate

#: L2 capacity (KB) used by the experiments.  The Table 2 machine has a
#: 1 MB L2; experiments scale it to 256 KB so working-set effects
#: converge within Python-feasible trace lengths.  The MSHR, memory
#: system, and core are unchanged.
EXPERIMENT_L2_KB = 256


def experiment_config() -> MachineConfig:
    """The Table 2 machine with the experiment-scaled L2."""
    return scaled_config(EXPERIMENT_L2_KB)


# --------------------------------------------------------------------------
# Surrogate specifications
# --------------------------------------------------------------------------

_MCF_LIKE = SurrogateSpec(
    p_pool_factor=2.5, burst_sizes=(2,),
    mix_isolated=0.08, s_pool_factor=0.10, context_noise=0.02,
    random_pool_factor=8.0, mix_random=0.08, random_isolated=1.0,
)

_AMMP_PHASE_LIN = SurrogateSpec(
    p_pool_factor=1.5, burst_sizes=(2,), mix_isolated=0.17,
    s_pool_factor=0.19, context_noise=0.02, set_skew=(0.0, 0.6),
)
_AMMP_PHASE_LRU = SurrogateSpec(
    p_pool_factor=0.55, burst_sizes=(4,), p_random=True,
    mix_isolated=0.0, s_pool_factor=0.0, set_skew=(0.0, 0.6),
)

_GALGEL_PHASE_THRASH = SurrogateSpec(
    p_pool_factor=1.8, burst_sizes=(16, 4), mix_isolated=0.09,
    s_pool_factor=0.09,
)
_GALGEL_PHASE_FIT = SurrogateSpec(
    p_pool_factor=0.7, burst_sizes=(4,), p_random=True,
    mix_isolated=0.0, s_pool_factor=0.0,
    random_pool_factor=6.0, mix_random=0.010, random_isolated=0.7,
)

SPECS: Dict[str, SurrogateSpec] = {
    # High-MLP streaming with a working set ~2x the cache: LRU
    # thrashes, LIN's cost bias retains a persistent subset.
    "art": SurrogateSpec(
        accesses=150_000, p_pool_factor=2.0, burst_sizes=(16, 4),
        mix_isolated=0.02, s_pool_factor=0.02, store_fraction=0.10,
    ),
    # Pointer-heavy: parallelism-2 bursts, a reused isolated pool that
    # LIN protects, and unsavable cold isolated misses for dilution.
    "mcf": replace(_MCF_LIKE, accesses=150_000),
    # Deep random streams (little for LIN to lose) + a small
    # protectable isolated pool + heavy unsavable isolated traffic:
    # cold pinning raises stream misses while the pool's isolated hits
    # pay slightly more - misses up, IPC up slightly.
    "twolf": SurrogateSpec(
        accesses=140_000, p_pool_factor=2.5, burst_sizes=(3,),
        p_random=True, mix_isolated=0.11, s_pool_factor=0.12,
        context_noise=0.03,
        random_pool_factor=10.0, mix_random=0.12, random_isolated=1.0,
    ),
    # Like twolf with thrashier streams (less to lose) and more of the
    # isolated traffic savable: misses and stalls both drop.
    "vpr": SurrogateSpec(
        accesses=140_000, p_pool_factor=1.6, burst_sizes=(2,),
        p_random=True, mix_isolated=0.18, s_pool_factor=0.21,
        context_noise=0.02,
        random_pool_factor=8.0, mix_random=0.03, random_isolated=1.0,
    ),
    # Bimodal Figure 2 distribution: isolated peak (mostly unsavable)
    # plus a parallelism-2 peak; modest LIN win.
    "facerec": SurrogateSpec(
        accesses=140_000, p_pool_factor=6.0, burst_sizes=(2,),
        mix_isolated=0.03, s_pool_factor=0.04, context_noise=0.02,
        random_pool_factor=8.0, mix_random=0.10, random_isolated=1.0,
    ),
    # Two alternating phases (Section 7.1): a LIN-friendly mcf-like
    # phase and an LRU-friendly cold-poisoning phase, skewed to
    # different set ranges (Section 6.6).
    "ammp": SurrogateSpec(
        accesses=280_000,
        phases=((_AMMP_PHASE_LIN, 45_000), (_AMMP_PHASE_LRU, 45_000)),
    ),
    # Thrash phase (LIN filtering wins) alternating with a fitting
    # phase with mild cold poisoning (LRU wins).
    "galgel": SurrogateSpec(
        accesses=150_000,
        phases=((_GALGEL_PHASE_THRASH, 45_000), (_GALGEL_PHASE_FIT, 30_000)),
    ),
    # Deep uniform streaming; almost nothing for either policy.
    "equake": SurrogateSpec(
        accesses=140_000, p_pool_factor=8.0, burst_sizes=(8,),
        mix_isolated=0.0, s_pool_factor=0.0,
    ),
    # Near-fitting random-reuse working set + a trickle of cold blocks
    # whose visit context flips (Table 1 delta 126): mild regression.
    "bzip2": SurrogateSpec(
        accesses=140_000, p_pool_factor=0.78, burst_sizes=(4,),
        p_random=True, mix_isolated=0.0, s_pool_factor=0.0,
        random_pool_factor=6.0, mix_random=0.006, random_isolated=0.42,
        mix_flip=0.030, flip_pool_factor=0.15,
    ),
    # The worst LIN regression family: cold isolated blocks (plus pure
    # transients) pinned at maximal cost_q displace a cyclic working
    # set that fits exactly under LRU.
    "parser": SurrogateSpec(
        accesses=140_000, p_pool_factor=0.75, burst_sizes=(6,),
        p_random=True, mix_isolated=0.0, s_pool_factor=0.0,
        random_pool_factor=8.0, mix_random=0.012, random_isolated=0.6,
        transient_rate=0.002, mix_flip=0.04, flip_pool_factor=0.15,
    ),
    # Fully predictable costs (Table 1: 100% of deltas < 60): a small
    # protectable isolated pool; unsavable traffic keeps the win ~10%.
    "sixtrack": SurrogateSpec(
        accesses=140_000, p_pool_factor=4.0, burst_sizes=(4,),
        mix_isolated=0.03, s_pool_factor=0.04,
        random_pool_factor=8.0, mix_random=0.02, random_isolated=1.0,
    ),
    # Thrashing wide sweeps: LIN filtering slashes misses (paper -32%)
    # but the misses were cheap, so IPC moves far less.
    "apsi": SurrogateSpec(
        accesses=140_000, p_pool_factor=1.3, burst_sizes=(16, 4),
        mix_isolated=0.0, s_pool_factor=0.0,
        random_pool_factor=8.0, mix_random=0.15, random_isolated=1.0,
    ),
    # Streaming over a huge footprint: mostly compulsory misses,
    # nothing for replacement to save (paper: 0% miss change).
    "lucas": SurrogateSpec(
        accesses=130_000, p_pool_factor=10.0, burst_sizes=(4,),
        mix_isolated=0.0, s_pool_factor=0.0, store_fraction=0.02,
    ),
    # Heavier parser pattern (paper: IPC -33%, delta 187): more cold
    # isolated traffic against wide recency-friendly bursts.
    "mgrid": SurrogateSpec(
        accesses=140_000, p_pool_factor=0.70, burst_sizes=(12,),
        p_random=True, mix_isolated=0.0, s_pool_factor=0.0,
        random_pool_factor=10.0, mix_random=0.030, random_isolated=0.95,
        transient_rate=0.003, mix_flip=0.10, flip_pool_factor=0.20,
    ),
}

#: Benchmark order used throughout the paper's figures.
BENCHMARKS: List[str] = [
    "art", "mcf", "twolf", "vpr", "facerec", "ammp", "galgel",
    "equake", "bzip2", "parser", "sixtrack", "apsi", "lucas", "mgrid",
]

_SEEDS: Dict[str, int] = {
    name: 1000 + index for index, name in enumerate(BENCHMARKS)
}


def build_trace(name: str, scale: float = 1.0, seed: Optional[int] = None) -> Trace:
    """Generate the surrogate trace for ``name`` (deterministic)."""
    if name not in SPECS:
        raise KeyError(
            "unknown benchmark %r; choose from %s" % (name, BENCHMARKS)
        )
    config = experiment_config()
    spec = SPECS[name].scaled(scale)
    return generate_surrogate(
        spec,
        l2_blocks=config.l2.n_blocks,
        n_sets=config.l2.n_sets,
        seed=_SEEDS[name] if seed is None else seed,
        line_bytes=config.l2.line_bytes,
    )


# --------------------------------------------------------------------------
# Published reference data
# --------------------------------------------------------------------------

#: Table 1: (% delta < 60, % 60 <= delta < 120, % delta >= 120,
#: average delta in cycles or None where not stated in the text).
PAPER_TABLE1: Dict[str, Tuple[int, int, int, Optional[int]]] = {
    "art": (86, 7, 7, None),
    "mcf": (86, 7, 7, None),
    "twolf": (52, 12, 36, None),
    "vpr": (50, 14, 36, None),
    "facerec": (96, 0, 4, None),
    "ammp": (82, 10, 8, None),
    # The source text's galgel >=120 cell is corrupted ("2"); 20 is
    # the only value consistent with the row summing to 100.
    "galgel": (71, 9, 20, None),
    "equake": (78, 12, 10, None),
    "bzip2": (43, 15, 42, 126),
    "parser": (43, 5, 52, 109),
    "apsi": (85, 5, 10, None),
    "sixtrack": (100, 0, 0, None),
    "lucas": (84, 6, 10, None),
    "mgrid": (18, 16, 66, 187),
}

#: Table 3: (type, L2 misses in thousands, compulsory %).  None marks
#: cells corrupted in the source text.
PAPER_TABLE3: Dict[str, Tuple[str, Optional[int], float]] = {
    "art": ("FP", 9680, 0.5),
    "mcf": ("INT", 23123, 2.2),
    "twolf": ("INT", 859, 2.9),
    "vpr": ("INT", 541, 4.3),
    "ammp": ("FP", None, 5.1),
    "galgel": ("FP", 1333, 5.9),
    "equake": ("FP", 464, 14.2),
    "bzip2": ("INT", 572, 15.5),
    "facerec": ("FP", None, 18.0),
    "parser": ("INT", 382, 20.3),
    "sixtrack": ("FP", None, 20.6),
    "apsi": ("FP", None, 22.8),
    "lucas": ("FP", 441, 41.6),
    "mgrid": ("FP", 1932, 46.6),
}

#: Figure 5 insets: LIN(4) vs LRU, (miss change %, IPC change %).
PAPER_FIG5: Dict[str, Tuple[float, float]] = {
    "art": (-31.0, 19.0),
    "mcf": (-11.0, 22.0),
    "twolf": (7.0, 1.5),
    "vpr": (-9.0, 15.0),
    "facerec": (-3.0, 4.4),
    "ammp": (4.0, 4.2),
    "galgel": (-6.0, 5.1),
    "equake": (1.0, 0.2),
    "bzip2": (6.0, -3.3),
    "parser": (35.0, -16.0),
    "sixtrack": (-3.0, 10.0),
    "apsi": (-32.0, 4.7),
    "lucas": (0.0, 1.3),
    "mgrid": (3.0, -33.0),
}

#: Figure 9: SBAR IPC improvement over LRU (%), approximate where read
#: off the figure, exact where the text states it.
PAPER_FIG9_SBAR: Dict[str, float] = {
    "art": 16.0,
    "mcf": 22.0,
    "twolf": 1.5,
    "vpr": 15.0,
    "facerec": 4.4,
    "ammp": 18.3,
    "galgel": 7.0,
    "equake": 0.3,
    "bzip2": -0.3,
    "parser": -1.0,
    "sixtrack": 10.0,
    "apsi": 4.7,
    "lucas": 1.3,
    "mgrid": -1.0,
}
