"""Benchmark report schema, machine fingerprint, and validation.

A report is a plain JSON-safe dict:

.. code-block:: text

    {
      "schema": "repro.bench/v4",
      "tag": "pr8",
      "created_unix": 1754400000.0,
      "machine": {"platform": ..., "python": ..., "cpus": ...},
      "code_version": "<git commit or 'unknown'>",
      "micro": [{"name", "ops", "seconds", "ops_per_sec"}, ...],
      "macro": [{"workload", "policy", "accesses", "scale", "seconds",
                 "accesses_per_sec", "fused", "kernel",
                 "result": {"l2_misses", "cycles", "demand_misses",
                 "stall_cycles"}}, ...]
    }

v2 added two macro-cell fields: ``scale`` (the trace scale the cell
ran at, so any host can rebuild the exact trace) and ``fused`` (whether
the run took the fused replay loop — a silent fall-back to the generic
loop would otherwise read as a timing regression).

v3 added ``stall_cycles`` to the embedded result fields: with the
oracle's stall floor in the repo, stall behavior is now a first-class
comparison axis, and a policy change that trades misses for stalls
should trip the digest check even when miss counts happen to agree.

v4 added ``kernel`` to every macro cell: the replay kernel the cell was
*requested* under (``auto``/``batched``/``fused``/``generic``), so one
report can time the same workload/policy matrix per kernel and the
digest check can verify each kernel reproduces the same results.  The
``fused`` flag still records whether a fast replay loop actually ran.

v5 added ``kernel_used``: the rung the kernel ladder actually resolved
to (the request is only a ceiling — a host without the compiled
extension resolves a ``native`` request to ``batched``).  A committed
baseline therefore records both what was asked and what ran, and a
silent rung downgrade on a future host shows up as data.  Legacy
reports stay readable (``validate_report`` accepts v2–v4;
``check_macro_cell`` compares only the fields a report recorded and
re-simulates kernel-less cells under ``auto``).

``validate_report`` is the single source of truth for that shape; the
CI perf-smoke job and the bench CLI both call it, so a report that
lands in the repo is guaranteed parseable by future tooling.
``check_macro_cell`` re-simulates one cell and compares the embedded
machine-independent result fields — the digest check CI runs against
the committed baseline (results must match across hosts; timings are
never compared).
"""

from __future__ import annotations

import os
import platform
import subprocess
import time
from typing import Dict, List, Optional

#: Current report schema identifier; bump the suffix on breaking shape
#: changes so old reports stay recognizable.
SCHEMA = "repro.bench/v5"

#: Older schemas ``validate_report`` still accepts (committed baseline
#: reports from earlier PRs must stay checkable).
_LEGACY_SCHEMAS = ("repro.bench/v4", "repro.bench/v3", "repro.bench/v2")

_MICRO_FIELDS = {"name": str, "ops": int, "seconds": float,
                 "ops_per_sec": float}
_MACRO_FIELDS = {"workload": str, "policy": str, "accesses": int,
                 "scale": float, "seconds": float,
                 "accesses_per_sec": float, "fused": bool,
                 "kernel": str, "kernel_used": str, "result": dict}
#: Macro cell fields before v5 added the resolved ``kernel_used``.
_MACRO_FIELDS_V4 = {
    field: expected for field, expected in _MACRO_FIELDS.items()
    if field != "kernel_used"
}
#: Macro cell fields before v4 added the per-cell ``kernel``.
_MACRO_FIELDS_LEGACY = {
    field: expected for field, expected in _MACRO_FIELDS_V4.items()
    if field != "kernel"
}
_RESULT_FIELDS = {"l2_misses": int, "cycles": float, "demand_misses": int,
                  "stall_cycles": float}
#: Result fields required per schema version (v3 added stall_cycles).
_RESULT_FIELDS_V2 = {"l2_misses": int, "cycles": float,
                     "demand_misses": int}


def machine_fingerprint() -> Dict[str, object]:
    """Describe the host well enough to judge report comparability."""
    return {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": "%s %s" % (
            platform.python_implementation(), platform.python_version()
        ),
        "cpus": os.cpu_count() or 0,
    }


def code_version() -> str:
    """Current git commit, or ``"unknown"`` outside a checkout."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.SubprocessError):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    return out.stdout.strip() or "unknown"


def build_report(
    micro: List[Dict[str, object]],
    macro: List[Dict[str, object]],
    tag: str = "local",
    created_unix: Optional[float] = None,
) -> Dict[str, object]:
    """Assemble and validate a full benchmark report."""
    report = {
        "schema": SCHEMA,
        "tag": tag,
        "created_unix": (
            time.time() if created_unix is None else float(created_unix)
        ),
        "machine": machine_fingerprint(),
        "code_version": code_version(),
        "micro": micro,
        "macro": macro,
    }
    validate_report(report)
    return report


def _check_fields(entry: object, spec: Dict[str, type], where: str) -> None:
    if not isinstance(entry, dict):
        raise ValueError("%s: expected an object, got %r" % (where, entry))
    for field, expected in spec.items():
        if field not in entry:
            raise ValueError("%s: missing field %r" % (where, field))
        value = entry[field]
        # Accept ints where floats are declared (JSON round-trips may
        # narrow whole floats), never the reverse.
        if expected is float:
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise ValueError(
                    "%s: field %r must be a number, got %r"
                    % (where, field, value)
                )
        elif not isinstance(value, expected) or (
            expected is int and isinstance(value, bool)
        ):
            raise ValueError(
                "%s: field %r must be %s, got %r"
                % (where, field, expected.__name__, value)
            )


def validate_report(report: object) -> None:
    """Raise ``ValueError`` when ``report`` violates its schema.

    Accepts the current v5 schema and the legacy v4/v3/v2 schemas (v4
    macro cells lack ``kernel_used``, v3 additionally lack ``kernel``,
    v2 results additionally lack ``stall_cycles``); committed baseline
    reports from earlier PRs therefore stay valid.
    """
    if not isinstance(report, dict):
        raise ValueError("report must be an object, got %r" % (report,))
    schema = report.get("schema")
    if schema != SCHEMA and schema not in _LEGACY_SCHEMAS:
        raise ValueError(
            "unknown schema %r (expected %r or one of %r)"
            % (schema, SCHEMA, _LEGACY_SCHEMAS)
        )
    if schema == SCHEMA:
        macro_fields = _MACRO_FIELDS
    elif schema == "repro.bench/v4":
        macro_fields = _MACRO_FIELDS_V4
    else:
        macro_fields = _MACRO_FIELDS_LEGACY
    result_fields = (
        _RESULT_FIELDS_V2 if schema == "repro.bench/v2" else _RESULT_FIELDS
    )
    for field, expected in (
        ("tag", str), ("created_unix", float), ("machine", dict),
        ("code_version", str), ("micro", list), ("macro", list),
    ):
        _check_fields(report, {field: expected}, "report")
    for index, entry in enumerate(report["micro"]):
        where = "micro[%d]" % index
        _check_fields(entry, _MICRO_FIELDS, where)
        if entry["seconds"] <= 0 or entry["ops_per_sec"] <= 0:
            raise ValueError("%s: timings must be positive" % where)
    for index, entry in enumerate(report["macro"]):
        where = "macro[%d]" % index
        _check_fields(entry, macro_fields, where)
        if entry["seconds"] <= 0 or entry["accesses_per_sec"] <= 0:
            raise ValueError("%s: timings must be positive" % where)
        if entry["scale"] <= 0:
            raise ValueError("%s: scale must be positive" % where)
        _check_fields(entry["result"], result_fields, where + ".result")


def find_macro_cell(
    report: Dict[str, object],
    workload: str,
    policy: str,
    kernel: Optional[str] = None,
) -> Dict[str, object]:
    """Return the macro entry for ``workload``/``policy`` or raise.

    ``kernel`` narrows the match in a v4 report that times the same
    cell under several kernels; ``None`` returns the first match (the
    only one in legacy reports).
    """
    for entry in report["macro"]:
        if entry["workload"] == workload and entry["policy"] == policy:
            if kernel is None or entry.get("kernel") == kernel:
                return entry
    raise ValueError(
        "report has no macro cell %s/%s%s"
        % (workload, policy, "" if kernel is None else "/" + kernel)
    )


def check_macro_cell(
    report: Dict[str, object],
    workload: str,
    policy: str,
    kernel: Optional[str] = None,
) -> Dict[str, object]:
    """Re-simulate one macro cell and compare its embedded results.

    The comparison covers only the machine-independent ``result``
    fields — never timings — so it must pass on any host for a report
    produced by the same code.  The re-simulation requests the cell's
    recorded kernel (``auto`` for legacy cells): every kernel is
    bit-identical, so the digests must agree regardless, and a per-
    kernel v4 cell pins the divergence to the kernel that drifted.
    Returns the freshly simulated result payload on success; raises
    ``ValueError`` with a field-by-field diff on mismatch.
    """
    from repro.bench.macro import macro_result_fields, simulate_cell

    entry = find_macro_cell(report, workload, policy, kernel)
    result, _fused = simulate_cell(
        workload, policy, entry["scale"], kernel=entry.get("kernel", "auto")
    )
    fresh = macro_result_fields(result)
    recorded = entry["result"]
    # Compare only fields the report recorded: a legacy v2 baseline
    # has no stall_cycles but its cells must stay checkable.
    mismatches = [
        "%s: recorded %r, simulated %r" % (field, recorded[field], fresh[field])
        for field in _RESULT_FIELDS
        if field in recorded and recorded[field] != fresh[field]
    ]
    if mismatches:
        raise ValueError(
            "macro cell %s/%s (kernel %s) result mismatch (%s)"
            % (workload, policy, entry.get("kernel", "auto"),
               "; ".join(mismatches))
        )
    return fresh
