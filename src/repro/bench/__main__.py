"""CLI: ``python -m repro.bench [--out BENCH_<tag>.json]``.

Runs the micro- and macro-benchmarks and writes a schema-validated
report (see :mod:`repro.bench.report`).  ``--quick`` runs a smoke-sized
variant for CI; its timings are meaningless but the report shape and
the embedded simulation results are still checked.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.bench.macro import run_macro
from repro.bench.micro import run_micro
from repro.bench.report import build_report, validate_report


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure simulation-kernel performance and write a "
        "BENCH_<tag>.json report.",
    )
    parser.add_argument(
        "--out", default=None,
        help="output JSON path (default: BENCH_<tag>.json)",
    )
    parser.add_argument(
        "--tag", default="local",
        help="report tag recorded in the file (default: local)",
    )
    parser.add_argument(
        "--scale", type=float, default=0.5,
        help="macro-benchmark trace scale (default: 0.5)",
    )
    parser.add_argument(
        "--repeat", type=int, default=2,
        help="timed repetitions per macro cell, best-of (default: 2)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="smoke mode: tiny traces, single repetition (CI)",
    )
    args = parser.parse_args(argv)

    print("running micro-benchmarks%s..." % (" (quick)" if args.quick else ""))
    micro = run_micro(quick=args.quick)
    for entry in micro:
        print("  %-14s %10.0f ops/s" % (entry["name"], entry["ops_per_sec"]))

    print("running macro-benchmarks%s..." % (" (quick)" if args.quick else ""))
    macro = run_macro(
        scale=args.scale, repeat=args.repeat, quick=args.quick
    )
    for entry in macro:
        print(
            "  %-4s/%-7s %8.0f accesses/s  (%.3fs, %d L2 misses)"
            % (entry["workload"], entry["policy"],
               entry["accesses_per_sec"], entry["seconds"],
               entry["result"]["l2_misses"])
        )

    report = build_report(micro, macro, tag=args.tag)
    validate_report(report)
    out = args.out or ("BENCH_%s.json" % args.tag)
    with open(out, "w") as handle:
        json.dump(report, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print("wrote %s (schema %s, code %s)" % (
        out, report["schema"], report["code_version"]
    ))
    return 0


if __name__ == "__main__":
    sys.exit(main())
