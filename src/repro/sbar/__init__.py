"""Hybrid replacement: CBS and Sampling Based Adaptive Replacement.

Section 6 of the paper: two tag directories implementing rival policies
race, a saturating PSEL counter integrates which one avoids more
memory-stall cost, and the main cache follows the winner.

* :mod:`repro.sbar.psel` — the saturating policy-selector counter.
* :mod:`repro.sbar.cbs` — Contest Based Selection, per-set (CBS-local)
  and global (CBS-global), with full auxiliary directories.
* :mod:`repro.sbar.leader_sets` — constituencies and the simple-static /
  rand-dynamic leader selection policies of Section 6.4/6.6.
* :mod:`repro.sbar.sbar` — SBAR proper: leader sets run LIN in the main
  directory, a single sparse ATD-LRU shadows them, followers obey PSEL.
* :mod:`repro.sbar.sampling_model` — the analytical model of Section
  6.3 (Equations 3-5, Figure 8).
* :mod:`repro.sbar.overhead` — the 1854-byte hardware budget.
"""

from repro.sbar.psel import PolicySelector
from repro.sbar.leader_sets import (
    constituency_of,
    rand_dynamic_leaders,
    simple_static_leaders,
)
from repro.sbar.sampling_model import probability_best_policy
from repro.sbar.overhead import OverheadReport, sbar_overhead
from repro.sbar.sbar import SBARController
from repro.sbar.cbs import CBSController
from repro.sbar.tournament import TournamentController

__all__ = [
    "PolicySelector",
    "simple_static_leaders",
    "rand_dynamic_leaders",
    "constituency_of",
    "probability_best_policy",
    "sbar_overhead",
    "OverheadReport",
    "SBARController",
    "CBSController",
    "TournamentController",
]
