"""Instruction-window timing model of the Table 2 core.

An eight-wide core with a 128-entry window dispatches instructions in
program order at up to eight per cycle.  Instruction ``i`` cannot enter
the window before instruction ``i - W`` retires, and retirement is in
order, so a long-latency load eventually blocks the window: fetch
reaches ``load_index + W`` and waits for the load's completion.  This
is the paper's model of memory stalls ("instruction processing stalls
shortly after a long-latency miss occurs", Section 3) and is exactly
what makes misses *parallel* (dispatched within one window residency,
their service overlaps) or *isolated* (window drains in between).

The model is trace-driven and event-compressed: non-memory instructions
are folded into per-access gaps, and the only state is the fetch cursor
plus the in-window long-latency completions (with a running maximum for
in-order retirement).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Tuple


class WindowModel:
    """Fetch/dispatch/retire timing of the out-of-order window."""

    #: A stall at least this long counts as a "long-latency stall" —
    #: the events Figure 1 counts.  Shorter stalls (bus serialization,
    #: L2-hit latency) are tracked but reported separately.
    LONG_STALL_THRESHOLD = 100.0

    def __init__(self, width: int = 8, window_size: int = 128) -> None:
        if width < 1 or window_size < 1:
            raise ValueError("width and window size must be positive")
        self.width = width
        self.window_size = window_size
        self._index = 0          # instructions dispatched so far
        self._time = 0.0         # dispatch time of the latest instruction
        self._retire_cummax = 0.0
        # (instruction index, in-order completion frontier at that index)
        self._pending: Deque[Tuple[int, float]] = deque()
        self.stall_cycles = 0.0
        self.stall_events = 0
        self.long_stalls = 0
        self.final_completion = 0.0

    @property
    def instructions(self) -> int:
        """Committed instructions dispatched so far."""
        return self._index

    @property
    def now(self) -> float:
        """Dispatch time of the most recent instruction."""
        return self._time

    def advance(self, gap: int) -> float:
        """Dispatch ``gap`` non-memory instructions plus one memory access.

        Returns the dispatch time of the memory access.  Window-full
        stalls caused by pending long-latency completions are applied
        here: fetch halts at ``pending_index + W`` until the pending
        instruction's in-order completion frontier passes.
        """
        target = self._index + gap + 1
        window = self.window_size
        width = self.width
        pending = self._pending
        while pending and pending[0][0] + window <= target:
            blocked_index, frontier = pending.popleft()
            reach = blocked_index + window
            arrival = self._time + (reach - self._index) / width
            if frontier > arrival:
                self.stall_cycles += frontier - arrival
                self.stall_events += 1
                if frontier - arrival >= self.LONG_STALL_THRESHOLD:
                    self.long_stalls += 1
                self._time = frontier
            else:
                self._time = arrival
            self._index = reach
        self._time += (target - self._index) / width
        self._index = target
        return self._time

    def complete_memory_op(self, completion: float) -> None:
        """Register the completion time of the access just dispatched.

        The running maximum models in-order retirement: a younger access
        cannot retire before an older one.
        """
        if completion > self._retire_cummax:
            self._retire_cummax = completion
        if completion > self.final_completion:
            self.final_completion = completion
        self._pending.append((self._index, self._retire_cummax))

    def stall_until(self, when: float) -> None:
        """Externally stall fetch until ``when`` (store-buffer-full case)."""
        if when > self._time:
            self.stall_cycles += when - self._time
            self.stall_events += 1
            if when - self._time >= self.LONG_STALL_THRESHOLD:
                self.long_stalls += 1
            self._time = when

    def finish(self) -> float:
        """Cycle at which the whole trace has retired."""
        end = self._time
        if self._pending:
            end = max(end, self._pending[-1][1])
        return max(end, self.final_completion, 1.0)
