"""Optional compiled extensions.

``replaykernel`` (the C replay kernel behind the ``native`` rung of the
kernel ladder) lives here once built — ``make native`` or the optional
``build_ext`` in setup.py compile it in place.  The package must import
cleanly when the extension is absent: everything above it treats a
failed ``from repro._native import replaykernel`` as "no native rung"
and falls back to the batched kernel.
"""
