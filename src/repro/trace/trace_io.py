"""Trace persistence: save/load access traces as compact npz files.

Surrogate traces are deterministic, but saving them is useful for
sharing exact inputs across machines, for diffing generator versions,
and for feeding externally captured traces into the simulator.  The
format is four parallel numpy arrays (address, kind, gap, wrong_path)
plus a format version.
"""

from __future__ import annotations

from array import array
from typing import List

import numpy as np

from repro.trace.packed import PackedTrace
from repro.trace.record import Access, Trace

#: Bump when the on-disk layout changes.
FORMAT_VERSION = 1


def save_trace(path: str, trace: Trace) -> None:
    """Write a trace to ``path`` (numpy .npz, compressed).

    Accepts any iterable of ``Access`` records, including a
    :class:`~repro.trace.packed.PackedTrace`.
    """
    addresses = np.fromiter(
        (access.address for access in trace), dtype=np.int64, count=len(trace)
    )
    kinds = np.fromiter(
        (access.kind for access in trace), dtype=np.int8, count=len(trace)
    )
    gaps = np.fromiter(
        (access.gap for access in trace), dtype=np.int32, count=len(trace)
    )
    wrong = np.fromiter(
        (access.wrong_path for access in trace), dtype=bool, count=len(trace)
    )
    np.savez_compressed(
        path,
        version=np.int32(FORMAT_VERSION),
        address=addresses,
        kind=kinds,
        gap=gaps,
        wrong_path=wrong,
    )


def _load_columns(path: str):
    """Read and version-check the four parallel columns of a trace file."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                "trace file %s has format version %d; this build reads %d"
                % (path, version, FORMAT_VERSION)
            )
        return data["address"], data["kind"], data["gap"], data["wrong_path"]


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    addresses, kinds, gaps, wrong = _load_columns(path)
    trace: List[Access] = []
    for index in range(len(addresses)):
        trace.append(
            Access(
                int(addresses[index]),
                int(kinds[index]),
                int(gaps[index]),
                bool(wrong[index]),
            )
        )
    return trace


def load_packed_trace(path: str) -> PackedTrace:
    """Read a trace file straight into a :class:`PackedTrace`.

    The on-disk layout is already columnar, so the columns transfer
    without materializing a single ``Access``.  Files come from outside
    the package, so the packed constructor path re-validates the
    columns in bulk.
    """
    addresses, kinds, gaps, wrong = _load_columns(path)
    n = len(addresses)
    wrong_bits = bytearray((n + 7) // 8)
    n_wrong = 0
    for index in np.flatnonzero(wrong):
        wrong_bits[index >> 3] |= 1 << (index & 7)
        n_wrong += 1
    packed = PackedTrace(
        array("q", addresses.astype(np.int64).tolist()),
        array("b", kinds.astype(np.int8).tolist()),
        array("q", gaps.astype(np.int64).tolist()),
        wrong_bits,
        n_wrong,
    )
    packed.validate()
    return packed
