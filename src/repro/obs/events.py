"""Structured JSONL event traces of simulator internals.

Where metrics aggregate, the event trace narrates: one JSON object per
line for every miss lifecycle transition, MSHR occupancy change, cost
quantization, PSEL movement, and victim selection.  Timestamps are
*simulated* cycles, so a trace is deterministic and two traces of the
same simulation are diffable line by line — the property the
differential tests (LIN(0) vs LRU, saturated CBS vs its winner) are
built on.

Sinks:

* :class:`EventTrace` — appends to a JSONL file.  Fork-safe: a worker
  process inheriting the configuration writes to ``<path>.<pid>``
  instead of interleaving with its siblings.
* :class:`MemoryEventTrace` — collects events in a list (tests).
* :data:`NULL_TRACE` — swallows everything; the no-op sink installed
  when event tracing is disabled.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Optional


class NullEventTrace:
    """Sink that drops every event (the disabled-path no-op)."""

    enabled = False

    def emit(self, event: str, **fields) -> None:
        pass

    def flush(self) -> None:
        pass

    def close(self) -> None:
        pass


#: Shared do-nothing sink.
NULL_TRACE = NullEventTrace()


class EventTrace:
    """JSONL event sink appending to ``path``.

    The file opens lazily on the first event.  ``origin_pid`` is the
    process that configured tracing; any other process (a pool worker
    that inherited the configuration across ``fork``/``spawn``) gets
    its own ``<path>.<pid>`` file so concurrent workers never interleave
    writes.
    """

    enabled = True

    def __init__(self, path: str, origin_pid: Optional[int] = None) -> None:
        self.path = path
        self.origin_pid = origin_pid if origin_pid is not None else os.getpid()
        self._handle = None
        self._handle_pid: Optional[int] = None
        self.emitted = 0

    def _resolve_path(self, pid: int) -> str:
        if pid == self.origin_pid:
            return self.path
        return "%s.%d" % (self.path, pid)

    def _ensure_handle(self):
        pid = os.getpid()
        if self._handle is None or self._handle_pid != pid:
            # A handle inherited over fork is shared with the parent;
            # abandon it (never close the parent's fd) and open our own.
            self._handle = open(
                self._resolve_path(pid), "a", encoding="utf-8"
            )
            self._handle_pid = pid
        return self._handle

    def emit(self, event: str, **fields) -> None:
        fields["event"] = event
        self._ensure_handle().write(
            json.dumps(fields, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self.emitted += 1

    def flush(self) -> None:
        if self._handle is not None and self._handle_pid == os.getpid():
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None and self._handle_pid == os.getpid():
            self._handle.close()
        self._handle = None
        self._handle_pid = None


class MemoryEventTrace:
    """In-memory sink; ``events`` is a list of dicts (for tests)."""

    enabled = True

    def __init__(self) -> None:
        self.events: List[Dict[str, object]] = []

    def emit(self, event: str, **fields) -> None:
        fields["event"] = event
        self.events.append(fields)

    def of_type(self, event: str) -> List[Dict[str, object]]:
        return [e for e in self.events if e["event"] == event]

    def flush(self) -> None:
        pass

    def close(self) -> None:
        self.events = []


def read_events(path: str) -> List[Dict[str, object]]:
    """Load a JSONL event file back into dicts (tests, analysis)."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(json.loads(line))
    return events


__all__ = [
    "EventTrace",
    "MemoryEventTrace",
    "NullEventTrace",
    "NULL_TRACE",
    "read_events",
]
