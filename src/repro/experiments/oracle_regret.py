"""Regret vs the offline oracle: how far is each policy from optimal?

The paper argues minimizing misses is not the same as minimizing
stalls; this experiment makes the gap measurable by anchoring every
policy to the offline bounds of :mod:`repro.analysis.oracle`:
``miss regret`` (demand misses above per-set Belady OPT) and ``stall
regret`` (stall cycles above the cost-weighted-OPT floor).  LRU, the
paper's LIN and SBAR, and the successor policies EHC (expected-hit-
count Belady approximation) and AWRP (adaptive weight ranking) are
refereed on the same matrix, so "LIN beats LRU" becomes "LIN closes
X% of LRU's distance to optimal".
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import Report, resolve_benchmarks
from repro.sim.runner import packed_trace, run_policy, trace_scale

DEFAULT_BENCHMARKS = ("art", "mcf", "twolf", "equake", "parser", "ammp")

POLICIES = ("lru", "lin(4)", "sbar", "ehc", "awrp")

PREWARM_POLICIES = POLICIES


def run(
    scale: Optional[float] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Report:
    from repro.analysis.oracle import annotate_result, oracle_report

    names = (
        list(DEFAULT_BENCHMARKS)
        if benchmarks is None
        else resolve_benchmarks(benchmarks)
    )
    report = Report(
        "oracle", "Regret vs offline OPT / cost-weighted OPT bounds"
    )
    resolved = scale if scale is not None else trace_scale()

    miss_rows = []
    stall_rows = []
    for name in names:
        bounds = oracle_report(packed_trace(name, scale=resolved))
        miss_row = [name, bounds.opt_misses]
        stall_row = [name, round(bounds.cost_opt_stall_cycles)]
        for policy in POLICIES:
            annotated = annotate_result(
                run_policy(name, policy, scale=scale), bounds
            )
            miss_row.append(annotated.miss_regret)
            stall_row.append(round(annotated.stall_regret))
        miss_rows.append(miss_row)
        stall_rows.append(stall_row)

    report.add_note(
        "Miss regret: demand misses above the per-set Belady OPT bound\n"
        "computed over the L1-filtered reference stream (0 = optimal)."
    )
    report.add_table(
        ["benchmark", "OPT misses"] + list(POLICIES), miss_rows
    )
    report.add_note(
        "Stall regret: stall cycles above the cost-weighted-OPT floor\n"
        "(the floor charges each unavoidable miss chain one isolated\n"
        "miss latency minus what the instruction window can hide)."
    )
    report.add_table(
        ["benchmark", "stall floor"] + list(POLICIES), stall_rows
    )
    report.add_note(
        "Bounds and regret definitions: docs/policies.md; reproduce any\n"
        "row with python -m repro.sim.suite --oracle."
    )
    return report
