"""Wire protocol of the repro job service: newline-delimited JSON.

One TCP connection carries one request line and its response line(s).
Every message is a single JSON object terminated by ``\\n`` — trivially
implementable from any language (and debuggable with ``nc``), while
staying structured enough for remote worker hosts to speak the same
protocol later.

Requests carry an ``op`` field::

    {"op": "submit", "tenant": "alice", "benchmarks": ["mcf", "art"],
     "policies": ["lru", "lin(4)"], "scale": 0.25}
    {"op": "status", "job_id": "job-..."}
    {"op": "watch",  "job_id": "job-..."}
    {"op": "result", "job_id": "job-...", "include_results": false}
    {"op": "cancel", "job_id": "job-..."}
    {"op": "stats"} | {"op": "ping"} | {"op": "shutdown"}

Responses are ``{"ok": true, ...}`` or ``{"ok": false, "error":
{"code": ..., "message": ...}}``; quota and backpressure rejections
additionally carry ``retry_after_s`` (the 429 idiom: the client should
back off that long before resubmitting).  ``watch`` is the one
streaming op: after the initial response the server keeps the
connection open and writes one ``{"event": ...}`` line per cell
transition, ending with ``job_done``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: Bump when the message shapes change incompatibly.  Servers answer
#: ``ping`` with this so clients can refuse to talk across versions.
PROTOCOL_SCHEMA = "repro.service/v1"

#: Default TCP port of ``python -m repro serve``.
DEFAULT_PORT = 7663

#: Hard per-line ceiling: a line longer than this is a protocol error,
#: not an allocation. (Full-result payloads for big grids are the only
#: legitimately large messages.)
MAX_LINE_BYTES = 64 * 1024 * 1024

#: Requests the server understands.
OPS = (
    "submit", "status", "watch", "result", "cancel", "stats", "ping",
    "shutdown",
)

#: Error codes responses may carry.
ERROR_CODES = (
    "bad-request",      # malformed JSON / missing fields
    "unknown-op",
    "unknown-job",
    "quota-exceeded",   # per-tenant in-flight quota; has retry_after_s
    "queue-full",       # global backpressure; has retry_after_s
    "shutting-down",
)


class ProtocolError(ValueError):
    """A malformed or invalid message; ``code`` names the failure."""

    def __init__(self, message: str, code: str = "bad-request") -> None:
        super().__init__(message)
        self.code = code


def encode(message: Dict[str, object]) -> bytes:
    """One compact JSON line, newline-terminated, UTF-8."""
    return (
        json.dumps(message, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def decode(line) -> Dict[str, object]:
    """Parse one wire line into a message dict.

    Accepts bytes or str; raises :class:`ProtocolError` on anything
    that is not a single JSON object.
    """
    if isinstance(line, (bytes, bytearray)):
        if len(line) > MAX_LINE_BYTES:
            raise ProtocolError("message exceeds %d bytes" % MAX_LINE_BYTES)
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError:
            raise ProtocolError("message is not valid UTF-8")
    try:
        message = json.loads(line)
    except ValueError:
        raise ProtocolError("message is not valid JSON")
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def ok_response(**fields) -> Dict[str, object]:
    response: Dict[str, object] = {"ok": True}
    response.update(fields)
    return response


def error_response(
    code: str,
    message: str,
    retry_after_s: Optional[float] = None,
) -> Dict[str, object]:
    response: Dict[str, object] = {
        "ok": False,
        "error": {"code": code, "message": message},
    }
    if retry_after_s is not None:
        response["retry_after_s"] = round(float(retry_after_s), 3)
    return response


def event(name: str, **fields) -> Dict[str, object]:
    """One entry of a ``watch`` stream."""
    payload: Dict[str, object] = {"event": name}
    payload.update(fields)
    return payload


def _string_list(message: Dict[str, object], field: str) -> List[str]:
    value = message.get(field)
    if (
        not isinstance(value, (list, tuple))
        or not value
        or not all(isinstance(item, str) and item.strip() for item in value)
    ):
        raise ProtocolError(
            "%r must be a non-empty list of non-empty strings" % field
        )
    return [item.strip() for item in value]


def validate_submit(message: Dict[str, object]) -> Dict[str, object]:
    """Normalize a ``submit`` request; raises :class:`ProtocolError`.

    Returns ``{"tenant", "benchmarks", "policies", "scale", "options",
    "job_id"}`` with defaults applied.  ``options`` (when present) is
    the :meth:`repro.sim.options.RunOptions.to_wire` subset the client
    wants to override — the server decides which fields it honors.
    """
    benchmarks = _string_list(message, "benchmarks")
    policies = _string_list(message, "policies")
    tenant = message.get("tenant", "anonymous")
    if not isinstance(tenant, str) or not tenant.strip():
        raise ProtocolError("'tenant' must be a non-empty string")
    scale = message.get("scale")
    if scale is not None:
        try:
            scale = float(scale)
        except (TypeError, ValueError):
            raise ProtocolError("'scale' must be a number")
        if scale <= 0:
            raise ProtocolError("'scale' must be positive")
    options = message.get("options")
    if options is not None and not isinstance(options, dict):
        raise ProtocolError("'options' must be an object")
    job_id = message.get("job_id")
    if job_id is not None and (
        not isinstance(job_id, str) or not job_id.strip()
    ):
        raise ProtocolError("'job_id' must be a non-empty string")
    return {
        "tenant": tenant.strip(),
        "benchmarks": benchmarks,
        "policies": policies,
        "scale": scale,
        "options": options,
        "job_id": job_id,
    }


__all__ = [
    "PROTOCOL_SCHEMA",
    "DEFAULT_PORT",
    "MAX_LINE_BYTES",
    "OPS",
    "ERROR_CODES",
    "ProtocolError",
    "encode",
    "decode",
    "ok_response",
    "error_response",
    "event",
    "validate_submit",
]
