"""Suite runner: benchmark x policy matrices with machine-readable output.

Downstream users typically want the whole comparison grid, not single
runs.  :func:`run_suite` executes a (benchmarks x policies) matrix —
serially through the two-level result cache, or fanned out across a
worker pool with ``workers=N`` — and returns a :class:`SuiteResult`
that renders as text, JSON, or CSV, so results can feed external
plotting without re-simulation.

The parallel path is failure-tolerant: a task that keeps crashing or
times out becomes an entry in ``SuiteResult.failures`` and a hole in
the matrix rather than an exception, and ``SuiteResult.meta`` carries
the engine's observability report (per-task wall time, worker
utilization, cache hit/miss counters).

CLI::

    python -m repro.sim.suite --policies "lru,lin(4),sbar" --workers 8
"""

from __future__ import annotations

import argparse
import csv
import hashlib
import io
import json
import sys
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro import obs
from repro.cache.replacement.registry import split_specs
from repro.sim.options import UNSET as _UNSET
from repro.sim.options import RunOptions, resolve_options
from repro.sim.runner import ipc_improvement, run_policy
from repro.sim.stats import SimResult
from repro.workloads import BENCHMARKS

DEFAULT_POLICIES = ("lru", "lin(4)", "sbar")

#: Scalar fields exported per run.  The last four are the oracle
#: bounds/regret columns: None unless the suite ran with ``--oracle``.
EXPORT_FIELDS = (
    "ipc",
    "instructions",
    "cycles",
    "demand_misses",
    "mpki",
    "compulsory_misses",
    "long_stalls",
    "stall_cycles",
    "avg_mlp_cost",
    "writebacks",
    "oracle_misses",
    "oracle_stall_cycles",
    "miss_regret",
    "stall_regret",
)

#: Column order of :meth:`SuiteResult.to_rows` (and the CSV header).
ROW_FIELDS = (
    ("benchmark", "policy", "ipc_improvement_pct")
    + EXPORT_FIELDS
    + ("cost_histogram_pct",)
)


@dataclass
class SuiteResult:
    """Results of one suite run, indexed [benchmark][policy].

    ``failures`` maps benchmark -> policy -> error message for matrix
    cells the parallel engine could not complete; those cells are
    simply absent from ``results``.  ``meta`` is the engine's
    observability report (present when the suite ran with workers).
    """

    policies: List[str]
    benchmarks: List[str]
    results: Dict[str, Dict[str, SimResult]]
    scale: Optional[float]
    failures: Dict[str, Dict[str, str]] = field(default_factory=dict)
    meta: Optional[Dict[str, object]] = None
    #: benchmark -> serialized :class:`repro.analysis.oracle.OracleReport`
    #: when the suite ran with oracle bounds; None otherwise.
    oracle: Optional[Dict[str, Dict[str, object]]] = None

    def result(self, benchmark: str, policy: str) -> SimResult:
        return self.results[benchmark][policy]

    def improvement(self, benchmark: str, policy: str) -> Optional[float]:
        """IPC improvement over the first policy in the matrix.

        None when either this cell or the baseline cell failed.
        """
        cells = self.results.get(benchmark, {})
        baseline = cells.get(self.policies[0])
        result = cells.get(policy)
        if baseline is None or result is None:
            return None
        return ipc_improvement(result, baseline)

    def merged_metrics(self) -> Optional[Dict[str, object]]:
        """Merge of every cell's telemetry snapshot, or None.

        Deterministic: counters sum, gauges fold, histograms add, so
        the same matrix merges bit-identically whether it ran serially
        or across a pool (``tests/test_obs_integration.py`` locks this
        in).  Cells simulated with metrics off contribute nothing.
        """
        snapshots = [
            result.metrics
            for benchmark in self.benchmarks
            for result in (
                self.results.get(benchmark, {}).get(policy)
                for policy in self.policies
            )
            if result is not None and result.metrics is not None
        ]
        if not snapshots:
            return None
        return obs.merge_snapshots(snapshots)

    def content_digest(self) -> str:
        """Hash of the suite's *deterministic* content.

        Covers the scale, every completed cell's exported fields, the
        failure map, and the merged telemetry snapshot — and nothing
        host- or schedule-dependent (``meta`` carries wall times and
        worker pids, so it is excluded).  Two runs of the same matrix
        must digest identically whether they ran serially, across a
        pool, under chaos injection, or resumed from a journal; the
        chaos differential (``python -m repro.sim.chaos``) asserts
        exactly that.
        """
        payload = {
            "scale": self.scale,
            "runs": self.to_rows(),
            "failures": self.failures,
            "metrics": self.merged_metrics(),
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]

    # -- renderings -----------------------------------------------------

    def to_rows(self) -> List[Dict[str, object]]:
        """Flat list of dicts, one per completed (benchmark, policy) run."""
        rows: List[Dict[str, object]] = []
        for benchmark in self.benchmarks:
            for policy in self.policies:
                result = self.results.get(benchmark, {}).get(policy)
                if result is None:
                    continue
                improvement = self.improvement(benchmark, policy)
                row: Dict[str, object] = {
                    "benchmark": benchmark,
                    "policy": policy,
                    "ipc_improvement_pct": (
                        None if improvement is None else round(improvement, 3)
                    ),
                }
                for field_name in EXPORT_FIELDS:
                    row[field_name] = getattr(result, field_name)
                row["cost_histogram_pct"] = [
                    round(p, 3)
                    for p in result.cost_distribution.percentages
                ]
                rows.append(row)
        return rows

    def to_json(self) -> str:
        payload: Dict[str, object] = {
            "scale": self.scale,
            "runs": self.to_rows(),
        }
        if self.failures:
            payload["failures"] = self.failures
        if self.oracle is not None:
            payload["oracle"] = self.oracle
        if self.meta is not None:
            payload["meta"] = self.meta
        metrics = self.merged_metrics()
        if metrics is not None:
            payload["metrics"] = metrics
        return json.dumps(payload, indent=2)

    def to_csv(self) -> str:
        buffer = io.StringIO()
        writer = csv.DictWriter(buffer, fieldnames=list(ROW_FIELDS))
        writer.writeheader()
        for row in self.to_rows():
            flat = dict(row)
            flat["cost_histogram_pct"] = "|".join(
                str(v) for v in flat["cost_histogram_pct"]
            )
            writer.writerow(flat)
        return buffer.getvalue()

    def to_text(self) -> str:
        lines = ["%-10s" % "benchmark" + "".join(
            "%14s" % policy for policy in self.policies
        )]
        for benchmark in self.benchmarks:
            cells = []
            for policy in self.policies:
                result = self.results.get(benchmark, {}).get(policy)
                if result is None:
                    cells.append("%14s" % "FAILED")
                elif policy == self.policies[0]:
                    cells.append("%14s" % ("IPC %.4f" % result.ipc))
                else:
                    improvement = self.improvement(benchmark, policy)
                    cells.append("%14s" % (
                        "-" if improvement is None
                        else "%+.1f%%" % improvement
                    ))
            lines.append("%-10s" % benchmark + "".join(cells))
        return "\n".join(lines)


def _oracle_reports(
    benchmarks: Sequence[str],
    scale: Optional[float],
    use_store: bool,
):
    """Oracle reports per benchmark, at the scale the cells ran with."""
    from repro.analysis.oracle import oracle_report
    from repro.sim.runner import packed_trace, trace_scale

    resolved = scale if scale is not None else trace_scale()
    return {
        benchmark: oracle_report(
            packed_trace(benchmark, scale=resolved), use_store=use_store
        )
        for benchmark in benchmarks
    }


def run_suite(
    policies: Sequence[str] = DEFAULT_POLICIES,
    benchmarks: Optional[Sequence[str]] = None,
    scale: Optional[float] = None,
    workers=_UNSET,
    use_cache=_UNSET,
    timeout=_UNSET,
    retries=_UNSET,
    progress=_UNSET,
    options: Optional[RunOptions] = None,
    oracle: bool = False,
) -> SuiteResult:
    """Run the matrix; the first policy is the baseline column.

    ``benchmarks`` entries are workload registry specs — surrogate
    names, imported traces (``"champsim:/path.xz"``), or compositions
    (``"interleave(mcf,art)"``); rows and cells keep the spelling they
    were given.  Execution knobs travel in ``options``
    (:class:`~repro.sim.options.RunOptions`); the bare ``workers`` /
    ``use_cache`` / ``timeout`` / ``retries`` / ``progress`` keywords
    are deprecated shims that fold into one.

    ``RunOptions(workers=0)`` (the default) runs serially in-process
    and raises on the first simulation error, exactly as before.
    ``workers >= 1`` — or any of ``resume`` / ``chaos``, which need the
    fault-tolerant engine — routes the grid through
    :func:`repro.sim.parallel.run_grid`: failures become
    ``SuiteResult.failures`` entries (with full remote tracebacks), the
    run is journaled for ``--resume``, and the observability +
    resilience report lands in ``SuiteResult.meta``.  Both paths
    produce bit-identical ``SimResult`` values, so
    :meth:`SuiteResult.content_digest` matches across them.

    ``oracle=True`` additionally computes the offline OPT and
    cost-weighted-OPT bounds per benchmark
    (:func:`repro.analysis.oracle.oracle_report`, cached in the result
    store) and annotates every completed cell with
    ``oracle_misses`` / ``oracle_stall_cycles`` / ``miss_regret`` /
    ``stall_regret``.  The annotation pass is serial and deterministic,
    so serial and parallel oracle suites stay bit-identical.
    """
    options = resolve_options(
        options, "run_suite", workers=workers, use_cache=use_cache,
        timeout=timeout, retries=retries, progress=progress,
    )
    if not policies:
        raise ValueError("need at least one policy")
    names = list(benchmarks) if benchmarks is not None else list(BENCHMARKS)

    needs_engine = (
        options.workers
        or options.resume is not None
        or options.chaos is not None
    )
    if needs_engine:
        from repro.sim.parallel import Task, run_grid
        from repro.sim.runner import trace_scale

        if not options.workers:
            # resume/chaos need the journaling engine even "serially";
            # one worker means in-process execution with the full
            # retry/journal protocol.
            options = options.replace(workers=1)
        resolved_scale = scale if scale is not None else trace_scale()
        tasks = [
            Task(benchmark=benchmark, policy_spec=policy,
                 scale=resolved_scale)
            for benchmark in names
            for policy in policies
        ]
        grid = run_grid(tasks, options=options)
        if oracle:
            grid.annotate_oracle(
                _oracle_reports(names, scale, options.use_cache)
            )
        results: Dict[str, Dict[str, SimResult]] = {
            benchmark: {} for benchmark in names
        }
        failures: Dict[str, Dict[str, str]] = {}
        for task, result in grid.results.items():
            results[task.benchmark][task.policy_spec] = result
        for task, message in grid.failures.items():
            failures.setdefault(task.benchmark, {})[task.policy_spec] = (
                message
            )
        return SuiteResult(
            policies=list(policies),
            benchmarks=names,
            results=results,
            scale=scale,
            failures=failures,
            meta=grid.meta(),
            oracle=grid.oracle,
        )

    results = {}
    for benchmark in names:
        results[benchmark] = {}
        for policy in policies:
            results[benchmark][policy] = run_policy(
                benchmark, policy, scale=scale, options=options,
            )
    oracle_payload = None
    if oracle:
        from repro.analysis.oracle import annotate_result

        reports = _oracle_reports(names, scale, options.use_cache)
        for benchmark, cells in results.items():
            for policy in list(cells):
                cells[policy] = annotate_result(
                    cells[policy], reports[benchmark]
                )
        oracle_payload = {
            benchmark: report.to_dict()
            for benchmark, report in reports.items()
        }
    return SuiteResult(
        policies=list(policies),
        benchmarks=names,
        results=results,
        scale=scale,
        oracle=oracle_payload,
    )


#: Back-compat alias; the canonical progress callback moved to
#: :func:`repro.sim.common_cli.progress_printer`.
def _progress_printer(report, done, total) -> None:
    from repro.sim.common_cli import progress_printer

    progress_printer(report, done, total)


def _print_runs() -> int:
    """``--list-runs``: one line per journaled run in the cache dir."""
    from repro.sim.resilience import journal_root, list_runs

    states = list_runs()
    if not states:
        print("no journaled runs under %s" % (journal_root() or "<disabled>"))
        return 0
    for state in states:
        if state.interrupted:
            status = "interrupted"
        elif state.finished:
            status = "finished"
        else:
            status = "incomplete"
        print(
            "%-28s %-12s %3d completed  %2d failed  (%s x %s)"
            % (
                state.run_id,
                status,
                len(state.completed),
                len(state.failed),
                ",".join(state.meta.get("benchmarks", []) or ["?"]),
                ",".join(state.meta.get("policies", []) or ["?"]),
            )
        )
    return 0


def main(argv=None) -> int:
    from repro.sim import common_cli

    common_cli.umbrella_pointer("suite")
    parser = argparse.ArgumentParser(
        prog="python -m repro.sim.suite",
        description="Run a benchmark x policy matrix.",
        parents=[common_cli.execution_parent(),
                 common_cli.telemetry_parent()],
    )
    parser.add_argument(
        "--policies", default=",".join(DEFAULT_POLICIES),
        help="comma-separated policy specs (first = baseline); commas "
             'inside parens are safe: "lru,sbar(simple-static,16)"',
    )
    parser.add_argument(
        "--benchmarks", default=None,
        help="comma-separated workload specs (default: the 14 "
             'surrogates); composed/imported specs work: '
             '"mcf,interleave(mcf,art),champsim:/path.xz"',
    )
    parser.add_argument("--scale", type=float, default=None)
    parser.add_argument(
        "--oracle", action="store_true",
        help="compute offline OPT / cost-weighted-OPT bounds per "
             "benchmark and add oracle_misses / oracle_stall_cycles / "
             "miss_regret / stall_regret to every cell (see "
             "docs/policies.md)",
    )
    parser.add_argument("--json", metavar="FILE", default=None)
    parser.add_argument("--csv", metavar="FILE", default=None)
    parser.add_argument(
        "--list-runs", action="store_true",
        help="list journaled runs (for --resume) and exit",
    )
    args = parser.parse_args(argv)

    if args.list_runs:
        return _print_runs()

    common_cli.apply_telemetry(args)
    options = common_cli.options_from_args(args)

    started = time.perf_counter()
    suite = run_suite(
        policies=split_specs(args.policies),
        benchmarks=split_specs(args.benchmarks) if args.benchmarks else None,
        scale=args.scale,
        options=options,
        oracle=args.oracle,
    )
    print(suite.to_text())
    if suite.meta is not None:
        cache = suite.meta["cache"]
        print(
            "[%d workers: %.1fs, %.0f%% utilization, cache %d hit / %d "
            "miss, %d failed]"
            % (
                suite.meta["workers"],
                suite.meta["elapsed_s"],
                100.0 * suite.meta["worker_utilization"],
                cache["hits"],
                cache["misses"],
                suite.meta["failed_tasks"],
            ),
            file=sys.stderr,
        )
        resilience = suite.meta.get("resilience") or {}
        if resilience.get("retries") or resilience.get("pool_rebuilds"):
            print(
                "[resilience: %d retries, %d pool rebuilds%s, %d store "
                "entries quarantined]"
                % (
                    resilience.get("retries", 0),
                    resilience.get("pool_rebuilds", 0),
                    " (circuit opened -> serial)"
                    if resilience.get("circuit_open") else "",
                    resilience.get("store_quarantined", 0),
                ),
                file=sys.stderr,
            )
    else:
        print(
            "[serial: %.1fs]" % (time.perf_counter() - started),
            file=sys.stderr,
        )
    if args.json:
        with open(args.json, "w") as handle:
            handle.write(suite.to_json())
        print("wrote %s" % args.json)
    if args.csv:
        with open(args.csv, "w") as handle:
            handle.write(suite.to_csv())
        print("wrote %s" % args.csv)
    if args.metrics_out:
        common_cli.write_metrics(args, suite.merged_metrics())
    if suite.meta is not None and suite.meta.get("interrupted"):
        print(
            "interrupted — resume with: python -m repro.sim.suite "
            "--resume %s" % suite.meta.get("run_id"),
            file=sys.stderr,
        )
        return 130
    return 1 if suite.failures else 0


if __name__ == "__main__":
    sys.exit(main())
