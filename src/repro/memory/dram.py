"""DRAM bank array with bank-conflict and queueing modeling.

The paper's memory has 32 banks with a 400-cycle access latency.  A bank
services one request at a time; requests to a busy bank queue behind it
(this is what serializes "parallel" misses that collide on a bank and
produces the long tail in the Figure 2 mlp-cost distributions).
"""

from __future__ import annotations

from typing import List


class DramBankArray:
    """Fixed-latency DRAM banks addressed by block number.

    The array is a pure timing model: :meth:`access` returns when the
    requested line's data is ready, given the request time and any
    queueing behind earlier requests to the same bank.
    """

    def __init__(self, n_banks: int, access_latency: int) -> None:
        if n_banks < 1:
            raise ValueError("need at least one bank")
        if access_latency < 1:
            raise ValueError("access latency must be positive")
        self.n_banks = n_banks
        self.access_latency = access_latency
        self._bank_free: List[float] = [0.0] * n_banks
        self.accesses = 0
        self.conflicts = 0

    def bank_of(self, block: int) -> int:
        """Bank that owns cache block number ``block`` (low-order interleave)."""
        return block % self.n_banks

    def access(self, block: int, when: float) -> float:
        """Issue an access at time ``when``; return data-ready time.

        The bank is busy for the full access, so a second request to the
        same bank starts only after the first finishes (a bank conflict).
        """
        bank = self.bank_of(block)
        start = self._bank_free[bank]
        if start > when:
            self.conflicts += 1
        else:
            start = when
        ready = start + self.access_latency
        self._bank_free[bank] = ready
        self.accesses += 1
        return ready

    def reset(self) -> None:
        """Forget all timing state (for reuse across simulations)."""
        self._bank_free = [0.0] * self.n_banks
        self.accesses = 0
        self.conflicts = 0

    @property
    def conflict_rate(self) -> float:
        """Fraction of accesses that queued behind a busy bank."""
        if not self.accesses:
            return 0.0
        return self.conflicts / self.accesses


class RowBufferBankArray(DramBankArray):
    """DRAM banks with an open-page row-buffer model.

    A refinement beyond the paper's flat 400-cycle access: each bank
    keeps its last-accessed row open; a second access to the same row
    skips precharge+activate and completes in ``row_hit_latency``
    cycles.  Spatially sequential bursts therefore stream from the row
    buffer — which *increases* effective MLP for array traffic, one of
    the second-order effects the sensitivity experiments probe.

    Rows are ``row_blocks`` consecutive blocks of one bank's address
    stream (bank-interleaved at block granularity, so block ``b`` of
    bank ``k`` sits in row ``(b // n_banks) // row_blocks``).
    """

    def __init__(
        self,
        n_banks: int,
        access_latency: int,
        row_hit_latency: int = 140,
        row_blocks: int = 32,
    ) -> None:
        super().__init__(n_banks, access_latency)
        if not 0 < row_hit_latency <= access_latency:
            raise ValueError(
                "row-hit latency must be positive and not exceed the "
                "row-miss latency"
            )
        if row_blocks < 1:
            raise ValueError("rows must hold at least one block")
        self.row_hit_latency = row_hit_latency
        self.row_blocks = row_blocks
        self._open_row: List[int] = [-1] * n_banks
        self.row_hits = 0

    def row_of(self, block: int) -> int:
        return (block // self.n_banks) // self.row_blocks

    def access(self, block: int, when: float) -> float:
        bank = self.bank_of(block)
        row = self.row_of(block)
        start = self._bank_free[bank]
        if start > when:
            self.conflicts += 1
        else:
            start = when
        if self._open_row[bank] == row:
            latency = self.row_hit_latency
            self.row_hits += 1
        else:
            latency = self.access_latency
            self._open_row[bank] = row
        ready = start + latency
        self._bank_free[bank] = ready
        self.accesses += 1
        return ready

    def reset(self) -> None:
        super().reset()
        self._open_row = [-1] * self.n_banks
        self.row_hits = 0

    @property
    def row_hit_rate(self) -> float:
        if not self.accesses:
            return 0.0
        return self.row_hits / self.accesses
