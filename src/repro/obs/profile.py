"""Lightweight wall-time profiling spans.

Profiling is the *non*-deterministic half of observability — wall
times differ run to run — so span data is kept out of metric
snapshots (which must merge bit-identically between serial and
parallel execution) and reported separately.

Spans accumulate: entering ``profiler.span("cache.lookup")`` a million
times yields one summary row with the total seconds and the count.
The simulator guards every span behind an ``is not None`` check, so a
disabled profiler costs nothing on the hot path.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List


class _Span:
    __slots__ = ("_profiler", "_name", "_start")

    def __init__(self, profiler: "Profiler", name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_Span":
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._profiler.add(self._name, perf_counter() - self._start)


class Profiler:
    """Accumulates named wall-time spans."""

    __slots__ = ("_seconds", "_counts")

    def __init__(self) -> None:
        self._seconds: Dict[str, float] = {}
        self._counts: Dict[str, int] = {}

    def span(self, name: str) -> _Span:
        """Context manager timing one entry of the span ``name``."""
        return _Span(self, name)

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        self._seconds[name] = self._seconds.get(name, 0.0) + seconds
        self._counts[name] = self._counts.get(name, 0) + count

    def merge(self, other: "Profiler") -> None:
        for name, seconds in other._seconds.items():
            self.add(name, seconds, other._counts[name])

    def summary(self) -> Dict[str, Dict[str, object]]:
        """``{span: {"seconds": total, "count": n}}``, sorted by name."""
        return {
            name: {
                "seconds": round(self._seconds[name], 6),
                "count": self._counts[name],
            }
            for name in sorted(self._seconds)
        }

    def report_lines(self) -> List[str]:
        """Human-readable per-span lines, slowest first."""
        rows = sorted(
            self._seconds.items(), key=lambda item: item[1], reverse=True
        )
        return [
            "%-28s %10.4fs %12d calls"
            % (name, seconds, self._counts[name])
            for name, seconds in rows
        ]


__all__ = ["Profiler"]
