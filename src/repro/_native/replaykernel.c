/* Native replay kernel: the top rung of the simulator's kernel ladder.
 *
 * A hand-written transliteration of Simulator._replay_batched (the
 * numpy batched kernel) into C.  The contract is the same as every
 * rung: bit-identical SimResult digests against the generic loop,
 * enforced by the differential batteries, the golden fingerprints in
 * tests/golden/kernels.json, and `python -m repro.bench --check`.
 *
 * Bit-exactness notes:
 *  - Every float expression keeps the interpreter's evaluation order
 *    and operand types (IEEE doubles throughout; CPython computes
 *    int/int true division and int->float promotion as exact doubles
 *    for magnitudes below 2**53, which all quantities here are).
 *  - `cost // QUANTIZATION_STEP` uses a transliteration of CPython's
 *    float_divmod so the bucket index matches the interpreter even in
 *    pathological rounding cases.
 *  - Container pop order is replayed exactly: the MSHR deques are FIFO
 *    rings, the store-buffer and memory heaps hold plain doubles (any
 *    valid binary heap pops the same value sequence), and identity
 *    checks on MSHR entries use a monotone serial number in place of
 *    CPython object identity.
 *
 * The kernel consumes PackedTrace columns through the buffer protocol
 * (array.array or numpy arrays both work) and returns every counter
 * plus the full end-of-run machine state for the Python wrapper
 * (repro.sim.native) to write back into the component objects.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

#include <math.h>
#include <stdint.h>
#include <stdlib.h>
#include <string.h>

/* ---------------------------------------------------------------- */
/* CPython float floor-division (Objects/floatobject.c:float_divmod) */
/* ---------------------------------------------------------------- */

static double
py_floordiv(double vx, double wx)
{
    double mod, div, floordiv;
    mod = fmod(vx, wx);
    div = (vx - mod) / wx;
    if (mod) {
        if ((wx < 0) != (mod < 0)) {
            mod += wx;
            div -= 1.0;
        }
    }
    else {
        mod = copysign(0.0, wx);
    }
    if (div) {
        floordiv = floor(div);
        if (div - floordiv > 0.5) {
            floordiv += 1.0;
        }
    }
    else {
        floordiv = copysign(0.0, vx / wx);
    }
    return floordiv;
}

/* ---------------------------------------------------------------- */
/* Growable min-heap of doubles (heapq semantics over plain values)  */
/* ---------------------------------------------------------------- */

typedef struct {
    double *a;
    Py_ssize_t n, cap;
} DHeap;

static int
dheap_reserve(DHeap *h, Py_ssize_t want)
{
    if (want <= h->cap) {
        return 0;
    }
    Py_ssize_t cap = h->cap ? h->cap * 2 : 64;
    while (cap < want) {
        cap *= 2;
    }
    double *a = (double *)realloc(h->a, (size_t)cap * sizeof(double));
    if (!a) {
        return -1;
    }
    h->a = a;
    h->cap = cap;
    return 0;
}

static int
dheap_push(DHeap *h, double v)
{
    if (dheap_reserve(h, h->n + 1) < 0) {
        return -1;
    }
    Py_ssize_t i = h->n++;
    while (i > 0) {
        Py_ssize_t parent = (i - 1) >> 1;
        if (h->a[parent] <= v) {
            break;
        }
        h->a[i] = h->a[parent];
        i = parent;
    }
    h->a[i] = v;
    return 0;
}

static double
dheap_pop(DHeap *h)
{
    double top = h->a[0];
    double last = h->a[--h->n];
    Py_ssize_t i = 0, n = h->n;
    for (;;) {
        Py_ssize_t child = 2 * i + 1;
        if (child >= n) {
            break;
        }
        if (child + 1 < n && h->a[child + 1] < h->a[child]) {
            child += 1;
        }
        if (h->a[child] >= last) {
            break;
        }
        h->a[i] = h->a[child];
        i = child;
    }
    if (n) {
        h->a[i] = last;
    }
    return top;
}

/* ---------------------------------------------------------------- */
/* FIFO rings                                                        */
/* ---------------------------------------------------------------- */

typedef struct {
    double *a;
    Py_ssize_t head, n, cap;
} DRing;

static int
dring_append(DRing *r, double v)
{
    if (r->n == r->cap) {
        Py_ssize_t cap = r->cap ? r->cap * 2 : 64;
        double *a = (double *)malloc((size_t)cap * sizeof(double));
        if (!a) {
            return -1;
        }
        for (Py_ssize_t i = 0; i < r->n; i++) {
            a[i] = r->a[(r->head + i) % (r->cap ? r->cap : 1)];
        }
        free(r->a);
        r->a = a;
        r->cap = cap;
        r->head = 0;
    }
    r->a[(r->head + r->n) % r->cap] = v;
    r->n += 1;
    return 0;
}

static double
dring_popleft(DRing *r)
{
    double v = r->a[r->head];
    r->head = (r->head + 1) % r->cap;
    r->n -= 1;
    return v;
}

#define DRING_FRONT(r) ((r)->a[(r)->head])

typedef struct {
    int64_t index;
    double frontier;
} WinEntry;

typedef struct {
    WinEntry *a;
    Py_ssize_t head, n, cap;
} WRing;

static int
wring_append(WRing *r, int64_t index, double frontier)
{
    if (r->n == r->cap) {
        Py_ssize_t cap = r->cap ? r->cap * 2 : 64;
        WinEntry *a = (WinEntry *)malloc((size_t)cap * sizeof(WinEntry));
        if (!a) {
            return -1;
        }
        for (Py_ssize_t i = 0; i < r->n; i++) {
            a[i] = r->a[(r->head + i) % (r->cap ? r->cap : 1)];
        }
        free(r->a);
        r->a = a;
        r->cap = cap;
        r->head = 0;
    }
    WinEntry *slot = &r->a[(r->head + r->n) % r->cap];
    slot->index = index;
    slot->frontier = frontier;
    r->n += 1;
    return 0;
}

static WinEntry
wring_popleft(WRing *r)
{
    WinEntry v = r->a[r->head];
    r->head = (r->head + 1) % r->cap;
    r->n -= 1;
    return v;
}

#define WRING_FRONT(r) ((r)->a[(r)->head])

/* MSHR entry ring: replaces the batched kernel's `md` deque of
 * (completion, block, state, pending, acc_start) tuples.  `serial`
 * stands in for CPython object identity; the state reference becomes
 * (set_index, fill_seq) so the cost sink can find the tag by scan. */

typedef struct {
    double complete;
    double acc_start;
    int64_t block;
    int64_t serial;
    int64_t fill_seq;
    int32_t set_index;
    /* deferred PSEL/ATD update: 0 none, 1 sbar decrement, 2 cbs */
    uint8_t pend_kind;
    int8_t pend_psel_op; /* cbs: 0 none, 1 increment, 2 decrement */
    int32_t pend_psel_idx;
    int32_t pend_fill_set; /* cbs ATD-LIN fill to patch, -1 = none */
    int64_t pend_fill_seq;
} MEntry;

typedef struct {
    MEntry *a;
    Py_ssize_t head, n, cap;
} MRing;

static int
mring_append(MRing *r, MEntry v)
{
    if (r->n == r->cap) {
        Py_ssize_t cap = r->cap ? r->cap * 2 : 64;
        MEntry *a = (MEntry *)malloc((size_t)cap * sizeof(MEntry));
        if (!a) {
            return -1;
        }
        for (Py_ssize_t i = 0; i < r->n; i++) {
            a[i] = r->a[(r->head + i) % (r->cap ? r->cap : 1)];
        }
        free(r->a);
        r->a = a;
        r->cap = cap;
        r->head = 0;
    }
    r->a[(r->head + r->n) % r->cap] = v;
    r->n += 1;
    return 0;
}

static MEntry
mring_popleft(MRing *r)
{
    MEntry v = r->a[r->head];
    r->head = (r->head + 1) % r->cap;
    r->n -= 1;
    return v;
}

#define MRING_FRONT(r) ((r)->a[(r)->head])

/* ---------------------------------------------------------------- */
/* Open-addressing hash map: int64 key -> (int64 a, double b)        */
/* ---------------------------------------------------------------- */

#define MAP_EMPTY INT64_MIN

typedef struct {
    int64_t key;
    int64_t a;
    double b;
} MapSlot;

typedef struct {
    MapSlot *slots;
    size_t cap; /* power of two */
    size_t n;
} Map;

static uint64_t
hash64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

static int
map_init(Map *m, size_t cap)
{
    size_t c = 16;
    while (c < cap) {
        c *= 2;
    }
    m->slots = (MapSlot *)malloc(c * sizeof(MapSlot));
    if (!m->slots) {
        return -1;
    }
    for (size_t i = 0; i < c; i++) {
        m->slots[i].key = MAP_EMPTY;
    }
    m->cap = c;
    m->n = 0;
    return 0;
}

static MapSlot *
map_get(Map *m, int64_t key)
{
    size_t mask = m->cap - 1;
    size_t i = (size_t)hash64((uint64_t)key) & mask;
    for (;;) {
        MapSlot *s = &m->slots[i];
        if (s->key == key) {
            return s;
        }
        if (s->key == MAP_EMPTY) {
            return NULL;
        }
        i = (i + 1) & mask;
    }
}

static int map_grow(Map *m);

/* Insert or update; returns the slot, NULL on allocation failure. */
static MapSlot *
map_put(Map *m, int64_t key, int64_t a, double b)
{
    if ((m->n + 1) * 10 >= m->cap * 7) {
        if (map_grow(m) < 0) {
            return NULL;
        }
    }
    size_t mask = m->cap - 1;
    size_t i = (size_t)hash64((uint64_t)key) & mask;
    for (;;) {
        MapSlot *s = &m->slots[i];
        if (s->key == key) {
            s->a = a;
            s->b = b;
            return s;
        }
        if (s->key == MAP_EMPTY) {
            s->key = key;
            s->a = a;
            s->b = b;
            m->n += 1;
            return s;
        }
        i = (i + 1) & mask;
    }
}

static int
map_grow(Map *m)
{
    size_t old_cap = m->cap;
    MapSlot *old = m->slots;
    size_t cap = old_cap * 2;
    MapSlot *slots = (MapSlot *)malloc(cap * sizeof(MapSlot));
    if (!slots) {
        return -1;
    }
    for (size_t i = 0; i < cap; i++) {
        slots[i].key = MAP_EMPTY;
    }
    size_t mask = cap - 1;
    for (size_t i = 0; i < old_cap; i++) {
        if (old[i].key == MAP_EMPTY) {
            continue;
        }
        size_t j = (size_t)hash64((uint64_t)old[i].key) & mask;
        while (slots[j].key != MAP_EMPTY) {
            j = (j + 1) & mask;
        }
        slots[j] = old[i];
    }
    free(old);
    m->slots = slots;
    m->cap = cap;
    return 0;
}

/* Backward-shift deletion (linear probing invariant preserved). */
static void
map_del(Map *m, int64_t key)
{
    size_t mask = m->cap - 1;
    size_t i = (size_t)hash64((uint64_t)key) & mask;
    for (;;) {
        if (m->slots[i].key == key) {
            break;
        }
        if (m->slots[i].key == MAP_EMPTY) {
            return;
        }
        i = (i + 1) & mask;
    }
    m->n -= 1;
    size_t j = i;
    for (;;) {
        m->slots[i].key = MAP_EMPTY;
        size_t k;
        for (;;) {
            j = (j + 1) & mask;
            if (m->slots[j].key == MAP_EMPTY) {
                return;
            }
            k = (size_t)hash64((uint64_t)m->slots[j].key) & mask;
            /* move slot j back if its home slot k is cyclically
             * outside (i, j] */
            if (i <= j ? (k <= i || k > j) : (k <= i && k > j)) {
                break;
            }
        }
        m->slots[i] = m->slots[j];
        i = j;
    }
}

static void
map_free(Map *m)
{
    free(m->slots);
    m->slots = NULL;
    m->cap = m->n = 0;
}

/* ---------------------------------------------------------------- */
/* Set-associative tag arrays (CacheSet.ways, MRU first)             */
/* ---------------------------------------------------------------- */

typedef struct {
    int64_t block;
    int64_t fill_seq;
    int64_t next_use;
    int64_t cost_q;
    uint8_t dirty;
} Way;

typedef struct {
    Way *pool;     /* n_sets * assoc, set i at pool + i * assoc */
    int32_t *len;  /* occupancy per set */
    int64_t n_sets;
    int64_t assoc;
} Tags;

static int
tags_init(Tags *t, int64_t n_sets, int64_t assoc)
{
    t->pool = (Way *)calloc((size_t)(n_sets * assoc), sizeof(Way));
    t->len = (int32_t *)calloc((size_t)n_sets, sizeof(int32_t));
    t->n_sets = n_sets;
    t->assoc = assoc;
    return (t->pool && t->len) ? 0 : -1;
}

static void
tags_free(Tags *t)
{
    free(t->pool);
    free(t->len);
    t->pool = NULL;
    t->len = NULL;
}

#define TAGS_SET(t, s) ((t)->pool + (s) * (t)->assoc)

static inline int
tags_find(const Way *w, int32_t len, int64_t block)
{
    for (int32_t i = 0; i < len; i++) {
        if (w[i].block == block) {
            return i;
        }
    }
    return -1;
}

/* Move position `pos` to MRU (ways.insert(0, ways.pop(pos))). */
static inline void
tags_touch(Way *w, int32_t pos)
{
    if (pos == 0) {
        return;
    }
    Way tmp = w[pos];
    memmove(w + 1, w, (size_t)pos * sizeof(Way));
    w[0] = tmp;
}

static inline void
tags_insert_mru(Way *w, int32_t *len, Way v)
{
    memmove(w + 1, w, (size_t)(*len) * sizeof(Way));
    w[0] = v;
    *len += 1;
}

static inline Way
tags_evict(Way *w, int32_t *len, int32_t pos)
{
    Way v = w[pos];
    memmove(w + pos, w + pos + 1, (size_t)(*len - pos - 1) * sizeof(Way));
    *len -= 1;
    return v;
}

/* ---------------------------------------------------------------- */
/* EHC per-block interval rings (deque(maxlen=horizon) semantics)    */
/* ---------------------------------------------------------------- */

typedef struct {
    int64_t *vals; /* cap * horizon */
    int32_t *head;
    int32_t *cnt;
    Py_ssize_t n, cap;
    int64_t horizon;
} IvPool;

static int
ivpool_init(IvPool *p, int64_t horizon)
{
    memset(p, 0, sizeof(*p));
    p->horizon = horizon > 0 ? horizon : 1;
    return 0;
}

static Py_ssize_t
ivpool_new(IvPool *p)
{
    if (p->n == p->cap) {
        Py_ssize_t cap = p->cap ? p->cap * 2 : 256;
        int64_t *vals = (int64_t *)realloc(
            p->vals, (size_t)(cap * p->horizon) * sizeof(int64_t));
        int32_t *head = (int32_t *)realloc(
            p->head, (size_t)cap * sizeof(int32_t));
        int32_t *cnt = (int32_t *)realloc(
            p->cnt, (size_t)cap * sizeof(int32_t));
        if (vals) {
            p->vals = vals;
        }
        if (head) {
            p->head = head;
        }
        if (cnt) {
            p->cnt = cnt;
        }
        if (!vals || !head || !cnt) {
            return -1;
        }
        p->cap = cap;
    }
    Py_ssize_t idx = p->n++;
    p->head[idx] = 0;
    p->cnt[idx] = 0;
    return idx;
}

static void
ivpool_append(IvPool *p, Py_ssize_t idx, int64_t v)
{
    int64_t h = p->horizon;
    int64_t *ring = p->vals + idx * h;
    if (p->cnt[idx] == (int32_t)h) {
        ring[p->head[idx]] = v;
        p->head[idx] = (int32_t)((p->head[idx] + 1) % h);
    }
    else {
        ring[(p->head[idx] + p->cnt[idx]) % h] = v;
        p->cnt[idx] += 1;
    }
}

static int64_t
ivpool_mean_floor(const IvPool *p, Py_ssize_t idx)
{
    int64_t h = p->horizon;
    const int64_t *ring = p->vals + idx * h;
    int64_t sum = 0;
    int32_t cnt = p->cnt[idx];
    for (int32_t i = 0; i < cnt; i++) {
        sum += ring[(p->head[idx] + i) % h];
    }
    /* reuse intervals are positive, so C division == Python floor */
    return sum / cnt;
}

static void
ivpool_free(IvPool *p)
{
    free(p->vals);
    free(p->head);
    free(p->cnt);
    memset(p, 0, sizeof(*p));
}

/* ---------------------------------------------------------------- */
/* Kernel state                                                      */
/* ---------------------------------------------------------------- */

enum { POL_LRU = 0, POL_LIN = 1, POL_EHC = 2, POL_AWRP = 3 };
enum { CTRL_NONE = 0, CTRL_SBAR = 1, CTRL_CBS = 2 };

typedef struct {
    /* trace */
    const int64_t *addrs;
    const int8_t *kinds;
    const int64_t *gaps;
    Py_ssize_t n;
    int64_t block_bits;
    int64_t ifetch_kind, store_kind;

    /* window */
    int64_t win_width, win_size;
    int64_t win_index;
    double win_time, retire_cummax, final_completion, stall_cycles;
    int64_t stall_events, long_stalls;
    double long_stall_threshold;
    WRing wp;

    /* store buffer */
    int64_t sb_capacity, sb_full_stalls;
    DHeap sb;

    /* caches */
    Tags l1d, l1i, l2;
    double l1d_latency, l1i_latency, l2_latency;
    int64_t l1d_seq, l1d_accesses, l1d_hits, l1d_misses, l1d_writebacks;
    int64_t l1i_seq, l1i_accesses, l1i_hits, l1i_misses, l1i_writebacks;
    int64_t l2_seq, l2_accesses, l2_hits, l2_misses, l2_writebacks;
    int64_t l2_compulsory;
    int track_seen;
    Map l2_seen;
    int64_t demand_ctr, compulsory_ctr;

    /* mshr */
    int64_t m_entries, n_adders;
    double m_now, m_acc;
    int64_t m_live, m_allocations, m_merges, m_full_stalls, m_peak;
    MRing md;
    DRing occ;
    Map m_in_flight; /* block -> (serial, completion) */
    int64_t m_serial;

    /* memory */
    int64_t memory_max;
    int64_t mem_requests, mem_writebacks, mem_queueing, mem_peak;
    DHeap mif;
    double bus_occupancy, bus_transfer_delay, bus_free;
    int64_t bus_contended, bus_transfers;
    int64_t n_banks;
    double bank_latency;
    double *bank_free;
    int64_t bank_conflicts, bank_accesses;

    /* cost + delta */
    double qstep;
    int64_t max_q;
    int64_t dist_counts[64];
    int64_t dist_total;
    double dist_cost_sum;
    int track_delta;
    int64_t delta_count;
    double delta_sum;
    int64_t delta_below, delta_mid, delta_high;
    Map delta_last; /* block -> cost (b) */

    /* policy */
    int64_t policy_kind;
    int64_t lin_lam;
    int64_t ehc_horizon, ehc_pending, never;
    Map ehc_last;      /* block -> last seq (a) */
    Map ehc_intervals; /* block -> ivpool index (a) */
    IvPool ehc_pool;
    double awrp_weight;
    int64_t awrp_fills;
    Map awrp_counts; /* block -> count (a) */

    /* controller */
    int64_t controller_kind;
    const uint8_t *leaders; /* sbar: 1 byte per l2 set */
    int64_t atd_assoc;
    Tags atd_lru, atd_lin; /* sbar uses atd_lru only */
    int64_t atd_seq, atd_accesses, atd_hits, atd_misses;
    int64_t atd2_seq, atd2_accesses, atd2_hits, atd2_misses;
    int cbs_local;
    Py_ssize_t n_psels;
    int64_t *psel_val, *psel_incs, *psel_decs;
    int64_t psel_max, psel_msb;
    int64_t deferred, follower_lin, follower_lru;

    int oom;
} Sim;

/* ---------------------------------------------------------------- */
/* Loop bodies                                                       */
/* ---------------------------------------------------------------- */

static int64_t
lin_choose(const Way *w, int32_t len, int64_t assoc, int64_t lam)
{
    int64_t mru = assoc - 1;
    int64_t best_pos = 0;
    int64_t best = mru + lam * w[0].cost_q;
    for (int32_t pos = 1; pos < len; pos++) {
        int64_t score = mru - pos + lam * w[pos].cost_q;
        if (score <= best) {
            best = score;
            best_pos = pos;
        }
    }
    return best_pos;
}

static int64_t
ehc_choose(const Way *w, int32_t len)
{
    int64_t farthest_pos = 0;
    int64_t farthest = -1;
    for (int32_t pos = 0; pos < len; pos++) {
        if (w[pos].next_use > farthest) {
            farthest = w[pos].next_use;
            farthest_pos = pos;
        }
    }
    return farthest_pos;
}

static int64_t
awrp_count(Sim *s, int64_t block)
{
    MapSlot *c = map_get(&s->awrp_counts, block);
    return c ? c->a : 0;
}

static int64_t
awrp_choose(Sim *s, const Way *w, int32_t len, int64_t assoc)
{
    double weight = s->awrp_weight;
    int64_t mru = assoc - 1;
    int64_t best_pos = 0;
    double best = (double)mru + weight * (double)awrp_count(s, w[0].block);
    for (int32_t pos = 1; pos < len; pos++) {
        double rank = (double)(mru - pos) +
                      weight * (double)awrp_count(s, w[pos].block);
        if (rank <= best) {
            best = rank;
            best_pos = pos;
        }
    }
    return best_pos;
}

static void
awrp_on_hit(Sim *s, int64_t block)
{
    MapSlot *c = map_get(&s->awrp_counts, block);
    int64_t current = c ? c->a : 0;
    if (current < 16) { /* COUNT_CAP */
        if (c) {
            c->a = current + 1;
        }
        else if (!map_put(&s->awrp_counts, block, current + 1, 0.0)) {
            s->oom = 1;
        }
    }
}

static void
awrp_on_fill(Sim *s, int64_t block)
{
    if (!map_put(&s->awrp_counts, block, 1, 0.0)) {
        s->oom = 1;
        return;
    }
    s->awrp_fills += 1;
    if (s->awrp_fills % 4096 == 0) { /* DECAY_FILLS */
        Map fresh;
        if (map_init(&fresh, s->awrp_counts.n) < 0) {
            s->oom = 1;
            return;
        }
        for (size_t i = 0; i < s->awrp_counts.cap; i++) {
            MapSlot *slot = &s->awrp_counts.slots[i];
            if (slot->key != MAP_EMPTY && slot->a > 1) {
                if (!map_put(&fresh, slot->key, slot->a >> 1, 0.0)) {
                    s->oom = 1;
                    map_free(&fresh);
                    return;
                }
            }
        }
        map_free(&s->awrp_counts);
        s->awrp_counts = fresh;
        if (!map_put(&s->awrp_counts, block, 1, 0.0)) {
            s->oom = 1;
        }
    }
}

static void
ehc_note(Sim *s, int64_t block, int64_t seq)
{
    MapSlot *last = map_get(&s->ehc_last, block);
    if (!last) {
        if (!map_put(&s->ehc_last, block, seq, 0.0)) {
            s->oom = 1;
        }
        s->ehc_pending = s->never;
        return;
    }
    int64_t interval = seq - last->a;
    last->a = seq;
    MapSlot *iv = map_get(&s->ehc_intervals, block);
    Py_ssize_t idx;
    if (!iv) {
        idx = ivpool_new(&s->ehc_pool);
        if (idx < 0 || !map_put(&s->ehc_intervals, block, idx, 0.0)) {
            s->oom = 1;
            return;
        }
    }
    else {
        idx = (Py_ssize_t)iv->a;
    }
    ivpool_append(&s->ehc_pool, idx, interval);
    s->ehc_pending = seq + ivpool_mean_floor(&s->ehc_pool, idx);
}

/* PSEL saturating updates (PolicySelector.increment/decrement) */

static void
psel_increment(Sim *s, Py_ssize_t idx, int64_t amount)
{
    int64_t v = s->psel_val[idx] + amount;
    if (v > s->psel_max) {
        v = s->psel_max;
    }
    s->psel_val[idx] = v;
    s->psel_incs[idx] += amount;
}

static void
psel_decrement(Sim *s, Py_ssize_t idx, int64_t amount)
{
    int64_t v = s->psel_val[idx] - amount;
    if (v < 0) {
        v = 0;
    }
    s->psel_val[idx] = v;
    s->psel_decs[idx] += amount;
}

/* The batched kernel's deferred `pending(cost_q)` callables. */
static void
apply_pending(Sim *s, const MEntry *e, int64_t amount)
{
    if (e->pend_kind == 1) {
        psel_decrement(s, 0, amount);
    }
    else if (e->pend_kind == 2) {
        if (e->pend_fill_set >= 0) {
            Way *w = TAGS_SET(&s->atd_lin, e->pend_fill_set);
            int32_t len = s->atd_lin.len[e->pend_fill_set];
            for (int32_t i = 0; i < len; i++) {
                if (w[i].fill_seq == e->pend_fill_seq) {
                    w[i].cost_q = amount;
                    break;
                }
            }
        }
        if (e->pend_psel_op == 1) {
            psel_increment(s, e->pend_psel_idx, amount);
        }
        else if (e->pend_psel_op == 2) {
            psel_decrement(s, e->pend_psel_idx, amount);
        }
    }
}

/* Cost sink: `sentry[2].cost_q = bkt` on the MTD fill state.  The
 * state is identified by (set_index, fill_seq); if it was evicted the
 * write lands nowhere, exactly like Python patching a dead object. */
static void
patch_cost(Sim *s, int32_t set_index, int64_t fill_seq, int64_t bkt)
{
    Way *w = TAGS_SET(&s->l2, set_index);
    int32_t len = s->l2.len[set_index];
    for (int32_t i = 0; i < len; i++) {
        if (w[i].fill_seq == fill_seq) {
            w[i].cost_q = bkt;
            return;
        }
    }
}

/* MSHRFile._advance sweep (and drain when `all` is set): pops due
 * entries, integrates Algorithm 1, quantizes, feeds the histogram,
 * delta tracker and deferred updates — then advances the clock. */
static void
mshr_sweep(Sim *s, double target, int all)
{
    double now = s->m_now;
    while (s->md.n && (all || MRING_FRONT(&s->md).complete <= target)) {
        MEntry e = mring_popleft(&s->md);
        if (e.complete > now) {
            s->m_acc += (e.complete - now) / (double)s->m_live;
            now = e.complete;
        }
        double cost = s->m_acc - e.acc_start;
        if (s->n_adders) {
            cost = floor(cost * (double)s->n_adders) / (double)s->n_adders;
        }
        s->m_live -= 1;
        MapSlot *slot = map_get(&s->m_in_flight, e.block);
        if (slot && slot->a == e.serial) {
            map_del(&s->m_in_flight, e.block);
        }
        int64_t bkt = (int64_t)py_floordiv(cost, s->qstep);
        if (bkt > s->max_q) {
            bkt = s->max_q;
        }
        patch_cost(s, e.set_index, e.fill_seq, bkt);
        s->dist_counts[bkt] += 1;
        s->dist_total += 1;
        s->dist_cost_sum += cost;
        if (s->track_delta) {
            MapSlot *prev = map_get(&s->delta_last, e.block);
            if (prev) {
                double dv = fabs(cost - prev->b);
                prev->b = cost;
                s->delta_count += 1;
                s->delta_sum += dv;
                if (dv < 60) {
                    s->delta_below += 1;
                }
                else if (dv < 120) {
                    s->delta_mid += 1;
                }
                else {
                    s->delta_high += 1;
                }
            }
            else if (!map_put(&s->delta_last, e.block, 0, cost)) {
                s->oom = 1;
            }
        }
        if (e.pend_kind) {
            apply_pending(s, &e, bkt);
        }
    }
    if (target > now && s->m_live) {
        s->m_acc += (target - now) / (double)s->m_live;
    }
    s->m_now = target > now ? target : now;
}

/* MemoryController.write_line: bus first, then bank. */
static void
write_back_mem(Sim *s, int64_t wb_block, double when)
{
    while (s->mif.n && s->mif.a[0] <= when) {
        dheap_pop(&s->mif);
    }
    while (s->mif.n >= s->memory_max) {
        double earliest = dheap_pop(&s->mif);
        if (earliest > when) {
            when = earliest;
            s->mem_queueing += 1;
        }
    }
    double start = s->bus_free;
    if (start > when) {
        s->bus_contended += 1;
    }
    else {
        start = when;
    }
    s->bus_free = start + s->bus_occupancy;
    s->bus_transfers += 1;
    double arrive = start + s->bus_transfer_delay;
    int64_t bank = wb_block % s->n_banks;
    double bank_start = s->bank_free[bank];
    if (bank_start > arrive) {
        s->bank_conflicts += 1;
    }
    else {
        bank_start = arrive;
    }
    double data_ready = bank_start + s->bank_latency;
    s->bank_free[bank] = data_ready;
    s->bank_accesses += 1;
    if (dheap_push(&s->mif, data_ready) < 0) {
        s->oom = 1;
    }
    if (s->mif.n > s->mem_peak) {
        s->mem_peak = s->mif.n;
    }
    s->mem_requests += 1;
    s->mem_writebacks += 1;
}

/* StoreBuffer.admit */
static double
sb_admit(Sim *s, double when, double completion)
{
    DHeap *h = &s->sb;
    while (h->n && h->a[0] <= when) {
        dheap_pop(h);
    }
    while (h->n >= s->sb_capacity) {
        double earliest = dheap_pop(h);
        if (earliest > when) {
            when = earliest;
            s->sb_full_stalls += 1;
        }
    }
    if (dheap_push(h, completion > when ? completion : when) < 0) {
        s->oom = 1;
    }
    return when;
}

/* ---------------------------------------------------------------- */
/* The replay loop (Simulator._replay_batched, line for line)        */
/* ---------------------------------------------------------------- */

static void
run_loop(Sim *s)
{
    const double dwidth = (double)s->win_width;
    int64_t cum = 0;
    const int64_t win_index0 = s->win_index;

    for (Py_ssize_t i = 0; i < s->n && !s->oom; i++) {
        int64_t block = s->addrs[i] >> s->block_bits;
        int64_t kind = s->kinds[i];
        int64_t g1 = s->gaps[i] + 1;
        cum += g1;
        int64_t target = cum + win_index0;
        double dt = (double)g1 / dwidth;
        int64_t set_index = block % s->l2.n_sets;
        int64_t bank = block % s->n_banks;

        /* ---- WindowModel.advance, inlined ---- */
        if (s->wp.n && WRING_FRONT(&s->wp).index + s->win_size <= target) {
            while (s->wp.n &&
                   WRING_FRONT(&s->wp).index + s->win_size <= target) {
                WinEntry e = wring_popleft(&s->wp);
                int64_t reach = e.index + s->win_size;
                double arrival =
                    s->win_time + (double)(reach - s->win_index) / dwidth;
                if (e.frontier > arrival) {
                    s->stall_cycles += e.frontier - arrival;
                    s->stall_events += 1;
                    if (e.frontier - arrival >= s->long_stall_threshold) {
                        s->long_stalls += 1;
                    }
                    s->win_time = e.frontier;
                }
                else {
                    s->win_time = arrival;
                }
                s->win_index = reach;
            }
            s->win_time += (double)(target - s->win_index) / dwidth;
        }
        else {
            s->win_time += dt;
        }
        s->win_index = target;
        double dispatch = s->win_time;

        /* ---- L1 probe ---- */
        int is_ifetch, is_store;
        double l1_done;
        Tags *l1;
        int64_t l1_set;
        if (kind == s->ifetch_kind) {
            l1 = &s->l1i;
            l1_set = block % s->l1i.n_sets;
            Way *w = TAGS_SET(l1, l1_set);
            int32_t pos = tags_find(w, l1->len[l1_set], block);
            if (pos >= 0) {
                s->l1i_seq += 1;
                s->l1i_accesses += 1;
                s->l1i_hits += 1;
                tags_touch(w, pos);
                double completion = dispatch + s->l1i_latency;
                if (completion > s->retire_cummax) {
                    s->retire_cummax = completion;
                }
                if (completion > s->final_completion) {
                    s->final_completion = completion;
                }
                if (wring_append(&s->wp, s->win_index, s->retire_cummax) < 0) {
                    s->oom = 1;
                }
                continue;
            }
            is_ifetch = 1;
            is_store = 0;
            l1_done = dispatch + s->l1i_latency;
        }
        else {
            l1 = &s->l1d;
            l1_set = block % s->l1d.n_sets;
            Way *w = TAGS_SET(l1, l1_set);
            int32_t pos = tags_find(w, l1->len[l1_set], block);
            is_store = kind == s->store_kind;
            if (pos >= 0) {
                s->l1d_seq += 1;
                s->l1d_accesses += 1;
                s->l1d_hits += 1;
                tags_touch(w, pos);
                if (is_store) {
                    w[0].dirty = 1;
                    double admitted =
                        sb_admit(s, dispatch, dispatch + s->l1d_latency);
                    if (admitted > dispatch) {
                        s->stall_cycles += admitted - s->win_time;
                        s->stall_events += 1;
                        if (admitted - s->win_time >=
                            s->long_stall_threshold) {
                            s->long_stalls += 1;
                        }
                        s->win_time = admitted;
                    }
                }
                else {
                    double completion = dispatch + s->l1d_latency;
                    if (completion > s->retire_cummax) {
                        s->retire_cummax = completion;
                    }
                    if (completion > s->final_completion) {
                        s->final_completion = completion;
                    }
                    if (wring_append(&s->wp, s->win_index,
                                     s->retire_cummax) < 0) {
                        s->oom = 1;
                    }
                }
                continue;
            }
            is_ifetch = 0;
            l1_done = dispatch + s->l1d_latency;
        }

        /* ---- MSHRFile._advance(dispatch) ---- */
        if (dispatch > s->m_now) {
            if (s->md.n && MRING_FRONT(&s->md).complete <= dispatch) {
                mshr_sweep(s, dispatch, 0);
            }
            else {
                if (s->m_live) {
                    s->m_acc +=
                        (dispatch - s->m_now) / (double)s->m_live;
                }
                s->m_now = dispatch;
            }
        }

        /* ---- L1 fill ---- */
        {
            int64_t seq;
            if (is_ifetch) {
                seq = s->l1i_seq;
                s->l1i_seq = seq + 1;
                s->l1i_accesses += 1;
                s->l1i_misses += 1;
            }
            else {
                seq = s->l1d_seq;
                s->l1d_seq = seq + 1;
                s->l1d_accesses += 1;
                s->l1d_misses += 1;
            }
            Way *w = TAGS_SET(l1, l1_set);
            int32_t *len = &l1->len[l1_set];
            Way l1_victim;
            int have_victim = 0;
            if (*len >= (int32_t)l1->assoc) {
                l1_victim = tags_evict(w, len, *len - 1);
                have_victim = 1;
                if (l1_victim.dirty) {
                    if (is_ifetch) {
                        s->l1i_writebacks += 1;
                    }
                    else {
                        s->l1d_writebacks += 1;
                    }
                }
            }
            Way nw = {block, seq, 0, 0, 0};
            tags_insert_mru(w, len, nw);
            if (is_store) {
                w[0].dirty = 1;
            }
            if (have_victim && l1_victim.dirty) {
                /* Simulator._l1_writeback, inlined */
                int64_t vb = l1_victim.block;
                int64_t vset = vb % s->l2.n_sets;
                Way *lw = TAGS_SET(&s->l2, vset);
                int32_t pos = tags_find(lw, s->l2.len[vset], vb);
                if (pos >= 0) {
                    lw[pos].dirty = 1;
                }
                else {
                    write_back_mem(s, vb, dispatch);
                }
            }
        }

        /* ---- L2 lookup ---- */
        int pol;
        int is_leader = 0;
        Py_ssize_t psel_idx = 0;
        if (s->controller_kind == CTRL_NONE) {
            pol = (int)s->policy_kind;
        }
        else if (s->controller_kind == CTRL_SBAR) {
            is_leader = s->leaders[set_index];
            if (is_leader) {
                pol = POL_LIN;
            }
            else if (s->psel_val[0] >= s->psel_msb) {
                s->follower_lin += 1;
                pol = POL_LIN;
            }
            else {
                s->follower_lru += 1;
                pol = POL_LRU;
            }
        }
        else {
            psel_idx = s->cbs_local ? (Py_ssize_t)set_index : 0;
            pol = s->psel_val[psel_idx] >= s->psel_msb ? POL_LIN : POL_LRU;
        }
        int64_t seq = s->l2_seq;
        s->l2_seq = seq + 1;
        s->l2_accesses += 1;
        if (pol == POL_EHC) {
            ehc_note(s, block, seq);
        }
        Way *lw = TAGS_SET(&s->l2, set_index);
        int32_t *llen = &s->l2.len[set_index];
        int32_t pos = tags_find(lw, *llen, block);
        double completion;
        if (pos >= 0) {
            /* ---- L2 hit ---- */
            s->l2_hits += 1;
            if (pol == POL_EHC) {
                tags_touch(lw, pos);
                lw[0].next_use = s->ehc_pending;
            }
            else if (pol == POL_AWRP) {
                tags_touch(lw, pos);
                awrp_on_hit(s, block);
            }
            else {
                tags_touch(lw, pos); /* default move-to-MRU */
            }
            int64_t hit_cost_q = lw[0].cost_q;
            if (s->controller_kind == CTRL_SBAR) {
                if (is_leader) {
                    int64_t aseq = s->atd_seq;
                    s->atd_seq = aseq + 1;
                    s->atd_accesses += 1;
                    Way *aw = TAGS_SET(&s->atd_lru, set_index);
                    int32_t *alen = &s->atd_lru.len[set_index];
                    int32_t apos = tags_find(aw, *alen, block);
                    if (apos >= 0) {
                        s->atd_hits += 1;
                        tags_touch(aw, apos);
                    }
                    else {
                        s->atd_misses += 1;
                        if (*alen >= (int32_t)s->atd_assoc) {
                            tags_evict(aw, alen, *alen - 1);
                        }
                        Way anw = {block, aseq, 0, 0, 0};
                        tags_insert_mru(aw, alen, anw);
                        psel_increment(s, 0, hit_cost_q);
                    }
                }
            }
            else if (s->controller_kind == CTRL_CBS) {
                int64_t aseq = s->atd_seq;
                s->atd_seq = aseq + 1;
                s->atd_accesses += 1;
                Way *aw = TAGS_SET(&s->atd_lru, set_index);
                int32_t *alen = &s->atd_lru.len[set_index];
                int32_t apos = tags_find(aw, *alen, block);
                int lru_hit;
                if (apos >= 0) {
                    s->atd_hits += 1;
                    lru_hit = 1;
                    tags_touch(aw, apos);
                }
                else {
                    s->atd_misses += 1;
                    lru_hit = 0;
                    if (*alen >= (int32_t)s->atd_assoc) {
                        tags_evict(aw, alen, *alen - 1);
                    }
                    Way anw = {block, aseq, 0, 0, 0};
                    tags_insert_mru(aw, alen, anw);
                }
                aseq = s->atd2_seq;
                s->atd2_seq = aseq + 1;
                s->atd2_accesses += 1;
                aw = TAGS_SET(&s->atd_lin, set_index);
                alen = &s->atd_lin.len[set_index];
                apos = tags_find(aw, *alen, block);
                int lin_hit;
                if (apos >= 0) {
                    s->atd2_hits += 1;
                    lin_hit = 1;
                    tags_touch(aw, apos);
                }
                else {
                    s->atd2_misses += 1;
                    lin_hit = 0;
                    if (*alen >= (int32_t)s->atd_assoc) {
                        int64_t vpos =
                            lin_choose(aw, *alen, s->atd_assoc, s->lin_lam);
                        tags_evict(aw, alen, (int32_t)vpos);
                    }
                    Way anw = {block, aseq, 0, hit_cost_q, 0};
                    tags_insert_mru(aw, alen, anw);
                }
                if (lin_hit != lru_hit) {
                    if (lin_hit) {
                        psel_increment(s, psel_idx, hit_cost_q);
                    }
                    else {
                        psel_decrement(s, psel_idx, hit_cost_q);
                    }
                }
            }
            completion = l1_done + s->l2_latency;
            MapSlot *entry = map_get(&s->m_in_flight, block);
            if (entry) {
                double in_flight = entry->b;
                if (in_flight <= l1_done) {
                    map_del(&s->m_in_flight, block);
                }
                else if (in_flight > completion) {
                    completion = in_flight;
                }
            }
        }
        else {
            /* ---- L2 miss: fill, then the MSHR/memory path ---- */
            s->l2_misses += 1;
            Way victim;
            int have_victim = 0;
            if (*llen >= (int32_t)s->l2.assoc) {
                int64_t vpos;
                if (pol == POL_LRU) {
                    vpos = *llen - 1; /* victim_is_lru_tail */
                }
                else if (pol == POL_LIN) {
                    vpos = lin_choose(lw, *llen, s->l2.assoc, s->lin_lam);
                }
                else if (pol == POL_EHC) {
                    vpos = ehc_choose(lw, *llen);
                }
                else {
                    vpos = awrp_choose(s, lw, *llen, s->l2.assoc);
                }
                victim = tags_evict(lw, llen, (int32_t)vpos);
                have_victim = 1;
                if (victim.dirty) {
                    s->l2_writebacks += 1;
                }
            }
            Way nst = {block, seq, 0, 0, 0};
            if (pol == POL_EHC) {
                nst.next_use = s->ehc_pending; /* EHCPolicy.on_fill */
            }
            else if (pol == POL_AWRP) {
                awrp_on_fill(s, block); /* AWRPPolicy.on_fill */
            }
            tags_insert_mru(lw, llen, nst);
            int compulsory = 0;
            if (s->track_seen) {
                if (!map_get(&s->l2_seen, block)) {
                    if (!map_put(&s->l2_seen, block, 0, 0.0)) {
                        s->oom = 1;
                    }
                    compulsory = 1;
                    s->l2_compulsory += 1;
                }
            }
            uint8_t pend_kind = 0;
            int8_t pend_psel_op = 0;
            int32_t pend_fill_set = -1;
            int64_t pend_fill_seq = 0;
            if (s->controller_kind == CTRL_SBAR) {
                if (is_leader) {
                    int64_t aseq = s->atd_seq;
                    s->atd_seq = aseq + 1;
                    s->atd_accesses += 1;
                    Way *aw = TAGS_SET(&s->atd_lru, set_index);
                    int32_t *alen = &s->atd_lru.len[set_index];
                    int32_t apos = tags_find(aw, *alen, block);
                    if (apos >= 0) {
                        s->atd_hits += 1;
                        tags_touch(aw, apos);
                        s->deferred += 1;
                        pend_kind = 1; /* sbar_psel.decrement */
                    }
                    else {
                        s->atd_misses += 1;
                        if (*alen >= (int32_t)s->atd_assoc) {
                            tags_evict(aw, alen, *alen - 1);
                        }
                        Way anw = {block, aseq, 0, 0, 0};
                        tags_insert_mru(aw, alen, anw);
                    }
                }
            }
            else if (s->controller_kind == CTRL_CBS) {
                int64_t aseq = s->atd_seq;
                s->atd_seq = aseq + 1;
                s->atd_accesses += 1;
                Way *aw = TAGS_SET(&s->atd_lru, set_index);
                int32_t *alen = &s->atd_lru.len[set_index];
                int32_t apos = tags_find(aw, *alen, block);
                int lru_hit;
                if (apos >= 0) {
                    s->atd_hits += 1;
                    lru_hit = 1;
                    tags_touch(aw, apos);
                }
                else {
                    s->atd_misses += 1;
                    lru_hit = 0;
                    if (*alen >= (int32_t)s->atd_assoc) {
                        tags_evict(aw, alen, *alen - 1);
                    }
                    Way anw = {block, aseq, 0, 0, 0};
                    tags_insert_mru(aw, alen, anw);
                }
                aseq = s->atd2_seq;
                s->atd2_seq = aseq + 1;
                s->atd2_accesses += 1;
                aw = TAGS_SET(&s->atd_lin, set_index);
                alen = &s->atd_lin.len[set_index];
                apos = tags_find(aw, *alen, block);
                int lin_hit;
                int have_lin_fill = 0;
                if (apos >= 0) {
                    s->atd2_hits += 1;
                    lin_hit = 1;
                    tags_touch(aw, apos);
                }
                else {
                    s->atd2_misses += 1;
                    lin_hit = 0;
                    if (*alen >= (int32_t)s->atd_assoc) {
                        int64_t vpos =
                            lin_choose(aw, *alen, s->atd_assoc, s->lin_lam);
                        tags_evict(aw, alen, (int32_t)vpos);
                    }
                    Way anw = {block, aseq, 0, 0, 0};
                    tags_insert_mru(aw, alen, anw);
                    have_lin_fill = 1;
                }
                if (lin_hit != lru_hit) {
                    pend_psel_op = lin_hit ? 1 : 2;
                }
                if (pend_psel_op || have_lin_fill) {
                    s->deferred += 1;
                    pend_kind = 2;
                    if (have_lin_fill) {
                        pend_fill_set = (int32_t)set_index;
                        pend_fill_seq = aseq;
                    }
                }
            }
            if (have_victim) {
                int64_t victim_block = victim.block;
                if (victim.dirty) {
                    write_back_mem(s, victim_block, l1_done);
                }
                /* inclusion: the victim leaves the L1s */
                int64_t vset = victim_block % s->l1d.n_sets;
                Way *vw = TAGS_SET(&s->l1d, vset);
                int32_t vpos =
                    tags_find(vw, s->l1d.len[vset], victim_block);
                if (vpos >= 0) {
                    tags_evict(vw, &s->l1d.len[vset], vpos);
                }
                vset = victim_block % s->l1i.n_sets;
                vw = TAGS_SET(&s->l1i, vset);
                vpos = tags_find(vw, s->l1i.len[vset], victim_block);
                if (vpos >= 0) {
                    tags_evict(vw, &s->l1i.len[vset], vpos);
                }
            }
            s->demand_ctr += 1;
            if (compulsory) {
                s->compulsory_ctr += 1;
            }

            /* merge probe (inline MSHRFile.lookup) */
            MapSlot *entry = map_get(&s->m_in_flight, block);
            if (entry && entry->b <= l1_done) {
                map_del(&s->m_in_flight, block);
                entry = NULL;
            }
            if (entry) {
                s->m_merges += 1;
                if (pend_kind) {
                    MEntry pe;
                    pe.pend_kind = pend_kind;
                    pe.pend_psel_op = pend_psel_op;
                    pe.pend_psel_idx = (int32_t)psel_idx;
                    pe.pend_fill_set = pend_fill_set;
                    pe.pend_fill_seq = pend_fill_seq;
                    apply_pending(s, &pe, 0);
                }
                completion = l1_done + s->l2_latency;
                if (entry->b > completion) {
                    completion = entry->b;
                }
            }
            else {
                /* inline MSHRFile.admission_time */
                double issue = l1_done + s->l2_latency;
                while (s->occ.n && DRING_FRONT(&s->occ) <= issue) {
                    dring_popleft(&s->occ);
                }
                while (s->occ.n >= s->m_entries) {
                    double earliest = dring_popleft(&s->occ);
                    if (earliest > issue) {
                        issue = earliest;
                        s->m_full_stalls += 1;
                    }
                }
                if (issue < s->m_now) {
                    issue = s->m_now;
                }
                /* inline MemoryController.read_line: bank, then bus */
                while (s->mif.n && s->mif.a[0] <= issue) {
                    dheap_pop(&s->mif);
                }
                double start_at = issue;
                while (s->mif.n >= s->memory_max) {
                    double earliest = dheap_pop(&s->mif);
                    if (earliest > start_at) {
                        start_at = earliest;
                        s->mem_queueing += 1;
                    }
                }
                double bank_start = s->bank_free[bank];
                if (bank_start > start_at) {
                    s->bank_conflicts += 1;
                }
                else {
                    bank_start = start_at;
                }
                double data_ready = bank_start + s->bank_latency;
                s->bank_free[bank] = data_ready;
                s->bank_accesses += 1;
                double bus_start = s->bus_free;
                if (bus_start > data_ready) {
                    s->bus_contended += 1;
                }
                else {
                    bus_start = data_ready;
                }
                s->bus_free = bus_start + s->bus_occupancy;
                s->bus_transfers += 1;
                completion = bus_start + s->bus_transfer_delay;
                if (dheap_push(&s->mif, completion) < 0) {
                    s->oom = 1;
                }
                if (s->mif.n > s->mem_peak) {
                    s->mem_peak = s->mif.n;
                }
                s->mem_requests += 1;

                /* ---- MSHRFile._advance(issue) ---- */
                if (s->md.n && MRING_FRONT(&s->md).complete <= issue) {
                    mshr_sweep(s, issue, 0);
                }
                else if (issue > s->m_now) {
                    if (s->m_live) {
                        s->m_acc +=
                            (issue - s->m_now) / (double)s->m_live;
                    }
                    s->m_now = issue;
                }

                /* inline MSHRFile.allocate (demand read) */
                MEntry me;
                me.complete = completion;
                me.acc_start = s->m_acc;
                me.block = block;
                me.serial = s->m_serial++;
                me.fill_seq = seq;
                me.set_index = (int32_t)set_index;
                me.pend_kind = pend_kind;
                me.pend_psel_op = pend_psel_op;
                me.pend_psel_idx = (int32_t)psel_idx;
                me.pend_fill_set = pend_fill_set;
                me.pend_fill_seq = pend_fill_seq;
                if (mring_append(&s->md, me) < 0 ||
                    dring_append(&s->occ, completion) < 0 ||
                    !map_put(&s->m_in_flight, block, me.serial,
                             completion)) {
                    s->oom = 1;
                }
                s->m_allocations += 1;
                s->m_live += 1;
                if (s->occ.n > s->m_peak) {
                    s->m_peak = s->occ.n;
                }
            }
        }

        /* ---- retire ---- */
        if (is_store) {
            double admitted = sb_admit(s, dispatch, completion);
            if (admitted > dispatch) {
                s->stall_cycles += admitted - s->win_time;
                s->stall_events += 1;
                if (admitted - s->win_time >= s->long_stall_threshold) {
                    s->long_stalls += 1;
                }
                s->win_time = admitted;
            }
        }
        else {
            if (completion > s->retire_cummax) {
                s->retire_cummax = completion;
            }
            if (completion > s->final_completion) {
                s->final_completion = completion;
            }
            if (wring_append(&s->wp, s->win_index, s->retire_cummax) < 0) {
                s->oom = 1;
            }
        }
    }

    /* ---- MSHRFile.drain ---- */
    if (s->md.n && !s->oom) {
        double horizon = MRING_FRONT(&s->md).complete;
        for (Py_ssize_t i = 0; i < s->md.n; i++) {
            double c = s->md.a[(s->md.head + i) % s->md.cap].complete;
            if (c > horizon) {
                horizon = c;
            }
        }
        mshr_sweep(s, horizon + 1, 1);
    }
}

/* ---------------------------------------------------------------- */
/* Parameter parsing                                                 */
/* ---------------------------------------------------------------- */

typedef struct {
    PyObject *d;
    int err;
} P;

static PyObject *
p_item(P *p, const char *key)
{
    if (p->err) {
        return NULL;
    }
    PyObject *v = PyDict_GetItemString(p->d, key);
    if (!v) {
        PyErr_Format(PyExc_KeyError, "replay kernel: missing param %s", key);
        p->err = 1;
    }
    return v;
}

static int64_t
p_int(P *p, const char *key)
{
    PyObject *v = p_item(p, key);
    if (!v) {
        return 0;
    }
    int64_t r = PyLong_AsLongLong(v);
    if (r == -1 && PyErr_Occurred()) {
        p->err = 1;
        return 0;
    }
    return r;
}

static double
p_dbl(P *p, const char *key)
{
    PyObject *v = p_item(p, key);
    if (!v) {
        return 0.0;
    }
    double r = PyFloat_AsDouble(v);
    if (r == -1.0 && PyErr_Occurred()) {
        p->err = 1;
        return 0.0;
    }
    return r;
}

/* Parse a list of ints into a fresh int64 array (caller frees). */
static int64_t *
p_int_list(P *p, const char *key, Py_ssize_t *n_out)
{
    PyObject *v = p_item(p, key);
    if (!v) {
        return NULL;
    }
    if (!PyList_Check(v)) {
        PyErr_Format(PyExc_TypeError, "param %s must be a list", key);
        p->err = 1;
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(v);
    int64_t *a = (int64_t *)malloc((size_t)(n ? n : 1) * sizeof(int64_t));
    if (!a) {
        PyErr_NoMemory();
        p->err = 1;
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        a[i] = PyLong_AsLongLong(PyList_GET_ITEM(v, i));
        if (a[i] == -1 && PyErr_Occurred()) {
            p->err = 1;
            free(a);
            return NULL;
        }
    }
    *n_out = n;
    return a;
}

static double *
p_dbl_list(P *p, const char *key, Py_ssize_t *n_out)
{
    PyObject *v = p_item(p, key);
    if (!v) {
        return NULL;
    }
    if (!PyList_Check(v)) {
        PyErr_Format(PyExc_TypeError, "param %s must be a list", key);
        p->err = 1;
        return NULL;
    }
    Py_ssize_t n = PyList_GET_SIZE(v);
    double *a = (double *)malloc((size_t)(n ? n : 1) * sizeof(double));
    if (!a) {
        PyErr_NoMemory();
        p->err = 1;
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        a[i] = PyFloat_AsDouble(PyList_GET_ITEM(v, i));
        if (a[i] == -1.0 && PyErr_Occurred()) {
            p->err = 1;
            free(a);
            return NULL;
        }
    }
    *n_out = n;
    return a;
}

/* ---------------------------------------------------------------- */
/* Result marshalling                                                */
/* ---------------------------------------------------------------- */

static int
out_int(PyObject *d, const char *key, int64_t v)
{
    PyObject *o = PyLong_FromLongLong(v);
    if (!o) {
        return -1;
    }
    int rc = PyDict_SetItemString(d, key, o);
    Py_DECREF(o);
    return rc;
}

static int
out_dbl(PyObject *d, const char *key, double v)
{
    PyObject *o = PyFloat_FromDouble(v);
    if (!o) {
        return -1;
    }
    int rc = PyDict_SetItemString(d, key, o);
    Py_DECREF(o);
    return rc;
}

static int
out_obj(PyObject *d, const char *key, PyObject *o)
{
    /* steals o (even on failure) */
    if (!o) {
        return -1;
    }
    int rc = PyDict_SetItemString(d, key, o);
    Py_DECREF(o);
    return rc;
}

static PyObject *
emit_set(const Way *w, int32_t len)
{
    PyObject *entries = PyList_New(len);
    if (!entries) {
        return NULL;
    }
    for (int32_t i = 0; i < len; i++) {
        PyObject *t = Py_BuildValue(
            "(LLLLi)", (long long)w[i].block, (long long)w[i].fill_seq,
            (long long)w[i].next_use, (long long)w[i].cost_q,
            (int)w[i].dirty);
        if (!t) {
            Py_DECREF(entries);
            return NULL;
        }
        PyList_SET_ITEM(entries, i, t);
    }
    return entries;
}

static PyObject *
emit_tags(const Tags *t)
{
    PyObject *sets = PyList_New(t->n_sets);
    if (!sets) {
        return NULL;
    }
    for (int64_t s = 0; s < t->n_sets; s++) {
        PyObject *entries = emit_set(TAGS_SET(t, s), t->len[s]);
        if (!entries) {
            Py_DECREF(sets);
            return NULL;
        }
        PyList_SET_ITEM(sets, s, entries);
    }
    return sets;
}

static int
cmp_dbl(const void *a, const void *b)
{
    double x = *(const double *)a, y = *(const double *)b;
    return (x > y) - (x < y);
}

static PyObject *
emit_heap_sorted(const DHeap *h)
{
    double *copy = NULL;
    if (h->n) {
        copy = (double *)malloc((size_t)h->n * sizeof(double));
        if (!copy) {
            return PyErr_NoMemory();
        }
        memcpy(copy, h->a, (size_t)h->n * sizeof(double));
        qsort(copy, (size_t)h->n, sizeof(double), cmp_dbl);
    }
    PyObject *list = PyList_New(h->n);
    if (!list) {
        free(copy);
        return NULL;
    }
    for (Py_ssize_t i = 0; i < h->n; i++) {
        PyObject *o = PyFloat_FromDouble(copy[i]);
        if (!o) {
            free(copy);
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, o);
    }
    free(copy);
    return list;
}

/* Map payload emitters: kind 0 -> keys only, 1 -> (key, a), 2 ->
 * (key, b as float). */
static PyObject *
emit_map(const Map *m, int kind)
{
    PyObject *list = PyList_New((Py_ssize_t)m->n);
    if (!list) {
        return NULL;
    }
    Py_ssize_t at = 0;
    for (size_t i = 0; i < m->cap; i++) {
        const MapSlot *slot = &m->slots[i];
        if (slot->key == MAP_EMPTY) {
            continue;
        }
        PyObject *o;
        if (kind == 0) {
            o = PyLong_FromLongLong(slot->key);
        }
        else if (kind == 1) {
            o = Py_BuildValue("(LL)", (long long)slot->key,
                              (long long)slot->a);
        }
        else {
            o = Py_BuildValue("(Ld)", (long long)slot->key, slot->b);
        }
        if (!o) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, at++, o);
    }
    return list;
}

static PyObject *
emit_intervals(const Map *m, const IvPool *p)
{
    PyObject *list = PyList_New((Py_ssize_t)m->n);
    if (!list) {
        return NULL;
    }
    Py_ssize_t at = 0;
    for (size_t i = 0; i < m->cap; i++) {
        const MapSlot *slot = &m->slots[i];
        if (slot->key == MAP_EMPTY) {
            continue;
        }
        Py_ssize_t idx = (Py_ssize_t)slot->a;
        int32_t cnt = p->cnt[idx];
        PyObject *vals = PyList_New(cnt);
        if (!vals) {
            Py_DECREF(list);
            return NULL;
        }
        for (int32_t j = 0; j < cnt; j++) {
            int64_t v =
                p->vals[idx * p->horizon + (p->head[idx] + j) % p->horizon];
            PyObject *o = PyLong_FromLongLong(v);
            if (!o) {
                Py_DECREF(vals);
                Py_DECREF(list);
                return NULL;
            }
            PyList_SET_ITEM(vals, j, o);
        }
        PyObject *pair = Py_BuildValue("(LN)", (long long)slot->key, vals);
        if (!pair) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, at++, pair);
    }
    return list;
}

static PyObject *
emit_win_pending(const WRing *r)
{
    PyObject *list = PyList_New(r->n);
    if (!list) {
        return NULL;
    }
    for (Py_ssize_t i = 0; i < r->n; i++) {
        const WinEntry *e = &r->a[(r->head + i) % (r->cap ? r->cap : 1)];
        PyObject *t = Py_BuildValue("(Ld)", (long long)e->index, e->frontier);
        if (!t) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, t);
    }
    return list;
}

static PyObject *
emit_int_array(const int64_t *a, Py_ssize_t n)
{
    PyObject *list = PyList_New(n);
    if (!list) {
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *o = PyLong_FromLongLong(a[i]);
        if (!o) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, o);
    }
    return list;
}

static PyObject *
emit_dbl_array(const double *a, Py_ssize_t n)
{
    PyObject *list = PyList_New(n);
    if (!list) {
        return NULL;
    }
    for (Py_ssize_t i = 0; i < n; i++) {
        PyObject *o = PyFloat_FromDouble(a[i]);
        if (!o) {
            Py_DECREF(list);
            return NULL;
        }
        PyList_SET_ITEM(list, i, o);
    }
    return list;
}

/* Sparse ATD (SBAR): only the leader sets exist in Python. */
static PyObject *
emit_leader_tags(const Tags *t, const uint8_t *leaders)
{
    PyObject *list = PyList_New(0);
    if (!list) {
        return NULL;
    }
    for (int64_t s = 0; s < t->n_sets; s++) {
        if (!leaders[s]) {
            continue;
        }
        PyObject *entries = emit_set(TAGS_SET(t, s), t->len[s]);
        if (!entries) {
            Py_DECREF(list);
            return NULL;
        }
        PyObject *pair = Py_BuildValue("(LN)", (long long)s, entries);
        if (!pair || PyList_Append(list, pair) < 0) {
            Py_XDECREF(pair);
            Py_DECREF(list);
            return NULL;
        }
        Py_DECREF(pair);
    }
    return list;
}

static void
sim_free(Sim *s)
{
    free(s->wp.a);
    free(s->sb.a);
    tags_free(&s->l1d);
    tags_free(&s->l1i);
    tags_free(&s->l2);
    tags_free(&s->atd_lru);
    tags_free(&s->atd_lin);
    map_free(&s->l2_seen);
    free(s->md.a);
    free(s->occ.a);
    map_free(&s->m_in_flight);
    free(s->mif.a);
    free(s->bank_free);
    map_free(&s->delta_last);
    map_free(&s->ehc_last);
    map_free(&s->ehc_intervals);
    ivpool_free(&s->ehc_pool);
    map_free(&s->awrp_counts);
    free(s->psel_val);
    free(s->psel_incs);
    free(s->psel_decs);
}

/* ---------------------------------------------------------------- */
/* Entry point                                                       */
/* ---------------------------------------------------------------- */

static PyObject *
replay(PyObject *self, PyObject *args)
{
    (void)self;
    PyObject *params;
    if (!PyArg_ParseTuple(args, "O!", &PyDict_Type, &params)) {
        return NULL;
    }

    Sim sim;
    Sim *s = &sim;
    memset(s, 0, sizeof(Sim));

    P p = {params, 0};
    Py_buffer addr_buf = {0}, kind_buf = {0}, gap_buf = {0};
    PyObject *out = NULL;
    int bufs_ok = 0;

    /* --- trace buffers --- */
    PyObject *addrs_o = p_item(&p, "addresses");
    PyObject *kinds_o = p_item(&p, "kinds");
    PyObject *gaps_o = p_item(&p, "gaps");
    if (p.err) {
        return NULL;
    }
    if (PyObject_GetBuffer(addrs_o, &addr_buf, PyBUF_CONTIG_RO) < 0 ||
        PyObject_GetBuffer(kinds_o, &kind_buf, PyBUF_CONTIG_RO) < 0 ||
        PyObject_GetBuffer(gaps_o, &gap_buf, PyBUF_CONTIG_RO) < 0) {
        goto fail;
    }
    bufs_ok = 1;
    s->n = addr_buf.len / (Py_ssize_t)sizeof(int64_t);
    if (gap_buf.len != addr_buf.len || kind_buf.len != s->n) {
        PyErr_SetString(PyExc_ValueError,
                        "replay kernel: trace column length mismatch");
        goto fail;
    }
    s->addrs = (const int64_t *)addr_buf.buf;
    s->kinds = (const int8_t *)kind_buf.buf;
    s->gaps = (const int64_t *)gap_buf.buf;
    s->block_bits = p_int(&p, "block_bits");
    s->ifetch_kind = p_int(&p, "ifetch_kind");
    s->store_kind = p_int(&p, "store_kind");

    /* --- window --- */
    s->win_width = p_int(&p, "win_width");
    s->win_size = p_int(&p, "win_size");
    s->win_index = p_int(&p, "win_index");
    s->win_time = p_dbl(&p, "win_time");
    s->retire_cummax = p_dbl(&p, "retire_cummax");
    s->final_completion = p_dbl(&p, "final_completion");
    s->stall_cycles = p_dbl(&p, "stall_cycles");
    s->stall_events = p_int(&p, "stall_events");
    s->long_stalls = p_int(&p, "long_stalls");
    s->long_stall_threshold = p_dbl(&p, "long_stall_threshold");

    /* --- store buffer --- */
    s->sb_capacity = p_int(&p, "sb_capacity");
    s->sb_full_stalls = p_int(&p, "sb_full_stalls");

    /* --- caches --- */
    int64_t l1d_sets = p_int(&p, "l1d_n_sets");
    int64_t l1d_assoc = p_int(&p, "l1d_assoc");
    int64_t l1i_sets = p_int(&p, "l1i_n_sets");
    int64_t l1i_assoc = p_int(&p, "l1i_assoc");
    int64_t l2_sets = p_int(&p, "l2_n_sets");
    int64_t l2_assoc = p_int(&p, "l2_assoc");
    s->l1d_latency = p_dbl(&p, "l1d_latency");
    s->l1i_latency = p_dbl(&p, "l1i_latency");
    s->l2_latency = p_dbl(&p, "l2_latency");
    s->l1d_seq = p_int(&p, "l1d_seq");
    s->l1d_accesses = p_int(&p, "l1d_accesses");
    s->l1d_hits = p_int(&p, "l1d_hits");
    s->l1d_misses = p_int(&p, "l1d_misses");
    s->l1d_writebacks = p_int(&p, "l1d_writebacks");
    s->l1i_seq = p_int(&p, "l1i_seq");
    s->l1i_accesses = p_int(&p, "l1i_accesses");
    s->l1i_hits = p_int(&p, "l1i_hits");
    s->l1i_misses = p_int(&p, "l1i_misses");
    s->l1i_writebacks = p_int(&p, "l1i_writebacks");
    s->l2_seq = p_int(&p, "l2_seq");
    s->l2_accesses = p_int(&p, "l2_accesses");
    s->l2_hits = p_int(&p, "l2_hits");
    s->l2_misses = p_int(&p, "l2_misses");
    s->l2_writebacks = p_int(&p, "l2_writebacks");
    s->l2_compulsory = p_int(&p, "l2_compulsory");
    s->track_seen = (int)p_int(&p, "track_seen");
    s->demand_ctr = p_int(&p, "demand_ctr");
    s->compulsory_ctr = p_int(&p, "compulsory_ctr");

    /* --- mshr --- */
    s->m_entries = p_int(&p, "m_entries");
    s->n_adders = p_int(&p, "n_adders");
    s->m_now = p_dbl(&p, "m_now");
    s->m_acc = p_dbl(&p, "m_acc");
    s->m_allocations = p_int(&p, "m_allocations");
    s->m_merges = p_int(&p, "m_merges");
    s->m_full_stalls = p_int(&p, "m_full_stalls");
    s->m_peak = p_int(&p, "m_peak");

    /* --- memory --- */
    s->memory_max = p_int(&p, "memory_max");
    s->mem_requests = p_int(&p, "mem_requests");
    s->mem_writebacks = p_int(&p, "mem_writebacks");
    s->mem_queueing = p_int(&p, "mem_queueing");
    s->mem_peak = p_int(&p, "mem_peak");
    s->bus_occupancy = p_dbl(&p, "bus_occupancy");
    s->bus_transfer_delay = p_dbl(&p, "bus_transfer_delay");
    s->bus_free = p_dbl(&p, "bus_free");
    s->bus_contended = p_int(&p, "bus_contended");
    s->bus_transfers = p_int(&p, "bus_transfers");
    s->bank_latency = p_dbl(&p, "bank_latency");
    s->bank_conflicts = p_int(&p, "bank_conflicts");
    s->bank_accesses = p_int(&p, "bank_accesses");

    /* --- cost + delta --- */
    s->qstep = p_dbl(&p, "qstep");
    s->max_q = p_int(&p, "max_q");
    s->dist_total = p_int(&p, "dist_total");
    s->dist_cost_sum = p_dbl(&p, "dist_cost_sum");
    s->track_delta = (int)p_int(&p, "track_delta");
    s->delta_count = p_int(&p, "delta_count");
    s->delta_sum = p_dbl(&p, "delta_sum");
    s->delta_below = p_int(&p, "delta_below");
    s->delta_mid = p_int(&p, "delta_mid");
    s->delta_high = p_int(&p, "delta_high");

    /* --- policy --- */
    s->policy_kind = p_int(&p, "policy_kind");
    s->lin_lam = p_int(&p, "lin_lam");
    s->ehc_horizon = p_int(&p, "ehc_horizon");
    s->ehc_pending = p_int(&p, "ehc_pending");
    s->never = p_int(&p, "ehc_never");
    s->awrp_weight = p_dbl(&p, "awrp_weight");
    s->awrp_fills = p_int(&p, "awrp_fills");

    /* --- controller --- */
    s->controller_kind = p_int(&p, "controller_kind");
    s->atd_assoc = p_int(&p, "atd_assoc");
    s->atd_seq = p_int(&p, "atd_seq");
    s->atd_accesses = p_int(&p, "atd_accesses");
    s->atd_hits = p_int(&p, "atd_hits");
    s->atd_misses = p_int(&p, "atd_misses");
    s->atd2_seq = p_int(&p, "atd2_seq");
    s->atd2_accesses = p_int(&p, "atd2_accesses");
    s->atd2_hits = p_int(&p, "atd2_hits");
    s->atd2_misses = p_int(&p, "atd2_misses");
    s->cbs_local = (int)p_int(&p, "cbs_local");
    s->psel_max = p_int(&p, "psel_max");
    s->psel_msb = p_int(&p, "psel_msb");
    s->deferred = p_int(&p, "deferred");
    s->follower_lin = p_int(&p, "follower_lin");
    s->follower_lru = p_int(&p, "follower_lru");

    if (p.err) {
        goto fail;
    }

    /* --- list / bytes params --- */
    {
        Py_ssize_t nb = 0;
        s->bank_free = p_dbl_list(&p, "bank_free", &nb);
        if (p.err) {
            goto fail;
        }
        s->n_banks = (int64_t)nb;
    }
    {
        Py_ssize_t nd = 0;
        int64_t *dist = p_int_list(&p, "dist_counts", &nd);
        if (p.err) {
            goto fail;
        }
        if (nd > 64) {
            free(dist);
            PyErr_SetString(PyExc_ValueError,
                            "replay kernel: dist_counts too long");
            goto fail;
        }
        memcpy(s->dist_counts, dist, (size_t)nd * sizeof(int64_t));
        free(dist);
    }
    {
        Py_ssize_t np_ = 0, ni = 0, ndc = 0;
        s->psel_val = p_int_list(&p, "psel_values", &np_);
        s->psel_incs = p_int_list(&p, "psel_incs", &ni);
        s->psel_decs = p_int_list(&p, "psel_decs", &ndc);
        if (p.err) {
            goto fail;
        }
        if (ni != np_ || ndc != np_) {
            PyErr_SetString(PyExc_ValueError,
                            "replay kernel: psel array length mismatch");
            goto fail;
        }
        s->n_psels = np_;
    }
    {
        PyObject *lead = p_item(&p, "sbar_leaders");
        if (p.err) {
            goto fail;
        }
        if (lead == Py_None) {
            s->leaders = NULL;
        }
        else {
            if (!PyBytes_Check(lead)) {
                PyErr_SetString(PyExc_TypeError,
                                "replay kernel: sbar_leaders must be bytes");
                goto fail;
            }
            if (s->controller_kind == CTRL_SBAR &&
                PyBytes_GET_SIZE(lead) != (Py_ssize_t)l2_sets) {
                PyErr_SetString(PyExc_ValueError,
                                "replay kernel: sbar_leaders length mismatch");
                goto fail;
            }
            /* borrowed: the params dict keeps it alive for the call */
            s->leaders = (const uint8_t *)PyBytes_AS_STRING(lead);
        }
    }

    /* --- containers --- */
    if (tags_init(&s->l1d, l1d_sets, l1d_assoc) < 0 ||
        tags_init(&s->l1i, l1i_sets, l1i_assoc) < 0 ||
        tags_init(&s->l2, l2_sets, l2_assoc) < 0 ||
        map_init(&s->l2_seen, 1024) < 0 ||
        map_init(&s->m_in_flight, 64) < 0 ||
        map_init(&s->delta_last, 1024) < 0 ||
        map_init(&s->ehc_last, 1024) < 0 ||
        map_init(&s->ehc_intervals, 1024) < 0 ||
        map_init(&s->awrp_counts, 1024) < 0) {
        PyErr_NoMemory();
        goto fail;
    }
    ivpool_init(&s->ehc_pool, s->ehc_horizon);
    if (s->controller_kind == CTRL_SBAR || s->controller_kind == CTRL_CBS) {
        if (tags_init(&s->atd_lru, l2_sets, s->atd_assoc) < 0) {
            PyErr_NoMemory();
            goto fail;
        }
    }
    if (s->controller_kind == CTRL_CBS) {
        if (tags_init(&s->atd_lin, l2_sets, s->atd_assoc) < 0) {
            PyErr_NoMemory();
            goto fail;
        }
    }
    if (s->controller_kind == CTRL_SBAR && !s->leaders) {
        PyErr_SetString(PyExc_ValueError,
                        "replay kernel: sbar requires leaders bitmap");
        goto fail;
    }

    /* --- run --- */
    Py_BEGIN_ALLOW_THREADS;
    run_loop(s);
    Py_END_ALLOW_THREADS;

    if (s->oom) {
        PyErr_NoMemory();
        goto fail;
    }

    /* --- emit --- */
    out = PyDict_New();
    if (!out) {
        goto fail;
    }
    if (/* window */
        out_int(out, "win_index", s->win_index) < 0 ||
        out_dbl(out, "win_time", s->win_time) < 0 ||
        out_dbl(out, "retire_cummax", s->retire_cummax) < 0 ||
        out_dbl(out, "final_completion", s->final_completion) < 0 ||
        out_dbl(out, "stall_cycles", s->stall_cycles) < 0 ||
        out_int(out, "stall_events", s->stall_events) < 0 ||
        out_int(out, "long_stalls", s->long_stalls) < 0 ||
        out_obj(out, "win_pending", emit_win_pending(&s->wp)) < 0 ||
        /* store buffer */
        out_int(out, "sb_full_stalls", s->sb_full_stalls) < 0 ||
        out_obj(out, "sb_completions", emit_heap_sorted(&s->sb)) < 0 ||
        /* caches */
        out_int(out, "l1d_seq", s->l1d_seq) < 0 ||
        out_int(out, "l1d_accesses", s->l1d_accesses) < 0 ||
        out_int(out, "l1d_hits", s->l1d_hits) < 0 ||
        out_int(out, "l1d_misses", s->l1d_misses) < 0 ||
        out_int(out, "l1d_writebacks", s->l1d_writebacks) < 0 ||
        out_obj(out, "l1d_sets", emit_tags(&s->l1d)) < 0 ||
        out_int(out, "l1i_seq", s->l1i_seq) < 0 ||
        out_int(out, "l1i_accesses", s->l1i_accesses) < 0 ||
        out_int(out, "l1i_hits", s->l1i_hits) < 0 ||
        out_int(out, "l1i_misses", s->l1i_misses) < 0 ||
        out_int(out, "l1i_writebacks", s->l1i_writebacks) < 0 ||
        out_obj(out, "l1i_sets", emit_tags(&s->l1i)) < 0 ||
        out_int(out, "l2_seq", s->l2_seq) < 0 ||
        out_int(out, "l2_accesses", s->l2_accesses) < 0 ||
        out_int(out, "l2_hits", s->l2_hits) < 0 ||
        out_int(out, "l2_misses", s->l2_misses) < 0 ||
        out_int(out, "l2_writebacks", s->l2_writebacks) < 0 ||
        out_int(out, "l2_compulsory", s->l2_compulsory) < 0 ||
        out_obj(out, "l2_sets", emit_tags(&s->l2)) < 0 ||
        out_obj(out, "l2_seen", emit_map(&s->l2_seen, 0)) < 0 ||
        out_int(out, "demand_ctr", s->demand_ctr) < 0 ||
        out_int(out, "compulsory_ctr", s->compulsory_ctr) < 0 ||
        /* mshr */
        out_dbl(out, "m_now", s->m_now) < 0 ||
        out_dbl(out, "m_acc", s->m_acc) < 0 ||
        out_int(out, "m_live", s->m_live) < 0 ||
        out_int(out, "m_in_flight_n", (int64_t)s->m_in_flight.n) < 0 ||
        out_int(out, "m_allocations", s->m_allocations) < 0 ||
        out_int(out, "m_merges", s->m_merges) < 0 ||
        out_int(out, "m_full_stalls", s->m_full_stalls) < 0 ||
        out_int(out, "m_peak", s->m_peak) < 0 ||
        /* memory */
        out_int(out, "mem_requests", s->mem_requests) < 0 ||
        out_int(out, "mem_writebacks", s->mem_writebacks) < 0 ||
        out_int(out, "mem_queueing", s->mem_queueing) < 0 ||
        out_int(out, "mem_peak", s->mem_peak) < 0 ||
        out_obj(out, "mem_in_flight", emit_heap_sorted(&s->mif)) < 0 ||
        out_dbl(out, "bus_free", s->bus_free) < 0 ||
        out_int(out, "bus_contended", s->bus_contended) < 0 ||
        out_int(out, "bus_transfers", s->bus_transfers) < 0 ||
        out_obj(out, "bank_free",
                emit_dbl_array(s->bank_free, (Py_ssize_t)s->n_banks)) < 0 ||
        out_int(out, "bank_conflicts", s->bank_conflicts) < 0 ||
        out_int(out, "bank_accesses", s->bank_accesses) < 0 ||
        /* cost + delta */
        out_obj(out, "dist_counts",
                emit_int_array(s->dist_counts, (Py_ssize_t)(s->max_q + 1)))
            < 0 ||
        out_int(out, "dist_total", s->dist_total) < 0 ||
        out_dbl(out, "dist_cost_sum", s->dist_cost_sum) < 0 ||
        out_int(out, "delta_count", s->delta_count) < 0 ||
        out_dbl(out, "delta_sum", s->delta_sum) < 0 ||
        out_int(out, "delta_below", s->delta_below) < 0 ||
        out_int(out, "delta_mid", s->delta_mid) < 0 ||
        out_int(out, "delta_high", s->delta_high) < 0 ||
        out_obj(out, "delta_last", emit_map(&s->delta_last, 2)) < 0 ||
        /* policy */
        out_int(out, "ehc_pending", s->ehc_pending) < 0 ||
        out_obj(out, "ehc_last", emit_map(&s->ehc_last, 1)) < 0 ||
        out_obj(out, "ehc_intervals",
                emit_intervals(&s->ehc_intervals, &s->ehc_pool)) < 0 ||
        out_int(out, "awrp_fills", s->awrp_fills) < 0 ||
        out_obj(out, "awrp_counts", emit_map(&s->awrp_counts, 1)) < 0 ||
        /* controller */
        out_int(out, "atd_seq", s->atd_seq) < 0 ||
        out_int(out, "atd_accesses", s->atd_accesses) < 0 ||
        out_int(out, "atd_hits", s->atd_hits) < 0 ||
        out_int(out, "atd_misses", s->atd_misses) < 0 ||
        out_int(out, "atd2_seq", s->atd2_seq) < 0 ||
        out_int(out, "atd2_accesses", s->atd2_accesses) < 0 ||
        out_int(out, "atd2_hits", s->atd2_hits) < 0 ||
        out_int(out, "atd2_misses", s->atd2_misses) < 0 ||
        out_obj(out, "psel_values",
                emit_int_array(s->psel_val, s->n_psels)) < 0 ||
        out_obj(out, "psel_incs",
                emit_int_array(s->psel_incs, s->n_psels)) < 0 ||
        out_obj(out, "psel_decs",
                emit_int_array(s->psel_decs, s->n_psels)) < 0 ||
        out_int(out, "deferred", s->deferred) < 0 ||
        out_int(out, "follower_lin", s->follower_lin) < 0 ||
        out_int(out, "follower_lru", s->follower_lru) < 0) {
        goto fail;
    }
    if (s->controller_kind == CTRL_SBAR) {
        if (out_obj(out, "atd_sets",
                    emit_leader_tags(&s->atd_lru, s->leaders)) < 0) {
            goto fail;
        }
    }
    else if (s->controller_kind == CTRL_CBS) {
        if (out_obj(out, "atd_sets", emit_tags(&s->atd_lru)) < 0 ||
            out_obj(out, "atd2_sets", emit_tags(&s->atd_lin)) < 0) {
            goto fail;
        }
    }

    sim_free(s);
    PyBuffer_Release(&addr_buf);
    PyBuffer_Release(&kind_buf);
    PyBuffer_Release(&gap_buf);
    return out;

fail:
    Py_XDECREF(out);
    sim_free(s);
    if (bufs_ok) {
        PyBuffer_Release(&addr_buf);
        PyBuffer_Release(&kind_buf);
        PyBuffer_Release(&gap_buf);
    }
    else {
        if (addr_buf.obj) {
            PyBuffer_Release(&addr_buf);
        }
        if (kind_buf.obj) {
            PyBuffer_Release(&kind_buf);
        }
        if (gap_buf.obj) {
            PyBuffer_Release(&gap_buf);
        }
    }
    return NULL;
}

static PyMethodDef replaykernel_methods[] = {
    {"replay", replay, METH_VARARGS,
     "Run the fused replay loop natively over packed trace columns.\n"
     "Takes a flat params dict, returns the end-of-run state dict.\n"
     "Bit-identical to the pure-python kernels by construction."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef replaykernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro._native.replaykernel",
    "Native (C) replay kernel: the top rung of the kernel ladder.",
    -1,
    replaykernel_methods,
    NULL,
    NULL,
    NULL,
    NULL,
};

PyMODINIT_FUNC
PyInit_replaykernel(void)
{
    return PyModule_Create(&replaykernel_module);
}
