"""Tests for the window timing model, store buffer, and branch predictors."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cpu.branch import (
    BranchTargetBuffer,
    GshareBranchPredictor,
    HybridBranchPredictor,
    PAsBranchPredictor,
)
from repro.cpu.store_buffer import StoreBuffer
from repro.cpu.window import WindowModel


class TestWindowModel:
    def test_fetch_rate(self):
        window = WindowModel(width=8, window_size=128)
        t = window.advance(15)  # 16 instructions at 8/cycle
        assert t == pytest.approx(2.0)
        assert window.instructions == 16

    def test_isolated_miss_stalls_at_window_edge(self):
        window = WindowModel(width=8, window_size=128)
        t0 = window.advance(0)  # instruction 1 dispatches
        window.complete_memory_op(t0 + 444)
        # The next access sits 200 instructions later: fetch must stall
        # at instruction index 1+128 until the miss completes.
        t1 = window.advance(199)
        expected = (t0 + 444) + (201 - 129) / 8
        assert t1 == pytest.approx(expected)
        assert window.stall_events == 1
        assert window.long_stalls == 1

    def test_no_stall_when_completion_beats_fetch(self):
        window = WindowModel(width=8, window_size=128)
        t0 = window.advance(0)
        window.complete_memory_op(t0 + 2)  # an L1 hit
        window.advance(500)
        assert window.stall_events == 0

    def test_parallel_misses_share_one_stall(self):
        window = WindowModel(width=8, window_size=128)
        for _ in range(4):
            t = window.advance(0)
            window.complete_memory_op(t + 444)
        window.advance(1000)
        # All four misses complete ~together; one long stall.
        assert window.long_stalls == 1

    def test_serial_misses_stall_separately(self):
        window = WindowModel(width=8, window_size=128)
        for _ in range(3):
            t = window.advance(200)  # window drains between misses
            window.complete_memory_op(t + 444)
        window.advance(1000)
        assert window.long_stalls == 3

    def test_in_order_retirement_uses_running_max(self):
        window = WindowModel(width=8, window_size=16)
        t0 = window.advance(0)
        window.complete_memory_op(t0 + 1000)  # slow older op
        t1 = window.advance(0)
        window.complete_memory_op(t1 + 1)     # fast younger op
        # The younger op cannot retire before the older one, so fetch
        # past younger+16 still waits for the older op's completion.
        t2 = window.advance(100)
        assert t2 >= t0 + 1000

    def test_stall_until(self):
        window = WindowModel()
        window.advance(0)
        window.stall_until(500.0)
        assert window.now == 500.0
        assert window.long_stalls == 1

    def test_finish_covers_outstanding_completions(self):
        window = WindowModel()
        t = window.advance(0)
        window.complete_memory_op(t + 444)
        assert window.finish() >= t + 444

    def test_monotone_dispatch_times(self):
        window = WindowModel()
        last = 0.0
        for gap in (0, 5, 130, 0, 260, 3):
            t = window.advance(gap)
            window.complete_memory_op(t + 100)
            assert t >= last
            last = t

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=400), min_size=1, max_size=50))
    def test_time_and_index_monotone(self, gaps):
        window = WindowModel()
        previous_time = 0.0
        previous_index = 0
        for gap in gaps:
            t = window.advance(gap)
            window.complete_memory_op(t + 444)
            assert t >= previous_time
            assert window.instructions == previous_index + gap + 1
            previous_time = t
            previous_index = window.instructions

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowModel(width=0)
        with pytest.raises(ValueError):
            WindowModel(window_size=0)


class TestStoreBuffer:
    def test_admit_when_space(self):
        buffer = StoreBuffer(capacity=2)
        assert buffer.admit(0.0, 444.0) == 0.0

    def test_full_buffer_backpressures(self):
        buffer = StoreBuffer(capacity=2)
        buffer.admit(0.0, 100.0)
        buffer.admit(0.0, 200.0)
        admitted = buffer.admit(50.0, 300.0)
        assert admitted == 100.0
        assert buffer.full_stalls == 1

    def test_drained_entries_free_space(self):
        buffer = StoreBuffer(capacity=1)
        buffer.admit(0.0, 100.0)
        assert buffer.admit(150.0, 400.0) == 150.0
        assert buffer.full_stalls == 0

    def test_occupancy(self):
        buffer = StoreBuffer(capacity=4)
        buffer.admit(0.0, 100.0)
        buffer.admit(0.0, 200.0)
        assert buffer.occupancy_at(50.0) == 2
        assert buffer.occupancy_at(150.0) == 1

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            StoreBuffer(0)


class TestBranchPredictors:
    def test_gshare_learns_always_taken(self):
        predictor = GshareBranchPredictor(1024)
        # The global history register needs to saturate (all-taken)
        # before the steady-state index is trained, hence > 10+2 updates.
        for _ in range(20):
            predictor.update(0x400, True)
        assert predictor.predict(0x400)

    def test_gshare_learns_alternating_with_history(self):
        predictor = GshareBranchPredictor(1024)
        outcomes = [True, False] * 200
        for taken in outcomes:
            predictor.update(0x400, taken)
        # After training, the global history disambiguates the pattern.
        late_wrong = 0
        for taken in outcomes[-50:]:
            if not predictor.update(0x400, taken):
                late_wrong += 1
        assert late_wrong <= 5

    def test_pas_uses_local_history(self):
        predictor = PAsBranchPredictor(4096, history_bits=4)
        pattern = [True, True, False]
        for _ in range(100):
            for taken in pattern:
                predictor.update(0x88, taken)
        correct = 0
        for _ in range(10):
            for taken in pattern:
                if predictor.update(0x88, taken):
                    correct += 1
        assert correct >= 27

    def test_hybrid_tracks_better_component(self):
        predictor = HybridBranchPredictor(1024, 1024, 1024)
        for _ in range(200):
            predictor.update(0x10, True)
        assert predictor.predict(0x10)
        assert predictor.misprediction_rate < 0.2

    def test_hybrid_counts_predictions(self):
        predictor = HybridBranchPredictor(64, 64, 64)
        predictor.update(0, True)
        assert predictor.predictions == 1

    def test_counter_table_power_of_two(self):
        with pytest.raises(ValueError):
            GshareBranchPredictor(1000)


class TestBTB:
    def test_install_and_lookup(self):
        btb = BranchTargetBuffer(64, 4)
        btb.install(0x100, 0x200)
        assert btb.lookup(0x100) == 0x200

    def test_miss_returns_none(self):
        btb = BranchTargetBuffer(64, 4)
        assert btb.lookup(0x100) is None

    def test_lru_eviction_within_set(self):
        btb = BranchTargetBuffer(16, 4)  # 4 sets
        n_sets = btb.n_sets
        pcs = [(i * n_sets) << 2 for i in range(5)]  # same set
        for pc in pcs:
            btb.install(pc, pc + 4)
        assert btb.lookup(pcs[0]) is None  # oldest evicted
        assert btb.lookup(pcs[4]) == pcs[4] + 4

    def test_reinstall_updates_target(self):
        btb = BranchTargetBuffer(64, 4)
        btb.install(0x100, 0x200)
        btb.install(0x100, 0x300)
        assert btb.lookup(0x100) == 0x300

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            BranchTargetBuffer(10, 4)
