"""Packed column-oriented traces.

A list of :class:`~repro.trace.record.Access` objects costs one Python
object (plus four boxed attributes) per record; at the 10\\ :sup:`5`\\ –
10\\ :sup:`6` records the macro benchmarks replay, the allocator traffic
and per-record attribute loads are a measurable slice of kernel time,
and the resident footprint is ~10x the information content.
:class:`PackedTrace` stores the same records as four parallel columns —
the object-vs-column tradeoff trace tools resolve the same way:

* ``address`` — signed 64-bit :mod:`array` column (``"q"``),
* ``kind`` — signed 8-bit column (``"b"``),
* ``gap`` — signed 64-bit column (``"q"``; gaps are unbounded because
  :meth:`TraceBuilder.quiet` can inflate them arbitrarily),
* wrong-path — a bit per record in a :class:`bytearray` bitset
  (LSB-first within each byte).

The packed form is a drop-in sequence of ``Access`` objects
(``__iter__``/``__getitem__``/``__len__`` materialize records lazily),
so the generic simulator loop and every analysis helper accept it
unchanged.  The fused replay loop instead consumes
:meth:`iter_tuples`, which yields plain ``(address, kind, gap,
wrong_path)`` tuples straight off the columns without building a single
``Access``.

Validation is *bulk*: :meth:`from_accesses` checks whole columns with
C-speed ``min``/``set`` reductions instead of three compares per record
(see :func:`repro.trace.record.validate_access_fields`).

:meth:`content_digest` hashes a canonical little-endian serialization
of the columns, so two traces with equal records digest identically on
any host — the persistent store and the bench ``--check`` mode key on
this.
"""

from __future__ import annotations

import sys
from array import array
from hashlib import sha256
from itertools import repeat
from typing import Iterable, Iterator, Sequence, Tuple

from repro.trace.record import IFETCH, LOAD, STORE, Access, Trace

#: Bump when the canonical digest serialization changes.
DIGEST_FORMAT = "repro.trace.packed/v1"

_VALID_KINDS = frozenset((LOAD, STORE, IFETCH))


def _canonical_bytes(column: array) -> bytes:
    """Column bytes in little-endian order regardless of host."""
    if sys.byteorder == "big":
        column = array(column.typecode, column)
        column.byteswap()
    return column.tobytes()


class PackedTrace:
    """An immutable-by-convention trace stored as parallel columns.

    Build one with :meth:`from_accesses`; mutating the underlying
    columns afterwards invalidates the cached digest and is not
    supported.
    """

    __slots__ = (
        "_addresses", "_kinds", "_gaps", "_wrong_bits", "_n_wrong",
        "_wrong_flags", "_digest",
    )

    def __init__(
        self,
        addresses: array,
        kinds: array,
        gaps: array,
        wrong_bits: bytearray,
        n_wrong: int,
    ) -> None:
        if not (len(addresses) == len(kinds) == len(gaps)):
            raise ValueError("column lengths disagree")
        if len(wrong_bits) != (len(addresses) + 7) // 8:
            raise ValueError("wrong-path bitset has the wrong size")
        self._addresses = addresses
        self._kinds = kinds
        self._gaps = gaps
        self._wrong_bits = wrong_bits
        self._n_wrong = n_wrong
        self._wrong_flags = None
        self._digest = None

    # -- construction -------------------------------------------------

    @classmethod
    def from_columns(
        cls,
        addresses: array,
        kinds: array,
        gaps: array,
        wrong_bits: "bytearray | None" = None,
        n_wrong: int = 0,
    ) -> "PackedTrace":
        """Build a trace from raw columns, validated.

        Every construction site outside this module must go through
        here (or :meth:`from_accesses`): it runs the bulk column
        validation *and* cross-checks the wrong-path bitset against
        ``n_wrong``, including the trailing-zero invariant the content
        digest depends on.  ``wrong_bits=None`` means no wrong-path
        records (a fresh zeroed bitset is allocated).
        """
        n = len(addresses)
        if wrong_bits is None:
            if n_wrong:
                raise ValueError(
                    "n_wrong=%d without a wrong-path bitset" % n_wrong
                )
            wrong_bits = bytearray((n + 7) // 8)
        packed = cls(addresses, kinds, gaps, wrong_bits, n_wrong)
        if n & 7 and wrong_bits and wrong_bits[-1] >> (n & 7):
            raise ValueError(
                "wrong-path bitset has bits set past the last record"
            )
        if int.from_bytes(bytes(wrong_bits), "little").bit_count() != n_wrong:
            raise ValueError("n_wrong disagrees with the wrong-path bitset")
        packed.validate()
        return packed

    @classmethod
    def from_accesses(cls, accesses: Iterable[Access]) -> "PackedTrace":
        """Pack a sequence of ``Access`` records into columns.

        Field validation is performed on the finished columns in bulk
        (O(n) C-level reductions), not per record.
        """
        if not isinstance(accesses, Sequence):
            accesses = list(accesses)
        n = len(accesses)
        addresses = array("q")
        kinds = array("b")
        gaps = array("q")
        wrong_bits = bytearray((n + 7) // 8)
        n_wrong = 0
        append_address = addresses.append
        append_kind = kinds.append
        append_gap = gaps.append
        for index, access in enumerate(accesses):
            append_address(access.address)
            append_kind(access.kind)
            append_gap(access.gap)
            if access.wrong_path:
                wrong_bits[index >> 3] |= 1 << (index & 7)
                n_wrong += 1
        packed = cls(addresses, kinds, gaps, wrong_bits, n_wrong)
        packed.validate()
        return packed

    def validate(self) -> None:
        """Bulk-validate the columns (C-level reductions, O(n) total).

        Raises :exc:`ValueError` on any field no ``Access`` may carry —
        the columnar equivalent of
        :func:`repro.trace.record.validate_access_fields`.
        """
        if not self._addresses:
            return
        if min(self._addresses) < 0:
            raise ValueError("addresses must be non-negative")
        if min(self._gaps) < 0:
            raise ValueError("gaps must be non-negative")
        bad_kinds = set(self._kinds) - _VALID_KINDS
        if bad_kinds:
            raise ValueError("unknown access kinds %r" % sorted(bad_kinds))

    def to_accesses(self) -> Trace:
        """Materialize the packed records back into ``Access`` objects."""
        return list(self)

    def slice(self, start: int, stop: int) -> "PackedTrace":
        """A new trace holding records ``[start, stop)`` (column copy).

        The workload composition operators (clip, interleave) are built
        on this; slicing stays at C speed because ``array`` slicing
        copies whole buffers.  Indices clamp like list slicing.
        """
        n = len(self._addresses)
        start = max(0, min(n, start))
        stop = max(start, min(n, stop))
        addresses = self._addresses[start:stop]
        kinds = self._kinds[start:stop]
        gaps = self._gaps[start:stop]
        count = stop - start
        n_wrong = 0
        if self._n_wrong and start & 7 == 0:
            # Byte-aligned start: splice the bitset at C speed.  The
            # last byte may carry bits past ``count`` (records beyond
            # ``stop``); mask them off to preserve the trailing-zero
            # invariant the content digest depends on.
            wrong_bits = bytearray(
                self._wrong_bits[start >> 3:(start + count + 7) >> 3]
            )
            if count & 7 and wrong_bits:
                wrong_bits[-1] &= (1 << (count & 7)) - 1
            n_wrong = int.from_bytes(bytes(wrong_bits), "little").bit_count()
        else:
            wrong_bits = bytearray((count + 7) // 8)
            if self._n_wrong:
                bits = self._wrong_bits
                for offset in range(count):
                    index = start + offset
                    if bits[index >> 3] >> (index & 7) & 1:
                        wrong_bits[offset >> 3] |= 1 << (offset & 7)
                        n_wrong += 1
        return PackedTrace(addresses, kinds, gaps, wrong_bits, n_wrong)

    @classmethod
    def concatenate(cls, traces: Sequence["PackedTrace"]) -> "PackedTrace":
        """Join traces end to end into one new trace.

        Columns extend buffer-to-buffer; the wrong-path bitset only
        needs per-record work for the (rare) traces that carry
        wrong-path records.
        """
        addresses = array("q")
        kinds = array("b")
        gaps = array("q")
        total = sum(len(trace) for trace in traces)
        wrong_bits = bytearray((total + 7) // 8)
        n_wrong = 0
        base = 0
        for trace in traces:
            if not isinstance(trace, PackedTrace):
                trace = PackedTrace.from_accesses(trace)
            addresses.extend(trace._addresses)
            kinds.extend(trace._kinds)
            gaps.extend(trace._gaps)
            if trace._n_wrong:
                bits = trace._wrong_bits
                if base & 7 == 0:
                    # Byte-aligned destination: splice at C speed.  The
                    # source's trailing bits are zero by invariant, and
                    # every position past ``base`` is still zero in the
                    # destination, so plain assignment is exact; later
                    # unaligned traces OR on top of those zeros.
                    wrong_bits[base >> 3:(base >> 3) + len(bits)] = bits
                    n_wrong += trace._n_wrong
                else:
                    for offset in range(len(trace)):
                        if bits[offset >> 3] >> (offset & 7) & 1:
                            index = base + offset
                            wrong_bits[index >> 3] |= 1 << (index & 7)
                            n_wrong += 1
            base += len(trace)
        return cls(addresses, kinds, gaps, wrong_bits, n_wrong)

    # -- sequence protocol --------------------------------------------

    def __len__(self) -> int:
        return len(self._addresses)

    def wrong_path(self, index: int) -> bool:
        """Whether record ``index`` is wrong-path.

        ``index`` must be a plain ``int`` in ``[0, len(self))``.
        Negative indices raise :exc:`IndexError` rather than silently
        wrapping through the *bitset* (which is 8x shorter than the
        trace, so ``-1`` used to read the flag of a record near the
        end of the first byte-group instead of the last record), and
        ``bool`` is rejected like any other non-``int``.
        """
        if isinstance(index, bool) or not isinstance(index, int):
            raise TypeError("PackedTrace indices must be integers")
        if not 0 <= index < len(self._addresses):
            raise IndexError("trace index out of range")
        return bool(self._wrong_bits[index >> 3] >> (index & 7) & 1)

    @property
    def wrong_path_count(self) -> int:
        """Number of wrong-path records in the trace."""
        return self._n_wrong

    def __getitem__(self, index: int) -> Access:
        # bool is an int subclass; reject it explicitly so that e.g.
        # ``trace[True]`` (a likely logic bug) cannot read record 1.
        if isinstance(index, bool) or not isinstance(index, int):
            raise TypeError("PackedTrace indices must be integers")
        n = len(self._addresses)
        if index < 0:
            index += n
        if not 0 <= index < n:
            raise IndexError("trace index out of range")
        return Access(
            self._addresses[index],
            self._kinds[index],
            self._gaps[index],
            self.wrong_path(index),
        )

    def __iter__(self) -> Iterator[Access]:
        for address, kind, gap, wrong in self.iter_tuples():
            yield Access(address, kind, gap, bool(wrong))

    def column_views(self):
        """Zero-copy numpy views ``(addresses, kinds, gaps)``.

        The views alias the live ``array`` buffers via
        ``np.frombuffer`` — no copy at any length — and are marked
        read-only: the trace is immutable by convention and the cached
        content digest must stay truthful.  dtypes are native-order
        ``int64``/``int8``/``int64``, matching the ``"q"``/``"b"``/
        ``"q"`` columns on any host.

        numpy is imported lazily: it is a hard dependency of the
        batched replay kernel only, never of the trace layer itself.
        Raises :exc:`ImportError` where numpy is unavailable — callers
        that want a fallback must catch it.
        """
        import numpy as np

        addresses = np.frombuffer(self._addresses, dtype=np.int64)
        kinds = np.frombuffer(self._kinds, dtype=np.int8)
        gaps = np.frombuffer(self._gaps, dtype=np.int64)
        for view in (addresses, kinds, gaps):
            view.flags.writeable = False
        return addresses, kinds, gaps

    def iter_tuples(self) -> Iterator[Tuple[int, int, int, int]]:
        """Iterate ``(address, kind, gap, wrong_path)`` tuples.

        This is the fused replay loop's input: no ``Access`` objects
        are materialized.  ``wrong_path`` is a truthy/falsy int.  When
        the trace has no wrong-path records (the common case) the flag
        column is a constant zero stream rather than an expanded
        bitset.
        """
        if self._n_wrong == 0:
            flags: Iterable[int] = repeat(0)
        else:
            flags = self._expand_wrong_flags()
        return zip(self._addresses, self._kinds, self._gaps, flags)

    def _expand_wrong_flags(self) -> array:
        """Expand the bitset into a cached byte-per-record flag column."""
        flags = self._wrong_flags
        if flags is None:
            bits = self._wrong_bits
            flags = array(
                "b",
                (
                    bits[index >> 3] >> (index & 7) & 1
                    for index in range(len(self._addresses))
                ),
            )
            self._wrong_flags = flags
        return flags

    # -- identity -----------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PackedTrace):
            return NotImplemented
        return (
            self._addresses == other._addresses
            and self._kinds == other._kinds
            and self._gaps == other._gaps
            and self._wrong_bits == other._wrong_bits
        )

    def content_digest(self) -> str:
        """Deterministic hex digest of the trace content.

        The digest covers a canonical little-endian serialization of
        every column plus the record count, so it is stable across
        hosts, byte orders, and Python versions; equal record sequences
        always digest equally.
        """
        digest = self._digest
        if digest is None:
            hasher = sha256()
            hasher.update(DIGEST_FORMAT.encode("ascii"))
            hasher.update(len(self._addresses).to_bytes(8, "little"))
            hasher.update(_canonical_bytes(self._addresses))
            hasher.update(_canonical_bytes(self._kinds))
            hasher.update(_canonical_bytes(self._gaps))
            hasher.update(bytes(self._wrong_bits))
            digest = hasher.hexdigest()
            self._digest = digest
        return digest

    # -- accounting ---------------------------------------------------

    @property
    def nbytes(self) -> int:
        """Resident bytes of the packed columns (not counting Python
        object headers)."""
        return (
            self._addresses.itemsize * len(self._addresses)
            + self._kinds.itemsize * len(self._kinds)
            + self._gaps.itemsize * len(self._gaps)
            + len(self._wrong_bits)
        )

    def total_instructions(self) -> int:
        """Dynamic instructions the trace represents (column-speed
        version of :func:`repro.trace.record.total_instructions`)."""
        total = sum(self._gaps) + len(self._gaps)
        if self._n_wrong:
            for index in range(len(self._addresses)):
                if self._wrong_bits[index >> 3] >> (index & 7) & 1:
                    total -= self._gaps[index] + 1
        return total

    def __repr__(self) -> str:
        return "PackedTrace(%d records, %d wrong-path, %d bytes)" % (
            len(self._addresses), self._n_wrong, self.nbytes
        )


def pack_trace(trace) -> PackedTrace:
    """Coerce ``trace`` to a :class:`PackedTrace` (no-op when packed)."""
    if isinstance(trace, PackedTrace):
        return trace
    return PackedTrace.from_accesses(trace)


__all__ = ["PackedTrace", "pack_trace", "DIGEST_FORMAT"]
