"""Memory controller: glues the DRAM bank array to the data bus.

The controller accepts line-fill and writeback requests and returns
completion times.  It enforces the Table 2 limit of 32 outstanding
requests by tracking in-flight completions; a request that arrives when
the controller is saturated is delayed until the oldest in-flight
request completes (queueing delay).
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import List

from repro.config import MemoryConfig
from repro.memory.bus import SplitTransactionBus
from repro.memory.dram import DramBankArray, RowBufferBankArray


class MemoryController:
    """Timing model for the path L2 -> DRAM -> bus -> L2."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        if config.row_buffer:
            self.banks = RowBufferBankArray(
                config.n_banks,
                config.dram_access_latency,
                config.row_hit_latency,
                config.row_blocks,
            )
        else:
            self.banks = DramBankArray(
                config.n_banks, config.dram_access_latency
            )
        self.bus = SplitTransactionBus(config.bus_delay, config.bus_occupancy)
        self.max_outstanding = config.max_outstanding
        self._in_flight: List[float] = []  # heap of completion times
        self.requests = 0
        self.writebacks = 0
        self.queueing_stalls = 0
        self.peak_in_flight = 0
        #: Optional :class:`repro.obs.Observer`; queue-full waits are
        #: reported when set.
        self.observer = None

    def read_line(self, block: int, when: float) -> float:
        """Fetch cache block ``block``; return the fill-complete time."""
        when = self._admit(when)
        data_ready = self.banks.access(block, when)
        complete = self.bus.transfer(data_ready)
        heappush(self._in_flight, complete)
        if len(self._in_flight) > self.peak_in_flight:
            self.peak_in_flight = len(self._in_flight)
        self.requests += 1
        return complete

    def write_line(self, block: int, when: float) -> float:
        """Write back a dirty line; returns when the bank is updated.

        Writebacks consume bank and bus bandwidth (perturbing demand
        traffic) but the core never waits for them.
        """
        when = self._admit(when)
        # The line crosses the bus to memory first, then updates the bank.
        arrive = self.bus.transfer(when)
        complete = self.banks.access(block, arrive)
        heappush(self._in_flight, complete)
        if len(self._in_flight) > self.peak_in_flight:
            self.peak_in_flight = len(self._in_flight)
        self.requests += 1
        self.writebacks += 1
        return complete

    def _admit(self, when: float) -> float:
        """Delay ``when`` until an outstanding-request slot is free."""
        in_flight = self._in_flight
        while in_flight and in_flight[0] <= when:
            heappop(in_flight)
        while len(in_flight) >= self.max_outstanding:
            earliest = heappop(in_flight)
            if earliest > when:
                when = earliest
                self.queueing_stalls += 1
                if self.observer is not None:
                    self.observer.memory_queue_full(when)
        return when

    def reset(self) -> None:
        self.banks.reset()
        self.bus.reset()
        self._in_flight = []
        self.requests = 0
        self.writebacks = 0
        self.queueing_stalls = 0
        self.peak_in_flight = 0

    @property
    def isolated_latency(self) -> int:
        """Service time of a miss with an idle memory system (444)."""
        return self.config.isolated_miss_latency
