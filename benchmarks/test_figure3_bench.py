"""Regeneration benchmark for figure3 of the paper."""

from repro.experiments import figure3


def test_figure3(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(figure3), rounds=1, iterations=1
    )
    assert report.render()
