"""Wrong-path memory references driven by the branch-predictor substrate.

Section 3.1: "All misses are treated on correct path until they are
confirmed to be on the wrong path.  Misses on the wrong path are not
counted as demand misses."  This example runs the Table 2 hybrid
gshare/PAs predictor over a synthetic branch stream and, at every
misprediction, injects a short burst of wrong-path loads into the
trace.  The simulator services them (they occupy the MSHR, banks, and
bus, and they pollute the caches) but excludes them from demand-miss
accounting and from Algorithm 1's N.

Run::

    python examples/wrong_path_injection.py
"""

import random

from repro import Simulator, experiment_config
from repro.cpu.branch import HybridBranchPredictor
from repro.trace.record import LOAD, Access

N_BRANCHES = 20_000
WRONG_PATH_BURST = 3


def build_trace_with_wrong_path():
    """A load stream punctuated by branches; mispredictions inject
    wrong-path loads."""
    rng = random.Random(11)
    predictor = HybridBranchPredictor()
    trace = []
    wrong_path_pool = 4_000_000
    block = 0
    for index in range(N_BRANCHES):
        # Demand load stream: strided bursts.
        for offset in range(4):
            trace.append(Access((block + offset) * 64, LOAD, 40 if offset == 0 else 4))
        block = (block + 4) % 9000

        # A branch whose outcome is biased but noisy.
        pc = 0x1000 + (index % 97) * 4
        taken = rng.random() < 0.85
        correct = predictor.update(pc, taken)
        if not correct:
            # Fetch runs down the wrong path: a few loads issue and are
            # later squashed.  They never join the committed stream.
            for offset in range(WRONG_PATH_BURST):
                wrong_block = wrong_path_pool + rng.randrange(50_000)
                trace.append(
                    Access(wrong_block * 64, LOAD, 0, wrong_path=True)
                )
    return trace, predictor


def main() -> None:
    trace, predictor = build_trace_with_wrong_path()
    n_wrong = sum(1 for access in trace if access.wrong_path)
    print(
        "branch misprediction rate: %.1f%%  (%d wrong-path loads injected)"
        % (100 * predictor.misprediction_rate, n_wrong)
    )

    simulator = Simulator(experiment_config(), "lru")
    result = simulator.run(trace)
    print("committed instructions: %d" % result.instructions)
    print("demand misses:          %d" % result.demand_misses)
    print("total L2 misses:        %d  (includes wrong-path fills)"
          % result.l2_misses)
    print(
        "wrong-path L2 misses:   %d  (cache-polluting, not demand)"
        % (result.l2_misses - result.demand_misses)
    )
    print(
        "\nWrong-path traffic perturbs timing and cache contents but is\n"
        "invisible to the MLP-cost accounting, as in Section 3.1."
    )


if __name__ == "__main__":
    main()
