"""Shared fixtures: small machines and crafted traces.

Unit tests use deliberately tiny cache geometries so behaviors are
hand-checkable; integration tests use the experiment machine at small
trace scales.
"""

from __future__ import annotations

import os

import pytest

from repro.config import (
    CacheGeometry,
    MachineConfig,
    MemoryConfig,
    MSHRConfig,
    ProcessorConfig,
)


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store(tmp_path_factory):
    """Point the persistent result store at a session-scoped tmp dir.

    Keeps the suite hermetic (no reads from a developer's warm
    ~/.cache/repro) while still exercising store hits across tests
    within one session.
    """
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-store")
    )
    yield
    os.environ.pop("REPRO_CACHE_DIR", None)


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """4 sets x 2 ways of 64B lines."""
    return CacheGeometry(512, 64, 2, 1)


@pytest.fixture
def small_machine() -> MachineConfig:
    """A Table-2-shaped machine small enough for hand analysis.

    One-block L1s (pass-through except consecutive repeats), a 4-set
    4-way L2, the real memory system.
    """
    return MachineConfig(
        processor=ProcessorConfig(),
        l1i=CacheGeometry(64, 64, 1, 1),
        l1d=CacheGeometry(64, 64, 1, 1),
        l2=CacheGeometry(4 * 4 * 64, 64, 4, 15),
        mshr=MSHRConfig(n_entries=32),
        memory=MemoryConfig(),
    )
