"""Quickstart: compare LRU, LIN, and SBAR on one benchmark surrogate.

Run::

    python examples/quickstart.py [benchmark] [scale]

Builds the mcf surrogate (pointer-chasing with parallelism-2 bursts),
simulates it on the Table 2 machine under the three policies of the
paper, and prints IPC, misses, and the mlp-cost distribution.
"""

import sys

from repro import BENCHMARKS, Simulator, build_workload, experiment_config


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mcf"
    scale = float(sys.argv[2]) if len(sys.argv) > 2 else 0.5
    if benchmark not in BENCHMARKS:
        raise SystemExit(
            "unknown benchmark %r; choose from %s" % (benchmark, BENCHMARKS)
        )

    print("benchmark: %s (scale %.2f)" % (benchmark, scale))
    results = {}
    for policy in ("lru", "lin(4)", "sbar"):
        trace = build_workload(benchmark, scale=scale)
        results[policy] = Simulator(experiment_config(), policy).run(trace)
        print("  " + results[policy].summary_line())

    baseline = results["lru"]
    print("\nIPC improvement over LRU:")
    for policy in ("lin(4)", "sbar"):
        delta = 100 * (results[policy].ipc - baseline.ipc) / baseline.ipc
        print("  %-8s %+6.1f%%" % (policy, delta))

    print("\nmlp-cost distribution (%% of misses per 60-cycle bucket):")
    labels = ["0-59", "60-119", "120-179", "180-239",
              "240-299", "300-359", "360-419", "420+"]
    for policy in ("lru", "lin(4)"):
        percentages = results[policy].cost_distribution.percentages
        row = "  ".join(
            "%s:%4.1f" % (label, pct)
            for label, pct in zip(labels, percentages)
        )
        print("  %-8s %s" % (policy, row))


if __name__ == "__main__":
    main()
