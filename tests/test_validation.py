"""Tests for the surrogate-calibration validation module."""

import pytest

from repro.sim.runner import clear_cache
from repro.workloads.validation import (
    BenchmarkFidelity,
    delta_separation,
    paper_delta_ordering_holds,
    validate_benchmark,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


def fidelity(**overrides):
    base = dict(
        benchmark="x",
        lin_ipc_measured=10.0,
        lin_ipc_paper=15.0,
        lin_miss_measured=-5.0,
        lin_miss_paper=-9.0,
        sbar_ipc_measured=10.0,
        sbar_ipc_paper=15.0,
        delta_avg_measured=50.0,
    )
    base.update(overrides)
    return BenchmarkFidelity(**base)


class TestSignLogic:
    def test_matching_positive_signs(self):
        assert fidelity().lin_sign_matches

    def test_matching_negative_signs(self):
        assert fidelity(
            lin_ipc_measured=-12.0, lin_ipc_paper=-16.0
        ).lin_sign_matches

    def test_opposed_signs_fail(self):
        assert not fidelity(
            lin_ipc_measured=-12.0, lin_ipc_paper=16.0
        ).lin_sign_matches

    def test_neutral_band_tolerates_small_disagreement(self):
        assert fidelity(
            lin_ipc_measured=-0.4, lin_ipc_paper=0.2
        ).lin_sign_matches

    def test_magnitude_ratio(self):
        assert fidelity().lin_magnitude_ratio == pytest.approx(10 / 15)
        assert fidelity(lin_ipc_paper=0.2).lin_magnitude_ratio is None


class TestSeparation:
    def test_positive_when_losers_above_winners(self):
        results = [
            fidelity(lin_ipc_paper=20.0, delta_avg_measured=30.0),
            fidelity(lin_ipc_paper=-20.0, delta_avg_measured=200.0),
        ]
        assert delta_separation(results) == pytest.approx(170.0)

    def test_zero_without_both_groups(self):
        assert delta_separation([fidelity()]) == 0.0

    def test_paper_delta_ordering(self):
        assert paper_delta_ordering_holds("mgrid", 220.0)
        assert paper_delta_ordering_holds("sixtrack", 30.0)
        assert not paper_delta_ordering_holds("mgrid", 20.0)


class TestLiveValidation:
    def test_validate_benchmark_runs(self):
        result = validate_benchmark("mcf", scale=0.2)
        assert result.benchmark == "mcf"
        assert result.lin_ipc_measured > 0  # mcf is a LIN win
        assert result.lin_sign_matches

    def test_calibration_experiment(self):
        from repro.experiments import calibration

        text = calibration.run(scale=0.1, benchmarks=["mcf", "lucas"]).render()
        assert "sign" in text and "mcf" in text
