"""Native (C) replay kernel: gate, marshal, and write-back.

The compiled extension (``repro._native.replaykernel``, built by the
*optional* ``build_ext`` in setup.py) runs the whole batched replay
loop — window advance, L1 probe, MSHR sweep, L2 probe with
LRU/LIN/EHC/AWRP victim selection, SBAR/CBS dueling, bank/bus timing,
cost quantization — over the raw ``PackedTrace`` column buffers.  This
module is the pure-python shim around it:

* :func:`load_extension` resolves the extension once per process and
  caches the answer (``None`` when absent — a source checkout without
  ``make native``, or a host without a compiler).
* :func:`try_replay` is called by ``Simulator._replay`` *inside* the
  batched gate (every batched precondition already holds).  It narrows
  the gate further to the machine shapes the C kernel implements,
  marshals the initial scalar state into a flat params dict, invokes
  the kernel, and writes the returned end-of-run state back into the
  live Python objects — leaving the Simulator indistinguishable from
  one that ran the batched kernel, bit for bit.  Returns False (and
  touches nothing) when any check fails, which drops the ladder one
  rung to batched.

The C kernel never sees a Python object graph: caches, the MSHR, heaps,
ATDs, and policy side tables all start empty (a Simulator runs exactly
one trace, so they are pristine at replay time — the gate verifies it)
and come back as plain lists/tuples for reconstruction here.  The
write-back mirrors the batched kernel's end-of-loop counter flush plus
the containers batched mutates in place.
"""

from __future__ import annotations

from collections import deque

from repro.cache.block import BlockState
from repro.cache.replacement import (
    AWRPPolicy,
    EHCPolicy,
    LINPolicy,
    LRUPolicy,
)
from repro.cache.replacement.belady import NEVER
from repro.mlp.cost import MAX_COST_Q, QUANTIZATION_STEP
from repro.sbar.cbs import CBSController
from repro.sbar.psel import PolicySelector
from repro.sbar.sbar import SBARController

#: Policy discriminants understood by the C kernel (keep in sync with
#: the ``POL_*`` enum in replaykernel.c).
_POL_LRU, _POL_LIN, _POL_EHC, _POL_AWRP = 0, 1, 2, 3
#: Controller discriminants (``CTRL_*`` in replaykernel.c).
_CTRL_NONE, _CTRL_SBAR, _CTRL_CBS = 0, 1, 2

#: Tri-state import cache: the sentinel means "not probed yet".  Tests
#: monkeypatch :func:`load_extension` itself (or set ``_extension``)
#: to exercise the no-extension fallback deterministically.
_UNRESOLVED = object()
_extension = _UNRESOLVED


def load_extension():
    """The compiled kernel module, or None when unavailable."""
    global _extension
    if _extension is _UNRESOLVED:
        try:
            from repro._native import replaykernel
        except ImportError:
            _extension = None
        else:
            _extension = replaykernel
    return _extension


def _policy_kind(policy):
    """Map a fixed L2 policy to its C discriminant, or None."""
    kind = type(policy)
    if kind is LRUPolicy:
        return _POL_LRU
    if kind is LINPolicy:
        return _POL_LIN
    if kind is EHCPolicy:
        return _POL_EHC
    if kind is AWRPPolicy:
        return _POL_AWRP
    return None


def _sets_pristine(sets):
    return all(not cache_set.ways for cache_set in sets)


def _gate(sim):
    """Whether the C kernel can run this Simulator.

    Callers guarantee the full batched gate already holds (plain
    caches, no observer, PackedTrace with no wrong-path records, stock
    bus/banks, no warm-up/phases/prefetcher/instruction clock).  This
    narrows to what replaykernel.c actually implements, plus pristine
    container state: the kernel starts its machine empty and *continues
    from* the scalar counters, so any pre-seeded tags or in-flight
    state must fall back to batched.
    """
    controller = sim.controller
    l2 = sim.l2
    if controller is None:
        if l2.policy_selector is not None:
            return False
        if _policy_kind(l2.policy) is None:
            return False
    elif type(controller) is SBARController:
        # Mirror of the batched kernel's sbar_fast gate.
        if not (
            not controller.needs_instruction_clock
            and "policy_for_set" not in controller.__dict__
            and "observe_access" not in controller.__dict__
            and controller.atd_lru.is_plain()
            and type(controller.atd_lru.policy) is LRUPolicy
            and type(controller.psel) is PolicySelector
            and controller.psel.observer is None
        ):
            return False
        if not all(
            not s.ways for s in controller.atd_lru._sets.values()
        ):
            return False
    elif type(controller) is CBSController:
        # Mirror of the batched kernel's cbs_fast gate.
        if not (
            "policy_for_set" not in controller.__dict__
            and "observe_access" not in controller.__dict__
            and controller.atd_lru.is_plain()
            and controller.atd_lin.is_plain()
            and type(controller.atd_lru.policy) is LRUPolicy
            and type(controller.atd_lin.policy) is LINPolicy
            and controller.atd_lin.policy.lam == controller.lin.lam
            and all(
                type(psel) is PolicySelector and psel.observer is None
                for psel in controller._psels
            )
        ):
            return False
        if not all(
            not s.ways for s in controller.atd_lru._sets.values()
        ) or not all(
            not s.ways for s in controller.atd_lin._sets.values()
        ):
            return False
    else:
        return False

    mshr = sim.mshr
    policy = l2.policy
    return (
        _sets_pristine(sim.l1d._sets)
        and _sets_pristine(sim.l1i._sets)
        and _sets_pristine(l2._sets)
        and not (l2._seen or ())
        and not sim.window._pending
        and not sim.store_buffer._completions
        and not mshr._demand_heap
        and not mshr._occupancy_heap
        and not mshr._in_flight
        and mshr._demand_live == 0
        and not sim.memory._in_flight
        and (sim.delta is None or not sim.delta._last_cost)
        and (
            type(policy) is not EHCPolicy
            or (not policy._last_seen and not policy._intervals)
        )
        and (type(policy) is not AWRPPolicy or not policy._counts)
    )


def _build_params(sim, trace):
    """Flatten the Simulator's initial state into the kernel's dict."""
    config = sim.config
    window = sim.window
    l1d, l1i, l2 = sim.l1d, sim.l1i, sim.l2
    mshr = sim.mshr
    memory = sim.memory
    bus = memory.bus
    banks = memory.banks
    dist = sim.cost_distribution
    delta = sim.delta
    controller = sim.controller
    policy = l2.policy

    from repro.trace.record import IFETCH, STORE

    params = {
        # Raw column buffers: the array.array objects themselves — the
        # kernel reads them through the buffer protocol, so the native
        # rung (unlike batched) does not need numpy at all.
        "addresses": trace._addresses,
        "kinds": trace._kinds,
        "gaps": trace._gaps,
        "block_bits": config.block_bits,
        "ifetch_kind": IFETCH,
        "store_kind": STORE,
        # Window.
        "win_width": window.width,
        "win_size": window.window_size,
        "win_index": window._index,
        "win_time": window._time,
        "retire_cummax": window._retire_cummax,
        "final_completion": window.final_completion,
        "stall_cycles": window.stall_cycles,
        "stall_events": window.stall_events,
        "long_stalls": window.long_stalls,
        "long_stall_threshold": window.LONG_STALL_THRESHOLD,
        # Store buffer.
        "sb_capacity": sim.store_buffer.capacity,
        "sb_full_stalls": sim.store_buffer.full_stalls,
        # Caches.
        "l1d_n_sets": l1d.n_sets,
        "l1d_assoc": l1d.geometry.associativity,
        "l1d_latency": l1d.hit_latency,
        "l1d_seq": l1d._seq,
        "l1d_accesses": l1d.accesses,
        "l1d_hits": l1d.hits,
        "l1d_misses": l1d.misses,
        "l1d_writebacks": l1d.writebacks,
        "l1i_n_sets": l1i.n_sets,
        "l1i_assoc": l1i.geometry.associativity,
        "l1i_latency": l1i.hit_latency,
        "l1i_seq": l1i._seq,
        "l1i_accesses": l1i.accesses,
        "l1i_hits": l1i.hits,
        "l1i_misses": l1i.misses,
        "l1i_writebacks": l1i.writebacks,
        "l2_n_sets": l2.n_sets,
        "l2_assoc": l2.geometry.associativity,
        "l2_latency": l2.hit_latency,
        "l2_seq": l2._seq,
        "l2_accesses": l2.accesses,
        "l2_hits": l2.hits,
        "l2_misses": l2.misses,
        "l2_writebacks": l2.writebacks,
        "l2_compulsory": l2.compulsory_misses,
        "track_seen": int(l2._seen is not None),
        "demand_ctr": sim.demand_misses,
        "compulsory_ctr": sim.compulsory_misses,
        # MSHR.
        "m_entries": mshr.n_entries,
        "n_adders": mshr.n_cost_adders,
        "m_now": mshr._now,
        "m_acc": mshr._accumulator,
        "m_allocations": mshr.allocations,
        "m_merges": mshr.merges,
        "m_full_stalls": mshr.full_stalls,
        "m_peak": mshr.peak_occupancy,
        # Memory.
        "memory_max": memory.max_outstanding,
        "mem_requests": memory.requests,
        "mem_writebacks": memory.writebacks,
        "mem_queueing": memory.queueing_stalls,
        "mem_peak": memory.peak_in_flight,
        "bus_occupancy": bus.occupancy,
        "bus_transfer_delay": bus.transfer_delay,
        "bus_free": bus._free_at,
        "bus_contended": bus.contended,
        "bus_transfers": bus.transfers,
        "bank_latency": banks.access_latency,
        "bank_free": [float(v) for v in banks._bank_free],
        "bank_conflicts": banks.conflicts,
        "bank_accesses": banks.accesses,
        # Cost + delta.
        "qstep": float(QUANTIZATION_STEP),
        "max_q": MAX_COST_Q,
        "dist_counts": list(dist.counts),
        "dist_total": dist.total,
        "dist_cost_sum": dist.cost_sum,
        "track_delta": int(delta is not None),
        "delta_count": delta._count if delta is not None else 0,
        "delta_sum": delta._sum if delta is not None else 0.0,
        "delta_below": delta._below_60 if delta is not None else 0,
        "delta_mid": delta._60_to_119 if delta is not None else 0,
        "delta_high": delta._120_plus if delta is not None else 0,
        # Fixed policy (only read when controller_kind == 0, except
        # lin_lam which SBAR/CBS reuse for their LIN flavor).
        "policy_kind": _POL_LRU,
        "lin_lam": 0,
        "ehc_horizon": 1,
        "ehc_pending": NEVER,
        "ehc_never": NEVER,
        "awrp_weight": 0.0,
        "awrp_fills": 0,
        # Controller.
        "controller_kind": _CTRL_NONE,
        "atd_assoc": 0,
        "atd_seq": 0,
        "atd_accesses": 0,
        "atd_hits": 0,
        "atd_misses": 0,
        "atd2_seq": 0,
        "atd2_accesses": 0,
        "atd2_hits": 0,
        "atd2_misses": 0,
        "cbs_local": 0,
        "psel_values": [],
        "psel_incs": [],
        "psel_decs": [],
        "psel_max": 0,
        "psel_msb": 0,
        "sbar_leaders": None,
        "deferred": 0,
        "follower_lin": 0,
        "follower_lru": 0,
    }

    if controller is None:
        kind = _policy_kind(policy)
        params["policy_kind"] = kind
        if kind == _POL_LIN:
            params["lin_lam"] = policy.lam
        elif kind == _POL_EHC:
            params["ehc_horizon"] = policy.horizon
            params["ehc_pending"] = policy._pending_next_use
        elif kind == _POL_AWRP:
            params["awrp_weight"] = policy.weight
            params["awrp_fills"] = policy._fills
    elif type(controller) is SBARController:
        atd = controller.atd_lru
        psel = controller.psel
        leaders = controller.leaders
        params.update(
            controller_kind=_CTRL_SBAR,
            lin_lam=controller.lin.lam,
            atd_assoc=atd.associativity,
            atd_seq=atd._seq,
            atd_accesses=atd.accesses,
            atd_hits=atd.hits,
            atd_misses=atd.misses,
            psel_values=[psel.value],
            psel_incs=[psel.increments],
            psel_decs=[psel.decrements],
            psel_max=psel.max_value,
            psel_msb=psel._msb_threshold,
            sbar_leaders=bytes(
                1 if index in leaders else 0 for index in range(l2.n_sets)
            ),
            deferred=controller.deferred_updates,
            follower_lin=controller.follower_lin_accesses,
            follower_lru=controller.follower_lru_accesses,
        )
    else:  # CBSController, per the gate
        atd_lru = controller.atd_lru
        atd_lin = controller.atd_lin
        psels = controller._psels
        params.update(
            controller_kind=_CTRL_CBS,
            lin_lam=controller.lin.lam,
            atd_assoc=atd_lru.associativity,
            atd_seq=atd_lru._seq,
            atd_accesses=atd_lru.accesses,
            atd_hits=atd_lru.hits,
            atd_misses=atd_lru.misses,
            atd2_seq=atd_lin._seq,
            atd2_accesses=atd_lin.accesses,
            atd2_hits=atd_lin.hits,
            atd2_misses=atd_lin.misses,
            cbs_local=int(controller.scope == "local"),
            psel_values=[psel.value for psel in psels],
            psel_incs=[psel.increments for psel in psels],
            psel_decs=[psel.decrements for psel in psels],
            psel_max=psels[0].max_value,
            psel_msb=psels[0]._msb_threshold,
            deferred=controller.deferred_updates,
        )
    return params


def _restore_sets(sets, payload):
    """Rebuild every CacheSet's ways/index from the kernel's dump."""
    for cache_set, entries in zip(sets, payload):
        ways = []
        index = {}
        for block, fill_seq, next_use, cost_q, dirty in entries:
            state = BlockState(block, fill_seq)
            state.next_use = next_use
            state.cost_q = cost_q
            state.dirty = bool(dirty)
            ways.append(state)
            index[block] = state
        cache_set.ways = ways
        cache_set._index = index


def _restore_atd(atd, payload_by_index):
    """Rebuild a SparseTagDirectory's shadowed sets in place."""
    for index, entries in payload_by_index:
        cache_set = atd._sets[index]
        ways = []
        block_index = {}
        for block, fill_seq, next_use, cost_q, dirty in entries:
            state = BlockState(block, fill_seq)
            state.next_use = next_use
            state.cost_q = cost_q
            state.dirty = bool(dirty)
            ways.append(state)
            block_index[block] = state
        cache_set.ways = ways
        cache_set._index = block_index


def _write_back(sim, out):
    """Mirror the batched kernel's end-of-loop flush, plus containers."""
    window = sim.window
    window._index = out["win_index"]
    window._time = out["win_time"]
    window._retire_cummax = out["retire_cummax"]
    window.final_completion = out["final_completion"]
    window.stall_cycles = out["stall_cycles"]
    window.stall_events = out["stall_events"]
    window.long_stalls = out["long_stalls"]
    window._pending = deque(out["win_pending"])

    store_buffer = sim.store_buffer
    store_buffer.full_stalls = out["sb_full_stalls"]
    # A sorted list satisfies the heap invariant verbatim.
    store_buffer._completions = out["sb_completions"]

    for cache, prefix in ((sim.l1d, "l1d"), (sim.l1i, "l1i"),
                          (sim.l2, "l2")):
        _restore_sets(cache._sets, out[prefix + "_sets"])
        cache._seq = out[prefix + "_seq"]
        cache.accesses = out[prefix + "_accesses"]
        cache.hits = out[prefix + "_hits"]
        cache.misses = out[prefix + "_misses"]
        cache.writebacks = out[prefix + "_writebacks"]
    sim.l2.compulsory_misses = out["l2_compulsory"]
    if sim.l2._seen is not None:
        sim.l2._seen.update(out["l2_seen"])
    sim.demand_misses = out["demand_ctr"]
    sim.compulsory_misses = out["compulsory_ctr"]

    mshr = sim.mshr
    mshr._now = out["m_now"]
    mshr._accumulator = out["m_acc"]
    mshr._demand_live = out["m_live"]
    mshr.allocations = out["m_allocations"]
    mshr.merges = out["m_merges"]
    mshr.full_stalls = out["m_full_stalls"]
    mshr.peak_occupancy = out["m_peak"]

    memory = sim.memory
    memory._in_flight = out["mem_in_flight"]
    memory.requests = out["mem_requests"]
    memory.writebacks = out["mem_writebacks"]
    memory.queueing_stalls = out["mem_queueing"]
    memory.peak_in_flight = out["mem_peak"]
    bus = memory.bus
    bus._free_at = out["bus_free"]
    bus.contended = out["bus_contended"]
    bus.transfers = out["bus_transfers"]
    banks = memory.banks
    banks._bank_free[:] = out["bank_free"]
    banks.conflicts = out["bank_conflicts"]
    banks.accesses = out["bank_accesses"]

    dist = sim.cost_distribution
    dist.counts[:] = out["dist_counts"]
    dist.total = out["dist_total"]
    dist.cost_sum = out["dist_cost_sum"]
    delta = sim.delta
    if delta is not None:
        delta._count = out["delta_count"]
        delta._sum = out["delta_sum"]
        delta._below_60 = out["delta_below"]
        delta._60_to_119 = out["delta_mid"]
        delta._120_plus = out["delta_high"]
        delta._last_cost.update(out["delta_last"])

    controller = sim.controller
    policy = sim.l2.policy
    if controller is None:
        kind = type(policy)
        if kind is EHCPolicy:
            policy._pending_next_use = out["ehc_pending"]
            policy._last_seen.update(out["ehc_last"])
            horizon = policy.horizon
            intervals = policy._intervals
            for block, values in out["ehc_intervals"]:
                intervals[block] = deque(values, maxlen=horizon)
        elif kind is AWRPPolicy:
            policy._counts.update(out["awrp_counts"])
            policy._fills = out["awrp_fills"]
    elif type(controller) is SBARController:
        atd = controller.atd_lru
        atd._seq = out["atd_seq"]
        atd.accesses = out["atd_accesses"]
        atd.hits = out["atd_hits"]
        atd.misses = out["atd_misses"]
        _restore_atd(atd, out["atd_sets"])
        psel = controller.psel
        psel.value = out["psel_values"][0]
        psel.increments = out["psel_incs"][0]
        psel.decrements = out["psel_decs"][0]
        controller.deferred_updates = out["deferred"]
        controller.follower_lin_accesses = out["follower_lin"]
        controller.follower_lru_accesses = out["follower_lru"]
    else:  # CBSController
        atd_lru = controller.atd_lru
        atd_lru._seq = out["atd_seq"]
        atd_lru.accesses = out["atd_accesses"]
        atd_lru.hits = out["atd_hits"]
        atd_lru.misses = out["atd_misses"]
        _restore_atd(atd_lru, enumerate(out["atd_sets"]))
        atd_lin = controller.atd_lin
        atd_lin._seq = out["atd2_seq"]
        atd_lin.accesses = out["atd2_accesses"]
        atd_lin.hits = out["atd2_hits"]
        atd_lin.misses = out["atd2_misses"]
        _restore_atd(atd_lin, enumerate(out["atd2_sets"]))
        for psel, value, incs, decs in zip(
            controller._psels,
            out["psel_values"],
            out["psel_incs"],
            out["psel_decs"],
        ):
            psel.value = value
            psel.increments = incs
            psel.decrements = decs
        controller.deferred_updates = out["deferred"]


def try_replay(sim, trace) -> bool:
    """Run the trace through the C kernel if every gate holds.

    Returns True when the native rung ran (the Simulator now holds the
    complete end-of-run state); False to fall one rung down to batched.
    Called only from ``Simulator._replay`` with the batched gate
    already satisfied.
    """
    extension = load_extension()
    if extension is None or not _gate(sim):
        return False
    out = extension.replay(_build_params(sim, trace))
    # The drain leaves nothing in flight by construction; a nonzero
    # count would mean the C machine diverged, which must never be
    # written back silently.
    if out["m_in_flight_n"] != 0:
        raise AssertionError(
            "native kernel left %d MSHR entries in flight"
            % out["m_in_flight_n"]
        )
    _write_back(sim, out)
    sim.fused_replay = True
    sim.batched_replay = False
    sim.native_replay = True
    sim.replay_kernel = "native"
    return True
