"""Extension study: sensitivity of the LIN benefit to machine parameters.

Not a paper figure — an ablation DESIGN.md calls for.  Two sweeps:

* **L2 capacity**: the MLP-aware benefit depends on how much of the
  protectable working set fits; sweeping the cache size shows where the
  LIN-vs-LRU gap opens and closes.
* **MSHR size**: the MSHR bounds achievable MLP.  With very few
  entries, "parallel" misses serialize and every miss tends toward the
  isolated cost, shrinking the cost differential LIN feeds on.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.config import MSHRConfig, scaled_config
from repro.experiments.common import Report, fmt_pct
from repro.sim.runner import trace_scale
from repro.sim.simulator import Simulator
from repro.workloads import build_workload

L2_SIZES_KB = (64, 128, 256, 512)
MSHR_SIZES = (1, 2, 4, 8, 32)
DEFAULT_BENCHMARK = "mcf"


def _gain(config, benchmark: str, scale: float) -> float:
    lru = Simulator(config, "lru").run(build_workload(benchmark, scale=scale))
    lin = Simulator(config, "lin(4)").run(build_workload(benchmark, scale=scale))
    if lru.ipc <= 0:
        return 0.0
    return 100.0 * (lin.ipc - lru.ipc) / lru.ipc


def run(
    scale: Optional[float] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Report:
    if scale is None:
        scale = trace_scale()
    benchmark = benchmarks[0] if benchmarks else DEFAULT_BENCHMARK
    report = Report(
        "sensitivity",
        "Extension: LIN benefit vs L2 capacity and MSHR size (%s)" % benchmark,
    )

    rows = []
    for l2_kb in L2_SIZES_KB:
        config = scaled_config(l2_kb)
        rows.append(("%d KB" % l2_kb, fmt_pct(_gain(config, benchmark, scale))))
    report.add_note(
        "L2 capacity sweep (surrogate pools scale with the 256KB machine,\n"
        "so smaller caches see deeper thrash and larger ones absorb it):"
    )
    report.add_table(["L2 size", "LIN(4) IPC gain"], rows)

    mshr_benchmark = "art"  # bursts of 16: MLP actually bounded by MSHR
    rows = []
    for entries in MSHR_SIZES:
        config = replace(
            scaled_config(256), mshr=MSHRConfig(n_entries=entries)
        )
        lru = Simulator(config, "lru").run(
            build_workload(mshr_benchmark, scale=scale)
        )
        gain = _gain(config, mshr_benchmark, scale)
        rows.append(
            (
                str(entries),
                "%.0f" % lru.cost_distribution.average,
                fmt_pct(gain),
            )
        )
    report.add_note(
        "MSHR sweep (art, bursts of 16): few entries serialize the\n"
        "'parallel' misses, raising every miss's cost toward the isolated\n"
        "444 cycles and collapsing the differential LIN exploits:"
    )
    report.add_table(
        ["MSHR entries", "avg mlp-cost (LRU)", "LIN(4) IPC gain"], rows
    )
    return report
