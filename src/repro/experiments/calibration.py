"""Calibration scorecard: how faithful is each surrogate to the paper?

Prints, for all 14 benchmarks, the measured-vs-paper LIN and SBAR
effects, whether the signs agree, the effect-size ratio, and the
Table 1 delta separation between LIN's winners and losers.  This is
the executable form of the tuning contract in docs/workloads.md.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import Report, fmt_pct, resolve_benchmarks
from repro.workloads.validation import (
    delta_separation,
    validate_suite,
)


def run(
    scale: Optional[float] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Report:
    names = resolve_benchmarks(benchmarks)
    report = Report(
        "calibration", "Calibration scorecard: surrogates vs the paper"
    )
    results = validate_suite(names, scale=scale)
    rows = []
    sign_matches = 0
    for fidelity in results:
        if fidelity.lin_sign_matches:
            sign_matches += 1
        ratio = fidelity.lin_magnitude_ratio
        rows.append(
            (
                fidelity.benchmark,
                fmt_pct(fidelity.lin_ipc_measured),
                fmt_pct(fidelity.lin_ipc_paper),
                "yes" if fidelity.lin_sign_matches else "NO",
                "%.1fx" % ratio if ratio is not None else "-",
                fmt_pct(fidelity.sbar_ipc_measured),
                fmt_pct(fidelity.sbar_ipc_paper),
                "%.0f" % fidelity.delta_avg_measured,
            )
        )
    report.add_table(
        [
            "benchmark", "LIN", "paper", "sign", "ratio",
            "SBAR", "paper", "avg delta",
        ],
        rows,
    )
    separation = delta_separation(results)
    report.add_note(
        "LIN sign agreement: %d/%d benchmarks.\n"
        "Table 1 separation (losers' min avg delta - winners' max): "
        "%+.0f cycles %s"
        % (
            sign_matches,
            len(results),
            separation,
            "(causal story holds)" if separation > 0 else "(violated!)",
        )
    )
    return report
