"""Regeneration benchmark for the Section 6.6 SBAR-vs-CBS comparison."""

from repro.experiments import cbs_comparison


def test_cbs_comparison(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(cbs_comparison), rounds=1, iterations=1
    )
    assert report.render()
