"""Workload composition operators and trace-file workloads.

These are the :class:`~repro.workloads.registry.Workload` classes
behind the ``champsim:``/``lackey:``/``trace:`` importers and the
``interleave``/``splice``/``scale``/``@FRAC`` spec operators.  Each one
is a pure description — building is deferred to :meth:`build`, so
composed specs parse cheaply and the runner's trace memo caches the
expensive part under the canonical spec string.

Operators lift any registered workload into derived scenarios::

    splice(mcf@0.5,ammp)          # phase change: half of mcf, then ammp
    interleave(mcf,art,quantum=64)  # multiprogrammed round-robin
    scale(twolf,0.25)             # fixed length rescale, composable
    champsim:/traces/srv.xz@0.1   # first 10% of an imported trace
"""

from __future__ import annotations

import hashlib
import os
from typing import Optional, Sequence, Tuple

from repro.trace.packed import PackedTrace
from repro.workloads.registry import (
    UnknownWorkloadError,
    Workload,
    WorkloadSpecError,
    available_workloads,
    format_number,
)

#: Cache of imported-file content hashes, keyed on (path, size, mtime).
_FILE_HASHES: dict = {}


def require_workload(value) -> Workload:
    """Validate an operator argument resolved by the spec parser.

    Unregistered leaf names reach operators as plain strings (the
    parser cannot distinguish ``interleave(mcf,bogus)`` from a scalar
    argument), so the operators themselves must reject them.
    """
    if isinstance(value, Workload):
        return value
    if isinstance(value, str):
        raise UnknownWorkloadError(
            "unknown workload %r; available workloads: %s"
            % (value, ", ".join(available_workloads()))
        )
    raise WorkloadSpecError(
        "expected a workload, got %r" % (value,)
    )


def _combine_fingerprints(children: Sequence[Workload]) -> str:
    prints = [child.fingerprint() for child in children]
    if all(print_ == "builtin" for print_ in prints):
        return "builtin"
    return hashlib.sha256(
        "\x00".join(prints).encode("utf-8")
    ).hexdigest()[:16]


class ClipWorkload(Workload):
    """``child@FRAC``: the leading fraction of a workload's records."""

    def __init__(self, child: Workload, fraction: float) -> None:
        self.child = require_workload(child)
        self.fraction = float(fraction)
        if not 0.0 < self.fraction <= 1.0:
            raise WorkloadSpecError(
                "clip fraction must be in (0, 1], got %r" % fraction
            )

    @property
    def canonical(self) -> str:
        return "%s@%s" % (self.child.canonical, format_number(self.fraction))

    def fingerprint(self) -> str:
        return self.child.fingerprint()

    def build(self, scale: float = 1.0) -> PackedTrace:
        trace = self.child.build(scale)
        return trace.slice(0, max(1, int(len(trace) * self.fraction)))


class ScaleWorkload(Workload):
    """``scale(child,FACTOR)``: a fixed trace-length rescale.

    Unlike the global ``scale=`` run knob, this bakes the factor into
    the workload itself, so a suite can mix full-length and shortened
    variants of the same benchmark in one matrix.
    """

    def __init__(self, child: Workload, factor: float) -> None:
        self.child = require_workload(child)
        self.factor = float(factor)
        if self.factor <= 0:
            raise WorkloadSpecError(
                "scale factor must be positive, got %r" % factor
            )

    @property
    def canonical(self) -> str:
        return "scale(%s,%s)" % (
            self.child.canonical, format_number(self.factor)
        )

    def fingerprint(self) -> str:
        return self.child.fingerprint()

    def build(self, scale: float = 1.0) -> PackedTrace:
        return self.child.build(scale * self.factor)


class SpliceWorkload(Workload):
    """``splice(a,b,...)``: children end to end — a phase-change trace."""

    def __init__(self, children: Sequence[Workload]) -> None:
        if len(children) < 2:
            raise WorkloadSpecError("splice needs at least two workloads")
        self.children: Tuple[Workload, ...] = tuple(
            require_workload(child) for child in children
        )

    @property
    def canonical(self) -> str:
        return "splice(%s)" % ",".join(
            child.canonical for child in self.children
        )

    def fingerprint(self) -> str:
        return _combine_fingerprints(self.children)

    def build(self, scale: float = 1.0) -> PackedTrace:
        return PackedTrace.concatenate(
            [child.build(scale) for child in self.children]
        )


class InterleaveWorkload(Workload):
    """``interleave(a,b,...,quantum=N)``: round-robin multiprogramming.

    Children take turns emitting ``quantum`` consecutive records until
    every child is drained — the classic shared-cache multiprogram mix.
    Shorter children simply drop out of the rotation, so the composed
    trace contains every record of every child exactly once.
    """

    def __init__(self, children: Sequence[Workload], quantum: int = 64) -> None:
        if len(children) < 2:
            raise WorkloadSpecError(
                "interleave needs at least two workloads"
            )
        self.children: Tuple[Workload, ...] = tuple(
            require_workload(child) for child in children
        )
        self.quantum = int(quantum)
        if self.quantum < 1:
            raise WorkloadSpecError(
                "interleave quantum must be >= 1, got %r" % quantum
            )

    @property
    def canonical(self) -> str:
        return "interleave(%s,quantum=%d)" % (
            ",".join(child.canonical for child in self.children),
            self.quantum,
        )

    def fingerprint(self) -> str:
        return _combine_fingerprints(self.children)

    def build(self, scale: float = 1.0) -> PackedTrace:
        traces = [child.build(scale) for child in self.children]
        cursors = [0] * len(traces)
        chunks = []
        live = True
        while live:
            live = False
            for index, trace in enumerate(traces):
                start = cursors[index]
                if start >= len(trace):
                    continue
                stop = min(start + self.quantum, len(trace))
                chunks.append(trace.slice(start, stop))
                cursors[index] = stop
                live = True
        return PackedTrace.concatenate(chunks)


class ImportedWorkload(Workload):
    """A trace file on disk, addressed as ``champsim:``/``lackey:``/
    ``trace:`` (auto-sniffed) specs.

    ``scale`` < 1 clips the imported trace to its leading fraction
    (a real trace cannot be lengthened, so factors above 1 clamp to
    the full trace).  The fingerprint hashes the file *bytes* — cached
    per (path, size, mtime) — so results stored for a spec invalidate
    when the file's content changes under the same path.
    """

    def __init__(
        self,
        kind: str,
        path: str,
        gap: Optional[int] = None,
        limit: Optional[int] = None,
    ) -> None:
        self.kind = kind
        self.path = path
        self.gap = None if gap is None else int(gap)
        self.limit = None if limit is None else int(limit)

    @property
    def canonical(self) -> str:
        options = []
        if self.gap is not None:
            options.append("gap=%d" % self.gap)
        if self.limit is not None:
            options.append("limit=%d" % self.limit)
        if not options:
            return "%s:%s" % (self.kind, self.path)
        return "%s(%s,%s)" % (self.kind, self.path, ",".join(options))

    def fingerprint(self) -> str:
        try:
            stat = os.stat(self.path)
        except OSError:
            return "missing"
        cache_key = (self.path, stat.st_size, stat.st_mtime_ns)
        cached = _FILE_HASHES.get(cache_key)
        if cached is None:
            hasher = hashlib.sha256()
            with open(self.path, "rb") as handle:
                for chunk in iter(lambda: handle.read(1 << 20), b""):
                    hasher.update(chunk)
            cached = hasher.hexdigest()[:16]
            _FILE_HASHES[cache_key] = cached
        return cached

    def _load(self) -> PackedTrace:
        from repro.trace import importers

        if self.kind == "champsim":
            return importers.load_champsim(
                self.path, gap=self.gap, limit=self.limit
            )
        if self.kind == "lackey":
            return importers.load_lackey(self.path, limit=self.limit)
        from repro.trace.trace_io import open_trace

        trace = open_trace(self.path)
        if self.limit is not None:
            trace = trace.slice(0, self.limit)
        return trace

    def build(self, scale: float = 1.0) -> PackedTrace:
        trace = self._load()
        if scale != 1.0 and len(trace):
            keep = max(1, min(len(trace), int(round(len(trace) * scale))))
            if keep < len(trace):
                trace = trace.slice(0, keep)
        return trace


__all__ = [
    "ClipWorkload",
    "ScaleWorkload",
    "SpliceWorkload",
    "InterleaveWorkload",
    "ImportedWorkload",
    "require_workload",
]
