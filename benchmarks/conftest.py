"""Benchmark harness configuration.

Every table and figure of the paper has a regeneration benchmark here.
``REPRO_BENCH_SCALE`` controls the trace length (default 0.2 so the
whole suite finishes in a few minutes; use 1.0 to regenerate the
full-quality numbers reported in EXPERIMENTS.md — or run
``python -m repro.experiments`` directly).

Each benchmark prints its experiment report, so
``pytest benchmarks/ --benchmark-only -s`` regenerates all the paper's
rows/series while timing them.
"""

from __future__ import annotations

import os

import pytest

from repro.sim.runner import clear_cache


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "0.2"))


@pytest.fixture
def experiment_runner(capsys):
    """Run one experiment module once, print its report, time it."""

    def run(module, benchmarks=None, scale=None):
        clear_cache()
        report = module.run(
            scale=bench_scale() if scale is None else scale,
            benchmarks=benchmarks,
        )
        with capsys.disabled():
            print()
            print(report.render())
        return report

    return run
