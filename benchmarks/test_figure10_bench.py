"""Regeneration benchmark for figure10 of the paper."""

from repro.experiments import figure10


def test_figure10(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(figure10), rounds=1, iterations=1
    )
    assert report.render()
