"""Golden-stats regression tests against committed JSON snapshots.

Tiny-configuration runs of the ``figure1`` and ``sensitivity``
experiments are compared against ``tests/golden/*.json``.  The
simulator is deterministic (seeded synthetic workloads, pure-Python
float arithmetic), so any drift here is a behavior change — either a
bug or an intentional change, in which case regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden
"""

from __future__ import annotations

from dataclasses import replace

from repro import obs
from repro.config import MSHRConfig, scaled_config
from repro.experiments import figure1, sensitivity
from repro.sim.simulator import Simulator
from repro.trace.packed import pack_trace
from repro.workloads import build_trace, experiment_config

#: Small but non-trivial: enough accesses for misses to overlap.
SCALE = 0.05


class TestFigure1Golden:
    def test_per_iteration_stats(self, golden_check):
        payload = {}
        for policy in ("belady", "mlp-aware (lin)", "lru"):
            misses, stalls = figure1.simulate_policy(policy)
            payload[policy] = {"misses": misses, "stalls": stalls}
        golden_check("figure1", payload)

    def test_paper_ordering_holds(self):
        """Independent of exact numbers: the paper's Figure 1 ranking."""
        belady = figure1.simulate_policy("belady")
        lin = figure1.simulate_policy("mlp-aware (lin)")
        lru = figure1.simulate_policy("lru")
        assert belady[0] < lin[0] <= lru[0]  # OPT minimizes misses
        assert lin[1] < lru[1]  # LIN takes fewer long stalls than LRU
        assert lin[1] < belady[1]  # ... and than OPT


class TestKernelGolden:
    """Full SimResult fingerprints per replay kernel, snapshotted.

    The differential tests assert the three kernels agree with *each
    other*; this golden pins them all to a committed snapshot, so a
    change that shifts every kernel in lockstep (a genuine behavior
    change) still trips a test instead of sliding through.  The
    observer-fallback run rides along: telemetry must never perturb
    simulated numbers.
    """

    def test_simresult_fingerprints_per_kernel(self, golden_check):
        from repro.sim.native import load_extension

        # A native request resolves to batched on hosts without the
        # compiled extension; either rung must hit the same snapshot.
        native_rung = "native" if load_extension() is not None else "batched"
        trace = pack_trace(build_trace("mcf", scale=SCALE))
        payload = {}
        for policy in ("lru", "sbar"):
            per_kernel = {}
            for kernel in ("native", "batched", "fused", "generic"):
                sim = Simulator(experiment_config(), policy, kernel=kernel)
                result = sim.run(trace)
                expected = native_rung if kernel == "native" else kernel
                assert sim.replay_kernel == expected, (policy, kernel)
                per_kernel[kernel] = result.to_dict()
            observed = Simulator(
                experiment_config(), policy,
                observer=obs.Observer(events=obs.MemoryEventTrace()),
            )
            per_kernel["observer-fallback"] = observed.run(trace).to_dict()
            assert observed.replay_kernel == "generic", policy
            payload[policy] = per_kernel
        golden_check("kernels", payload)


class TestSensitivityGolden:
    def test_l2_capacity_sweep(self, golden_check):
        payload = {
            "%dkb" % l2_kb: sensitivity._gain(
                scaled_config(l2_kb), "mcf", SCALE
            )
            for l2_kb in (64, 256)
        }
        golden_check("sensitivity_l2", payload)

    def test_mshr_sweep(self, golden_check):
        payload = {}
        for entries in (2, 32):
            config = replace(
                scaled_config(256), mshr=MSHRConfig(n_entries=entries)
            )
            payload["mshr%d" % entries] = sensitivity._gain(
                config, "art", SCALE
            )
        golden_check("sensitivity_mshr", payload)
