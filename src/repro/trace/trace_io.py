"""Trace persistence: save/load access traces as compact npz files.

Surrogate traces are deterministic, but saving them is useful for
sharing exact inputs across machines, for diffing generator versions,
and for feeding externally captured traces into the simulator.  The
format is four parallel numpy arrays (address, kind, gap, wrong_path)
plus a format version.
"""

from __future__ import annotations

from typing import List

import numpy as np

from repro.trace.record import Access, Trace

#: Bump when the on-disk layout changes.
FORMAT_VERSION = 1


def save_trace(path: str, trace: Trace) -> None:
    """Write a trace to ``path`` (numpy .npz, compressed)."""
    addresses = np.fromiter(
        (access.address for access in trace), dtype=np.int64, count=len(trace)
    )
    kinds = np.fromiter(
        (access.kind for access in trace), dtype=np.int8, count=len(trace)
    )
    gaps = np.fromiter(
        (access.gap for access in trace), dtype=np.int32, count=len(trace)
    )
    wrong = np.fromiter(
        (access.wrong_path for access in trace), dtype=bool, count=len(trace)
    )
    np.savez_compressed(
        path,
        version=np.int32(FORMAT_VERSION),
        address=addresses,
        kind=kinds,
        gap=gaps,
        wrong_path=wrong,
    )


def load_trace(path: str) -> Trace:
    """Read a trace written by :func:`save_trace`."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                "trace file %s has format version %d; this build reads %d"
                % (path, version, FORMAT_VERSION)
            )
        addresses = data["address"]
        kinds = data["kind"]
        gaps = data["gap"]
        wrong = data["wrong_path"]
    trace: List[Access] = []
    for index in range(len(addresses)):
        trace.append(
            Access(
                int(addresses[index]),
                int(kinds[index]),
                int(gaps[index]),
                bool(wrong[index]),
            )
        )
    return trace
