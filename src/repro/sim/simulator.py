"""The top-level simulator: trace in, :class:`SimResult` out.

The dataflow per access (Figure 3a of the paper):

1. The window model dispatches the access (applying any window-full
   stall caused by earlier long-latency misses).
2. The L1 (I or D) filters it; an L1 miss probes the L2 tag store.
3. An L2 demand miss allocates an MSHR entry and a memory-controller
   request; the Cost Calculation Logic (the MSHR's event-driven
   Algorithm 1 sweep) later reports the miss's mlp-cost, which is
   quantized and written into the L2 tag entry, fed to the Table 1
   delta tracker, and — under SBAR/CBS — applied to any pending PSEL
   update.
4. Loads and instruction fetches report their completion back to the
   window (future accesses may stall on it); stores go to the store
   buffer and only backpressure the window when it is full.

The simulator is deliberately a single readable function per access
rather than a cycle loop; all timing feedback happens through
completion times.
"""

from __future__ import annotations

import warnings
from heapq import heappop, heappush
from time import perf_counter
from typing import Callable, List, Optional, Union

from repro import obs
from repro.cache.block import BlockState
from repro.cache.cache import AccessResult, SetAssociativeCache
from repro.cache.replacement import LINPolicy, LRUPolicy, ReplacementPolicy
from repro.cache.replacement.dip import DIPController
from repro.cache.replacement.registry import parse_policy_spec
from repro.config import MachineConfig, baseline_config
from repro.cpu.store_buffer import StoreBuffer
from repro.cpu.window import WindowModel
from repro.memory.bus import SplitTransactionBus
from repro.memory.controller import MemoryController
from repro.memory.dram import DramBankArray
from repro.mlp.cost import MAX_COST_Q, QUANTIZATION_STEP, quantize_cost
from repro.mlp.delta import DeltaSummary, DeltaTracker
from repro.mlp.mshr import MSHRFile, _Entry as MSHREntry
from repro.sbar.cbs import CBSController
from repro.sbar.psel import PolicySelector
from repro.sbar.sbar import SBARController
from repro.sbar.tournament import TournamentController
from repro.sim.stats import CostDistribution, PhaseSample, SimResult
from repro.trace.packed import PackedTrace
from repro.trace.record import IFETCH, STORE

#: Valid ``Simulator(kernel=...)`` selections, fastest first.
REPLAY_KERNELS = ("auto", "native", "batched", "fused", "generic")

#: Things accepted as the L2 replacement specification.
PolicyLike = Union[
    ReplacementPolicy,
    SBARController,
    CBSController,
    DIPController,
    TournamentController,
    str,
]


def build_l2_policy(spec: PolicyLike, config: MachineConfig):
    """Deprecated: resolve a policy spec into (fixed, controller).

    The spec grammar now lives in the policy registry — use
    :func:`repro.api.parse_policy_spec` (the blessed facade spelling;
    :mod:`repro.api` is the supported import surface), which this shim
    forwards to (and which also resolves specs registered by user code
    via :func:`repro.api.register_policy`).
    """
    warnings.warn(
        "build_l2_policy is deprecated; use "
        "repro.api.parse_policy_spec",
        DeprecationWarning,
        stacklevel=2,
    )
    return parse_policy_spec(spec, config)


class Simulator:
    """One configured machine, reusable for a single :meth:`run`.

    Args:
        config: machine description; defaults to the Table 2 baseline.
        policy: L2 replacement specification (see :func:`build_l2_policy`).
        phase_interval: if set, cut a :class:`PhaseSample` every this
            many instructions (Figure 11 uses 10M on the real machine).
        warmup_instructions: if set, caches/predictors train normally
            but the reported statistics (misses, cost distribution,
            deltas, IPC window) start after this many instructions —
            the warm-up counterpart of the paper's fast-forwarding.
        observer: explicit :class:`repro.obs.Observer` to wire through
            the machine; defaults to :func:`repro.obs.default_observer`
            (None — and therefore zero overhead — unless telemetry is
            enabled in the environment).
        kernel: replay-kernel selection: ``"auto"`` (default) takes the
            fastest kernel whose gate holds — native, then batched,
            then fused, then the generic loop; ``"native"``/
            ``"batched"``/``"fused"``/``"generic"`` cap the ladder at
            that kernel (lower rungs still apply when a gate fails —
            the request is a ceiling, never a promise; a missing C
            extension simply drops ``native`` to ``batched``).  All
            kernels are bit-identical by contract, so the choice never
            appears in memo or store keys.
        track_deltas: feed serviced misses to the Table 1
            :class:`~repro.mlp.delta.DeltaTracker`.  The tracker keeps
            the last cost of every distinct block, so its footprint
            grows with the trace's block working set; pass False on
            long-running sweeps that never read ``delta_summary``.
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        policy: PolicyLike = "lru",
        phase_interval: Optional[int] = None,
        prefetcher=None,
        warmup_instructions: int = 0,
        observer: Optional[obs.Observer] = None,
        track_deltas: bool = True,
        kernel: str = "auto",
    ) -> None:
        if kernel not in REPLAY_KERNELS:
            raise ValueError(
                "unknown replay kernel %r (expected one of %s)"
                % (kernel, ", ".join(REPLAY_KERNELS))
            )
        self.config = config or baseline_config()
        fixed, controller = parse_policy_spec(policy, self.config)
        self.controller = controller
        self._policy_label = (
            controller.name if controller is not None else fixed.name
        )
        self.window = WindowModel(
            self.config.processor.issue_width,
            self.config.processor.window_size,
        )
        self.store_buffer = StoreBuffer(self.config.processor.store_buffer_size)
        self.l1d = SetAssociativeCache(
            self.config.l1d, LRUPolicy(), track_compulsory=False, label="l1d"
        )
        self.l1i = SetAssociativeCache(
            self.config.l1i, LRUPolicy(), track_compulsory=False, label="l1i"
        )
        selector = controller.policy_for_set if controller is not None else None
        self.l2 = SetAssociativeCache(
            self.config.l2,
            fixed if fixed is not None else LRUPolicy(),
            policy_selector=selector,
            label="l2",
        )
        self.mshr = MSHRFile(
            self.config.mshr.n_entries, self.config.mshr.n_cost_adders
        )
        self.memory = MemoryController(self.config.memory)
        self._obs = observer if observer is not None else obs.default_observer()
        if self._obs is not None:
            self._wire_observer(self._obs)
        self.delta: Optional[DeltaTracker] = (
            DeltaTracker() if track_deltas else None
        )
        self.cost_distribution = CostDistribution()
        self.phase_interval = phase_interval
        self.phases: List[PhaseSample] = []
        self.demand_misses = 0
        self.compulsory_misses = 0
        #: Optional StridePrefetcher (or anything with observe(block)).
        #: Prefetch fills occupy the MSHR, banks, and bus and install
        #: tags, but are non-demand: excluded from Algorithm 1's N,
        #: from miss statistics, and from PSEL updates.
        self.prefetcher = prefetcher
        self.prefetches_issued = 0
        self.prefetch_hits_suppressed = 0
        if warmup_instructions < 0:
            raise ValueError("warm-up length cannot be negative")
        self.warmup_instructions = warmup_instructions
        self._warm = warmup_instructions == 0
        self._warmup_end_cycle = 0.0
        self._warmup_end_instruction = 0
        self._ran = False
        self._kernel = kernel
        #: Whether :meth:`run` took a fused replay kernel (the fused
        #: loop or the batched kernel, which subsumes it).  Reports use
        #: this so a silent fall-back to the generic loop shows up as
        #: data instead of masquerading as a timing regression.
        self.fused_replay = False
        #: Whether :meth:`run` took the numpy batched kernel.
        self.batched_replay = False
        #: Whether :meth:`run` took the compiled C replay kernel.
        self.native_replay = False
        #: Which kernel :meth:`run` actually took: ``"native"``,
        #: ``"batched"``, ``"fused"``, or ``"generic"``.
        self.replay_kernel = "generic"

    def _wire_observer(self, observer: obs.Observer) -> None:
        """Install the telemetry sink into every instrumented component."""
        self.l1i.observer = observer
        self.l1d.observer = observer
        self.l2.observer = observer
        self.mshr.observer = observer
        self.memory.observer = observer
        controller = self.controller
        if controller is None:
            return
        if isinstance(controller, SBARController):
            controller.psel.label = "sbar"
            controller.psel.observer = observer
        elif isinstance(controller, CBSController):
            for index, psel in enumerate(controller._psels):
                psel.label = (
                    "cbs" if len(controller._psels) == 1 else "cbs[%d]" % index
                )
                psel.observer = observer
        elif isinstance(controller, DIPController):
            controller.psel.label = "dip"
            controller.psel.observer = observer
        elif isinstance(controller, TournamentController):
            controller.observer = observer

    # -- main loop --------------------------------------------------------

    def run(self, trace) -> SimResult:
        """Simulate ``trace`` (a sequence of :class:`Access`) to completion."""
        if self._ran:
            raise RuntimeError("a Simulator instance runs exactly one trace")
        self._ran = True
        profiler = self._obs.profiler if self._obs is not None else None
        if profiler is None:
            return self._finalize(self._replay(trace))
        # The replay span must close before _finalize folds the
        # profiler into the session totals, or it would be lost.
        replay_start = perf_counter()
        try:
            current_phase = self._replay(trace)
        finally:
            profiler.add("sim.replay", perf_counter() - replay_start)
        return self._finalize(current_phase)

    def _replay(self, trace) -> Optional[PhaseSample]:
        """Drive every access through the machine; returns the open phase.

        The loop is the simulator's hot path.  When no observer or
        instance-level ``access`` wrapper is installed the run is
        delegated to :meth:`_replay_fused`, which flattens the whole
        demand walk inline; this generic loop keeps every hook live and
        is the semantic reference the fused path must match bit for
        bit.
        """
        l1d = self.l1d
        l1i = self.l1i
        l2 = self.l2
        mshr = self.mshr
        memory = self.memory
        if (
            self._kernel != "generic"
            and self._obs is None
            and l1d.is_plain()
            and l1i.is_plain()
            and l1d.policy.victim_is_lru_tail
            and l1i.policy.victim_is_lru_tail
            and l1d._seen is None
            and l1i._seen is None
            and l2.observer is None
            and "access" not in l2.__dict__
            and mshr.observer is None
            and memory.observer is None
            and type(memory.bus) is SplitTransactionBus
        ):
            # The batched kernel narrows the gate further: it needs the
            # numpy column views of a PackedTrace, excludes every
            # bookkeeping rung the fused loop still services per record
            # (wrong-path records, warm-up, phase cuts, an instruction
            # clock, a prefetcher), and requires the stock flat-latency
            # bank array plus a serializing bus (occupancy > 0 makes
            # demand completions strictly monotone, which is what lets
            # the demand heap flatten into a deque).  Anything else
            # falls one rung down the ladder to the fused loop.
            if (
                self._kernel in ("auto", "native", "batched")
                and isinstance(trace, PackedTrace)
                and trace.wrong_path_count == 0
                and self.warmup_instructions == 0
                and not self.phase_interval
                and self.prefetcher is None
                and (
                    self.controller is None
                    or not getattr(
                        self.controller, "needs_instruction_clock", True
                    )
                )
                and type(memory.banks) is DramBankArray
                and memory.bus.occupancy > 0
            ):
                # Top rung: the compiled C kernel.  Its gate narrows
                # further (supported policy/controller shapes, pristine
                # machine state); a missing extension or a failed check
                # drops exactly one rung to batched, never errors.
                if self._kernel in ("auto", "native"):
                    from repro.sim import native as _native

                    if _native.try_replay(self, trace):
                        return None
                try:
                    import numpy  # noqa: F401
                except ImportError:
                    pass  # numpy is a hard dep of this kernel only
                else:
                    return self._replay_batched(trace)
            return self._replay_fused(trace)

        window = self.window
        controller = self.controller
        block_bits = self.config.block_bits
        phase_interval = self.phase_interval
        l1d_latency = l1d.hit_latency
        l1i_latency = l1i.hit_latency
        store_buffer = self.store_buffer
        advance = window.advance
        complete_memory_op = window.complete_memory_op
        access_hierarchy = self._access_hierarchy
        l1d_hit = l1d.try_hit
        l1i_hit = l1i.try_hit
        warm = self._warm
        warmup_instructions = self.warmup_instructions
        # Controllers that declare needs_instruction_clock=False have a
        # no-op note_instructions; skipping the call per record is pure
        # overhead removal.  Unknown controllers default to needing it.
        clock_controller = (
            controller
            if controller is not None
            and getattr(controller, "needs_instruction_clock", True)
            else None
        )
        bookkeeping = (
            clock_controller is not None or not warm or phase_interval
        )
        current_phase: Optional[PhaseSample] = None
        if phase_interval:
            current_phase = PhaseSample(start_instruction=0, start_cycle=0.0)
            self.phases.append(current_phase)

        for access in trace:
            if access.wrong_path:
                # Wrong-path references disturb the caches and memory
                # timing but never the committed instruction stream.
                access_hierarchy(
                    access.address >> block_bits,
                    access.kind,
                    window.now,
                    demand=False,
                    phase=None,
                )
                continue

            dispatch = advance(access.gap)
            if bookkeeping:
                instr_index = window.instructions
                if not warm and instr_index >= warmup_instructions:
                    self._finish_warmup(instr_index, dispatch)
                    warm = True
                    bookkeeping = (
                        clock_controller is not None or phase_interval
                    )
                if clock_controller is not None:
                    clock_controller.note_instructions(instr_index)
                if phase_interval and instr_index // phase_interval != (
                    current_phase.start_instruction // phase_interval
                ):
                    current_phase.end_instruction = instr_index
                    current_phase.end_cycle = dispatch
                    current_phase = PhaseSample(
                        start_instruction=instr_index, start_cycle=dispatch
                    )
                    self.phases.append(current_phase)

            kind = access.kind
            block = access.address >> block_bits
            if kind == IFETCH:
                if l1i_hit(block):
                    complete_memory_op(dispatch + l1i_latency)
                    continue
            elif kind == STORE:
                if l1d_hit(block, True):
                    admitted = store_buffer.admit(
                        dispatch, dispatch + l1d_latency
                    )
                    if admitted > dispatch:
                        window.stall_until(admitted)
                    continue
            elif l1d_hit(block):
                complete_memory_op(dispatch + l1d_latency)
                continue

            completion = access_hierarchy(
                block, kind, dispatch, demand=True, phase=current_phase
            )
            if kind == STORE:
                admitted = store_buffer.admit(dispatch, completion)
                if admitted > dispatch:
                    window.stall_until(admitted)
            else:
                complete_memory_op(completion)

        self.mshr.drain()
        return current_phase

    def _replay_fused(self, trace) -> Optional[PhaseSample]:
        """One-function replay for the hook-free configuration.

        Flattens the generic loop, :meth:`_access_hierarchy`, and the
        per-access methods of the cache, MSHR, and memory controller
        into a single loop with every stable object bound once per run.
        ``_replay`` only dispatches here when no observer and no
        instance-level ``access`` wrapper is installed, the L1 policies
        are plain tail-evicting LRU without compulsory tracking, and
        the memory bus is the stock split-transaction model; a per-set
        L2 policy selector, a non-plain L2 policy, and a dueling
        controller are all handled inline (``observe_access`` never
        retains its ``mtd_result``, so one scratch
        :class:`AccessResult` is reused for every call).

        The generic path is the semantic reference: the statement
        ordering here mirrors it one for one — same MSHR sweep points,
        same float-accumulation grouping, same counter and observe
        ordering — and any divergence is a bug.  The fast-path
        differential tests and the PR 2 golden tests compare the two
        end to end.  Counters stay object attributes (never hoisted
        into locals) so the generic helpers that still run inside a
        fused replay (wrong-path accesses, prefetch fills, L1
        writebacks) always see coherent state.

        SBAR and CBS additionally get a dedicated dueling fast path:
        the leader-set ATD probes, the ±cost_q PSEL updates, and the
        follower policy-selector lookup are inlined when the
        ``sbar_fast``/``cbs_fast`` gates below hold, with the same
        bit-for-bit contract.
        """
        self.fused_replay = True
        self.replay_kernel = "fused"
        window = self.window
        controller = self.controller
        block_bits = self.config.block_bits
        phase_interval = self.phase_interval
        l1d = self.l1d
        l1i = self.l1i
        l2 = self.l2
        mshr = self.mshr
        memory = self.memory
        l1d_sets = l1d._sets
        l1d_n_sets = l1d.n_sets
        l1d_assoc = l1d.geometry.associativity
        l1d_latency = l1d.hit_latency
        l1i_sets = l1i._sets
        l1i_n_sets = l1i.n_sets
        l1i_assoc = l1i.geometry.associativity
        l1i_latency = l1i.hit_latency
        l2_sets = l2._sets
        l2_n_sets = l2.n_sets
        l2_assoc = l2.geometry.associativity
        l2_selector = l2.policy_selector
        l2_policy = l2.policy
        l2_seen = l2._seen
        l2_hit_latency = l2.hit_latency
        mshr_demand_heap = mshr._demand_heap
        mshr_occ_heap = mshr._occupancy_heap
        mshr_in_flight = mshr._in_flight
        mshr_entries = mshr.n_entries
        mshr_advance = mshr._advance
        bus = memory.bus
        bus_occupancy = bus.occupancy
        bus_transfer_delay = bus.transfer_delay
        banks = memory.banks
        banks_access = banks.access
        plain_banks = type(banks) is DramBankArray
        if plain_banks:
            bank_free = banks._bank_free
            n_banks = banks.n_banks
            bank_latency = banks.access_latency
        memory_in_flight = memory._in_flight
        memory_max = memory.max_outstanding
        memory_write = memory.write_line
        l1_writeback = self._l1_writeback
        access_hierarchy = self._access_hierarchy
        store_buffer = self.store_buffer
        store_admit = store_buffer.admit
        # ---- window model hoisted into locals (WindowModel.advance /
        # complete_memory_op / stall_until, inlined below).  Unlike the
        # cache/MSHR counters, the window's scalar state can live in
        # locals for the whole replay because nothing outside this loop
        # reads it mid-run — except _finish_warmup, which gets an
        # explicit flush at the warm-up boundary; a final flush before
        # the return hands the state back for finish()/_finalize.
        win_pending = window._pending
        win_popleft = win_pending.popleft
        win_append = win_pending.append
        win_size = window.window_size
        win_width = window.width
        win_index = window._index
        win_time = window._time
        retire_cummax = window._retire_cummax
        final_completion = window.final_completion
        stall_cycles = window.stall_cycles
        stall_events = window.stall_events
        long_stalls = window.long_stalls
        long_stall_threshold = window.LONG_STALL_THRESHOLD
        dist_record = self.cost_distribution.record
        delta = self.delta
        delta_record = delta.record if delta is not None else None
        prefetcher = self.prefetcher
        prefetch_block = self._prefetch_block
        quantize = quantize_cost
        scratch = (
            AccessResult(False, None, 0) if controller is not None else None
        )

        # ---- dueling fast-path gates (SBARController.policy_for_set /
        # observe_access and CBSController counterparts, inlined below).
        # Each gate demands the exact controller class with no
        # instance-level method patches, plain ATDs with the stock
        # LRU/LIN policies, and un-observed stock PSELs; anything else
        # keeps the scratch-AccessResult controller path, which calls
        # the real methods.  `sbar_fast` additionally requires a stable
        # leader set (no rand-dynamic epoch clock) so the frozenset and
        # the ATD can be hoisted out of the loop.
        sbar_fast = (
            type(controller) is SBARController
            and not controller.needs_instruction_clock
            and "policy_for_set" not in controller.__dict__
            and "observe_access" not in controller.__dict__
            and controller.atd_lru.is_plain()
            and type(controller.atd_lru.policy) is LRUPolicy
            and type(controller.psel) is PolicySelector
            and controller.psel.observer is None
        )
        cbs_fast = (
            type(controller) is CBSController
            and "policy_for_set" not in controller.__dict__
            and "observe_access" not in controller.__dict__
            and controller.atd_lru.is_plain()
            and controller.atd_lin.is_plain()
            and type(controller.atd_lru.policy) is LRUPolicy
            and type(controller.atd_lin.policy) is LINPolicy
            and all(
                type(psel) is PolicySelector and psel.observer is None
                for psel in controller._psels
            )
        )
        if sbar_fast:
            sbar_leaders = controller.leaders
            sbar_lin = controller.lin
            sbar_lru = controller.lru
            sbar_psel = controller.psel
            sbar_psel_max = sbar_psel.max_value
            sbar_psel_msb = sbar_psel._msb_threshold
            sbar_atd = controller.atd_lru
            sbar_atd_sets = sbar_atd._sets
            sbar_atd_assoc = sbar_atd.associativity
        if cbs_fast:
            cbs_local = controller.scope == "local"
            cbs_psels = controller._psels
            cbs_psel0 = cbs_psels[0]
            cbs_psel_max = cbs_psel0.max_value
            cbs_psel_msb = cbs_psel0._msb_threshold
            cbs_lin = controller.lin
            cbs_lru = controller.lru
            atd_lru = controller.atd_lru
            atd_lru_sets = atd_lru._sets
            atd_lru_assoc = atd_lru.associativity
            atd_lin = controller.atd_lin
            atd_lin_sets = atd_lin._sets
            atd_lin_assoc = atd_lin.associativity
            atd_lin_choose = atd_lin.policy.choose_victim

        warm = self._warm
        warmup_instructions = self.warmup_instructions
        clock_controller = (
            controller
            if controller is not None
            and getattr(controller, "needs_instruction_clock", True)
            else None
        )
        bookkeeping = (
            clock_controller is not None or not warm or phase_interval
        )
        current_phase: Optional[PhaseSample] = None
        if phase_interval:
            current_phase = PhaseSample(start_instruction=0, start_cycle=0.0)
            self.phases.append(current_phase)

        # Packed traces hand the loop bare column tuples; anything else
        # is adapted through the same shape so the loop body reads one
        # way.  No Access objects are materialized for a PackedTrace.
        if isinstance(trace, PackedTrace):
            records = trace.iter_tuples()
        else:
            records = (
                (access.address, access.kind, access.gap, access.wrong_path)
                for access in trace
            )

        for address, kind, gap, wrong_path in records:
            if wrong_path:
                # Wrong-path references disturb the caches and memory
                # timing but never the committed instruction stream.
                access_hierarchy(
                    address >> block_bits,
                    kind,
                    win_time,
                    demand=False,
                    phase=None,
                )
                continue

            # ---- WindowModel.advance(gap), inlined ----
            target = win_index + gap + 1
            while win_pending and win_pending[0][0] + win_size <= target:
                blocked_index, frontier = win_popleft()
                reach = blocked_index + win_size
                arrival = win_time + (reach - win_index) / win_width
                if frontier > arrival:
                    stall_cycles += frontier - arrival
                    stall_events += 1
                    if frontier - arrival >= long_stall_threshold:
                        long_stalls += 1
                    win_time = frontier
                else:
                    win_time = arrival
                win_index = reach
            win_time += (target - win_index) / win_width
            win_index = target
            dispatch = win_time

            if bookkeeping:
                instr_index = win_index
                if not warm and instr_index >= warmup_instructions:
                    # _finish_warmup snapshots the window counters, so
                    # the hoisted state must be flushed first.
                    window._index = win_index
                    window._time = win_time
                    window.stall_cycles = stall_cycles
                    window.stall_events = stall_events
                    window.long_stalls = long_stalls
                    self._finish_warmup(instr_index, dispatch)
                    warm = True
                    bookkeeping = (
                        clock_controller is not None or phase_interval
                    )
                if clock_controller is not None:
                    clock_controller.note_instructions(instr_index)
                if phase_interval and instr_index // phase_interval != (
                    current_phase.start_instruction // phase_interval
                ):
                    current_phase.end_instruction = instr_index
                    current_phase.end_cycle = dispatch
                    current_phase = PhaseSample(
                        start_instruction=instr_index, start_cycle=dispatch
                    )
                    self.phases.append(current_phase)

            block = address >> block_bits

            # ---- L1 probe and fill (SetAssociativeCache.hit_fast /
            # miss_fill for a plain tail-evicting LRU, inlined) ----
            if kind == IFETCH:
                cache_set = l1i_sets[block % l1i_n_sets]
                state = cache_set._index.get(block)
                if state is not None:
                    l1i._seq += 1
                    l1i.accesses += 1
                    l1i.hits += 1
                    ways = cache_set.ways
                    if ways[0] is not state:
                        ways.remove(state)
                        ways.insert(0, state)
                    # WindowModel.complete_memory_op, inlined.
                    completion = dispatch + l1i_latency
                    if completion > retire_cummax:
                        retire_cummax = completion
                    if completion > final_completion:
                        final_completion = completion
                    win_append((win_index, retire_cummax))
                    continue
                l1 = l1i
                l1_assoc = l1i_assoc
                l1_done = dispatch + l1i_latency
                is_store = False
            else:
                cache_set = l1d_sets[block % l1d_n_sets]
                state = cache_set._index.get(block)
                is_store = kind == STORE
                if state is not None:
                    l1d._seq += 1
                    l1d.accesses += 1
                    l1d.hits += 1
                    ways = cache_set.ways
                    if ways[0] is not state:
                        ways.remove(state)
                        ways.insert(0, state)
                    if is_store:
                        state.dirty = True
                        admitted = store_admit(
                            dispatch, dispatch + l1d_latency
                        )
                        if admitted > dispatch:
                            # WindowModel.stall_until, inlined
                            # (win_time == dispatch here, so the
                            # admitted > win_time guard already held).
                            stall_cycles += admitted - win_time
                            stall_events += 1
                            if admitted - win_time >= long_stall_threshold:
                                long_stalls += 1
                            win_time = admitted
                    else:
                        # WindowModel.complete_memory_op, inlined.
                        completion = dispatch + l1d_latency
                        if completion > retire_cummax:
                            retire_cummax = completion
                        if completion > final_completion:
                            final_completion = completion
                        win_append((win_index, retire_cummax))
                    continue
                l1 = l1d
                l1_assoc = l1d_assoc
                l1_done = dispatch + l1d_latency

            # Finalize the cost of every miss serviced before this
            # access so replacement sees up-to-date cost_q values
            # (inline MSHRFile._advance fast path; the full sweep runs
            # only when a completion falls inside the interval).
            if dispatch > mshr._now:
                if mshr_demand_heap and mshr_demand_heap[0][0] <= dispatch:
                    mshr_advance(dispatch)
                else:
                    live = mshr._demand_live
                    if live:
                        mshr._accumulator += (dispatch - mshr._now) / live
                    mshr._now = dispatch

            seq = l1._seq
            l1._seq = seq + 1
            l1.accesses += 1
            l1.misses += 1
            state = BlockState(block, seq)
            ways = cache_set.ways
            l1_victim = None
            if len(ways) >= l1_assoc:
                l1_victim = ways.pop()
                del cache_set._index[l1_victim.block]
                if l1_victim.dirty:
                    l1.writebacks += 1
            ways.insert(0, state)
            cache_set._index[block] = state
            if is_store:
                state.dirty = True
            if l1_victim is not None and l1_victim.dirty:
                l1_writeback(l1_victim.block, dispatch)

            # ---- L2 lookup (SetAssociativeCache.access minus the
            # observer/profiler hooks, excluded by the dispatch) ----
            set_index = block % l2_n_sets
            cache_set = l2_sets[set_index]
            if l2_selector is None:
                policy = l2_policy
            elif sbar_fast:
                # Inline SBARController.policy_for_set: leaders always
                # run LIN, followers obey the PSEL MSB.
                is_leader = set_index in sbar_leaders
                if is_leader:
                    policy = sbar_lin
                elif sbar_psel.value >= sbar_psel_msb:
                    controller.follower_lin_accesses += 1
                    policy = sbar_lin
                else:
                    controller.follower_lru_accesses += 1
                    policy = sbar_lru
            elif cbs_fast:
                # Inline CBSController.policy_for_set.
                psel = cbs_psels[set_index] if cbs_local else cbs_psel0
                policy = cbs_lin if psel.value >= cbs_psel_msb else cbs_lru
            else:
                policy = l2_selector(set_index)
            seq = l2._seq
            l2._seq = seq + 1
            l2.accesses += 1
            if policy.needs_note_access:
                policy.note_access(block, seq)
            state = cache_set._index.get(block)
            if state is not None:
                l2.hits += 1
                ways = cache_set.ways
                if policy.default_on_hit:
                    if ways[0] is not state:
                        ways.remove(state)
                        ways.insert(0, state)
                else:
                    policy.on_hit(cache_set, ways.index(state))
                if controller is not None:
                    if sbar_fast:
                        if is_leader:
                            # Inline SBARController.observe_access for
                            # an MTD hit: race the ATD-LRU shadow
                            # (SparseTagDirectory.access under plain
                            # LRU); a divergent ATD miss credits LIN by
                            # the MTD tag's cost_q immediately —
                            # nothing ever defers on a hit.
                            aseq = sbar_atd._seq
                            sbar_atd._seq = aseq + 1
                            sbar_atd.accesses += 1
                            aset = sbar_atd_sets[set_index]
                            astate = aset._index.get(block)
                            aways = aset.ways
                            if astate is not None:
                                sbar_atd.hits += 1
                                if aways[0] is not astate:
                                    aways.remove(astate)
                                    aways.insert(0, astate)
                            else:
                                sbar_atd.misses += 1
                                astate = BlockState(block, aseq)
                                if len(aways) >= sbar_atd_assoc:
                                    avictim = aways.pop()
                                    del aset._index[avictim.block]
                                aways.insert(0, astate)
                                aset._index[block] = astate
                                # PolicySelector.increment(cost_q).
                                amount = state.cost_q
                                value = sbar_psel.value + amount
                                if value > sbar_psel_max:
                                    value = sbar_psel_max
                                sbar_psel.value = value
                                sbar_psel.increments += amount
                    elif cbs_fast:
                        # Inline CBSController.observe_access for an
                        # MTD hit: race both full ATDs; every PSEL
                        # movement and ATD-LIN cost patch resolves now
                        # because the MTD tag supplies cost_q
                        # (footnote 6) — nothing ever defers on a hit.
                        aseq = atd_lru._seq
                        atd_lru._seq = aseq + 1
                        atd_lru.accesses += 1
                        aset = atd_lru_sets[set_index]
                        astate = aset._index.get(block)
                        aways = aset.ways
                        if astate is not None:
                            atd_lru.hits += 1
                            lru_hit = True
                            if aways[0] is not astate:
                                aways.remove(astate)
                                aways.insert(0, astate)
                        else:
                            atd_lru.misses += 1
                            lru_hit = False
                            astate = BlockState(block, aseq)
                            if len(aways) >= atd_lru_assoc:
                                avictim = aways.pop()
                                del aset._index[avictim.block]
                            aways.insert(0, astate)
                            aset._index[block] = astate
                        aseq = atd_lin._seq
                        atd_lin._seq = aseq + 1
                        atd_lin.accesses += 1
                        aset = atd_lin_sets[set_index]
                        astate = aset._index.get(block)
                        aways = aset.ways
                        if astate is not None:
                            atd_lin.hits += 1
                            lin_hit = True
                            if aways[0] is not astate:
                                aways.remove(astate)
                                aways.insert(0, astate)
                        else:
                            atd_lin.misses += 1
                            lin_hit = False
                            astate = BlockState(block, aseq)
                            if len(aways) >= atd_lin_assoc:
                                avictim = aways.pop(atd_lin_choose(aset))
                                del aset._index[avictim.block]
                            aways.insert(0, astate)
                            aset._index[block] = astate
                            astate.cost_q = state.cost_q
                        if lin_hit != lru_hit:
                            amount = state.cost_q
                            if lin_hit:
                                value = psel.value + amount
                                if value > cbs_psel_max:
                                    value = cbs_psel_max
                                psel.value = value
                                psel.increments += amount
                            else:
                                value = psel.value - amount
                                if value < 0:
                                    value = 0
                                psel.value = value
                                psel.decrements += amount
                    else:
                        scratch.hit = True
                        scratch.state = state
                        scratch.set_index = set_index
                        pending = controller.observe_access(
                            set_index, block, scratch
                        )
                        assert pending is None, (
                            "controllers defer only on MTD misses"
                        )
                # A tag hit may still be an in-flight line
                # (hit-under-miss): complete no earlier than the
                # outstanding fill, without counting a merge (inline
                # MSHRFile.lookup with count_merge=False).
                completion = l1_done + l2_hit_latency
                entry = mshr_in_flight.get(block)
                if entry is not None:
                    in_flight = entry.complete
                    if in_flight <= l1_done:
                        del mshr_in_flight[block]
                    elif in_flight > completion:
                        completion = in_flight
            else:
                # L2 miss: fill, then walk the MSHR/memory path.
                l2.misses += 1
                state = BlockState(block, seq)
                ways = cache_set.ways
                victim = None
                if len(ways) >= l2_assoc:
                    if policy.victim_is_lru_tail:
                        victim = ways.pop()
                    else:
                        victim = ways.pop(policy.choose_victim(cache_set))
                    del cache_set._index[victim.block]
                    if victim.dirty:
                        l2.writebacks += 1
                if policy.default_on_fill:
                    ways.insert(0, state)
                    cache_set._index[block] = state
                else:
                    policy.on_fill(cache_set, state)
                compulsory = False
                if l2_seen is not None and block not in l2_seen:
                    l2_seen.add(block)
                    compulsory = True
                    l2.compulsory_misses += 1
                pending = None
                if controller is not None:
                    if sbar_fast:
                        if is_leader:
                            # Inline SBARController.observe_access for
                            # an MTD miss: ATD-LRU hit means LRU
                            # avoided a miss LIN incurred; its cost is
                            # only known at service time, so the PSEL
                            # decrement defers to the cost sink.
                            aseq = sbar_atd._seq
                            sbar_atd._seq = aseq + 1
                            sbar_atd.accesses += 1
                            aset = sbar_atd_sets[set_index]
                            astate = aset._index.get(block)
                            aways = aset.ways
                            if astate is not None:
                                sbar_atd.hits += 1
                                if aways[0] is not astate:
                                    aways.remove(astate)
                                    aways.insert(0, astate)
                                controller.deferred_updates += 1
                                pending = sbar_psel.decrement
                            else:
                                sbar_atd.misses += 1
                                astate = BlockState(block, aseq)
                                if len(aways) >= sbar_atd_assoc:
                                    avictim = aways.pop()
                                    del aset._index[avictim.block]
                                aways.insert(0, astate)
                                aset._index[block] = astate
                    elif cbs_fast:
                        # Inline CBSController.observe_access for an
                        # MTD miss: race both ATDs; a divergent outcome
                        # defers its ±cost_q PSEL update, and an
                        # ATD-LIN fill waits for the serviced cost_q
                        # (CBSController._deferred).
                        aseq = atd_lru._seq
                        atd_lru._seq = aseq + 1
                        atd_lru.accesses += 1
                        aset = atd_lru_sets[set_index]
                        astate = aset._index.get(block)
                        aways = aset.ways
                        if astate is not None:
                            atd_lru.hits += 1
                            lru_hit = True
                            if aways[0] is not astate:
                                aways.remove(astate)
                                aways.insert(0, astate)
                        else:
                            atd_lru.misses += 1
                            lru_hit = False
                            astate = BlockState(block, aseq)
                            if len(aways) >= atd_lru_assoc:
                                avictim = aways.pop()
                                del aset._index[avictim.block]
                            aways.insert(0, astate)
                            aset._index[block] = astate
                        aseq = atd_lin._seq
                        atd_lin._seq = aseq + 1
                        atd_lin.accesses += 1
                        aset = atd_lin_sets[set_index]
                        astate = aset._index.get(block)
                        aways = aset.ways
                        lin_fill = None
                        if astate is not None:
                            atd_lin.hits += 1
                            lin_hit = True
                            if aways[0] is not astate:
                                aways.remove(astate)
                                aways.insert(0, astate)
                        else:
                            atd_lin.misses += 1
                            lin_hit = False
                            astate = BlockState(block, aseq)
                            if len(aways) >= atd_lin_assoc:
                                avictim = aways.pop(atd_lin_choose(aset))
                                del aset._index[avictim.block]
                            aways.insert(0, astate)
                            aset._index[block] = astate
                            lin_fill = astate
                        psel_update = None
                        if lin_hit != lru_hit:
                            psel_update = (
                                psel.increment if lin_hit
                                else psel.decrement
                            )
                        if psel_update is not None or lin_fill is not None:
                            controller.deferred_updates += 1

                            def pending(cost_q, _fill=lin_fill,
                                        _update=psel_update):
                                if _fill is not None:
                                    _fill.cost_q = cost_q
                                if _update is not None:
                                    _update(cost_q)
                    else:
                        scratch.hit = False
                        scratch.state = state
                        scratch.set_index = set_index
                        scratch.compulsory = compulsory
                        if victim is not None:
                            scratch.victim_block = victim.block
                            scratch.victim_dirty = victim.dirty
                        else:
                            scratch.victim_block = None
                            scratch.victim_dirty = False
                        pending = controller.observe_access(
                            set_index, block, scratch
                        )
                if victim is not None:
                    victim_block = victim.block
                    if victim.dirty:
                        memory_write(victim_block, l1_done)
                    # Enforce inclusion: the victim leaves the L1s as
                    # well (inline SetAssociativeCache.invalidate).
                    vset = l1d_sets[victim_block % l1d_n_sets]
                    vstate = vset._index.get(victim_block)
                    if vstate is not None:
                        vset.ways.remove(vstate)
                        del vset._index[victim_block]
                    vset = l1i_sets[victim_block % l1i_n_sets]
                    vstate = vset._index.get(victim_block)
                    if vstate is not None:
                        vset.ways.remove(vstate)
                        del vset._index[victim_block]
                if warm:
                    self.demand_misses += 1
                    if compulsory:
                        self.compulsory_misses += 1
                    if current_phase is not None:
                        current_phase.misses += 1

                # Inline MSHRFile.lookup: a hit on the miss path is a
                # merge — the access piggybacks on the old fill whose
                # tag was evicted while still in flight.
                entry = mshr_in_flight.get(block)
                if entry is not None and entry.complete <= l1_done:
                    del mshr_in_flight[block]
                    entry = None
                if entry is not None:
                    mshr.merges += 1
                    if pending is not None:
                        pending(0)
                    completion = l1_done + l2_hit_latency
                    in_flight = entry.complete
                    if in_flight > completion:
                        completion = in_flight
                else:
                    # Inline MSHRFile.admission_time.
                    issue = l1_done + l2_hit_latency
                    while mshr_occ_heap and mshr_occ_heap[0] <= issue:
                        heappop(mshr_occ_heap)
                    while len(mshr_occ_heap) >= mshr_entries:
                        earliest = heappop(mshr_occ_heap)
                        if earliest > issue:
                            issue = earliest
                            mshr.full_stalls += 1
                    if issue < mshr._now:
                        issue = mshr._now
                    # Inline MemoryController.read_line (_admit, bank
                    # access for the flat-latency array, bus transfer).
                    while memory_in_flight and memory_in_flight[0] <= issue:
                        heappop(memory_in_flight)
                    start_at = issue
                    while len(memory_in_flight) >= memory_max:
                        earliest = heappop(memory_in_flight)
                        if earliest > start_at:
                            start_at = earliest
                            memory.queueing_stalls += 1
                    if plain_banks:
                        bank = block % n_banks
                        bank_start = bank_free[bank]
                        if bank_start > start_at:
                            banks.conflicts += 1
                        else:
                            bank_start = start_at
                        data_ready = bank_start + bank_latency
                        bank_free[bank] = data_ready
                        banks.accesses += 1
                    else:
                        data_ready = banks_access(block, start_at)
                    bus_start = bus._free_at
                    if bus_start > data_ready:
                        bus.contended += 1
                    else:
                        bus_start = data_ready
                    bus._free_at = bus_start + bus_occupancy
                    bus.transfers += 1
                    completion = bus_start + bus_transfer_delay
                    heappush(memory_in_flight, completion)
                    in_flight_count = len(memory_in_flight)
                    if in_flight_count > memory.peak_in_flight:
                        memory.peak_in_flight = in_flight_count
                    memory.requests += 1

                    def on_cost(cost, _state=state, _block=block,
                                _phase=current_phase, _warm=warm,
                                _pending=pending):
                        # Inline _make_cost_sink (observer is None on
                        # the fused path); loop variables are frozen as
                        # defaults, run-constant sinks close over the
                        # enclosing scope.
                        cost_q = quantize(cost)
                        _state.cost_q = cost_q
                        if _warm:
                            dist_record(cost)
                            if delta_record is not None:
                                delta_record(_block, cost)
                            if _phase is not None:
                                _phase.cost_q_sum += cost_q
                                _phase.cost_count += 1
                        if _pending is not None:
                            _pending(cost_q)

                    # Inline MSHRFile.allocate (issue ordering and
                    # completion >= issue hold by construction here, so
                    # the entry checks are skipped).
                    if mshr_demand_heap and mshr_demand_heap[0][0] <= issue:
                        mshr_advance(issue)
                    elif issue > mshr._now:
                        live = mshr._demand_live
                        if live:
                            mshr._accumulator += (issue - mshr._now) / live
                        mshr._now = issue
                    entry = MSHREntry(block, issue, completion, True)
                    entry.on_cost = on_cost
                    entry.accumulator_start = mshr._accumulator
                    mshr._demand_live += 1
                    tiebreak = mshr._tiebreak + 1
                    mshr._tiebreak = tiebreak
                    heappush(mshr_demand_heap, (completion, tiebreak, entry))
                    heappush(mshr_occ_heap, completion)
                    mshr_in_flight[block] = entry
                    mshr.allocations += 1
                    occupancy = len(mshr_occ_heap)
                    if occupancy > mshr.peak_occupancy:
                        mshr.peak_occupancy = occupancy

                    if prefetcher is not None:
                        for candidate in prefetcher.observe(block):
                            prefetch_block(candidate, issue)

            if is_store:
                admitted = store_admit(dispatch, completion)
                if admitted > dispatch:
                    # WindowModel.stall_until, inlined (win_time ==
                    # dispatch here).
                    stall_cycles += admitted - win_time
                    stall_events += 1
                    if admitted - win_time >= long_stall_threshold:
                        long_stalls += 1
                    win_time = admitted
            else:
                # WindowModel.complete_memory_op, inlined.
                if completion > retire_cummax:
                    retire_cummax = completion
                if completion > final_completion:
                    final_completion = completion
                win_append((win_index, retire_cummax))

        # Hand the hoisted window state back for finish()/_finalize.
        window._index = win_index
        window._time = win_time
        window._retire_cummax = retire_cummax
        window.final_completion = final_completion
        window.stall_cycles = stall_cycles
        window.stall_events = stall_events
        window.long_stalls = long_stalls
        mshr.drain()
        return current_phase

    def _replay_batched(self, trace) -> Optional[PhaseSample]:
        """numpy batched replay over :class:`PackedTrace` columns.

        The batch kernel is the top rung of the replay ladder.  It
        keeps the fused loop's scalar event machine — on the heavily
        L2-missing traces the macro matrix times, the "runs of accesses
        between MSHR-occupancy events" the event-driven integral
        suggests degenerate to singletons, so there is nothing to slice
        *within* the timeline — and instead wins by restructuring
        around the batch:

        * **Vectorized precompute** — block numbers, every set index,
          bank index, the window fetch targets (one ``cumsum``) and the
          per-record dispatch increments all come off zero-copy numpy
          views of the trace columns (:meth:`PackedTrace.column_views`)
          in C, chunked so the materialized Python lists stay
          cache-sized.  The per-record ``(gap + 1) / width`` division
          is exact: both operands are integers below 2**53, so numpy
          and the interpreter produce the same IEEE double.
        * **Flattened MSHR** — with every allocation a demand read
          behind one serializing bus (gate: no prefetcher, stock bus
          with ``occupancy > 0``), completions are strictly increasing,
          so both MSHR heaps degrade to deques (pushes arrive sorted,
          making heappop order the append order, stale occupancy
          entries and all).  The Algorithm 1 sweep, the cost
          sink, and the quantize/histogram bucket (one shared
          floor-division) are inlined into the pop loop.
        * **Full hoisting** — unlike the fused loop, *every* counter
          lives in a local and is flushed once at the end: the gate
          excludes everything that could re-enter the machine mid-run
          (wrong-path records, warm-up, phase cuts, instruction clocks,
          prefetchers), and the two remaining escape hatches —
          L2-victim and L1-victim writebacks — are inlined here
          (``write_back`` closes over the same cells).

        The generic loop remains the semantic reference and the fused
        loop the first fallback; the differential and golden batteries
        compare all three end to end, bit for bit.
        """
        import numpy as np
        from math import floor

        self.fused_replay = True
        self.batched_replay = True
        self.replay_kernel = "batched"
        window = self.window
        controller = self.controller
        block_bits = self.config.block_bits
        l1d = self.l1d
        l1i = self.l1i
        l2 = self.l2
        mshr = self.mshr
        memory = self.memory
        l1d_sets = l1d._sets
        l1d_n_sets = l1d.n_sets
        l1d_assoc = l1d.geometry.associativity
        l1d_latency = l1d.hit_latency
        l1i_sets = l1i._sets
        l1i_n_sets = l1i.n_sets
        l1i_assoc = l1i.geometry.associativity
        l1i_latency = l1i.hit_latency
        l2_sets = l2._sets
        l2_n_sets = l2.n_sets
        l2_assoc = l2.geometry.associativity
        l2_selector = l2.policy_selector
        l2_policy = l2.policy
        l2_seen = l2._seen
        l2_hit_latency = l2.hit_latency
        # Cache/MSHR/memory counters, hoisted (flushed after the loop).
        l1d_seq = l1d._seq
        l1d_accesses = l1d.accesses
        l1d_hits = l1d.hits
        l1d_misses = l1d.misses
        l1d_writebacks = l1d.writebacks
        l1i_seq = l1i._seq
        l1i_accesses = l1i.accesses
        l1i_hits = l1i.hits
        l1i_misses = l1i.misses
        l1i_writebacks = l1i.writebacks
        l2_seq = l2._seq
        l2_accesses = l2.accesses
        l2_hits = l2.hits
        l2_misses = l2.misses
        l2_writebacks = l2.writebacks
        l2_compulsory = l2.compulsory_misses
        demand_ctr = self.demand_misses
        compulsory_ctr = self.compulsory_misses
        # MSHR, flattened: ``md`` replaces both heaps (see docstring);
        # entries are ``(completion, block, state, pending, acc_start)``
        # tuples, identity-checked in ``m_in_flight`` exactly like the
        # heap entries they replace.
        from collections import deque

        md = deque()
        md_append = md.append
        md_popleft = md.popleft
        # Occupancy mirror of the fused loop's heap: allocation
        # completions are strictly increasing (serializing bus), so
        # pushes arrive sorted and heappop order IS append order — a
        # deque popleft replays the heap bit for bit, stale entries
        # and all.
        occ = deque()
        occ_append = occ.append
        occ_popleft = occ.popleft
        m_in_flight = mshr._in_flight
        m_entries = mshr.n_entries
        n_adders = mshr.n_cost_adders
        m_now = mshr._now
        m_acc = mshr._accumulator
        m_live = mshr._demand_live
        m_allocations = mshr.allocations
        m_merges = mshr.merges
        m_full_stalls = mshr.full_stalls
        m_peak = mshr.peak_occupancy
        bus = memory.bus
        bus_occupancy = bus.occupancy
        bus_transfer_delay = bus.transfer_delay
        bus_free = bus._free_at
        bus_contended = bus.contended
        bus_transfers = bus.transfers
        banks = memory.banks
        bank_free = banks._bank_free
        n_banks = banks.n_banks
        bank_latency = banks.access_latency
        bank_conflicts = banks.conflicts
        bank_accesses = banks.accesses
        memory_in_flight = memory._in_flight
        memory_max = memory.max_outstanding
        mem_requests = memory.requests
        mem_writebacks = memory.writebacks
        mem_queueing = memory.queueing_stalls
        mem_peak = memory.peak_in_flight
        store_admit = self.store_buffer.admit
        # Window state, hoisted exactly as in the fused loop.
        win_pending = window._pending
        win_popleft = win_pending.popleft
        win_append = win_pending.append
        win_size = window.window_size
        win_width = window.width
        win_index = window._index
        win_time = window._time
        retire_cummax = window._retire_cummax
        final_completion = window.final_completion
        stall_cycles = window.stall_cycles
        stall_events = window.stall_events
        long_stalls = window.long_stalls
        long_stall_threshold = window.LONG_STALL_THRESHOLD
        dist = self.cost_distribution
        dist_counts = dist.counts
        dist_total = dist.total
        dist_cost_sum = dist.cost_sum
        qstep = QUANTIZATION_STEP
        max_q = MAX_COST_Q
        delta = self.delta
        # DeltaTracker.record, hoisted for inlining at the sweep sites
        # (one call per serviced miss otherwise).
        track_delta = delta is not None
        if track_delta:
            delta_last = delta._last_cost
            delta_count = delta._count
            delta_sum = delta._sum
            delta_below = delta._below_60
            delta_mid = delta._60_to_119
            delta_high = delta._120_plus
        scratch = (
            AccessResult(False, None, 0) if controller is not None else None
        )

        # Dueling fast-path gates, identical to the fused loop's.
        sbar_fast = (
            type(controller) is SBARController
            and not controller.needs_instruction_clock
            and "policy_for_set" not in controller.__dict__
            and "observe_access" not in controller.__dict__
            and controller.atd_lru.is_plain()
            and type(controller.atd_lru.policy) is LRUPolicy
            and type(controller.psel) is PolicySelector
            and controller.psel.observer is None
        )
        cbs_fast = (
            type(controller) is CBSController
            and "policy_for_set" not in controller.__dict__
            and "observe_access" not in controller.__dict__
            and controller.atd_lru.is_plain()
            and controller.atd_lin.is_plain()
            and type(controller.atd_lru.policy) is LRUPolicy
            and type(controller.atd_lin.policy) is LINPolicy
            and all(
                type(psel) is PolicySelector and psel.observer is None
                for psel in controller._psels
            )
        )
        if sbar_fast:
            sbar_leaders = controller.leaders
            sbar_lin = controller.lin
            sbar_lru = controller.lru
            sbar_psel = controller.psel
            sbar_psel_max = sbar_psel.max_value
            sbar_psel_msb = sbar_psel._msb_threshold
            sbar_atd = controller.atd_lru
            sbar_atd_sets = sbar_atd._sets
            sbar_atd_assoc = sbar_atd.associativity
        if cbs_fast:
            cbs_local = controller.scope == "local"
            cbs_psels = controller._psels
            cbs_psel0 = cbs_psels[0]
            cbs_psel_max = cbs_psel0.max_value
            cbs_psel_msb = cbs_psel0._msb_threshold
            cbs_lin = controller.lin
            cbs_lru = controller.lru
            atd_lru = controller.atd_lru
            atd_lru_sets = atd_lru._sets
            atd_lru_assoc = atd_lru.associativity
            atd_lin = controller.atd_lin
            atd_lin_sets = atd_lin._sets
            atd_lin_assoc = atd_lin.associativity
            atd_lin_choose = atd_lin.policy.choose_victim

        def write_back(wb_block, when):
            # MemoryController.write_line, inlined: the line crosses
            # the bus to memory FIRST, then updates the bank (the read
            # path below is the reverse).  Shared timing state lives in
            # this closure's cells so the loop and the writebacks see
            # one coherent timeline.
            nonlocal bus_free, bus_contended, bus_transfers
            nonlocal mem_requests, mem_writebacks, mem_queueing, mem_peak
            nonlocal bank_conflicts, bank_accesses
            while memory_in_flight and memory_in_flight[0] <= when:
                heappop(memory_in_flight)
            while len(memory_in_flight) >= memory_max:
                earliest = heappop(memory_in_flight)
                if earliest > when:
                    when = earliest
                    mem_queueing += 1
            start = bus_free
            if start > when:
                bus_contended += 1
            else:
                start = when
            bus_free = start + bus_occupancy
            bus_transfers += 1
            arrive = start + bus_transfer_delay
            bank = wb_block % n_banks
            bank_start = bank_free[bank]
            if bank_start > arrive:
                bank_conflicts += 1
            else:
                bank_start = arrive
            data_ready = bank_start + bank_latency
            bank_free[bank] = data_ready
            bank_accesses += 1
            heappush(memory_in_flight, data_ready)
            count = len(memory_in_flight)
            if count > mem_peak:
                mem_peak = count
            mem_requests += 1
            mem_writebacks += 1

        # ---- batch precompute over the zero-copy column views ----
        addr_view, kind_view, gap_view = trace.column_views()
        n = len(addr_view)
        gaps1 = gap_view + 1
        # Fetch targets are a running sum of (gap + 1) from the
        # window's starting index; the no-stall dispatch increment
        # (gap + 1) / width divides exact integers below 2**53, so the
        # vectorized double equals the interpreter's.
        targets_np = np.cumsum(gaps1) + win_index
        dts_np = gaps1 / win_width
        ifetch = IFETCH
        store_kind = STORE
        chunk = 1 << 16

        for chunk_start in range(0, n, chunk):
            chunk_stop = chunk_start + chunk
            if chunk_stop > n:
                chunk_stop = n
            ablk = addr_view[chunk_start:chunk_stop] >> block_bits
            kc = kind_view[chunk_start:chunk_stop]
            if (kc == ifetch).any():
                l1set_np = np.where(
                    kc == ifetch, ablk % l1i_n_sets, ablk % l1d_n_sets
                )
            else:
                l1set_np = ablk % l1d_n_sets
            records = zip(
                ablk.tolist(),
                kc.tolist(),
                targets_np[chunk_start:chunk_stop].tolist(),
                dts_np[chunk_start:chunk_stop].tolist(),
                l1set_np.tolist(),
                (ablk % l2_n_sets).tolist(),
                (ablk % n_banks).tolist(),
            )
            for block, kind, target, dt, l1_set, set_index, bank in records:
                # ---- WindowModel.advance, inlined; the no-stall step
                # uses the precomputed (gap + 1) / width increment ----
                if win_pending and win_pending[0][0] + win_size <= target:
                    while win_pending and (
                        win_pending[0][0] + win_size <= target
                    ):
                        blocked_index, frontier = win_popleft()
                        reach = blocked_index + win_size
                        arrival = win_time + (reach - win_index) / win_width
                        if frontier > arrival:
                            stall_cycles += frontier - arrival
                            stall_events += 1
                            if frontier - arrival >= long_stall_threshold:
                                long_stalls += 1
                            win_time = frontier
                        else:
                            win_time = arrival
                        win_index = reach
                    win_time += (target - win_index) / win_width
                else:
                    win_time += dt
                win_index = target
                dispatch = win_time

                # ---- L1 probe (hit_fast / miss_fill, inlined) ----
                if kind == ifetch:
                    cache_set = l1i_sets[l1_set]
                    state = cache_set._index.get(block)
                    if state is not None:
                        l1i_seq += 1
                        l1i_accesses += 1
                        l1i_hits += 1
                        ways = cache_set.ways
                        if ways[0] is not state:
                            ways.remove(state)
                            ways.insert(0, state)
                        completion = dispatch + l1i_latency
                        if completion > retire_cummax:
                            retire_cummax = completion
                        if completion > final_completion:
                            final_completion = completion
                        win_append((win_index, retire_cummax))
                        continue
                    is_ifetch = True
                    is_store = False
                    l1_done = dispatch + l1i_latency
                else:
                    cache_set = l1d_sets[l1_set]
                    state = cache_set._index.get(block)
                    is_store = kind == store_kind
                    if state is not None:
                        l1d_seq += 1
                        l1d_accesses += 1
                        l1d_hits += 1
                        ways = cache_set.ways
                        if ways[0] is not state:
                            ways.remove(state)
                            ways.insert(0, state)
                        if is_store:
                            state.dirty = True
                            admitted = store_admit(
                                dispatch, dispatch + l1d_latency
                            )
                            if admitted > dispatch:
                                stall_cycles += admitted - win_time
                                stall_events += 1
                                if (
                                    admitted - win_time
                                    >= long_stall_threshold
                                ):
                                    long_stalls += 1
                                win_time = admitted
                        else:
                            completion = dispatch + l1d_latency
                            if completion > retire_cummax:
                                retire_cummax = completion
                            if completion > final_completion:
                                final_completion = completion
                            win_append((win_index, retire_cummax))
                        continue
                    is_ifetch = False
                    l1_done = dispatch + l1d_latency

                # ---- MSHRFile._advance(dispatch), inlined ----
                if dispatch > m_now:
                    if md and md[0][0] <= dispatch:
                        now = m_now
                        while md and md[0][0] <= dispatch:
                            sentry = md_popleft()
                            scomplete = sentry[0]
                            if scomplete > now:
                                m_acc += (scomplete - now) / m_live
                                now = scomplete
                            cost = m_acc - sentry[4]
                            if n_adders:
                                cost = floor(cost * n_adders) / n_adders
                            m_live -= 1
                            sblock = sentry[1]
                            if m_in_flight.get(sblock) is sentry:
                                del m_in_flight[sblock]
                            # Cost sink, inlined: one floordiv feeds
                            # both quantize_cost and the histogram
                            # bucket (they are the same expression).
                            bkt = int(cost // qstep)
                            if bkt > max_q:
                                bkt = max_q
                            sentry[2].cost_q = bkt
                            dist_counts[bkt] += 1
                            dist_total += 1
                            dist_cost_sum += cost
                            if track_delta:
                                previous = delta_last.get(sblock)
                                delta_last[sblock] = cost
                                if previous is not None:
                                    dv = abs(cost - previous)
                                    delta_count += 1
                                    delta_sum += dv
                                    if dv < 60:
                                        delta_below += 1
                                    elif dv < 120:
                                        delta_mid += 1
                                    else:
                                        delta_high += 1
                            spending = sentry[3]
                            if spending is not None:
                                spending(bkt)
                        if dispatch > now and m_live:
                            m_acc += (dispatch - now) / m_live
                        m_now = dispatch if dispatch > now else now
                    else:
                        if m_live:
                            m_acc += (dispatch - m_now) / m_live
                        m_now = dispatch

                # ---- L1 fill ----
                if is_ifetch:
                    seq = l1i_seq
                    l1i_seq = seq + 1
                    l1i_accesses += 1
                    l1i_misses += 1
                    l1_assoc = l1i_assoc
                else:
                    seq = l1d_seq
                    l1d_seq = seq + 1
                    l1d_accesses += 1
                    l1d_misses += 1
                    l1_assoc = l1d_assoc
                state = BlockState(block, seq)
                ways = cache_set.ways
                l1_victim = None
                if len(ways) >= l1_assoc:
                    l1_victim = ways.pop()
                    del cache_set._index[l1_victim.block]
                    if l1_victim.dirty:
                        if is_ifetch:
                            l1i_writebacks += 1
                        else:
                            l1d_writebacks += 1
                ways.insert(0, state)
                cache_set._index[block] = state
                if is_store:
                    state.dirty = True
                if l1_victim is not None and l1_victim.dirty:
                    # Simulator._l1_writeback, inlined.
                    vb = l1_victim.block
                    resident = l2_sets[vb % l2_n_sets]._index.get(vb)
                    if resident is not None:
                        resident.dirty = True
                    else:
                        write_back(vb, dispatch)

                # ---- L2 lookup ----
                cache_set = l2_sets[set_index]
                if l2_selector is None:
                    policy = l2_policy
                elif sbar_fast:
                    is_leader = set_index in sbar_leaders
                    if is_leader:
                        policy = sbar_lin
                    elif sbar_psel.value >= sbar_psel_msb:
                        controller.follower_lin_accesses += 1
                        policy = sbar_lin
                    else:
                        controller.follower_lru_accesses += 1
                        policy = sbar_lru
                elif cbs_fast:
                    psel = cbs_psels[set_index] if cbs_local else cbs_psel0
                    policy = cbs_lin if psel.value >= cbs_psel_msb else cbs_lru
                else:
                    policy = l2_selector(set_index)
                seq = l2_seq
                l2_seq = seq + 1
                l2_accesses += 1
                if policy.needs_note_access:
                    policy.note_access(block, seq)
                state = cache_set._index.get(block)
                if state is not None:
                    l2_hits += 1
                    ways = cache_set.ways
                    if policy.default_on_hit:
                        if ways[0] is not state:
                            ways.remove(state)
                            ways.insert(0, state)
                    else:
                        policy.on_hit(cache_set, ways.index(state))
                    if controller is not None:
                        if sbar_fast:
                            if is_leader:
                                aseq = sbar_atd._seq
                                sbar_atd._seq = aseq + 1
                                sbar_atd.accesses += 1
                                aset = sbar_atd_sets[set_index]
                                astate = aset._index.get(block)
                                aways = aset.ways
                                if astate is not None:
                                    sbar_atd.hits += 1
                                    if aways[0] is not astate:
                                        aways.remove(astate)
                                        aways.insert(0, astate)
                                else:
                                    sbar_atd.misses += 1
                                    astate = BlockState(block, aseq)
                                    if len(aways) >= sbar_atd_assoc:
                                        avictim = aways.pop()
                                        del aset._index[avictim.block]
                                    aways.insert(0, astate)
                                    aset._index[block] = astate
                                    amount = state.cost_q
                                    value = sbar_psel.value + amount
                                    if value > sbar_psel_max:
                                        value = sbar_psel_max
                                    sbar_psel.value = value
                                    sbar_psel.increments += amount
                        elif cbs_fast:
                            aseq = atd_lru._seq
                            atd_lru._seq = aseq + 1
                            atd_lru.accesses += 1
                            aset = atd_lru_sets[set_index]
                            astate = aset._index.get(block)
                            aways = aset.ways
                            if astate is not None:
                                atd_lru.hits += 1
                                lru_hit = True
                                if aways[0] is not astate:
                                    aways.remove(astate)
                                    aways.insert(0, astate)
                            else:
                                atd_lru.misses += 1
                                lru_hit = False
                                astate = BlockState(block, aseq)
                                if len(aways) >= atd_lru_assoc:
                                    avictim = aways.pop()
                                    del aset._index[avictim.block]
                                aways.insert(0, astate)
                                aset._index[block] = astate
                            aseq = atd_lin._seq
                            atd_lin._seq = aseq + 1
                            atd_lin.accesses += 1
                            aset = atd_lin_sets[set_index]
                            astate = aset._index.get(block)
                            aways = aset.ways
                            if astate is not None:
                                atd_lin.hits += 1
                                lin_hit = True
                                if aways[0] is not astate:
                                    aways.remove(astate)
                                    aways.insert(0, astate)
                            else:
                                atd_lin.misses += 1
                                lin_hit = False
                                astate = BlockState(block, aseq)
                                if len(aways) >= atd_lin_assoc:
                                    avictim = aways.pop(atd_lin_choose(aset))
                                    del aset._index[avictim.block]
                                aways.insert(0, astate)
                                aset._index[block] = astate
                                astate.cost_q = state.cost_q
                            if lin_hit != lru_hit:
                                amount = state.cost_q
                                if lin_hit:
                                    value = psel.value + amount
                                    if value > cbs_psel_max:
                                        value = cbs_psel_max
                                    psel.value = value
                                    psel.increments += amount
                                else:
                                    value = psel.value - amount
                                    if value < 0:
                                        value = 0
                                    psel.value = value
                                    psel.decrements += amount
                        else:
                            scratch.hit = True
                            scratch.state = state
                            scratch.set_index = set_index
                            pending = controller.observe_access(
                                set_index, block, scratch
                            )
                            assert pending is None, (
                                "controllers defer only on MTD misses"
                            )
                    completion = l1_done + l2_hit_latency
                    entry = m_in_flight.get(block)
                    if entry is not None:
                        in_flight = entry[0]
                        if in_flight <= l1_done:
                            del m_in_flight[block]
                        elif in_flight > completion:
                            completion = in_flight
                else:
                    # L2 miss: fill, then walk the MSHR/memory path.
                    l2_misses += 1
                    state = BlockState(block, seq)
                    ways = cache_set.ways
                    victim = None
                    if len(ways) >= l2_assoc:
                        if policy.victim_is_lru_tail:
                            victim = ways.pop()
                        else:
                            victim = ways.pop(policy.choose_victim(cache_set))
                        del cache_set._index[victim.block]
                        if victim.dirty:
                            l2_writebacks += 1
                    if policy.default_on_fill:
                        ways.insert(0, state)
                        cache_set._index[block] = state
                    else:
                        policy.on_fill(cache_set, state)
                    compulsory = False
                    if l2_seen is not None and block not in l2_seen:
                        l2_seen.add(block)
                        compulsory = True
                        l2_compulsory += 1
                    pending = None
                    if controller is not None:
                        if sbar_fast:
                            if is_leader:
                                aseq = sbar_atd._seq
                                sbar_atd._seq = aseq + 1
                                sbar_atd.accesses += 1
                                aset = sbar_atd_sets[set_index]
                                astate = aset._index.get(block)
                                aways = aset.ways
                                if astate is not None:
                                    sbar_atd.hits += 1
                                    if aways[0] is not astate:
                                        aways.remove(astate)
                                        aways.insert(0, astate)
                                    controller.deferred_updates += 1
                                    pending = sbar_psel.decrement
                                else:
                                    sbar_atd.misses += 1
                                    astate = BlockState(block, aseq)
                                    if len(aways) >= sbar_atd_assoc:
                                        avictim = aways.pop()
                                        del aset._index[avictim.block]
                                    aways.insert(0, astate)
                                    aset._index[block] = astate
                        elif cbs_fast:
                            aseq = atd_lru._seq
                            atd_lru._seq = aseq + 1
                            atd_lru.accesses += 1
                            aset = atd_lru_sets[set_index]
                            astate = aset._index.get(block)
                            aways = aset.ways
                            if astate is not None:
                                atd_lru.hits += 1
                                lru_hit = True
                                if aways[0] is not astate:
                                    aways.remove(astate)
                                    aways.insert(0, astate)
                            else:
                                atd_lru.misses += 1
                                lru_hit = False
                                astate = BlockState(block, aseq)
                                if len(aways) >= atd_lru_assoc:
                                    avictim = aways.pop()
                                    del aset._index[avictim.block]
                                aways.insert(0, astate)
                                aset._index[block] = astate
                            aseq = atd_lin._seq
                            atd_lin._seq = aseq + 1
                            atd_lin.accesses += 1
                            aset = atd_lin_sets[set_index]
                            astate = aset._index.get(block)
                            aways = aset.ways
                            lin_fill = None
                            if astate is not None:
                                atd_lin.hits += 1
                                lin_hit = True
                                if aways[0] is not astate:
                                    aways.remove(astate)
                                    aways.insert(0, astate)
                            else:
                                atd_lin.misses += 1
                                lin_hit = False
                                astate = BlockState(block, aseq)
                                if len(aways) >= atd_lin_assoc:
                                    avictim = aways.pop(atd_lin_choose(aset))
                                    del aset._index[avictim.block]
                                aways.insert(0, astate)
                                aset._index[block] = astate
                                lin_fill = astate
                            psel_update = None
                            if lin_hit != lru_hit:
                                psel_update = (
                                    psel.increment if lin_hit
                                    else psel.decrement
                                )
                            if psel_update is not None or lin_fill is not None:
                                controller.deferred_updates += 1

                                def pending(cost_q, _fill=lin_fill,
                                            _update=psel_update):
                                    if _fill is not None:
                                        _fill.cost_q = cost_q
                                    if _update is not None:
                                        _update(cost_q)
                        else:
                            scratch.hit = False
                            scratch.state = state
                            scratch.set_index = set_index
                            scratch.compulsory = compulsory
                            if victim is not None:
                                scratch.victim_block = victim.block
                                scratch.victim_dirty = victim.dirty
                            else:
                                scratch.victim_block = None
                                scratch.victim_dirty = False
                            pending = controller.observe_access(
                                set_index, block, scratch
                            )
                    if victim is not None:
                        victim_block = victim.block
                        if victim.dirty:
                            write_back(victim_block, l1_done)
                        # Enforce inclusion: the victim leaves the L1s.
                        vset = l1d_sets[victim_block % l1d_n_sets]
                        vstate = vset._index.get(victim_block)
                        if vstate is not None:
                            vset.ways.remove(vstate)
                            del vset._index[victim_block]
                        vset = l1i_sets[victim_block % l1i_n_sets]
                        vstate = vset._index.get(victim_block)
                        if vstate is not None:
                            vset.ways.remove(vstate)
                            del vset._index[victim_block]
                    demand_ctr += 1
                    if compulsory:
                        compulsory_ctr += 1

                    # Merge probe (inline MSHRFile.lookup).
                    entry = m_in_flight.get(block)
                    if entry is not None and entry[0] <= l1_done:
                        del m_in_flight[block]
                        entry = None
                    if entry is not None:
                        m_merges += 1
                        if pending is not None:
                            pending(0)
                        completion = l1_done + l2_hit_latency
                        in_flight = entry[0]
                        if in_flight > completion:
                            completion = in_flight
                    else:
                        # Inline MSHRFile.admission_time over the
                        # sorted occupancy deque (popleft == heappop,
                        # see the declaration above).
                        issue = l1_done + l2_hit_latency
                        while occ and occ[0] <= issue:
                            occ_popleft()
                        while len(occ) >= m_entries:
                            earliest = occ_popleft()
                            if earliest > issue:
                                issue = earliest
                                m_full_stalls += 1
                        if issue < m_now:
                            issue = m_now
                        # Inline MemoryController.read_line (bank
                        # first, then the bus — the write path above
                        # is the reverse).
                        while memory_in_flight and (
                            memory_in_flight[0] <= issue
                        ):
                            heappop(memory_in_flight)
                        start_at = issue
                        while len(memory_in_flight) >= memory_max:
                            earliest = heappop(memory_in_flight)
                            if earliest > start_at:
                                start_at = earliest
                                mem_queueing += 1
                        bank_start = bank_free[bank]
                        if bank_start > start_at:
                            bank_conflicts += 1
                        else:
                            bank_start = start_at
                        data_ready = bank_start + bank_latency
                        bank_free[bank] = data_ready
                        bank_accesses += 1
                        bus_start = bus_free
                        if bus_start > data_ready:
                            bus_contended += 1
                        else:
                            bus_start = data_ready
                        bus_free = bus_start + bus_occupancy
                        bus_transfers += 1
                        completion = bus_start + bus_transfer_delay
                        heappush(memory_in_flight, completion)
                        count = len(memory_in_flight)
                        if count > mem_peak:
                            mem_peak = count
                        mem_requests += 1

                        # ---- MSHRFile._advance(issue), inlined ----
                        if md and md[0][0] <= issue:
                            now = m_now
                            while md and md[0][0] <= issue:
                                sentry = md_popleft()
                                scomplete = sentry[0]
                                if scomplete > now:
                                    m_acc += (scomplete - now) / m_live
                                    now = scomplete
                                cost = m_acc - sentry[4]
                                if n_adders:
                                    cost = floor(cost * n_adders) / n_adders
                                m_live -= 1
                                sblock = sentry[1]
                                if m_in_flight.get(sblock) is sentry:
                                    del m_in_flight[sblock]
                                bkt = int(cost // qstep)
                                if bkt > max_q:
                                    bkt = max_q
                                sentry[2].cost_q = bkt
                                dist_counts[bkt] += 1
                                dist_total += 1
                                dist_cost_sum += cost
                                if track_delta:
                                    previous = delta_last.get(sblock)
                                    delta_last[sblock] = cost
                                    if previous is not None:
                                        dv = abs(cost - previous)
                                        delta_count += 1
                                        delta_sum += dv
                                        if dv < 60:
                                            delta_below += 1
                                        elif dv < 120:
                                            delta_mid += 1
                                        else:
                                            delta_high += 1
                                spending = sentry[3]
                                if spending is not None:
                                    spending(bkt)
                            if issue > now and m_live:
                                m_acc += (issue - now) / m_live
                            m_now = issue if issue > now else now
                        elif issue > m_now:
                            if m_live:
                                m_acc += (issue - m_now) / m_live
                            m_now = issue

                        # Inline MSHRFile.allocate for a demand read:
                        # completions are strictly increasing (see
                        # docstring), so appending keeps the deque
                        # sorted — the heap's tiebreak is the append
                        # order itself.
                        entry = (completion, block, state, pending, m_acc)
                        md_append(entry)
                        occ_append(completion)
                        m_in_flight[block] = entry
                        m_allocations += 1
                        m_live += 1
                        occupancy = len(occ)
                        if occupancy > m_peak:
                            m_peak = occupancy

                if is_store:
                    admitted = store_admit(dispatch, completion)
                    if admitted > dispatch:
                        stall_cycles += admitted - win_time
                        stall_events += 1
                        if admitted - win_time >= long_stall_threshold:
                            long_stalls += 1
                        win_time = admitted
                else:
                    if completion > retire_cummax:
                        retire_cummax = completion
                    if completion > final_completion:
                        final_completion = completion
                    win_append((win_index, retire_cummax))

        # ---- MSHRFile.drain, inlined ----
        if md:
            horizon = max(sentry[0] for sentry in md)
            target = horizon + 1
            now = m_now
            while md:
                sentry = md_popleft()
                scomplete = sentry[0]
                if scomplete > now:
                    m_acc += (scomplete - now) / m_live
                    now = scomplete
                cost = m_acc - sentry[4]
                if n_adders:
                    cost = floor(cost * n_adders) / n_adders
                m_live -= 1
                sblock = sentry[1]
                if m_in_flight.get(sblock) is sentry:
                    del m_in_flight[sblock]
                bkt = int(cost // qstep)
                if bkt > max_q:
                    bkt = max_q
                sentry[2].cost_q = bkt
                dist_counts[bkt] += 1
                dist_total += 1
                dist_cost_sum += cost
                if track_delta:
                    previous = delta_last.get(sblock)
                    delta_last[sblock] = cost
                    if previous is not None:
                        dv = abs(cost - previous)
                        delta_count += 1
                        delta_sum += dv
                        if dv < 60:
                            delta_below += 1
                        elif dv < 120:
                            delta_mid += 1
                        else:
                            delta_high += 1
                spending = sentry[3]
                if spending is not None:
                    spending(bkt)
            if target > now and m_live:
                m_acc += (target - now) / m_live
            m_now = target if target > now else now

        # ---- flush every hoisted counter back to its object ----
        window._index = win_index
        window._time = win_time
        window._retire_cummax = retire_cummax
        window.final_completion = final_completion
        window.stall_cycles = stall_cycles
        window.stall_events = stall_events
        window.long_stalls = long_stalls
        l1d._seq = l1d_seq
        l1d.accesses = l1d_accesses
        l1d.hits = l1d_hits
        l1d.misses = l1d_misses
        l1d.writebacks = l1d_writebacks
        l1i._seq = l1i_seq
        l1i.accesses = l1i_accesses
        l1i.hits = l1i_hits
        l1i.misses = l1i_misses
        l1i.writebacks = l1i_writebacks
        l2._seq = l2_seq
        l2.accesses = l2_accesses
        l2.hits = l2_hits
        l2.misses = l2_misses
        l2.writebacks = l2_writebacks
        l2.compulsory_misses = l2_compulsory
        self.demand_misses = demand_ctr
        self.compulsory_misses = compulsory_ctr
        mshr._now = m_now
        mshr._accumulator = m_acc
        mshr._demand_live = m_live
        mshr.allocations = m_allocations
        mshr.merges = m_merges
        mshr.full_stalls = m_full_stalls
        mshr.peak_occupancy = m_peak
        bus._free_at = bus_free
        bus.contended = bus_contended
        bus.transfers = bus_transfers
        banks.conflicts = bank_conflicts
        banks.accesses = bank_accesses
        memory.requests = mem_requests
        memory.writebacks = mem_writebacks
        memory.queueing_stalls = mem_queueing
        memory.peak_in_flight = mem_peak
        dist.total = dist_total
        dist.cost_sum = dist_cost_sum
        if track_delta:
            delta._count = delta_count
            delta._sum = delta_sum
            delta._below_60 = delta_below
            delta._60_to_119 = delta_mid
            delta._120_plus = delta_high
        return None

    # -- hierarchy --------------------------------------------------------

    def _access_hierarchy(
        self,
        block: int,
        kind: int,
        when: float,
        demand: bool,
        phase: Optional[PhaseSample],
    ) -> float:
        """Send one access down L1 -> L2 -> memory; return completion time."""
        mshr = self.mshr
        # Finalize the cost of every miss serviced before this access so
        # replacement sees up-to-date cost_q values (the hardware writes
        # cost into the tag store at service completion, Section 5).
        if when > mshr._now:
            mshr._advance(when)
        if kind == IFETCH:
            l1 = self.l1i
            is_store = False
        else:
            l1 = self.l1d
            is_store = kind == STORE
        r1 = l1.access(block, is_write=is_store)
        l1_done = when + l1.hit_latency
        if r1.hit:
            return l1_done
        if r1.victim_dirty:
            self._l1_writeback(r1.victim_block, when)

        r2 = self.l2.access(block)
        pending: Optional[Callable[[int], None]] = None
        controller = self.controller
        if demand and controller is not None:
            pending = controller.observe_access(r2.set_index, block, r2)

        l2_hit_latency = self.l2.hit_latency
        if r2.hit:
            # A tag hit may still be an in-flight line (hit-under-miss
            # to the same block): the access completes no earlier than
            # the outstanding fill.  No MSHR entry is allocated or
            # coalesced here, so the probe must not count as a merge.
            completion = l1_done + l2_hit_latency
            in_flight = mshr.lookup(block, l1_done, count_merge=False)
            if in_flight is not None and in_flight > completion:
                completion = in_flight
            assert pending is None, "controllers defer only on MTD misses"
            return completion

        # L2 miss path.
        victim_block = r2.victim_block
        if victim_block is not None:
            if r2.victim_dirty:
                self.memory.write_line(victim_block, l1_done)
            # Enforce inclusion: the victim leaves the L1s as well.
            self.l1d.invalidate(victim_block)
            self.l1i.invalidate(victim_block)

        warm = self._warm
        if demand and warm:
            self.demand_misses += 1
            if r2.compulsory:
                self.compulsory_misses += 1
            if phase is not None:
                phase.misses += 1

        in_flight = mshr.lookup(block, l1_done)
        if in_flight is not None:
            # The line's tag was evicted while its fill was still in
            # flight and is now re-requested: merge with the old fill.
            if pending is not None:
                pending(0)
            return max(in_flight, l1_done + l2_hit_latency)

        issue = mshr.admission_time(l1_done + l2_hit_latency)
        if issue < mshr._now:
            issue = mshr._now
        completion = self.memory.read_line(block, issue)
        on_cost = None
        if demand:
            on_cost = self._make_cost_sink(
                block, r2.state, pending, phase, record_stats=warm
            )
        mshr.allocate(block, issue, completion, demand, on_cost)
        if demand and self.prefetcher is not None:
            for candidate in self.prefetcher.observe(block):
                self._prefetch_block(candidate, issue)
        return completion

    def _prefetch_block(self, block: int, when: float) -> None:
        """Issue one non-demand prefetch into the L2."""
        if self.l2.contains(block) or self.mshr.in_flight(block, when):
            self.prefetch_hits_suppressed += 1
            return
        issue = self.mshr.admission_time(when)
        if issue < self.mshr.sweep_time:
            issue = self.mshr.sweep_time
        completion = self.memory.read_line(block, issue)
        self.mshr.allocate(block, issue, completion, is_demand=False)
        result = self.l2.access(block)
        if result.victim_dirty:
            self.memory.write_line(result.victim_block, issue)
        if result.victim_block is not None:
            self.l1d.invalidate(result.victim_block)
            self.l1i.invalidate(result.victim_block)
        self.prefetches_issued += 1

    def _make_cost_sink(self, block, state, pending, phase, record_stats=True):
        """Callback run when the MSHR sweep services this miss.

        ``record_stats=False`` (warm-up misses) still writes cost_q to
        the tag and drives PSEL — the mechanism must behave identically
        — but keeps the miss out of the reported distributions.
        """
        distribution = self.cost_distribution
        delta = self.delta
        observer = self._obs

        def on_cost(cost: float) -> None:
            cost_q = quantize_cost(cost)
            state.cost_q = cost_q
            if observer is not None:
                observer.cost_quantized(block, cost, cost_q)
            if record_stats:
                distribution.record(cost)
                if delta is not None:
                    delta.record(block, cost)
                if phase is not None:
                    phase.cost_q_sum += cost_q
                    phase.cost_count += 1
            if pending is not None:
                pending(cost_q)

        return on_cost

    def _finish_warmup(self, instr_index: int, cycle: float) -> None:
        """Reset reported statistics at the warm-up boundary.

        Every counter :meth:`_finalize` reports must be snapshotted
        here; anything left out would mix warm-up activity into the
        measured region.
        """
        self._warm = True
        self._warmup_end_instruction = instr_index
        self._warmup_end_cycle = cycle
        window = self.window
        self._warmup_stall_events = window.stall_events
        self._warmup_long_stalls = window.long_stalls
        self._warmup_stall_cycles = window.stall_cycles
        self._warmup_l2_accesses = self.l2.accesses
        self._warmup_l2_misses = self.l2.misses
        self._warmup_l1d_accesses = self.l1d.accesses
        self._warmup_l1d_misses = self.l1d.misses
        self._warmup_mshr_merges = self.mshr.merges
        self._warmup_mshr_full_stalls = self.mshr.full_stalls
        self._warmup_writebacks = self.l2.writebacks
        self._warmup_bank_conflicts = self.memory.banks.conflicts
        self._warmup_bus_contended = self.memory.bus.contended

    def _l1_writeback(self, block: int, when: float) -> None:
        """An L1 victim writes back into the L2 without recency update."""
        resident = self.l2.set_state(self.l2.set_index(block)).get(block)
        if resident is not None:
            resident.dirty = True
        else:
            # Not in L2 (inclusion was broken by an L2 eviction racing
            # the dirty line): write through to memory, timing only.
            self.memory.write_line(block, when)

    # -- results ----------------------------------------------------------

    def _finalize(self, current_phase: Optional[PhaseSample]) -> SimResult:
        window = self.window
        cycles = window.finish()
        if current_phase is not None:
            current_phase.end_instruction = window.instructions
            current_phase.end_cycle = cycles
            if current_phase.instructions == 0 and len(self.phases) > 1:
                # The final access opened a zero-length phase; fold its
                # activity into the previous sample instead of losing it.
                tail = self.phases.pop()
                previous = self.phases[-1]
                previous.misses += tail.misses
                previous.cost_q_sum += tail.cost_q_sum
                previous.cost_count += tail.cost_count
        psel_final = None
        if isinstance(self.controller, SBARController):
            psel_final = self.controller.psel.value
        instructions = window.instructions - self._warmup_end_instruction
        cycles -= self._warmup_end_cycle
        stall_events = window.stall_events - getattr(
            self, "_warmup_stall_events", 0
        )
        long_stalls = window.long_stalls - getattr(
            self, "_warmup_long_stalls", 0
        )
        stall_cycles = window.stall_cycles - getattr(
            self, "_warmup_stall_cycles", 0.0
        )
        if self.delta is not None:
            delta_summary = self.delta.summary()
        else:
            delta_summary = DeltaSummary(0, 0.0, 0.0, 0.0, 0.0)
        result = SimResult(
            policy_name=self._policy_label,
            instructions=instructions,
            cycles=cycles,
            l2_accesses=self.l2.accesses
            - getattr(self, "_warmup_l2_accesses", 0),
            l2_misses=self.l2.misses - getattr(self, "_warmup_l2_misses", 0),
            demand_misses=self.demand_misses,
            compulsory_misses=self.compulsory_misses,
            stall_events=stall_events,
            stall_cycles=stall_cycles,
            long_stalls=long_stalls,
            cost_distribution=self.cost_distribution,
            delta_summary=delta_summary,
            phases=self.phases,
            l1d_accesses=self.l1d.accesses
            - getattr(self, "_warmup_l1d_accesses", 0),
            l1d_misses=self.l1d.misses
            - getattr(self, "_warmup_l1d_misses", 0),
            mshr_merges=self.mshr.merges
            - getattr(self, "_warmup_mshr_merges", 0),
            mshr_full_stalls=self.mshr.full_stalls
            - getattr(self, "_warmup_mshr_full_stalls", 0),
            bank_conflicts=self.memory.banks.conflicts
            - getattr(self, "_warmup_bank_conflicts", 0),
            bus_contended=self.memory.bus.contended
            - getattr(self, "_warmup_bus_contended", 0),
            writebacks=self.l2.writebacks
            - getattr(self, "_warmup_writebacks", 0),
            psel_final=psel_final,
        )
        # Provenance only: which rung actually ran.  Stored on the
        # instance (never a dataclass field), so digests, store keys,
        # and serialized payloads are untouched — see SimResult.meta.
        result.meta = {"kernel_used": self.replay_kernel}
        if self._obs is not None:
            result.metrics = self._obs.finalize_run(self, result)
        return result
