"""Shared fixtures: small machines and crafted traces.

Unit tests use deliberately tiny cache geometries so behaviors are
hand-checkable; integration tests use the experiment machine at small
trace scales.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from repro.config import (
    CacheGeometry,
    MachineConfig,
    MemoryConfig,
    MSHRConfig,
    ProcessorConfig,
)

GOLDEN_DIR = Path(__file__).parent / "golden"


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/*.json snapshots from current outputs",
    )


def _assert_matches(actual, expected, path=""):
    """Recursive structural compare; floats via pytest.approx."""
    if isinstance(expected, dict):
        assert isinstance(actual, dict), "%s: expected dict" % path
        assert sorted(actual) == sorted(expected), (
            "%s: key mismatch %s != %s"
            % (path, sorted(actual), sorted(expected))
        )
        for key in expected:
            _assert_matches(actual[key], expected[key], "%s.%s" % (path, key))
    elif isinstance(expected, list):
        assert isinstance(actual, list), "%s: expected list" % path
        assert len(actual) == len(expected), "%s: length mismatch" % path
        for index, (a, e) in enumerate(zip(actual, expected)):
            _assert_matches(a, e, "%s[%d]" % (path, index))
    elif isinstance(expected, float) or isinstance(actual, float):
        assert actual == pytest.approx(expected, rel=1e-6), (
            "%s: %r != %r" % (path, actual, expected)
        )
    else:
        assert actual == expected, "%s: %r != %r" % (path, actual, expected)


@pytest.fixture
def golden_check(request):
    """Compare a JSON-safe payload against ``tests/golden/<name>.json``.

    ``pytest --update-golden`` rewrites the snapshot instead of
    comparing, so intentional behavior changes regenerate fixtures in
    one command.
    """

    def check(name: str, payload) -> None:
        path = GOLDEN_DIR / ("%s.json" % name)
        # Round-trip through JSON so the comparison sees exactly what a
        # fresh checkout would load (tuples -> lists, int keys -> str).
        payload = json.loads(json.dumps(payload, sort_keys=True))
        if request.config.getoption("--update-golden"):
            GOLDEN_DIR.mkdir(parents=True, exist_ok=True)
            path.write_text(json.dumps(payload, indent=2, sort_keys=True))
            pytest.skip("updated golden snapshot %s" % path.name)
        if not path.exists():
            pytest.fail(
                "missing golden snapshot %s — run pytest --update-golden"
                % path
            )
        expected = json.loads(path.read_text())
        _assert_matches(payload, expected)

    return check


@pytest.fixture(autouse=True, scope="session")
def _isolated_result_store(tmp_path_factory):
    """Point the persistent result store at a session-scoped tmp dir.

    Keeps the suite hermetic (no reads from a developer's warm
    ~/.cache/repro) while still exercising store hits across tests
    within one session.
    """
    os.environ["REPRO_CACHE_DIR"] = str(
        tmp_path_factory.mktemp("repro-store")
    )
    yield
    os.environ.pop("REPRO_CACHE_DIR", None)


@pytest.fixture
def tiny_geometry() -> CacheGeometry:
    """4 sets x 2 ways of 64B lines."""
    return CacheGeometry(512, 64, 2, 1)


@pytest.fixture
def small_machine() -> MachineConfig:
    """A Table-2-shaped machine small enough for hand analysis.

    One-block L1s (pass-through except consecutive repeats), a 4-set
    4-way L2, the real memory system.
    """
    return MachineConfig(
        processor=ProcessorConfig(),
        l1i=CacheGeometry(64, 64, 1, 1),
        l1d=CacheGeometry(64, 64, 1, 1),
        l2=CacheGeometry(4 * 4 * 64, 64, 4, 15),
        mshr=MSHRConfig(n_entries=32),
        memory=MemoryConfig(),
    )
