"""Offline Belady (OPT) and cost-weighted OPT lower bounds.

The simulator can compare policies against each other, but "LIN beats
LRU" is unanchored without the optimum.  This module replays any trace
through an *offline* oracle and reports two floors:

* ``opt_misses`` — the demand-miss count of per-set Belady OPT (evict
  the resident block reused farthest in the future) over the
  L2-visible reference stream.  No online policy managing the same
  geometry can miss less.
* ``cost_opt_stall_cycles`` — a conservative stall-cycle floor derived
  from the *cost-weighted* OPT schedule (evict the block whose next
  miss would be cheapest under the quantized mlp-cost model), i.e. the
  paper's point that misses and stalls are different objectives, made
  into a measurable bound.

**Why the oracle sees the L1-filtered stream.**  The L2 never observes
the raw program reference stream: the L1I/L1D absorb short-range reuse
(the Figure 1 analysis models this with :func:`collapse_consecutive`
for one-block L1s).  An OPT bound computed over the raw stream would
be incomparably *loose* (it would count L1 hits as L2 work), so the
oracle first replays the trace through plain-LRU L1s of the same
geometry the simulator uses and runs OPT over the resulting L2-visible
stream.  Wrong-path records pass through the filter too and may
install blocks (free warm-up, exactly as in the real machine) but
their misses are never counted.  The one deliberate divergence from
the full machine is inclusion: the oracle's filter never invalidates
L1 lines on L2 evictions, which only makes the L2-visible stream — and
therefore the bound — *smaller*.

**The stall floor.**  The window model hides at most
``window_size / issue_width`` cycles of a long-latency miss before the
128-entry window fills.  The oracle groups its schedule's unavoidable
load/ifetch misses into overlap chains (misses whose earliest possible
dispatch times fall within one isolated-miss latency of each other can
be serviced in parallel), charges each chain a single memory latency
minus the window-hiding allowance minus the chain's own dispatch span,
and clamps at zero.  Chains too close to the end of the trace to ever
fill the window contribute nothing.  Every term of that accounting is
deliberately generous to the machine — real runs also pay bus
occupancy, bank conflicts, MSHR pressure, and L1/L2 hit latencies the
floor ignores — so any simulated policy's ``stall_cycles`` sits above
it (``tests/test_oracle.py`` holds this as a property over random
traces and the ChampSim fixture).

Reports are cached in the persistent v4 result store under a key that
covers the trace's content digest, the machine config, and the code
version, so repeated ``--oracle`` suite runs are free.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.replacement.belady import NEVER, next_use_distances
from repro.config import MachineConfig
from repro.mlp.cost import quantize_cost
from repro.trace.packed import PackedTrace
from repro.trace.record import IFETCH, STORE

#: Bump when the oracle algorithm or report shape changes; part of the
#: store key, so stale cached reports miss cleanly.
ORACLE_VERSION = 1


@dataclass
class OracleReport:
    """Offline lower bounds for one (trace, machine config) pair.

    ``opt_misses`` is the demand-miss floor; ``cost_opt_stall_cycles``
    is the stall-cycle floor (the smaller of the bounds computed from
    the plain-OPT and cost-weighted-OPT schedules, keeping it a
    conservative floor).  The remaining fields describe the L2-visible
    stream the bounds were computed over.
    """

    trace_digest: str
    instructions: int
    l2_accesses: int
    l2_demand_accesses: int
    compulsory_misses: int
    opt_misses: int
    opt_stall_cycles: float
    cost_opt_misses: int
    cost_opt_stall_cycles: float
    miss_clusters: int
    version: int = ORACLE_VERSION

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "OracleReport":
        return cls(**data)


@dataclass
class _L2Stream:
    """The L2-visible reference stream after plain-LRU L1 filtering."""

    blocks: List[int] = field(default_factory=list)
    kinds: List[int] = field(default_factory=list)
    #: False for wrong-path accesses (free fills, never counted).
    demands: List[bool] = field(default_factory=list)
    #: Committed-instruction index at dispatch of each access.
    positions: List[int] = field(default_factory=list)
    instructions: int = 0


def _l1_filter(trace, config: MachineConfig) -> _L2Stream:
    """Replay ``trace`` through plain-LRU L1s; return the L2 stream.

    Mirrors the simulator's routing — IFETCH through the L1I, loads and
    stores (write-allocate) through the L1D — without timing and
    without inclusion invalidations.
    """
    block_bits = config.block_bits
    out = _L2Stream()
    emit_block = out.blocks.append
    emit_kind = out.kinds.append
    emit_demand = out.demands.append
    emit_position = out.positions.append

    def make_l1(geometry):
        return [geometry.n_sets, geometry.associativity,
                [[] for _ in range(geometry.n_sets)]]

    l1i = make_l1(config.l1i)
    l1d = make_l1(config.l1d)
    position = 0
    if isinstance(trace, PackedTrace):
        records = trace.iter_tuples()
    else:
        records = (
            (access.address, access.kind, access.gap, access.wrong_path)
            for access in trace
        )
    for address, kind, gap, wrong_path in records:
        block = address >> block_bits
        if not wrong_path:
            position += gap + 1
        n_sets, assoc, sets = l1i if kind == IFETCH else l1d
        ways = sets[block % n_sets]
        if block in ways:
            if ways[0] != block:
                ways.remove(block)
                ways.insert(0, block)
            continue
        ways.insert(0, block)
        if len(ways) > assoc:
            ways.pop()
        emit_block(block)
        emit_kind(kind)
        emit_demand(not wrong_path)
        emit_position(position)
    out.instructions = position
    return out


def _estimated_costs(
    stream: _L2Stream, config: MachineConfig
) -> List[int]:
    """Quantized a-priori mlp-cost estimate per stream access.

    Accesses whose dispatch points fall within one window residency of
    each other *could* miss concurrently, so a miss inside a dense
    cluster is cheap (the isolated latency amortizes over the cluster,
    capped at the MSHR size) while an isolated miss costs the full
    latency — the offline analogue of Algorithm 1's accounting.
    Wrong-path accesses cost zero (their misses are never counted).
    """
    window = config.processor.window_size
    latency = float(config.memory.isolated_miss_latency)
    mshr = max(1, config.mshr.n_entries)
    positions = stream.positions
    demands = stream.demands
    costs = [0] * len(positions)
    cluster: List[int] = []
    cluster_end = None
    for index, position in enumerate(positions):
        if not demands[index]:
            continue
        if cluster_end is not None and position - cluster_end >= window:
            cost_q = quantize_cost(latency / min(len(cluster), mshr))
            for member in cluster:
                costs[member] = cost_q
            cluster = []
        cluster.append(index)
        cluster_end = position
    if cluster:
        cost_q = quantize_cost(latency / min(len(cluster), mshr))
        for member in cluster:
            costs[member] = cost_q
    return costs


def _replay_opt(
    stream: _L2Stream,
    config: MachineConfig,
    costs: Optional[List[int]] = None,
) -> Tuple[int, List[int]]:
    """Per-set OPT replay; returns (demand misses, miss stream indices).

    With ``costs`` the eviction rule is cost-weighted: evict the
    resident block whose next miss would be cheapest (never-reused and
    wrong-path refetches are free), breaking ties toward the farthest
    next use.  Without it the rule is plain Belady (farthest next use).
    """
    n_sets = config.l2.n_sets
    assoc = config.l2.associativity
    next_use = next_use_distances(stream.blocks)
    # Resident state per set: block -> next use (a stream index).
    sets: List[Dict[int, int]] = [dict() for _ in range(n_sets)]
    misses = 0
    miss_indices: List[int] = []
    demands = stream.demands
    for index, block in enumerate(stream.blocks):
        resident = sets[block % n_sets]
        use = next_use[index]
        if block in resident:
            resident[block] = use
            continue
        if demands[index]:
            misses += 1
            miss_indices.append(index)
        if len(resident) >= assoc:
            if costs is None:
                victim = max(resident, key=resident.__getitem__)
            else:
                victim = min(
                    resident,
                    key=lambda candidate: (
                        _refetch_cost(resident[candidate], costs),
                        -resident[candidate],
                    ),
                )
            del resident[victim]
        resident[block] = use
    return misses, miss_indices


def _refetch_cost(use: int, costs: List[int]) -> int:
    """Quantized cost of re-fetching a block next used at ``use``."""
    if use == NEVER:
        return 0
    return costs[use]


def _stall_bound(
    miss_indices: Sequence[int],
    stream: _L2Stream,
    config: MachineConfig,
) -> Tuple[float, int]:
    """Conservative stall-cycle floor for one oracle miss schedule.

    Two misses more than ``window_size`` instructions apart can never
    overlap: the instruction window cannot hold both, so the second is
    not even dispatched until the first completes and retires.  The
    floor therefore chains load/ifetch misses whose instruction
    positions fall within one window of each other and charges each
    chain a single isolated-miss latency, minus the window-hiding
    allowance (``window_size / issue_width`` cycles of dispatch the
    window absorbs before filling), minus the chain's own dispatch
    span, clamped at zero.  A chain within one window of the trace end
    may never block fetch (the window simply drains), so it contributes
    nothing.  Returns ``(stall_cycles, n_chains)``.
    """
    width = config.processor.issue_width
    window = config.processor.window_size
    latency = float(config.memory.isolated_miss_latency)
    hide = window / width
    positions = stream.positions
    kinds = stream.kinds
    instructions = stream.instructions

    stall = 0.0
    chains = 0
    first_position = last_position = None
    for index in miss_indices:
        if kinds[index] == STORE:
            # Store misses drain through the store buffer; they only
            # block fetch when the buffer fills, which the floor
            # conservatively ignores.
            continue
        position = positions[index]
        if first_position is None:
            first_position = last_position = position
            continue
        if position - last_position < window:
            last_position = position
            continue
        if instructions - last_position >= window:
            span = (last_position - first_position) / width
            stall += max(0.0, latency - hide - span)
            chains += 1
        first_position = last_position = position
    if first_position is not None and instructions - last_position >= window:
        span = (last_position - first_position) / width
        stall += max(0.0, latency - hide - span)
        chains += 1
    return stall, chains


def oracle_store_key(trace_digest: str, config: MachineConfig) -> str:
    """Store key for one oracle report (content-addressed)."""
    from repro.sim.store import code_version

    fields = {
        "kind": "oracle_report",
        "version": ORACLE_VERSION,
        "trace": trace_digest,
        "config": asdict(config),
        "code": code_version(),
    }
    blob = json.dumps(fields, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:32]


def oracle_report(
    trace,
    config: Optional[MachineConfig] = None,
    use_store: bool = True,
) -> OracleReport:
    """Compute (or load from the store) the oracle bounds for a trace.

    ``trace`` is a :class:`PackedTrace` or any ``Access`` sequence
    (packed internally so the report is keyed on a content digest).
    ``config`` defaults to :func:`repro.workloads.experiment_config`,
    matching :func:`repro.sim.runner.run_policy`.
    """
    from repro.sim.store import default_store

    if config is None:
        from repro.workloads import experiment_config

        config = experiment_config()
    if not isinstance(trace, PackedTrace):
        trace = PackedTrace.from_accesses(list(trace))
    digest = trace.content_digest()

    store = default_store() if use_store else None
    key = None
    if store is not None:
        key = oracle_store_key(digest, config)
        payload = store.load_payload(key)
        if payload is not None:
            try:
                return OracleReport.from_dict(payload)
            except TypeError:
                pass  # shape drift: recompute and overwrite

    stream = _l1_filter(trace, config)
    costs = _estimated_costs(stream, config)
    opt_misses, opt_miss_indices = _replay_opt(stream, config)
    cost_misses, cost_miss_indices = _replay_opt(stream, config, costs)
    opt_stall, _ = _stall_bound(opt_miss_indices, stream, config)
    cost_stall, chains = _stall_bound(cost_miss_indices, stream, config)

    seen: set = set()
    compulsory = 0
    for index, block in enumerate(stream.blocks):
        if block not in seen:
            seen.add(block)
            if stream.demands[index]:
                compulsory += 1

    report = OracleReport(
        trace_digest=digest,
        instructions=stream.instructions,
        l2_accesses=len(stream.blocks),
        l2_demand_accesses=sum(1 for d in stream.demands if d),
        compulsory_misses=compulsory,
        opt_misses=opt_misses,
        opt_stall_cycles=opt_stall,
        cost_opt_misses=cost_misses,
        # The floor must sit under *every* policy, so take the smaller
        # of the two schedules' bounds.
        cost_opt_stall_cycles=min(opt_stall, cost_stall),
        miss_clusters=chains,
    )
    if store is not None:
        store.save_payload(
            key, report.to_dict(), kind="oracle_report",
            trace_digest=digest,
        )
    return report


def annotate_result(result, report: OracleReport):
    """A copy of ``result`` carrying oracle bounds and regret fields.

    Regret is the policy's excess over the floor: ``miss_regret =
    demand_misses - opt_misses`` and ``stall_regret = stall_cycles -
    cost_opt_stall_cycles``.  Annotation never mutates the original —
    cached/stored results stay oracle-free.
    """
    from dataclasses import replace

    return replace(
        result,
        oracle_misses=report.opt_misses,
        oracle_stall_cycles=report.cost_opt_stall_cycles,
        miss_regret=result.demand_misses - report.opt_misses,
        stall_regret=result.stall_cycles - report.cost_opt_stall_cycles,
    )


__all__ = [
    "OracleReport",
    "oracle_report",
    "oracle_store_key",
    "annotate_result",
    "ORACLE_VERSION",
]
