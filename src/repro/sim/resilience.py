"""Fault-tolerant execution primitives for the parallel engine.

Three pieces, all deterministic and all testable under the seeded
chaos harness (:mod:`repro.sim.chaos`):

* :func:`backoff_delay` — exponential backoff with *deterministic*
  jitter.  Retried tasks wait ``base * 2**(attempt-1)`` seconds scaled
  by a jitter factor derived from ``sha256(seed, task label,
  attempt)``, so two runs of the same grid retry on the same schedule
  (no wall-clock or RNG state leaks into behavior) while distinct
  tasks still de-synchronize.

* :class:`CircuitBreaker` — counts *consecutive* broken-pool rounds
  (a worker hard-crashing breaks every in-flight future of a
  ``ProcessPoolExecutor``).  After ``threshold`` consecutive
  breakages the breaker opens and :func:`repro.sim.parallel.run_grid`
  degrades gracefully to serial in-process execution instead of
  thrashing pool rebuilds forever.

* :class:`RunJournal` — an append-only JSONL journal of one grid
  run: ``run_started`` (with the suite matrix), per-attempt
  ``task_started``, ``task_finished`` (with the result's store key),
  ``task_failed`` (with the remote traceback), and ``run_finished``.
  Journals live under ``<cache dir>/runs/<run_id>.jsonl`` next to the
  result store, so an interrupted run is resumable: ``--resume
  RUN_ID`` replays completed cells from the journal + store and
  re-executes only the missing ones (see :func:`load_journal`).
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

#: Journal line format; bump when event fields change incompatibly.
JOURNAL_SCHEMA = "repro.journal/v1"


def journal_root() -> Optional[Path]:
    """Directory holding run journals, or None when persistence is off.

    Lives next to the result store (``$REPRO_CACHE_DIR`` or
    ``~/.cache/repro``) so one environment variable redirects both.
    """
    if os.environ.get("REPRO_NO_STORE"):
        return None
    root = os.environ.get("REPRO_CACHE_DIR") or str(
        Path.home() / ".cache" / "repro"
    )
    return Path(root) / "runs"


def new_run_id() -> str:
    """A sortable, collision-resistant id for one grid run."""
    stamp = time.strftime("%Y%m%d-%H%M%S")
    salt = hashlib.sha256(
        ("%d|%r" % (os.getpid(), time.time())).encode()
    ).hexdigest()[:6]
    return "run-%s-%s" % (stamp, salt)


def backoff_delay(
    base: float,
    cap: float,
    attempt: int,
    label: str,
    seed: int = 0,
) -> float:
    """Deterministic exponential backoff before retry ``attempt``.

    ``attempt`` counts completed attempts (1 = first retry).  Returns
    0 when ``base`` is non-positive.  The jitter factor lies in
    ``[1.0, 2.0)`` and is a pure function of ``(seed, label,
    attempt)``, so schedules are reproducible run-to-run.
    """
    if base <= 0 or attempt <= 0:
        return 0.0
    raw = min(cap, base * (2 ** (attempt - 1)))
    digest = hashlib.sha256(
        ("%d|%s|%d" % (seed, label, attempt)).encode()
    ).digest()
    jitter = 1.0 + int.from_bytes(digest[:8], "big") / 2.0**64
    return min(cap, raw * jitter)


class CircuitBreaker:
    """Open after ``threshold`` consecutive broken-pool rounds.

    ``threshold <= 0`` disables the breaker (it never opens).
    """

    def __init__(self, threshold: int) -> None:
        self.threshold = threshold
        self.consecutive_failures = 0
        self.total_failures = 0

    @property
    def open(self) -> bool:
        return (
            self.threshold > 0
            and self.consecutive_failures >= self.threshold
        )

    def record_pool_failure(self) -> None:
        self.consecutive_failures += 1
        self.total_failures += 1

    def record_healthy_round(self) -> None:
        self.consecutive_failures = 0


def _task_fields(task) -> Dict[str, object]:
    return {
        "benchmark": task.benchmark,
        "policy": task.policy_spec,
        "scale": task.scale,
        "phase_interval": task.phase_interval,
    }


class RunJournal:
    """Append-only JSONL journal of one grid run (parent-side only).

    Every event is flushed as soon as it is written, so the journal is
    consistent after a crash or KeyboardInterrupt at any point: a task
    either has a ``task_finished``/``task_failed`` record or it does
    not, and resume re-executes exactly the tasks that do not.
    """

    def __init__(self, path: Path, run_id: str) -> None:
        self.path = path
        self.run_id = run_id
        self._handle = None

    @classmethod
    def create(
        cls,
        run_id: Optional[str] = None,
        meta: Optional[Dict[str, object]] = None,
    ) -> Optional["RunJournal"]:
        """Open a new journal, or None when persistence is disabled."""
        root = journal_root()
        if root is None:
            return None
        run_id = run_id or new_run_id()
        root.mkdir(parents=True, exist_ok=True)
        journal = cls(root / ("%s.jsonl" % run_id), run_id)
        header = {
            "event": "run_started",
            "schema": JOURNAL_SCHEMA,
            "run_id": run_id,
        }
        header.update(meta or {})
        journal._emit(header)
        return journal

    def _emit(self, payload: Dict[str, object]) -> None:
        payload.setdefault("ts", round(time.time(), 3))
        if self._handle is None:
            self._handle = open(self.path, "a", encoding="utf-8")
        self._handle.write(json.dumps(payload, sort_keys=True) + "\n")
        self._handle.flush()

    # -- events ----------------------------------------------------------

    def task_started(self, task, attempt: int) -> None:
        record = {"event": "task_started", "attempt": attempt}
        record.update(_task_fields(task))
        self._emit(record)

    def task_finished(
        self,
        task,
        store_key: Optional[str],
        cache_hit: bool,
        resumed: bool,
        wall: float,
        worker: Optional[int],
        attempts: int,
    ) -> None:
        record = {
            "event": "task_finished",
            "store_key": store_key,
            "cache_hit": cache_hit,
            "resumed": resumed,
            "wall_s": round(wall, 4),
            "worker": worker,
            "attempts": attempts,
        }
        record.update(_task_fields(task))
        self._emit(record)

    def task_failed(
        self,
        task,
        error: str,
        traceback_text: Optional[str],
        attempts: int,
    ) -> None:
        record = {
            "event": "task_failed",
            "error": error,
            "traceback": traceback_text,
            "attempts": attempts,
        }
        record.update(_task_fields(task))
        self._emit(record)

    def run_finished(
        self, completed: int, failed: int, interrupted: bool = False
    ) -> None:
        self._emit({
            "event": "run_finished",
            "completed": completed,
            "failed": failed,
            "interrupted": interrupted,
        })
        self.close()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


@dataclass
class JournalState:
    """Parsed journal of a past run, ready for ``--resume``."""

    run_id: str
    meta: Dict[str, object]
    #: store_key -> the task_finished record that produced it.
    completed: Dict[str, Dict[str, object]] = field(default_factory=dict)
    failed: List[Dict[str, object]] = field(default_factory=list)
    finished: bool = False
    interrupted: bool = False


def load_journal(run_id: str) -> JournalState:
    """Parse ``<runs dir>/<run_id>.jsonl`` into a :class:`JournalState`.

    Raises ``FileNotFoundError`` (listing known run ids) when the
    journal does not exist.  Torn trailing lines — the run was killed
    mid-write — are ignored; every complete line is kept.
    """
    root = journal_root()
    path = root / ("%s.jsonl" % run_id) if root is not None else None
    if path is None or not path.exists():
        known = ", ".join(sorted(r.run_id for r in list_runs())) or "none"
        raise FileNotFoundError(
            "no journal for run id %r (known runs: %s)" % (run_id, known)
        )
    state = JournalState(run_id=run_id, meta={})
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue  # torn trailing write
            event = record.get("event")
            if event == "run_started":
                state.meta = {
                    key: value for key, value in record.items()
                    if key not in ("event", "ts")
                }
            elif event == "task_finished":
                key = record.get("store_key")
                if key:
                    state.completed[key] = record
            elif event == "task_failed":
                state.failed.append(record)
            elif event == "run_finished":
                state.finished = True
                state.interrupted = bool(record.get("interrupted"))
    return state


def list_runs() -> List[JournalState]:
    """Every journal in the runs directory, newest-id last."""
    root = journal_root()
    if root is None or not root.is_dir():
        return []
    states = []
    for path in sorted(root.glob("run-*.jsonl")):
        try:
            states.append(load_journal(path.stem))
        except (OSError, ValueError):
            continue
    return states


__all__ = [
    "JOURNAL_SCHEMA",
    "JournalState",
    "RunJournal",
    "CircuitBreaker",
    "backoff_delay",
    "journal_root",
    "list_runs",
    "load_journal",
    "new_run_id",
]
