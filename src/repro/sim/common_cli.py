"""One CLI surface for every execution entry point.

``repro.sim``, ``repro.sim.suite``, ``repro.experiments``, and
``repro.bench`` all execute simulations, and each used to hand-copy its
own ``--workers/--no-cache/--progress/--metrics-out/--trace-events``
definitions — four drifting copies of the same flags.  This module owns
them once, as argparse *parent parsers*:

* :func:`execution_parent` — how to execute: ``--workers``,
  ``--no-cache``, ``--progress``, ``--resume``, ``--max-retries``,
  ``--deadline``, ``--chaos``, ``--kernel`` (plus the deprecated
  ``--timeout`` / ``--retries`` spellings).  :func:`options_from_args` folds the parsed
  namespace into one :class:`~repro.sim.options.RunOptions`.
* :func:`telemetry_parent` — what to observe: ``--metrics-out``,
  ``--trace-events``.  :func:`apply_telemetry` pushes them into
  :mod:`repro.obs`.

Adding a new execution flag means touching exactly this module and
:class:`RunOptions`; every CLI picks it up via ``parents=[...]``.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Optional

from repro import obs
from repro.sim.options import RunOptions


def execution_parent() -> argparse.ArgumentParser:
    """Parent parser with the shared execution flags.

    Use as ``argparse.ArgumentParser(parents=[execution_parent()])``;
    ``add_help=False`` so the child's ``-h`` wins.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("execution")
    group.add_argument(
        "--workers", type=int, default=0, metavar="N",
        help="fan simulations out over N worker processes (default: "
             "serial in-process)",
    )
    group.add_argument(
        "--no-cache", action="store_true",
        help="bypass the in-process memo and the persistent store",
    )
    group.add_argument(
        "--progress", action="store_true",
        help="print one line per finished task to stderr",
    )
    group.add_argument(
        "--resume", metavar="RUN_ID", default=None,
        help="replay an interrupted run's journal: completed cells come "
             "from the result store, only missing cells re-execute",
    )
    group.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="re-executions allowed per task after a failure "
             "(default: 1)",
    )
    group.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-task wall-clock budget, enforced in the worker",
    )
    group.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help='seeded fault injection for testing, e.g. '
             '"crash=0.2,delay=0.3,seed=7" (see repro.sim.chaos)',
    )
    group.add_argument(
        "--kernel", default="auto",
        choices=("auto", "native", "batched", "fused", "generic"),
        help="replay kernel ceiling (all kernels are bit-identical; "
             "default auto picks the fastest whose gates hold — the "
             "compiled native kernel when built, else batched)",
    )
    # Deprecated spellings from the pre-RunOptions CLIs; folded (with a
    # warning) into --deadline / --max-retries by options_from_args.
    group.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help=argparse.SUPPRESS,
    )
    group.add_argument(
        "--retries", type=int, default=None, metavar="N",
        help=argparse.SUPPRESS,
    )
    return parent


def service_parent() -> argparse.ArgumentParser:
    """Parent parser with the shared job-service connection flags."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("service")
    group.add_argument(
        "--host", default="127.0.0.1",
        help="job service host (default: 127.0.0.1)",
    )
    group.add_argument(
        "--port", type=int, default=7663,
        help="job service TCP port (default: 7663; 0 binds an "
             "ephemeral port when serving)",
    )
    group.add_argument(
        "--tenant", default="anonymous", metavar="NAME",
        help="tenant identity for quota accounting (default: anonymous)",
    )
    return parent


def umbrella_pointer(subcommand: str) -> None:
    """One stderr line pointing a legacy ``__main__`` at the new CLI.

    The per-module entry points keep working, but ``python -m repro
    <subcommand>`` is the documented spelling; the umbrella CLI sets
    ``REPRO_UMBRELLA=1`` before delegating so users who already typed
    the new spelling never see the pointer.
    """
    import os

    if os.environ.get("REPRO_UMBRELLA"):
        return
    print(
        "note: 'python -m repro %s' is the unified CLI spelling "
        "(python -m repro --help)" % subcommand,
        file=sys.stderr,
    )


def telemetry_parent() -> argparse.ArgumentParser:
    """Parent parser with the shared telemetry flags."""
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("telemetry")
    group.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="enable telemetry and write the merged metric snapshot "
             "(plus profiling spans, if any) as JSON",
    )
    group.add_argument(
        "--trace-events", metavar="FILE", default=None,
        help="write a JSONL event trace (workers append .<pid>)",
    )
    return parent


def options_from_args(
    args: argparse.Namespace,
    progress=None,
) -> RunOptions:
    """Fold a parsed execution namespace into one :class:`RunOptions`.

    ``progress`` overrides the callback installed when ``--progress``
    was passed (default: :func:`progress_printer`).
    """
    deadline = args.deadline
    if args.timeout is not None:
        warnings.warn(
            "--timeout is deprecated; use --deadline",
            DeprecationWarning, stacklevel=2,
        )
        if deadline is None:
            deadline = args.timeout
    max_retries = args.max_retries
    if args.retries is not None:
        warnings.warn(
            "--retries is deprecated; use --max-retries",
            DeprecationWarning, stacklevel=2,
        )
        if max_retries is None:
            max_retries = args.retries

    fields = {
        "workers": args.workers,
        "use_cache": not args.no_cache,
        "deadline": deadline,
        "resume": args.resume,
        "kernel": getattr(args, "kernel", "auto"),
    }
    if max_retries is not None:
        fields["max_retries"] = max_retries
    if args.chaos:
        from repro.sim.chaos import ChaosConfig

        fields["chaos"] = ChaosConfig.parse(args.chaos)
    if args.progress:
        fields["progress"] = (
            progress if progress is not None else progress_printer
        )
    return RunOptions(**fields)


def apply_telemetry(args: argparse.Namespace) -> None:
    """Push the parsed telemetry flags into :mod:`repro.obs`."""
    if args.metrics_out:
        obs.configure(metrics=True, profile=True)
    if args.trace_events:
        obs.configure(trace_events=args.trace_events)


def write_metrics(args: argparse.Namespace, metrics) -> None:
    """Write the ``--metrics-out`` payload (metrics + profile spans)."""
    import json

    payload = {
        "metrics": metrics,
        "profile": obs.session_profile(),
    }
    with open(args.metrics_out, "w") as handle:
        json.dump(payload, handle, indent=2)
    print("wrote %s" % args.metrics_out)


def progress_printer(report, done, total) -> None:
    """One stderr line per finished task (the ``--progress`` callback)."""
    if report.cache_hit:
        source = "resume" if report.resumed else "cache"
    elif report.worker:
        source = "worker %s" % report.worker
    else:
        source = "local"
    status = "ok" if report.ok else "FAILED"
    print(
        "[%d/%d] %-24s %6.2fs  %s  %s"
        % (done, total, report.task.label, report.wall_time, source,
           status),
        file=sys.stderr,
        flush=True,
    )


__all__ = [
    "execution_parent",
    "service_parent",
    "telemetry_parent",
    "umbrella_pointer",
    "options_from_args",
    "apply_telemetry",
    "write_metrics",
    "progress_printer",
]
