"""Access records: the unit of work fed to the simulator.

The simulator is trace driven.  A trace is a list of :class:`Access`
records in program order.  Non-memory instructions are not materialized;
each access instead records how many of them precede it (``gap``).  This
keeps traces small while preserving exactly the information the window
model of :mod:`repro.cpu.window` needs: instruction indices and the
ordering of memory operations.
"""

from __future__ import annotations

from typing import Iterable, List

#: Access kinds.  Plain ints (not an Enum) because the simulator touches
#: them on every record and Enum attribute access is measurably slower.
LOAD = 0
STORE = 1
IFETCH = 2

_KIND_NAMES = {LOAD: "load", STORE: "store", IFETCH: "ifetch"}


def kind_name(kind: int) -> str:
    """Human-readable name of an access kind."""
    return _KIND_NAMES[kind]


def validate_access_fields(address: int, kind: int, gap: int) -> None:
    """Reject field values no :class:`Access` may carry.

    Validation lives here — not in ``Access.__init__`` — so the bulk
    synthesis paths (:class:`~repro.trace.synthetic.TraceBuilder`, the
    surrogate engine, :meth:`~repro.trace.packed.PackedTrace.from_accesses`)
    pay for it once per entry point instead of once per record.
    Anything that accepts records from *outside* the package (builders,
    file loaders, packed-column construction) must call it.
    """
    if gap < 0:
        raise ValueError("gap must be non-negative, got %d" % gap)
    if kind not in _KIND_NAMES:
        raise ValueError("unknown access kind %r" % (kind,))
    if address < 0:
        raise ValueError("address must be non-negative, got %d" % address)


class Access:
    """One memory access in program order.

    Attributes:
        gap: number of non-memory instructions executed since the previous
            access (the access itself is one more instruction).
        kind: one of :data:`LOAD`, :data:`STORE`, :data:`IFETCH`.
        address: byte address touched.
        wrong_path: whether the access was issued down a mispredicted
            path.  Wrong-path accesses occupy memory-system resources but
            are excluded from demand-miss accounting (Section 3.1).

    The constructor is deliberately bare assignment: traces run to
    hundreds of thousands of records and the synthesis loops construct
    one ``Access`` each, so field validation happens at the trace entry
    points via :func:`validate_access_fields` instead of per record.
    """

    __slots__ = ("gap", "kind", "address", "wrong_path")

    def __init__(
        self,
        address: int,
        kind: int = LOAD,
        gap: int = 0,
        wrong_path: bool = False,
    ) -> None:
        self.address = address
        self.kind = kind
        self.gap = gap
        self.wrong_path = wrong_path

    def __repr__(self) -> str:
        flag = " wrong-path" if self.wrong_path else ""
        return "Access(%s 0x%x gap=%d%s)" % (
            kind_name(self.kind),
            self.address,
            self.gap,
            flag,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Access):
            return NotImplemented
        return (
            self.address == other.address
            and self.kind == other.kind
            and self.gap == other.gap
            and self.wrong_path == other.wrong_path
        )


Trace = List[Access]


def total_instructions(trace: Iterable[Access]) -> int:
    """Number of dynamic instructions a trace represents.

    Each access contributes its gap of non-memory instructions plus
    itself.  Wrong-path accesses are not part of the committed instruction
    stream and contribute nothing.
    """
    total = 0
    for access in trace:
        if not access.wrong_path:
            total += access.gap + 1
    return total


def memory_footprint_blocks(trace: Iterable[Access], line_bytes: int = 64) -> int:
    """Number of distinct cache blocks a trace touches."""
    return len({access.address // line_bytes for access in trace})
