"""Performance benchmark harness (``python -m repro.bench``).

The repo's perf trajectory lives in ``BENCH_<tag>.json`` files at the
repository root, one per measurement session, produced by this package.
Each report carries a schema tag (:data:`repro.bench.report.SCHEMA`),
a machine fingerprint, micro-benchmark timings of the three hot kernels
(cache access, MSHR cost sweep, LIN victim selection) and
macro-benchmark timings of full-trace simulation runs across
representative workloads and policies.

Timings are machine-dependent and therefore only comparable within one
report pair taken on the same host; the *simulation results* embedded
in each macro entry (misses, cycles) are machine-independent and must
be identical across machines — a cheap cross-host bit-identity check.
"""

from repro.bench.macro import MACRO_POLICIES, MACRO_WORKLOADS, run_macro
from repro.bench.micro import run_micro
from repro.bench.report import (
    SCHEMA,
    build_report,
    check_macro_cell,
    find_macro_cell,
    machine_fingerprint,
    validate_report,
)

__all__ = [
    "MACRO_POLICIES",
    "MACRO_WORKLOADS",
    "SCHEMA",
    "build_report",
    "check_macro_cell",
    "find_macro_cell",
    "machine_fingerprint",
    "run_macro",
    "run_micro",
    "validate_report",
]
