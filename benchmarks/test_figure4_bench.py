"""Regeneration benchmark for figure4 of the paper."""

from repro.experiments import figure4


def test_figure4(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(figure4), rounds=1, iterations=1
    )
    assert report.render()
