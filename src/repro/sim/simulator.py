"""The top-level simulator: trace in, :class:`SimResult` out.

The dataflow per access (Figure 3a of the paper):

1. The window model dispatches the access (applying any window-full
   stall caused by earlier long-latency misses).
2. The L1 (I or D) filters it; an L1 miss probes the L2 tag store.
3. An L2 demand miss allocates an MSHR entry and a memory-controller
   request; the Cost Calculation Logic (the MSHR's event-driven
   Algorithm 1 sweep) later reports the miss's mlp-cost, which is
   quantized and written into the L2 tag entry, fed to the Table 1
   delta tracker, and — under SBAR/CBS — applied to any pending PSEL
   update.
4. Loads and instruction fetches report their completion back to the
   window (future accesses may stall on it); stores go to the store
   buffer and only backpressure the window when it is full.

The simulator is deliberately a single readable function per access
rather than a cycle loop; all timing feedback happens through
completion times.
"""

from __future__ import annotations

import warnings
from time import perf_counter
from typing import Callable, List, Optional, Union

from repro import obs
from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement import LRUPolicy, ReplacementPolicy
from repro.cache.replacement.dip import DIPController
from repro.cache.replacement.registry import parse_policy_spec
from repro.config import MachineConfig, baseline_config
from repro.cpu.store_buffer import StoreBuffer
from repro.cpu.window import WindowModel
from repro.memory.controller import MemoryController
from repro.mlp.cost import quantize_cost
from repro.mlp.delta import DeltaTracker
from repro.mlp.mshr import MSHRFile
from repro.sbar.cbs import CBSController
from repro.sbar.sbar import SBARController
from repro.sbar.tournament import TournamentController
from repro.sim.stats import CostDistribution, PhaseSample, SimResult
from repro.trace.record import IFETCH, STORE, Access

#: Things accepted as the L2 replacement specification.
PolicyLike = Union[
    ReplacementPolicy,
    SBARController,
    CBSController,
    DIPController,
    TournamentController,
    str,
]


def build_l2_policy(spec: PolicyLike, config: MachineConfig):
    """Deprecated: resolve a policy spec into (fixed, controller).

    The spec grammar now lives in the policy registry — use
    :func:`repro.cache.replacement.registry.parse_policy_spec`, which
    this shim forwards to (and which also resolves specs registered by
    user code via :func:`~repro.cache.replacement.registry.register_policy`).
    """
    warnings.warn(
        "build_l2_policy is deprecated; use "
        "repro.cache.replacement.registry.parse_policy_spec",
        DeprecationWarning,
        stacklevel=2,
    )
    return parse_policy_spec(spec, config)


class Simulator:
    """One configured machine, reusable for a single :meth:`run`.

    Args:
        config: machine description; defaults to the Table 2 baseline.
        policy: L2 replacement specification (see :func:`build_l2_policy`).
        phase_interval: if set, cut a :class:`PhaseSample` every this
            many instructions (Figure 11 uses 10M on the real machine).
        warmup_instructions: if set, caches/predictors train normally
            but the reported statistics (misses, cost distribution,
            deltas, IPC window) start after this many instructions —
            the warm-up counterpart of the paper's fast-forwarding.
        observer: explicit :class:`repro.obs.Observer` to wire through
            the machine; defaults to :func:`repro.obs.default_observer`
            (None — and therefore zero overhead — unless telemetry is
            enabled in the environment).
    """

    def __init__(
        self,
        config: Optional[MachineConfig] = None,
        policy: PolicyLike = "lru",
        phase_interval: Optional[int] = None,
        prefetcher=None,
        warmup_instructions: int = 0,
        observer: Optional[obs.Observer] = None,
    ) -> None:
        self.config = config or baseline_config()
        fixed, controller = parse_policy_spec(policy, self.config)
        self.controller = controller
        self._policy_label = (
            controller.name if controller is not None else fixed.name
        )
        self.window = WindowModel(
            self.config.processor.issue_width,
            self.config.processor.window_size,
        )
        self.store_buffer = StoreBuffer(self.config.processor.store_buffer_size)
        self.l1d = SetAssociativeCache(
            self.config.l1d, LRUPolicy(), track_compulsory=False, label="l1d"
        )
        self.l1i = SetAssociativeCache(
            self.config.l1i, LRUPolicy(), track_compulsory=False, label="l1i"
        )
        selector = controller.policy_for_set if controller is not None else None
        self.l2 = SetAssociativeCache(
            self.config.l2,
            fixed if fixed is not None else LRUPolicy(),
            policy_selector=selector,
            label="l2",
        )
        self.mshr = MSHRFile(
            self.config.mshr.n_entries, self.config.mshr.n_cost_adders
        )
        self.memory = MemoryController(self.config.memory)
        self._obs = observer if observer is not None else obs.default_observer()
        if self._obs is not None:
            self._wire_observer(self._obs)
        self.delta = DeltaTracker()
        self.cost_distribution = CostDistribution()
        self.phase_interval = phase_interval
        self.phases: List[PhaseSample] = []
        self.demand_misses = 0
        self.compulsory_misses = 0
        #: Optional StridePrefetcher (or anything with observe(block)).
        #: Prefetch fills occupy the MSHR, banks, and bus and install
        #: tags, but are non-demand: excluded from Algorithm 1's N,
        #: from miss statistics, and from PSEL updates.
        self.prefetcher = prefetcher
        self.prefetches_issued = 0
        self.prefetch_hits_suppressed = 0
        if warmup_instructions < 0:
            raise ValueError("warm-up length cannot be negative")
        self.warmup_instructions = warmup_instructions
        self._warm = warmup_instructions == 0
        self._warmup_end_cycle = 0.0
        self._warmup_end_instruction = 0
        self._ran = False

    def _wire_observer(self, observer: obs.Observer) -> None:
        """Install the telemetry sink into every instrumented component."""
        self.l1i.observer = observer
        self.l1d.observer = observer
        self.l2.observer = observer
        self.mshr.observer = observer
        self.memory.observer = observer
        controller = self.controller
        if controller is None:
            return
        if isinstance(controller, SBARController):
            controller.psel.label = "sbar"
            controller.psel.observer = observer
        elif isinstance(controller, CBSController):
            for index, psel in enumerate(controller._psels):
                psel.label = (
                    "cbs" if len(controller._psels) == 1 else "cbs[%d]" % index
                )
                psel.observer = observer
        elif isinstance(controller, DIPController):
            controller.psel.label = "dip"
            controller.psel.observer = observer
        elif isinstance(controller, TournamentController):
            controller.observer = observer

    # -- main loop --------------------------------------------------------

    def run(self, trace) -> SimResult:
        """Simulate ``trace`` (a sequence of :class:`Access`) to completion."""
        if self._ran:
            raise RuntimeError("a Simulator instance runs exactly one trace")
        self._ran = True
        profiler = self._obs.profiler if self._obs is not None else None
        if profiler is None:
            return self._finalize(self._replay(trace))
        # The replay span must close before _finalize folds the
        # profiler into the session totals, or it would be lost.
        replay_start = perf_counter()
        try:
            current_phase = self._replay(trace)
        finally:
            profiler.add("sim.replay", perf_counter() - replay_start)
        return self._finalize(current_phase)

    def _replay(self, trace) -> Optional[PhaseSample]:
        """Drive every access through the machine; returns the open phase."""

        window = self.window
        controller = self.controller
        block_bits = self.config.block_bits
        phase_interval = self.phase_interval
        current_phase: Optional[PhaseSample] = None
        if phase_interval:
            current_phase = PhaseSample(start_instruction=0, start_cycle=0.0)
            self.phases.append(current_phase)

        for access in trace:
            if access.wrong_path:
                # Wrong-path references disturb the caches and memory
                # timing but never the committed instruction stream.
                self._access_hierarchy(
                    access.address >> block_bits,
                    access.kind,
                    window.now,
                    demand=False,
                    phase=None,
                )
                continue

            dispatch = window.advance(access.gap)
            instr_index = window.instructions
            if not self._warm and instr_index >= self.warmup_instructions:
                self._finish_warmup(instr_index, dispatch)
            if controller is not None:
                controller.note_instructions(instr_index)
            if phase_interval and instr_index // phase_interval != (
                current_phase.start_instruction // phase_interval
            ):
                current_phase.end_instruction = instr_index
                current_phase.end_cycle = dispatch
                current_phase = PhaseSample(
                    start_instruction=instr_index, start_cycle=dispatch
                )
                self.phases.append(current_phase)

            completion = self._access_hierarchy(
                access.address >> block_bits,
                access.kind,
                dispatch,
                demand=True,
                phase=current_phase,
            )
            if access.kind == STORE:
                admitted = self.store_buffer.admit(dispatch, completion)
                if admitted > dispatch:
                    window.stall_until(admitted)
            else:
                window.complete_memory_op(completion)

        self.mshr.drain()
        return current_phase

    # -- hierarchy --------------------------------------------------------

    def _access_hierarchy(
        self,
        block: int,
        kind: int,
        when: float,
        demand: bool,
        phase: Optional[PhaseSample],
    ) -> float:
        """Send one access down L1 -> L2 -> memory; return completion time."""
        config = self.config
        # Finalize the cost of every miss serviced before this access so
        # replacement sees up-to-date cost_q values (the hardware writes
        # cost into the tag store at service completion, Section 5).
        self.mshr.advance_to(when)
        l1 = self.l1i if kind == IFETCH else self.l1d
        is_store = kind == STORE
        r1 = l1.access(block, is_write=is_store)
        l1_done = when + l1.geometry.hit_latency
        if r1.hit:
            return l1_done
        if r1.victim_dirty:
            self._l1_writeback(r1.victim_block, when)

        l2 = self.l2
        r2 = l2.access(block)
        pending: Optional[Callable[[int], None]] = None
        if demand and self.controller is not None:
            pending = self.controller.observe_access(r2.set_index, block, r2)

        if r2.hit:
            # A tag hit may still be an in-flight line (hit-under-miss
            # to the same block): the access completes no earlier than
            # the outstanding fill.
            completion = l1_done + config.l2.hit_latency
            in_flight = self.mshr.lookup(block, l1_done)
            if in_flight is not None and in_flight > completion:
                completion = in_flight
            assert pending is None, "controllers defer only on MTD misses"
            return completion

        # L2 miss path.
        if r2.victim_dirty:
            self.memory.write_line(r2.victim_block, l1_done)
        if r2.victim_block is not None:
            # Enforce inclusion: the victim leaves the L1s as well.
            self.l1d.invalidate(r2.victim_block)
            self.l1i.invalidate(r2.victim_block)

        if demand and self._warm:
            self.demand_misses += 1
            if r2.compulsory:
                self.compulsory_misses += 1
            if phase is not None:
                phase.misses += 1

        in_flight = self.mshr.lookup(block, l1_done)
        if in_flight is not None:
            # The line's tag was evicted while its fill was still in
            # flight and is now re-requested: merge with the old fill.
            if pending is not None:
                pending(0)
            return max(in_flight, l1_done + config.l2.hit_latency)

        raw_issue = l1_done + config.l2.hit_latency
        issue = self.mshr.admission_time(raw_issue)
        if issue < self.mshr.sweep_time:
            issue = self.mshr.sweep_time
        completion = self.memory.read_line(block, issue)
        on_cost = None
        if demand:
            on_cost = self._make_cost_sink(
                block, r2.state, pending, phase, record_stats=self._warm
            )
        self.mshr.allocate(block, issue, completion, demand, on_cost)
        if demand and self.prefetcher is not None:
            for candidate in self.prefetcher.observe(block):
                self._prefetch_block(candidate, issue)
        return completion

    def _prefetch_block(self, block: int, when: float) -> None:
        """Issue one non-demand prefetch into the L2."""
        if self.l2.contains(block) or self.mshr.in_flight(block, when):
            self.prefetch_hits_suppressed += 1
            return
        issue = self.mshr.admission_time(when)
        if issue < self.mshr.sweep_time:
            issue = self.mshr.sweep_time
        completion = self.memory.read_line(block, issue)
        self.mshr.allocate(block, issue, completion, is_demand=False)
        result = self.l2.access(block)
        if result.victim_dirty:
            self.memory.write_line(result.victim_block, issue)
        if result.victim_block is not None:
            self.l1d.invalidate(result.victim_block)
            self.l1i.invalidate(result.victim_block)
        self.prefetches_issued += 1

    def _make_cost_sink(self, block, state, pending, phase, record_stats=True):
        """Callback run when the MSHR sweep services this miss.

        ``record_stats=False`` (warm-up misses) still writes cost_q to
        the tag and drives PSEL — the mechanism must behave identically
        — but keeps the miss out of the reported distributions.
        """
        distribution = self.cost_distribution
        delta = self.delta
        observer = self._obs

        def on_cost(cost: float) -> None:
            cost_q = quantize_cost(cost)
            state.cost_q = cost_q
            if observer is not None:
                observer.cost_quantized(block, cost, cost_q)
            if record_stats:
                distribution.record(cost)
                delta.record(block, cost)
                if phase is not None:
                    phase.cost_q_sum += cost_q
                    phase.cost_count += 1
            if pending is not None:
                pending(cost_q)

        return on_cost

    def _finish_warmup(self, instr_index: int, cycle: float) -> None:
        """Reset reported statistics at the warm-up boundary."""
        self._warm = True
        self._warmup_end_instruction = instr_index
        self._warmup_end_cycle = cycle
        window = self.window
        self._warmup_stall_events = window.stall_events
        self._warmup_long_stalls = window.long_stalls
        self._warmup_stall_cycles = window.stall_cycles
        self._warmup_l2_accesses = self.l2.accesses
        self._warmup_l2_misses = self.l2.misses

    def _l1_writeback(self, block: int, when: float) -> None:
        """An L1 victim writes back into the L2 without recency update."""
        resident = self.l2.set_state(self.l2.set_index(block)).get(block)
        if resident is not None:
            resident.dirty = True
        else:
            # Not in L2 (inclusion was broken by an L2 eviction racing
            # the dirty line): write through to memory, timing only.
            self.memory.write_line(block, when)

    # -- results ----------------------------------------------------------

    def _finalize(self, current_phase: Optional[PhaseSample]) -> SimResult:
        window = self.window
        cycles = window.finish()
        if current_phase is not None:
            current_phase.end_instruction = window.instructions
            current_phase.end_cycle = cycles
            if current_phase.instructions == 0 and len(self.phases) > 1:
                # The final access opened a zero-length phase; fold its
                # activity into the previous sample instead of losing it.
                tail = self.phases.pop()
                previous = self.phases[-1]
                previous.misses += tail.misses
                previous.cost_q_sum += tail.cost_q_sum
                previous.cost_count += tail.cost_count
        psel_final = None
        if isinstance(self.controller, SBARController):
            psel_final = self.controller.psel.value
        instructions = window.instructions - self._warmup_end_instruction
        cycles -= self._warmup_end_cycle
        stall_events = window.stall_events - getattr(
            self, "_warmup_stall_events", 0
        )
        long_stalls = window.long_stalls - getattr(
            self, "_warmup_long_stalls", 0
        )
        stall_cycles = window.stall_cycles - getattr(
            self, "_warmup_stall_cycles", 0.0
        )
        result = SimResult(
            policy_name=self._policy_label,
            instructions=instructions,
            cycles=cycles,
            l2_accesses=self.l2.accesses
            - getattr(self, "_warmup_l2_accesses", 0),
            l2_misses=self.l2.misses - getattr(self, "_warmup_l2_misses", 0),
            demand_misses=self.demand_misses,
            compulsory_misses=self.compulsory_misses,
            stall_events=stall_events,
            stall_cycles=stall_cycles,
            long_stalls=long_stalls,
            cost_distribution=self.cost_distribution,
            delta_summary=self.delta.summary(),
            phases=self.phases,
            l1d_accesses=self.l1d.accesses,
            l1d_misses=self.l1d.misses,
            mshr_merges=self.mshr.merges,
            mshr_full_stalls=self.mshr.full_stalls,
            bank_conflicts=self.memory.banks.conflicts,
            bus_contended=self.memory.bus.contended,
            writebacks=self.l2.writebacks,
            psel_final=psel_final,
        )
        if self._obs is not None:
            result.metrics = self._obs.finalize_run(self, result)
        return result
