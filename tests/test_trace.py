"""Tests for trace records, synthetic primitives, and the Figure 1 loop."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.trace.figure1 import (
    FIGURE1_BLOCKS,
    FIGURE1_PATTERN,
    block_names,
    figure1_trace,
)
from repro.trace.record import (
    IFETCH,
    LOAD,
    STORE,
    Access,
    kind_name,
    memory_footprint_blocks,
    total_instructions,
    validate_access_fields,
)
from repro.trace.packed import PackedTrace, pack_trace
from repro.trace.synthetic import (
    BURST_GAP,
    ISOLATING_GAP,
    TraceBuilder,
    interleave,
    pointer_chase,
    random_working_set,
    repeat_trace,
    strided_stream,
)


class TestAccess:
    def test_fields(self):
        access = Access(0x1000, STORE, gap=7)
        assert access.address == 0x1000
        assert access.kind == STORE
        assert access.gap == 7
        assert not access.wrong_path

    def test_rejects_negative_gap(self):
        # Validation lives at the trace entry points now, not in the
        # Access constructor (bulk synthesis pays it once per record
        # otherwise).
        with pytest.raises(ValueError):
            TraceBuilder().access(0, LOAD, gap=-1)
        with pytest.raises(ValueError):
            validate_access_fields(0, LOAD, -1)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            TraceBuilder().access(0, kind=99)
        with pytest.raises(ValueError):
            validate_access_fields(0, 99, 0)

    def test_rejects_negative_address(self):
        with pytest.raises(ValueError):
            TraceBuilder().access(-1)
        with pytest.raises(ValueError):
            validate_access_fields(-64, LOAD, 0)

    def test_equality(self):
        assert Access(64, LOAD, 3) == Access(64, LOAD, 3)
        assert Access(64, LOAD, 3) != Access(64, STORE, 3)

    def test_kind_names(self):
        assert kind_name(LOAD) == "load"
        assert kind_name(STORE) == "store"
        assert kind_name(IFETCH) == "ifetch"

    def test_repr_mentions_wrong_path(self):
        assert "wrong-path" in repr(Access(0, LOAD, 0, wrong_path=True))


class TestTraceHelpers:
    def test_total_instructions_counts_gaps_and_accesses(self):
        trace = [Access(0, LOAD, 10), Access(64, LOAD, 5)]
        assert total_instructions(trace) == 17

    def test_total_instructions_skips_wrong_path(self):
        trace = [Access(0, LOAD, 10), Access(64, LOAD, 5, wrong_path=True)]
        assert total_instructions(trace) == 11

    def test_memory_footprint(self):
        trace = [Access(0), Access(32), Access(64), Access(128)]
        assert memory_footprint_blocks(trace) == 3  # 0,32 share a block


class TestTraceBuilder:
    def test_access_scales_block_to_address(self):
        trace = TraceBuilder().access(5).build()
        assert trace[0].address == 5 * 64

    def test_burst_gaps(self):
        trace = TraceBuilder().burst([1, 2, 3], lead_gap=100).build()
        assert [a.gap for a in trace] == [100, BURST_GAP, BURST_GAP]

    def test_isolated_uses_isolating_gap(self):
        trace = TraceBuilder().isolated(9).build()
        assert trace[0].gap == ISOLATING_GAP
        assert ISOLATING_GAP > 128  # larger than the window

    def test_quiet_folds_into_next_access(self):
        trace = TraceBuilder().quiet(500).access(1, gap=4).build()
        assert trace[0].gap == 504

    def test_quiet_rejects_negative(self):
        with pytest.raises(ValueError):
            TraceBuilder().quiet(-1)

    def test_build_resets(self):
        builder = TraceBuilder()
        builder.access(1)
        assert len(builder.build()) == 1
        assert builder.build() == []


class TestGenerators:
    def test_strided_stream_addresses(self):
        trace = strided_stream(10, 4, burst=2)
        blocks = [a.address // 64 for a in trace]
        assert blocks == [10, 11, 12, 13]

    def test_strided_stream_burst_boundaries(self):
        trace = strided_stream(0, 6, burst=3, lead_gap=200, intra_gap=1)
        assert [a.gap for a in trace] == [200, 1, 1, 200, 1, 1]

    def test_pointer_chase_is_isolated(self):
        trace = pointer_chase([1, 2, 3])
        assert all(a.gap == ISOLATING_GAP for a in trace)

    def test_random_working_set_stays_in_pool(self):
        rng = random.Random(1)
        pool = [3, 5, 7]
        trace = random_working_set(rng, pool, 50)
        assert {a.address // 64 for a in trace} <= set(pool)

    def test_random_working_set_store_fraction(self):
        rng = random.Random(1)
        trace = random_working_set(rng, [1], 500, store_fraction=0.5)
        stores = sum(1 for a in trace if a.kind == STORE)
        assert 150 < stores < 350

    def test_interleave_preserves_order(self):
        rng = random.Random(2)
        left = [Access(i * 64) for i in range(10)]
        right = [Access((100 + i) * 64) for i in range(10)]
        merged = interleave(rng, left, right)
        assert len(merged) == 20
        left_order = [a for a in merged if a.address < 100 * 64]
        assert left_order == left

    def test_repeat_trace(self):
        trace = [Access(0), Access(64)]
        assert len(repeat_trace(trace, 3)) == 6
        assert repeat_trace(trace, 0) == []


def _packable_accesses():
    """Arbitrary valid records, including wrong-path bits and big gaps."""
    return st.lists(
        st.builds(
            Access,
            st.integers(min_value=0, max_value=2**62),
            st.sampled_from([LOAD, STORE, IFETCH]),
            st.integers(min_value=0, max_value=10**9),
            st.booleans(),
        ),
        max_size=150,
    )


class TestPackedTrace:
    @settings(max_examples=120, deadline=None)
    @given(accesses=_packable_accesses())
    def test_roundtrip_is_exact(self, accesses):
        packed = PackedTrace.from_accesses(accesses)
        assert len(packed) == len(accesses)
        # Exact record-for-record round trip: addresses, kinds, gaps,
        # AND wrong-path bits (Access.__eq__ compares all four).
        assert packed.to_accesses() == accesses
        assert packed.wrong_path_count == sum(
            1 for a in accesses if a.wrong_path
        )
        for index, access in enumerate(accesses):
            assert packed[index] == access
            assert packed.wrong_path(index) == access.wrong_path

    @settings(max_examples=60, deadline=None)
    @given(accesses=_packable_accesses())
    def test_iter_tuples_matches_records(self, accesses):
        packed = PackedTrace.from_accesses(accesses)
        tuples = list(packed.iter_tuples())
        assert len(tuples) == len(accesses)
        for (address, kind, gap, wrong), access in zip(tuples, accesses):
            assert (address, kind, gap, bool(wrong)) == (
                access.address, access.kind, access.gap, access.wrong_path
            )

    @settings(max_examples=60, deadline=None)
    @given(accesses=_packable_accesses())
    def test_digest_depends_only_on_content(self, accesses):
        first = PackedTrace.from_accesses(accesses)
        second = PackedTrace.from_accesses(list(accesses))
        assert first == second
        assert first.content_digest() == second.content_digest()
        assert first.total_instructions() == sum(
            a.gap + 1 for a in accesses if not a.wrong_path
        )

    def test_digest_sees_wrong_path_bits(self):
        plain = PackedTrace.from_accesses([Access(64, LOAD, 3)])
        flagged = PackedTrace.from_accesses(
            [Access(64, LOAD, 3, wrong_path=True)]
        )
        assert plain != flagged
        assert plain.content_digest() != flagged.content_digest()

    def test_negative_indexing_and_bounds(self):
        packed = PackedTrace.from_accesses([Access(0), Access(64)])
        assert packed[-1] == Access(64)
        with pytest.raises(IndexError):
            packed[2]
        with pytest.raises(TypeError):
            packed["0"]

    def test_bulk_validation_rejects_bad_columns(self):
        with pytest.raises(ValueError):
            PackedTrace.from_accesses([Access(-64)])
        with pytest.raises(ValueError):
            PackedTrace.from_accesses([Access(0, LOAD, -1)])
        with pytest.raises(ValueError):
            PackedTrace.from_accesses([Access(0, 17)])

    def test_pack_trace_is_idempotent(self):
        packed = pack_trace([Access(0), Access(64)])
        assert pack_trace(packed) is packed

    def test_empty_trace(self):
        packed = PackedTrace.from_accesses([])
        assert len(packed) == 0
        assert packed.to_accesses() == []
        assert packed.total_instructions() == 0
        packed.validate()  # empty columns are trivially valid


class TestWrongPathIndexing:
    """Regressions for the wrong-path bitset indexing fixes.

    ``wrong_path(-1)`` used to wrap through the *bitset* (8x shorter
    than the trace): ``bits[-1 >> 3]`` read the last byte and
    ``>> (-1 & 7)`` its top bit, i.e. the flag of whichever record
    happens to sit at position ``8 * len(bits) - 1`` — not the last
    record.  ``trace[True]`` used to read record 1 because ``bool`` is
    an ``int`` subclass.  Both are rejected now.
    """

    @staticmethod
    def _trace(n=12, flagged=(3,)):
        return PackedTrace.from_accesses([
            Access(64 * i, LOAD, 0, wrong_path=(i in flagged))
            for i in range(n)
        ])

    def test_wrong_path_rejects_negative_index(self):
        # 12 records / flag on record 3: the pre-fix wrap read bit 7 of
        # the last bitset byte (record 15's slot) and returned False
        # without complaint; record -1 must be an error, not a guess.
        packed = self._trace()
        with pytest.raises(IndexError):
            packed.wrong_path(-1)
        with pytest.raises(IndexError):
            packed.wrong_path(-12)

    def test_wrong_path_rejects_bool_and_non_int(self):
        packed = self._trace()
        with pytest.raises(TypeError):
            packed.wrong_path(True)
        with pytest.raises(TypeError):
            packed.wrong_path(3.0)

    def test_getitem_rejects_bool(self):
        # trace[True] is a likely logic bug (e.g. trace[flag]); it must
        # not silently read record 1.
        packed = self._trace()
        with pytest.raises(TypeError):
            packed[True]
        with pytest.raises(TypeError):
            packed[False]

    def test_getitem_negative_wrap_reads_correct_wrong_path_flag(self):
        # The last record's flag lives in the *second* bitset byte; a
        # bitset-relative wrap would look at the wrong byte entirely.
        packed = self._trace(n=12, flagged=(11,))
        assert packed[-1].wrong_path is True
        assert packed[-2].wrong_path is False
        assert packed[11] == packed[-1]

    def test_wrong_path_in_bounds_still_works(self):
        packed = self._trace(n=12, flagged=(0, 3, 9))
        flags = [packed.wrong_path(i) for i in range(12)]
        assert [i for i, f in enumerate(flags) if f] == [0, 3, 9]


class TestFromColumns:
    """The shared validating constructor every importer must use."""

    @staticmethod
    def _columns(n=5):
        from array import array
        return (
            array("q", [64 * i for i in range(n)]),
            array("b", [LOAD] * n),
            array("q", [0] * n),
        )

    def test_round_trips_valid_columns(self):
        addresses, kinds, gaps = self._columns()
        packed = PackedTrace.from_columns(addresses, kinds, gaps)
        assert len(packed) == 5
        assert packed.wrong_path_count == 0
        assert packed.to_accesses() == [
            Access(64 * i, LOAD, 0) for i in range(5)
        ]

    def test_rejects_n_wrong_without_bitset(self):
        addresses, kinds, gaps = self._columns()
        with pytest.raises(ValueError, match="n_wrong"):
            PackedTrace.from_columns(addresses, kinds, gaps, None, 1)

    def test_rejects_n_wrong_bitset_disagreement(self):
        addresses, kinds, gaps = self._columns()
        with pytest.raises(ValueError, match="disagrees"):
            PackedTrace.from_columns(
                addresses, kinds, gaps, bytearray([0b1]), 2
            )

    def test_rejects_bits_past_the_last_record(self):
        # 5 records: bits 5..7 of the single bitset byte must be zero
        # (the content digest hashes the raw bitset bytes).
        addresses, kinds, gaps = self._columns()
        with pytest.raises(ValueError, match="past the last record"):
            PackedTrace.from_columns(
                addresses, kinds, gaps, bytearray([0b100000]), 1
            )

    def test_rejects_invalid_column_values(self):
        from array import array
        with pytest.raises(ValueError):
            PackedTrace.from_columns(
                array("q", [-64]), array("b", [LOAD]), array("q", [0])
            )
        with pytest.raises(ValueError):
            PackedTrace.from_columns(
                array("q", [64]), array("b", [99]), array("q", [0])
            )
        with pytest.raises(ValueError):
            PackedTrace.from_columns(
                array("q", [64]), array("b", [LOAD]), array("q", [-1])
            )

    def test_rejects_mismatched_column_lengths(self):
        from array import array
        with pytest.raises(ValueError):
            PackedTrace.from_columns(
                array("q", [64, 128]), array("b", [LOAD]), array("q", [0])
            )


class TestSliceConcatenateProperties:
    """Property tests over the aligned-bytes fast paths.

    ``slice`` splices the wrong-path bitset at C speed when the start
    is byte-aligned and ``concatenate`` when the destination base is;
    both must agree bit-for-bit (including the trailing-zero invariant
    the content digest depends on) with the per-record slow path and
    with packing the equivalent ``Access`` list from scratch.
    """

    @settings(max_examples=120, deadline=None)
    @given(accesses=_packable_accesses(), data=st.data())
    def test_slice_matches_list_slicing(self, accesses, data):
        packed = PackedTrace.from_accesses(accesses)
        n = len(accesses)
        start = data.draw(st.integers(min_value=-3, max_value=n + 3))
        stop = data.draw(st.integers(min_value=-3, max_value=n + 3))
        sliced = packed.slice(start, stop)
        clamped_start = max(0, min(n, start))
        clamped_stop = max(clamped_start, min(n, stop))
        expected = accesses[clamped_start:clamped_stop]
        assert sliced.to_accesses() == expected
        assert sliced.wrong_path_count == sum(
            1 for a in expected if a.wrong_path
        )
        # Digest equality is the strong form: it sees the raw bitset
        # bytes, so a stray bit past the last record would show here
        # even though record-level reads mask it.
        assert (sliced.content_digest()
                == PackedTrace.from_accesses(expected).content_digest())

    @settings(max_examples=80, deadline=None)
    @given(chunks=st.lists(_packable_accesses(), max_size=4))
    def test_concatenate_matches_list_concat(self, chunks):
        traces = [PackedTrace.from_accesses(chunk) for chunk in chunks]
        joined = PackedTrace.concatenate(traces)
        expected = [access for chunk in chunks for access in chunk]
        assert joined.to_accesses() == expected
        assert joined.wrong_path_count == sum(
            1 for a in expected if a.wrong_path
        )
        assert (joined.content_digest()
                == PackedTrace.from_accesses(expected).content_digest())

    def test_aligned_slice_masks_trailing_source_bits(self):
        # Deterministic pre-fix failure: byte-aligned start, unaligned
        # count, and a wrong-path bit just past ``stop`` — the spliced
        # last byte used to keep that bit, corrupting the digest.
        accesses = [
            Access(64 * i, LOAD, 0, wrong_path=(i == 11))
            for i in range(16)
        ]
        packed = PackedTrace.from_accesses(accesses)
        sliced = packed.slice(8, 11)  # record 11's flag is in-byte
        assert sliced.wrong_path_count == 0
        assert (sliced.content_digest()
                == PackedTrace.from_accesses(accesses[8:11]).content_digest())

    def test_unaligned_concat_after_aligned_splice(self):
        # An aligned first chunk followed by unaligned ORing chunks.
        first = [Access(64 * i, LOAD, 0, wrong_path=(i % 5 == 0))
                 for i in range(11)]
        second = [Access(64 * i, STORE, 1, wrong_path=(i % 3 == 0))
                  for i in range(7)]
        joined = PackedTrace.concatenate([
            PackedTrace.from_accesses(first),
            PackedTrace.from_accesses(second),
        ])
        expected = PackedTrace.from_accesses(first + second)
        assert joined == expected
        assert joined.content_digest() == expected.content_digest()


class TestTraceIoRoundTrip:
    """The npz loader must preserve content digests bit-for-bit."""

    def test_npz_roundtrip_preserves_content_digest(self, tmp_path):
        from repro.trace.trace_io import load_packed_trace, save_trace
        accesses = [
            Access(64 * i, [LOAD, STORE, IFETCH][i % 3], gap=i % 9,
                   wrong_path=(i % 7 == 0))
            for i in range(100)
        ]
        packed = PackedTrace.from_accesses(accesses)
        path = str(tmp_path / "trace.npz")
        save_trace(path, packed)
        loaded = load_packed_trace(path)
        assert loaded == packed
        assert loaded.wrong_path_count == packed.wrong_path_count
        assert loaded.content_digest() == packed.content_digest()

    def test_champsim_fixture_digest_survives_npz_roundtrip(self, tmp_path):
        # The committed ChampSim fixture through the full pipeline:
        # text import -> npz save -> bulk frombytes load must keep the
        # content digest (the persistent store and bench --check key
        # on it).
        import pathlib
        from repro.trace.trace_io import (
            load_packed_trace, open_trace, save_trace,
        )
        fixture = str(
            pathlib.Path(__file__).parent / "fixtures" / "mix4k.champsim.gz"
        )
        imported = open_trace(fixture)
        assert len(imported) > 0
        path = str(tmp_path / "mix4k.npz")
        save_trace(path, imported)
        loaded = load_packed_trace(path)
        assert loaded == imported
        assert loaded.content_digest() == imported.content_digest()


class TestFigure1:
    def test_pattern_matches_paper(self):
        assert FIGURE1_PATTERN == (
            "P1", "P2", "P3", "P4", "P4", "P3", "P2", "P1", "S1", "S2", "S3",
        )

    def test_trace_length(self):
        assert len(figure1_trace(3)) == 33

    def test_seven_distinct_blocks(self):
        assert memory_footprint_blocks(figure1_trace(2)) == 7

    def test_segment_boundaries_are_isolating(self):
        trace = figure1_trace(1)
        gaps = [a.gap for a in trace]
        # A, B, C, D, E points carry the big gap.
        big = [i for i, gap in enumerate(gaps) if gap == ISOLATING_GAP]
        assert big == [0, 4, 8, 9, 10]

    def test_rejects_zero_iterations(self):
        with pytest.raises(ValueError):
            figure1_trace(0)

    def test_block_names_roundtrip(self):
        names = block_names()
        assert names[FIGURE1_BLOCKS["S2"] * 64] == "S2"
