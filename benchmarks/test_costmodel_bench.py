"""Regeneration benchmark for the first-order cost-model validation."""

from repro.experiments import cost_validation


def test_costmodel(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(cost_validation), rounds=1, iterations=1
    )
    assert "CPI (model)" in report.render()
