"""Table 3: benchmark summary under the baseline policy.

The paper reports, per benchmark, the number of L2 misses and the
percentage of compulsory misses; only benchmarks with < 50 % compulsory
misses are studied (replacement cannot help compulsory misses).
Absolute miss counts differ from the paper (250M-instruction SimPoint
slices vs our surrogate traces); the compulsory percentages and the
relative ordering are the comparable shape.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import Report, resolve_benchmarks
from repro.sim.runner import run_policy
from repro.workloads import PAPER_TABLE3

PREWARM_POLICIES = ("lru",)


def run(
    scale: Optional[float] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Report:
    report = Report("table3", "Table 3: benchmark summary (baseline LRU)")
    rows = []
    for name in resolve_benchmarks(benchmarks):
        result = run_policy(name, "lru", scale=scale)
        paper = PAPER_TABLE3.get(name, ("-", None, None))
        rows.append(
            (
                name,
                paper[0],
                result.instructions,
                result.demand_misses,
                "%dK" % paper[1] if paper[1] else "-",
                "%.1f%%" % (100.0 * result.compulsory_fraction),
                "%.1f%%" % paper[2] if paper[2] is not None else "-",
                "%.2f" % result.mpki,
            )
        )
    report.add_table(
        [
            "benchmark", "type", "instructions", "L2 misses",
            "paper misses", "compulsory", "paper", "MPKI",
        ],
        rows,
    )
    report.add_note(
        "Ordering is preserved (streaming benchmarks compulsory-heavy,\n"
        "reuse-heavy ones compulsory-light).  The LIN-regression\n"
        "surrogates (bzip2/parser/mgrid) exceed the paper's percentages\n"
        "because their baselines hit almost everywhere, leaving cold\n"
        "blocks as most of the remaining misses."
    )
    return report
