"""Tests for the ``repro.bench`` harness (smoke-sized runs only)."""

import json

import pytest

from repro.bench import (
    MACRO_POLICIES,
    MACRO_WORKLOADS,
    SCHEMA,
    build_report,
    machine_fingerprint,
    run_macro,
    run_micro,
    validate_report,
)
from repro.bench.__main__ import main as bench_main


@pytest.fixture(scope="module")
def quick_report():
    micro = run_micro(quick=True)
    macro = run_macro(quick=True, workloads=("mcf",), policies=("lru",))
    return build_report(micro, macro, tag="test", created_unix=0)


class TestMicro:
    def test_quick_run_shape(self):
        micro = run_micro(quick=True)
        assert [e["name"] for e in micro] == [
            "cache_access", "mshr_sweep", "lin_victim",
        ]
        for entry in micro:
            assert entry["ops"] > 0
            assert entry["seconds"] > 0
            assert entry["ops_per_sec"] == pytest.approx(
                entry["ops"] / entry["seconds"]
            )


class TestMacro:
    def test_quick_run_embeds_simulation_results(self):
        entries = run_macro(quick=True, workloads=("mcf",),
                            policies=("lru", "lin(4)"))
        assert [(e["workload"], e["policy"]) for e in entries] == [
            ("mcf", "lru"), ("mcf", "lin(4)"),
        ]
        for entry in entries:
            assert entry["accesses"] > 0
            assert entry["result"]["l2_misses"] > 0
            assert entry["result"]["cycles"] > 0
            assert entry["result"]["demand_misses"] > 0

    def test_default_matrix_names_are_valid(self):
        from repro.workloads.spec2000 import BENCHMARKS
        assert set(MACRO_WORKLOADS) <= set(BENCHMARKS)
        assert "lru" in MACRO_POLICIES


class TestReport:
    def test_build_and_validate(self, quick_report):
        validate_report(quick_report)  # must not raise
        assert quick_report["schema"] == SCHEMA
        assert quick_report["tag"] == "test"
        assert quick_report["created_unix"] == 0
        # The report must survive a JSON round trip unchanged.
        assert json.loads(json.dumps(quick_report)) == quick_report

    def test_fingerprint_fields(self):
        fingerprint = machine_fingerprint()
        for key in ("platform", "machine", "python", "cpus"):
            assert key in fingerprint

    @pytest.mark.parametrize("mutate", [
        lambda r: r.pop("schema"),
        lambda r: r.__setitem__("schema", "bogus/v0"),
        lambda r: r["micro"][0].pop("ops_per_sec"),
        lambda r: r["micro"][0].__setitem__("ops", True),
        lambda r: r["macro"][0].pop("result"),
        lambda r: r["macro"][0]["result"].pop("l2_misses"),
        lambda r: r.__setitem__("macro", "not-a-list"),
    ])
    def test_validate_rejects_malformed(self, quick_report, mutate):
        broken = json.loads(json.dumps(quick_report))
        mutate(broken)
        with pytest.raises(ValueError):
            validate_report(broken)


class TestCli:
    def test_quick_cli_writes_valid_report(self, tmp_path, capsys):
        out = tmp_path / "BENCH_ci.json"
        assert bench_main(["--quick", "--tag", "ci", "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        validate_report(report)
        assert report["tag"] == "ci"
        assert "accesses/s" in capsys.readouterr().out
