"""Trace persistence: one sniffing loader, npz save, thin wrappers.

Surrogate traces are deterministic, but saving them is useful for
sharing exact inputs across machines, for diffing generator versions,
and for feeding externally captured traces into the simulator.  The
native format is four parallel numpy arrays (address, kind, gap,
wrong_path) plus a format version, in a compressed ``.npz``.

Loading goes through one front door: :func:`open_trace` sniffs the
file's *content* — zip magic means the packed npz record format;
anything else routes to the streaming importers of
:mod:`repro.trace.importers` (ChampSim binary records vs
ChampSim-style vs valgrind-lackey text lines, also sniffed) — and
always returns a
:class:`~repro.trace.packed.PackedTrace`.  The historical
:func:`load_trace` / :func:`load_packed_trace` remain as thin wrappers
over it.
"""

from __future__ import annotations

import sys
from array import array

import numpy as np

from repro.trace.packed import PackedTrace
from repro.trace.record import Trace

#: Bump when the on-disk npz layout changes.
FORMAT_VERSION = 1

#: Zip local-file-header magic: every np.savez archive starts with it.
_ZIP_MAGIC = b"PK"


def save_trace(path: str, trace: Trace) -> None:
    """Write a trace to ``path`` (numpy .npz, compressed).

    Accepts any iterable of ``Access`` records, including a
    :class:`~repro.trace.packed.PackedTrace`.
    """
    addresses = np.fromiter(
        (access.address for access in trace), dtype=np.int64, count=len(trace)
    )
    kinds = np.fromiter(
        (access.kind for access in trace), dtype=np.int8, count=len(trace)
    )
    gaps = np.fromiter(
        (access.gap for access in trace), dtype=np.int32, count=len(trace)
    )
    wrong = np.fromiter(
        (access.wrong_path for access in trace), dtype=bool, count=len(trace)
    )
    np.savez_compressed(
        path,
        version=np.int32(FORMAT_VERSION),
        address=addresses,
        kind=kinds,
        gap=gaps,
        wrong_path=wrong,
    )


def _load_columns(path: str):
    """Read and version-check the four parallel columns of a trace file."""
    with np.load(path) as data:
        version = int(data["version"])
        if version != FORMAT_VERSION:
            raise ValueError(
                "trace file %s has format version %d; this build reads %d"
                % (path, version, FORMAT_VERSION)
            )
        return data["address"], data["kind"], data["gap"], data["wrong_path"]


def _i64_column(col: np.ndarray) -> array:
    """A numpy integer column as a native ``array("q")``, bulk-copied.

    The old ``.astype(...).tolist()`` round-trip materialized one boxed
    Python int per record on every cold trace load; ``frombytes`` over
    the little-endian serialization is a straight buffer copy.
    """
    column = array("q")
    column.frombytes(col.astype("<i8", copy=False).tobytes())
    if sys.byteorder == "big":
        column.byteswap()
    return column


def _load_packed_npz(path: str) -> PackedTrace:
    """The native npz record format, columns straight into a
    :class:`PackedTrace` (no ``Access`` objects materialized)."""
    addresses, kinds, gaps, wrong = _load_columns(path)
    n_wrong = int(np.count_nonzero(wrong))
    wrong_bits = None
    if n_wrong:
        # packbits(bitorder="little") is exactly the trace's LSB-first
        # bitset layout, trailing bits zero-padded.
        wrong_bits = bytearray(
            np.packbits(wrong.astype(bool), bitorder="little").tobytes()
        )
    kind_column = array("b")
    kind_column.frombytes(kinds.astype(np.int8, copy=False).tobytes())
    return PackedTrace.from_columns(
        _i64_column(addresses),
        kind_column,
        _i64_column(gaps),
        wrong_bits,
        n_wrong,
    )


def open_trace(path: str) -> PackedTrace:
    """Load any supported trace file as a :class:`PackedTrace`.

    Format detection is by content, never by extension:

    * zip magic (``PK``) — the native :func:`save_trace` npz layout;
    * NUL bytes in the (decompressed) head — ChampSim's binary
      64-byte ``input_instr`` records;
    * anything else — a text trace, possibly gzip/xz-compressed
      (magic-sniffed), in ChampSim-style or valgrind-lackey line
      format (first-lines-sniffed).

    Files come from outside the package, so every path re-validates
    the columns in bulk before returning.
    """
    with open(path, "rb") as handle:
        magic = handle.read(2)
    if magic == _ZIP_MAGIC:
        return _load_packed_npz(path)
    from repro.trace import importers

    if importers.sniff_binary_champsim(path):
        return importers.load_champsim_binary(path)
    if importers.sniff_text_format(path) == "lackey":
        return importers.load_lackey(path)
    return importers.load_champsim(path)


def load_trace(path: str) -> Trace:
    """Read a trace file as a list of ``Access`` records (thin wrapper
    over :func:`open_trace`)."""
    return open_trace(path).to_accesses()


def load_packed_trace(path: str) -> PackedTrace:
    """Read a trace file as a :class:`PackedTrace` (thin wrapper over
    :func:`open_trace`)."""
    return open_trace(path)
