"""First-order CPI model (after Karkhadis & Smith, cited in Section 2).

The paper's premise is that mlp-cost *is* the per-miss stall
attribution: "the number of cycles for which a miss stalls the
processor can be approximated by the number of cycles that the miss
spends waiting to get serviced.  For parallel misses, the stall cycles
can be divided equally among all concurrent misses" (Section 3).

If that holds, a run's cycle count decomposes as

    cycles  ~=  instructions / width  +  sum of mlp-costs

— the ideal-pipeline time plus the memory-stall time, where the stall
time is exactly what Algorithm 1 integrated.  :func:`predict_cycles`
computes the decomposition from a :class:`SimResult`;
``python -m repro.experiments costmodel`` validates it against the
measured cycle counts across the suite (it lands within a few percent,
which is the quantitative justification for using mlp-cost as the
replacement metric).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sim.stats import SimResult


@dataclass(frozen=True)
class CPIBreakdown:
    """Decomposition of one run's cycles into compute and stall parts."""

    instructions: int
    measured_cycles: float
    compute_cycles: float
    stall_cycles_from_costs: float

    @property
    def predicted_cycles(self) -> float:
        return self.compute_cycles + self.stall_cycles_from_costs

    @property
    def prediction_error(self) -> float:
        """Relative error of the first-order model vs the simulation."""
        if self.measured_cycles <= 0:
            return 0.0
        return (
            self.predicted_cycles - self.measured_cycles
        ) / self.measured_cycles

    @property
    def measured_cpi(self) -> float:
        if not self.instructions:
            return 0.0
        return self.measured_cycles / self.instructions

    @property
    def predicted_cpi(self) -> float:
        if not self.instructions:
            return 0.0
        return self.predicted_cycles / self.instructions

    @property
    def memory_stall_fraction(self) -> float:
        """Share of predicted time spent in memory stalls."""
        if self.predicted_cycles <= 0:
            return 0.0
        return self.stall_cycles_from_costs / self.predicted_cycles


def predict_cycles(result: SimResult, issue_width: int = 8) -> CPIBreakdown:
    """Apply the first-order model to a finished simulation.

    ``sum of mlp-costs`` is read from the run's cost distribution
    (Algorithm 1 attributed every demand-miss waiting cycle to exactly
    one miss, so the sum is the total cycles with >= 1 outstanding
    demand miss).
    """
    if issue_width < 1:
        raise ValueError("issue width must be positive")
    compute = result.instructions / issue_width
    stalls = result.cost_distribution.cost_sum
    return CPIBreakdown(
        instructions=result.instructions,
        measured_cycles=result.cycles,
        compute_cycles=compute,
        stall_cycles_from_costs=stalls,
    )
