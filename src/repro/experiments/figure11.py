"""Figure 11: the ammp case study — LRU vs LIN vs SBAR over time.

The paper samples statistics every 10M retired instructions and plots
(a) the average cost_q per miss, (b) misses per 1000 instructions, and
(c) IPC, showing ammp's two alternating phases: one where LIN wins and
one where LRU wins, with SBAR tracking the better policy in each.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.common import Report
from repro.sim.runner import trace_scale
from repro.sim.simulator import Simulator
from repro.workloads import build_workload, experiment_config

#: Sampling interval in retired instructions (the paper uses 10M on
#: 250M-instruction runs; scaled to our surrogate length).
SAMPLE_INTERVAL = 600_000

POLICIES = ("lru", "lin(4)", "sbar")


def run(scale: Optional[float] = None, benchmarks=None) -> Report:
    if scale is None:
        scale = trace_scale()
    report = Report(
        "figure11", "Figure 11: ammp over time under LRU, LIN, and SBAR"
    )
    results = {}
    for policy in POLICIES:
        simulator = Simulator(
            experiment_config(), policy, phase_interval=SAMPLE_INTERVAL
        )
        results[policy] = simulator.run(build_workload("ammp", scale=scale))

    n_samples = min(len(results[p].phases) for p in POLICIES)
    rows_ipc = []
    rows_miss = []
    rows_cost = []
    for index in range(n_samples):
        samples = [results[p].phases[index] for p in POLICIES]
        instr = samples[0].end_instruction // 1_000_000
        rows_ipc.append(
            ["%dM" % instr] + ["%.2f" % s.ipc for s in samples]
        )
        rows_miss.append(
            ["%dM" % instr] + ["%.2f" % s.misses_per_1000 for s in samples]
        )
        rows_cost.append(
            ["%dM" % instr] + ["%.2f" % s.avg_cost_q for s in samples]
        )
    headers = ["instructions"] + list(POLICIES)
    report.add_note("(a) average cost_q per miss:")
    report.add_table(headers, rows_cost)
    report.add_note("(b) misses per 1000 instructions:")
    report.add_table(headers, rows_miss)
    report.add_note("(c) IPC:")
    report.add_table(headers, rows_ipc)
    overall = ", ".join(
        "%s IPC %.4f" % (policy, results[policy].ipc) for policy in POLICIES
    )
    report.add_note(
        "Overall: %s.\nSBAR follows LIN in the LIN-friendly phases and LRU in the\n"
        "LRU-friendly phases, outperforming both fixed policies." % overall
    )
    return report
