"""repro: a reproduction of "A Case for MLP-Aware Cache Replacement".

Qureshi, Lynch, Mutlu, Patt — TR-HPS-2006-3 / ISCA 2006.

Quickstart::

    from repro import Simulator, build_workload, experiment_config

    trace = build_workload("mcf")
    lru = Simulator(experiment_config(), "lru").run(trace)
    mix = build_workload("interleave(mcf,art)")
    lin = Simulator(experiment_config(), "lin(4)").run(mix)
    print(lru.ipc, lin.ipc)

The package layers, bottom up:

* :mod:`repro.trace`, :mod:`repro.workloads` — access traces and the
  SPEC CPU2000 surrogates.
* :mod:`repro.memory`, :mod:`repro.cache`, :mod:`repro.mlp`,
  :mod:`repro.cpu` — the substrates: DRAM/bus, tag stores and
  replacement policies, the MSHR with Algorithm 1, and the
  out-of-order window model.
* :mod:`repro.sbar` — the adaptive mechanisms (CBS, SBAR) and the
  analytical sampling model.
* :mod:`repro.sim` — the top-level simulator.
* :mod:`repro.experiments` — one module per table/figure of the paper
  (also a CLI: ``python -m repro.experiments``).
"""

from repro.config import MachineConfig, baseline_config, scaled_config
from repro.sim import Simulator, SimResult, build_l2_policy
from repro.workloads import (
    BENCHMARKS,
    available_workloads,
    build_trace,
    build_workload,
    experiment_config,
    parse_workload_spec,
    register_workload,
)
from repro.cache.replacement import (
    LINPolicy,
    LRUPolicy,
    available_policies,
    parse_policy_spec,
    register_policy,
)
from repro.sbar import CBSController, SBARController

__version__ = "1.0.0"

__all__ = [
    "Simulator",
    "SimResult",
    "MachineConfig",
    "baseline_config",
    "scaled_config",
    "build_l2_policy",
    "register_policy",
    "parse_policy_spec",
    "available_policies",
    "build_trace",
    "build_workload",
    "parse_workload_spec",
    "register_workload",
    "available_workloads",
    "experiment_config",
    "BENCHMARKS",
    "LRUPolicy",
    "LINPolicy",
    "SBARController",
    "CBSController",
    "__version__",
]
