"""EHC: an online Expected-Hit-Count approximation of Belady's OPT.

Belady needs the future; EHC (after the expected-hit-count family of
Belady approximations, arXiv:1808.05024) predicts it from the past.
Per block it remembers the last few reuse intervals — measured in
L2-access sequence numbers, the same clock :class:`BeladyPolicy` is
driven with — and predicts the block's *next* use as the current
sequence number plus the mean of those intervals.  Victim selection is
then literally Belady's: evict the resident block with the farthest
(predicted) next use, blocks never seen to recur being "never used
again".

With ``horizon=1`` the predictor is just "last interval repeats", so on
a strictly periodic reference stream the predictions are exact and EHC
degenerates to per-set Belady decisions — the differential test in
``tests/test_oracle.py`` holds it to that.

The policy stores its prediction in the tag's ``next_use`` field (the
same slot Belady stamps), overrides none of the slow-path hooks beyond
what Belady itself needs, and keeps no per-set state, so the fused
replay loop drives it through the generic dispatch flags without a
special case.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict

from repro.cache.block import BlockState
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.belady import NEVER
from repro.cache.sets import CacheSet

DEFAULT_HORIZON = 4


class EHCPolicy(ReplacementPolicy):
    """Expected-hit-count Belady approximation.

    ``horizon`` is how many recent reuse intervals per block feed the
    next-use prediction (1 = "last interval repeats").
    """

    def __init__(self, horizon: int = DEFAULT_HORIZON) -> None:
        if horizon < 1:
            raise ValueError("horizon must be at least 1, got %r" % horizon)
        self.horizon = horizon
        self.name = "ehc(%d)" % horizon
        self._last_seen: Dict[int, int] = {}
        self._intervals: Dict[int, Deque[int]] = {}
        self._pending_next_use = NEVER

    def note_access(self, block: int, seq: int) -> None:
        last = self._last_seen.get(block)
        if last is None:
            self._last_seen[block] = seq
            self._pending_next_use = NEVER
            return
        intervals = self._intervals.get(block)
        if intervals is None:
            intervals = self._intervals[block] = deque(maxlen=self.horizon)
        intervals.append(seq - last)
        self._last_seen[block] = seq
        # Integer mean keeps predictions (and therefore victim choices)
        # exactly reproducible across hosts.
        self._pending_next_use = seq + sum(intervals) // len(intervals)

    def on_hit(self, cache_set: CacheSet, position: int) -> None:
        state = cache_set.touch(position)
        state.next_use = self._pending_next_use

    def choose_victim(self, cache_set: CacheSet) -> int:
        # Identical scan to BeladyPolicy.choose_victim: farthest
        # predicted next use wins, ties keep the most-MRU candidate.
        farthest_position = 0
        farthest_use = -1
        for position, state in enumerate(cache_set.ways):
            if state.next_use > farthest_use:
                farthest_use = state.next_use
                farthest_position = position
        return farthest_position

    def on_fill(self, cache_set: CacheSet, state: BlockState) -> None:
        state.next_use = self._pending_next_use
        cache_set.insert_mru(state)
