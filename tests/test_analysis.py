"""Tests for the analysis toolkit: attribution, reuse, residency."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.attribution import attach_classifier, classify_block
from repro.analysis.residency import snapshot_cache
from repro.analysis.reuse import COLD, ReuseProfile, reuse_distance_profile
from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement import LRUPolicy
from repro.config import CacheGeometry
from repro.sim.simulator import Simulator
from repro.trace.record import Access
from repro.workloads import build_trace, experiment_config


class TestClassifier:
    def test_engine_namespaces(self):
        assert classify_block(100) == "stream"
        assert classify_block((1 << 24) + 5) == "isolated"
        assert classify_block((1 << 25) + 5) == "transient"
        assert classify_block((5 << 23) + 5) == "flip"
        assert classify_block((7 << 23) + 5) == "companion"
        assert classify_block((3 << 24) + 5) == "cold"

    def test_phase_namespaces_fold(self):
        base = 2 << 26  # phase namespace 2
        assert classify_block(base + 100) == "stream"
        assert classify_block(base + (1 << 24)) == "isolated"


class TestAttribution:
    def test_counts_accesses_and_misses(self):
        simulator = Simulator(experiment_config(), "lru")
        run = attach_classifier(simulator)
        simulator.run(build_trace("mcf", scale=0.05))
        assert "stream" in run.classes
        stream = run.classes["stream"]
        assert stream.accesses > 0
        assert 0 <= stream.misses <= stream.accesses

    def test_costs_attributed(self):
        simulator = Simulator(experiment_config(), "lru")
        run = attach_classifier(simulator)
        result = simulator.run(build_trace("mcf", scale=0.05))
        total_cost = sum(s.cost_sum for s in run.classes.values())
        assert total_cost == pytest.approx(
            result.cost_distribution.cost_sum
        )

    def test_isolated_class_has_high_cost(self):
        simulator = Simulator(experiment_config(), "lru")
        run = attach_classifier(simulator)
        simulator.run(build_trace("mcf", scale=0.2))
        isolated = run.classes["isolated"]
        stream = run.classes["stream"]
        assert isolated.avg_cost > stream.avg_cost + 100

    def test_table_rows(self):
        simulator = Simulator(experiment_config(), "lru")
        run = attach_classifier(simulator)
        simulator.run(build_trace("lucas", scale=0.02))
        rows = run.table()
        assert rows
        assert all(len(row) == 5 for row in rows)


class TestReuseDistance:
    def profile(self, blocks):
        trace = [Access(block * 64) for block in blocks]
        return reuse_distance_profile(trace)

    def test_first_touches_are_cold(self):
        profile = self.profile([1, 2, 3])
        assert profile.cold_accesses == 3
        assert len(profile.distances) == 0

    def test_immediate_reuse_distance_zero(self):
        profile = self.profile([1, 1])
        assert profile.distances == (0,)

    def test_classic_distances(self):
        # a b c a : the reuse of 'a' has seen 2 distinct blocks.
        profile = self.profile([1, 2, 3, 1])
        assert profile.distances == (2,)

    def test_repeated_pattern(self):
        profile = self.profile([1, 2, 1, 2, 1])
        assert profile.distances == (1, 1, 1)

    def test_miss_rate_prediction_matches_lru_cache(self):
        # Fully-associative LRU of capacity C must agree exactly with
        # the stack-distance prediction.
        import random
        rng = random.Random(3)
        blocks = [rng.randrange(12) for _ in range(400)]
        profile = self.profile(blocks)
        capacity = 8
        geometry = CacheGeometry(capacity * 64, 64, capacity, 1)
        cache = SetAssociativeCache(geometry, LRUPolicy())
        for block in blocks:
            cache.access(block)
        assert profile.miss_rate_at(capacity) == pytest.approx(
            cache.misses / cache.accesses
        )

    def test_miss_rate_monotone_in_capacity(self):
        import random
        rng = random.Random(9)
        profile = self.profile([rng.randrange(50) for _ in range(500)])
        rates = [profile.miss_rate_at(c) for c in (1, 4, 16, 64)]
        assert all(b <= a + 1e-12 for a, b in zip(rates, rates[1:]))

    def test_percentile(self):
        profile = ReuseProfile(distances=(1, 2, 3, 4, 100), cold_accesses=0)
        assert profile.percentile(0.0) == 1
        assert profile.percentile(1.0) == 100
        with pytest.raises(ValueError):
            profile.percentile(1.5)

    def test_histogram_overflow_bucket(self):
        profile = ReuseProfile(distances=(1, 5, 500), cold_accesses=0)
        counts = profile.histogram([0, 10, 100])
        assert counts == [2, 0, 1]

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=200))
    def test_distances_bounded_by_footprint(self, blocks):
        profile = self.profile(blocks)
        footprint = len(set(blocks))
        assert all(0 <= d < footprint for d in profile.distances)
        assert profile.cold_accesses == footprint

    def test_cold_constant(self):
        assert COLD == -1


class TestResidency:
    def test_snapshot_counts(self):
        geometry = CacheGeometry(4 * 2 * 64, 64, 2, 1)
        cache = SetAssociativeCache(geometry, LRUPolicy())
        cache.access(0, is_write=True)
        cache.access(1)
        snapshot = snapshot_cache(cache)
        assert snapshot.n_resident == 2
        assert snapshot.dirty_blocks == 1
        assert snapshot.occupancy == pytest.approx(2 / 8)
        assert snapshot.per_set_occupancy[0] == 1

    def test_cost_histogram(self):
        geometry = CacheGeometry(4 * 2 * 64, 64, 2, 1)
        cache = SetAssociativeCache(geometry, LRUPolicy())
        cache.access(0).state.cost_q = 7
        cache.access(1).state.cost_q = 2
        snapshot = snapshot_cache(cache)
        assert snapshot.cost_q_histogram == {7: 1, 2: 1}
        assert snapshot.avg_cost_q == pytest.approx(4.5)
        assert snapshot.fraction_at_cost(7) == pytest.approx(0.5)

    def test_empty_cache(self):
        geometry = CacheGeometry(4 * 2 * 64, 64, 2, 1)
        snapshot = snapshot_cache(SetAssociativeCache(geometry, LRUPolicy()))
        assert snapshot.n_resident == 0
        assert snapshot.avg_cost_q == 0.0
        assert snapshot.fraction_at_cost(7) == 0.0

    def test_poisoning_visible_in_snapshot(self):
        # Under LIN on mgrid, a large share of resident blocks carries
        # maximal cost_q (the pinning the paper's Section 5.2 blames).
        simulator = Simulator(experiment_config(), "lin(4)")
        simulator.run(build_trace("mgrid", scale=0.4))
        lin_snapshot = snapshot_cache(simulator.l2)
        baseline = Simulator(experiment_config(), "lru")
        baseline.run(build_trace("mgrid", scale=0.4))
        lru_snapshot = snapshot_cache(baseline.l2)
        assert (
            lin_snapshot.fraction_at_cost(7)
            > lru_snapshot.fraction_at_cost(7) + 0.1
        )
