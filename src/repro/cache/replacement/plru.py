"""Tree pseudo-LRU and a cost-aware variant on top of it.

Real 16-way caches rarely track true LRU stacks; they keep a binary
tree of direction bits per set (``associativity - 1`` bits).  Hardware
-fidelity questions for the paper's proposal: (a) how much of LRU's
behaviour does tree-PLRU retain on these workloads, and (b) does
LIN-style cost protection still work when the recency substrate is a
PLRU tree rather than a true stack?

:class:`TreePLRUPolicy` implements the classic scheme: on an access,
all tree bits on the path to the touched way are pointed *away* from
it; the victim is found by following the bits from the root.
:class:`CostAwareTreePLRUPolicy` adds the paper's cost protection with
a depth-limited search: follow the PLRU path, but reject up to
``max_rejects`` victims whose cost_q is at or above a threshold,
re-pointing the tree past them (an implementable analogue of LIN for
PLRU hardware).
"""

from __future__ import annotations

from typing import Dict, List

from repro.cache.block import BlockState
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.sets import CacheSet


def _is_power_of_two(value: int) -> bool:
    return value > 0 and value & (value - 1) == 0


class _TreeState:
    """Direction bits of one set's PLRU tree (flat array encoding).

    Node ``i`` has children ``2i+1`` and ``2i+2``; a bit of 0 means the
    LRU side is the left subtree.  Leaves map to physical way slots.
    """

    __slots__ = ("bits", "n_ways")

    def __init__(self, n_ways: int) -> None:
        self.n_ways = n_ways
        self.bits = [0] * (n_ways - 1)

    def touch(self, way: int) -> None:
        """Point every bit on the way's path away from it."""
        node = 0
        low, high = 0, self.n_ways
        while high - low > 1:
            mid = (low + high) // 2
            if way < mid:
                self.bits[node] = 1  # LRU side is now the right half
                node = 2 * node + 1
                high = mid
            else:
                self.bits[node] = 0
                node = 2 * node + 2
                low = mid
        # Leaf reached; nothing to store at leaves.

    def victim(self) -> int:
        """Follow the bits from the root to the PLRU way."""
        node = 0
        low, high = 0, self.n_ways
        while high - low > 1:
            mid = (low + high) // 2
            if self.bits[node] == 0:
                node = 2 * node + 1
                high = mid
            else:
                node = 2 * node + 2
                low = mid
        return low


class TreePLRUPolicy(ReplacementPolicy):
    """Binary-tree pseudo-LRU over physical way slots.

    The policy pins blocks to physical slots: unlike the stack-order
    policies it must not let the cache reorder ways, so hits do *not*
    move blocks; the tree bits carry all recency state.
    """

    name = "tree-plru"

    def __init__(self) -> None:
        self._trees: Dict[int, _TreeState] = {}
        self._pending_slot: Dict[int, int] = {}

    def _tree_for(self, cache_set: CacheSet) -> _TreeState:
        key = id(cache_set)
        tree = self._trees.get(key)
        if tree is None:
            if not _is_power_of_two(cache_set.associativity):
                raise ValueError(
                    "tree-PLRU needs a power-of-two associativity, got %d"
                    % cache_set.associativity
                )
            tree = _TreeState(cache_set.associativity)
            self._trees[key] = tree
        return tree

    def on_hit(self, cache_set: CacheSet, position: int) -> None:
        self._tree_for(cache_set).touch(position)

    def choose_victim(self, cache_set: CacheSet) -> int:
        victim = self._tree_for(cache_set).victim()
        # The cache will evict this position and then fill; remember it
        # so the fill lands in the same physical slot (PLRU state is
        # per-slot, so ways must not shift).
        self._pending_slot[id(cache_set)] = victim
        return victim

    def on_fill(self, cache_set: CacheSet, state: BlockState) -> None:
        slot = self._pending_slot.pop(id(cache_set), None)
        if slot is None:
            # Cold fill: take the next free physical slot.
            slot = len(cache_set.ways)
        cache_set.insert_at(slot, state)
        self._tree_for(cache_set).touch(slot)


class CostAwareTreePLRUPolicy(TreePLRUPolicy):
    """Tree-PLRU with LIN-style protection of high-cost blocks.

    The victim search walks the tree; if the chosen way's cost_q is at
    least ``protect_threshold``, the way is touched (re-pointing the
    tree away) and the walk retries, up to ``max_rejects`` times.  This
    is implementable with a small iteration counter in hardware and
    approximates LIN's argmin on a PLRU substrate.
    """

    def __init__(self, protect_threshold: int = 4, max_rejects: int = 3) -> None:
        super().__init__()
        if not 0 <= protect_threshold <= 7:
            raise ValueError("threshold must be a 3-bit cost")
        if max_rejects < 0:
            raise ValueError("reject budget cannot be negative")
        self.protect_threshold = protect_threshold
        self.max_rejects = max_rejects
        self.name = "cost-plru(%d,%d)" % (protect_threshold, max_rejects)

    def choose_victim(self, cache_set: CacheSet) -> int:
        tree = self._tree_for(cache_set)
        victim = tree.victim()
        for _ in range(self.max_rejects):
            if cache_set.ways[victim].cost_q < self.protect_threshold:
                break
            tree.touch(victim)
            victim = tree.victim()
        self._pending_slot[id(cache_set)] = victim
        return victim
