"""Extension: MLP-aware (LIN/SBAR) vs insertion-adaptive (DIP) policies.

The paper's SBAR sampling idea grew into set dueling (DIP, ISCA'07).
The two families adapt along different axes: DIP fights *thrashing* by
changing the insertion position; LIN/SBAR fight *stall cost* by
protecting isolated-miss blocks.  This experiment races them across
the benchmark suite; the interesting rows are the thrash benchmarks
(art, apsi — DIP territory) versus the isolated-reuse benchmarks
(mcf, vpr, sixtrack — LIN territory).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.experiments.common import Report, fmt_pct, resolve_benchmarks
from repro.sim.runner import ipc_improvement, run_policy

POLICIES = ("lip", "bip", "dip", "lin(4)", "sbar", "tournament")

PREWARM_POLICIES = ("lru",) + POLICIES

DEFAULT_BENCHMARKS = ("art", "apsi", "mcf", "vpr", "sixtrack", "parser")


def run(
    scale: Optional[float] = None,
    benchmarks: Optional[Sequence[str]] = None,
) -> Report:
    names = (
        list(DEFAULT_BENCHMARKS)
        if benchmarks is None
        else resolve_benchmarks(benchmarks)
    )
    report = Report(
        "dip", "Extension: insertion-adaptive (LIP/BIP/DIP) vs MLP-aware"
    )
    rows = []
    for name in names:
        baseline = run_policy(name, "lru", scale=scale)
        row = [name]
        for policy in POLICIES:
            result = run_policy(name, policy, scale=scale)
            row.append(fmt_pct(ipc_improvement(result, baseline)))
        rows.append(row)
    report.add_table(["benchmark"] + list(POLICIES), rows)
    report.add_note(
        "The surrogate suite's pool-structured reuse is ideal LIP/BIP\n"
        "territory (guaranteed revisits reward LRU-position insertion),\n"
        "so the insertion family posts large wins on the thrash\n"
        "benchmarks.  The families adapt along different axes though:\n"
        "on parser - the cost-misprediction benchmark - the insertion\n"
        "policies are merely safe, while LIN regresses and SBAR\n"
        "recovers; and none of them uses the per-miss stall cost that\n"
        "is the paper's subject.  The k-way tournament (LRU/LIN/BIP\n"
        "leader groups with decaying cost-weighted scores) tracks the\n"
        "best candidate on every row."
    )
    return report
