"""Cost-sensitive policies: the Linear (LIN) policy of Section 5.1.

LIN chooses ``victim = argmin_i R(i) + lambda * cost_q(i)`` (Equation 2)
where ``R`` is the recency value (MRU highest) and ``cost_q`` the 3-bit
quantized mlp-cost stored in the tag.  Ties go to the smallest recency.
``lambda = 0`` degenerates to LRU; the paper's default is ``lambda = 4``.
"""

from __future__ import annotations

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.sets import CacheSet

DEFAULT_LAMBDA = 4


class LINPolicy(ReplacementPolicy):
    """The Linear policy: recency plus lambda times quantized cost."""

    def __init__(self, lam: int = DEFAULT_LAMBDA) -> None:
        if lam < 0:
            raise ValueError("lambda must be non-negative, got %r" % lam)
        self.lam = lam
        self.name = "lin(%d)" % lam

    def choose_victim(self, cache_set: CacheSet) -> int:
        lam = self.lam
        ways = cache_set.ways
        # R(position) = assoc - 1 - position, inlined: this argmin runs
        # once per miss and dominates LIN's cost on miss-heavy traces.
        mru_recency = cache_set.associativity - 1
        best_position = 0
        best_score = mru_recency + lam * ways[0].cost_q
        for position in range(1, len(ways)):
            score = mru_recency - position + lam * ways[position].cost_q
            # "<=" keeps the later (lower-recency) candidate on ties,
            # implementing the paper's tie-break toward small recency.
            if score <= best_score:
                best_score = score
                best_position = position
        return best_position


class CostThresholdPolicy(ReplacementPolicy):
    """Depth-limited cost-sensitive LRU, for ablation studies.

    Considers only the ``depth`` least-recent blocks and evicts the
    cheapest of those; with ``depth = associativity`` this is a pure
    min-cost policy, with ``depth = 1`` it is LRU.  This mirrors the
    family of LRU variants Jeong & Dubois propose as generic
    cost-sensitive engines (Section 2), demonstrating that CARE accepts
    schemes other than LIN.
    """

    def __init__(self, depth: int = 4) -> None:
        if depth < 1:
            raise ValueError("depth must be at least 1")
        self.depth = depth
        self.name = "cost-threshold(%d)" % depth

    def choose_victim(self, cache_set: CacheSet) -> int:
        n_ways = len(cache_set.ways)
        first_candidate = max(0, n_ways - self.depth)
        best_position = n_ways - 1
        best_cost = cache_set.ways[best_position].cost_q
        # Scan from LRU backwards so ties keep the least-recent block.
        for position in range(n_ways - 1, first_candidate - 1, -1):
            cost = cache_set.ways[position].cost_q
            if cost < best_cost:
                best_cost = cost
                best_position = position
        return best_position
