"""Tests for tree-PLRU, cost-aware PLRU, and the first-order CPI model."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.firstorder import predict_cycles
from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement import LRUPolicy
from repro.cache.replacement.plru import (
    CostAwareTreePLRUPolicy,
    TreePLRUPolicy,
    _TreeState,
)
from repro.config import CacheGeometry
from repro.sim.runner import run_policy
from repro.sim.simulator import Simulator
from repro.workloads import build_trace, experiment_config


class TestTreeState:
    def test_initial_victim_is_way_zero(self):
        assert _TreeState(4).victim() == 0

    def test_touch_redirects(self):
        tree = _TreeState(4)
        tree.touch(0)
        assert tree.victim() != 0

    def test_round_robin_under_sequential_touches(self):
        tree = _TreeState(4)
        victims = []
        for _ in range(4):
            victim = tree.victim()
            victims.append(victim)
            tree.touch(victim)
        assert sorted(victims) == [0, 1, 2, 3]

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=7), max_size=40))
    def test_victim_never_most_recent(self, touches):
        tree = _TreeState(8)
        last = None
        for way in touches:
            tree.touch(way)
            last = way
        if last is not None:
            assert tree.victim() != last

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=15), max_size=60))
    def test_victim_always_valid(self, touches):
        tree = _TreeState(16)
        for way in touches:
            tree.touch(way)
        assert 0 <= tree.victim() < 16


class TestTreePLRUPolicy:
    def geometry(self):
        return CacheGeometry(4 * 4 * 64, 64, 4, 1)  # 4 sets x 4 ways

    def test_hit_protects_block(self):
        cache = SetAssociativeCache(self.geometry(), TreePLRUPolicy())
        for block in (0, 4, 8, 12):  # fill set 0
            cache.access(block)
        cache.access(0)  # touch: 0 must not be the victim
        result = cache.access(16)
        assert result.victim_block != 0

    def test_full_lru_behaviour_on_two_ways(self):
        # With 2 ways, tree-PLRU degenerates to exact LRU.
        geometry = CacheGeometry(2 * 64, 64, 2, 1)
        plru_cache = SetAssociativeCache(geometry, TreePLRUPolicy())
        lru_cache = SetAssociativeCache(geometry, LRUPolicy())
        import random
        rng = random.Random(4)
        for _ in range(300):
            block = rng.randrange(5)
            assert (
                plru_cache.access(block).hit == lru_cache.access(block).hit
            )

    def test_rejects_non_power_of_two(self):
        geometry = CacheGeometry(3 * 64, 64, 3, 1)
        cache = SetAssociativeCache(geometry, TreePLRUPolicy())
        with pytest.raises(ValueError):
            # The tree is built lazily on the first fill.
            cache.access(0)

    def test_no_duplicate_blocks_under_churn(self):
        import random
        rng = random.Random(7)
        cache = SetAssociativeCache(self.geometry(), TreePLRUPolicy())
        for _ in range(2000):
            cache.access(rng.randrange(64))
        for set_index in range(cache.n_sets):
            ways = cache.set_state(set_index).ways
            assert len({w.block for w in ways}) == len(ways)
            assert len(ways) <= 4

    def test_plru_close_to_lru_end_to_end(self):
        lru = run_policy("mcf", "lru", scale=0.15, use_cache=False)
        plru = run_policy("mcf", "plru", scale=0.15, use_cache=False)
        assert plru.ipc == pytest.approx(lru.ipc, rel=0.05)


class TestCostAwarePLRU:
    def test_protects_expensive_block(self):
        geometry = CacheGeometry(4 * 64, 64, 4, 1)
        policy = CostAwareTreePLRUPolicy(protect_threshold=4, max_rejects=3)
        cache = SetAssociativeCache(geometry, policy)
        for block in range(4):
            cache.access(block)
        # Mark the would-be victim as expensive.
        victim_way = policy._tree_for(cache.set_state(0)).victim()
        cache.set_state(0).ways[victim_way].cost_q = 7
        protected_block = cache.set_state(0).ways[victim_way].block
        result = cache.access(10)
        assert result.victim_block != protected_block

    def test_reject_budget_bounds_search(self):
        geometry = CacheGeometry(4 * 64, 64, 4, 1)
        policy = CostAwareTreePLRUPolicy(protect_threshold=1, max_rejects=2)
        cache = SetAssociativeCache(geometry, policy)
        for block in range(4):
            cache.access(block)
        for way in cache.set_state(0).ways:
            way.cost_q = 7  # everything expensive
        result = cache.access(10)  # must still evict something
        assert result.victim_block is not None

    def test_validation(self):
        with pytest.raises(ValueError):
            CostAwareTreePLRUPolicy(protect_threshold=9)
        with pytest.raises(ValueError):
            CostAwareTreePLRUPolicy(max_rejects=-1)

    def test_captures_most_of_lin_gain(self):
        lru = run_policy("mcf", "lru", scale=0.3)
        lin = run_policy("mcf", "lin(4)", scale=0.3)
        cost_plru = run_policy("mcf", "cost-plru", scale=0.3)
        lin_gain = lin.ipc - lru.ipc
        plru_gain = cost_plru.ipc - lru.ipc
        assert lin_gain > 0
        assert plru_gain > 0.5 * lin_gain


class TestFirstOrderModel:
    def test_decomposition_fields(self):
        result = run_policy("lucas", "lru", scale=0.1)
        breakdown = predict_cycles(result, issue_width=8)
        assert breakdown.compute_cycles == pytest.approx(
            result.instructions / 8
        )
        assert breakdown.stall_cycles_from_costs == pytest.approx(
            result.cost_distribution.cost_sum
        )

    def test_model_accuracy_on_suite_members(self):
        for name in ("mcf", "art", "parser"):
            result = run_policy(name, "lru", scale=0.2)
            breakdown = predict_cycles(result)
            assert abs(breakdown.prediction_error) < 0.05, name

    def test_stall_fraction_bounds(self):
        result = run_policy("art", "lru", scale=0.1)
        breakdown = predict_cycles(result)
        assert 0.0 <= breakdown.memory_stall_fraction <= 1.0

    def test_width_validation(self):
        result = run_policy("lucas", "lru", scale=0.05)
        with pytest.raises(ValueError):
            predict_cycles(result, issue_width=0)

    def test_empty_run(self):
        empty = Simulator(experiment_config(), "lru").run([])
        breakdown = predict_cycles(empty)
        assert breakdown.predicted_cpi == 0.0
        assert breakdown.measured_cpi == 0.0

    def test_costmodel_experiment(self):
        from repro.experiments import cost_validation
        text = cost_validation.run(scale=0.05, benchmarks=["lucas"]).render()
        assert "CPI (model)" in text
