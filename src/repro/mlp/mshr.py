"""Miss Status Holding Register file with Algorithm 1 cost tracking.

Every outstanding L2 miss holds an MSHR entry from issue to service
completion.  The file provides three things the paper needs:

1. **Merging** — concurrent misses to one block share an entry (they are
   "treated as a single miss", Section 1 footnote).
2. **Capacity pressure** — the Table 2 machine has 32 entries; a miss
   arriving at a full MSHR waits for the earliest completion.
3. **mlp-cost** — Algorithm 1: each cycle every demand miss accrues
   ``1/N``.  We integrate this in event-driven form: between occupancy
   changes ``N`` is constant, so each demand miss accrues ``dt/N`` per
   interval.  A shared accumulator ``A += dt/N`` makes this O(1) per
   event: a miss's cost is ``A(complete) - A(issue)``.  The equivalence
   with the per-cycle loop is exact and checked by property tests
   against :func:`repro.mlp.cost.reference_mlp_costs`.

The optional shared-adder mode models footnote 3 of the paper: with
``n_cost_adders = a`` the cost is truncated to multiples of ``1/a`` of a
cycle, which bounds the deviation from the idealized algorithm by one
adder visit (< 0.25 cycles for the paper's four adders — "negligible").
"""

from __future__ import annotations

import math
from heapq import heappop, heappush
from typing import Dict, List, Optional, Tuple


class MSHRFullError(RuntimeError):
    """Raised when allocation is forced at a full MSHR."""


class _Entry:
    __slots__ = (
        "block", "issue", "complete", "is_demand",
        "accumulator_start", "cost", "on_cost",
    )

    def __init__(
        self, block: int, issue: float, complete: float, is_demand: bool
    ) -> None:
        self.block = block
        self.issue = issue
        self.complete = complete
        self.is_demand = is_demand
        self.accumulator_start = 0.0
        self.cost: Optional[float] = None
        self.on_cost = None


class MSHRFile:
    """MSHR with event-driven Algorithm 1 integration.

    Allocations must arrive in non-decreasing issue-time order (the
    window model dispatches in program order, which guarantees this);
    the file asserts it.
    """

    def __init__(self, n_entries: int = 32, n_cost_adders: int = 0) -> None:
        if n_entries < 1:
            raise ValueError("MSHR needs at least one entry")
        if n_cost_adders < 0:
            raise ValueError("adder count cannot be negative")
        self.n_entries = n_entries
        self.n_cost_adders = n_cost_adders
        # Sweep state for the cost integral.
        self._now = 0.0
        self._accumulator = 0.0
        self._demand_live = 0
        self._demand_heap: List[Tuple[float, int, _Entry]] = []
        # Occupancy state (all entries, demand or not).
        self._occupancy_heap: List[float] = []
        self._in_flight: Dict[int, _Entry] = {}
        self._tiebreak = 0
        # Statistics.
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0
        self.peak_occupancy = 0
        #: Optional :class:`repro.obs.Observer`; receives miss_start /
        #: miss_finish transitions and occupancy samples when set.
        self.observer = None

    # -- capacity ------------------------------------------------------

    def occupancy_at(self, when: float) -> int:
        """Number of entries still in flight at time ``when``."""
        heap = self._occupancy_heap
        while heap and heap[0] <= when:
            heappop(heap)
        return len(heap)

    def admission_time(self, when: float) -> float:
        """Earliest time >= ``when`` at which an entry is free.

        Increments the full-stall counter when the caller must wait.
        """
        heap = self._occupancy_heap
        while heap and heap[0] <= when:
            heappop(heap)
        while len(heap) >= self.n_entries:
            earliest = heappop(heap)
            if earliest > when:
                when = earliest
                self.full_stalls += 1
        return when

    # -- lookup / merge -------------------------------------------------

    def lookup(
        self, block: int, when: float, count_merge: bool = True
    ) -> Optional[float]:
        """If ``block`` is in flight at ``when``, return its completion.

        A hit on the *miss path* is a merge: the access piggybacks on
        the existing entry instead of allocating a new one, and
        ``merges`` counts it.  Callers probing completion times without
        coalescing an allocation — the L2 tag-hit path, where the line
        is resident but its fill is still outstanding (hit-under-miss)
        — pass ``count_merge=False`` so the statistic reports only real
        entry sharing.
        """
        entry = self._in_flight.get(block)
        if entry is None:
            return None
        if entry.complete <= when:
            del self._in_flight[block]
            return None
        if count_merge:
            self.merges += 1
        return entry.complete

    def in_flight(self, block: int, when: float) -> bool:
        """Non-counting residency probe (used by the prefetcher)."""
        entry = self._in_flight.get(block)
        return entry is not None and entry.complete > when

    # -- allocation ------------------------------------------------------

    def allocate(
        self,
        block: int,
        issue: float,
        complete: float,
        is_demand: bool = True,
        on_cost=None,
    ) -> None:
        """Install a miss that issues at ``issue`` and fills at ``complete``.

        ``on_cost`` is an optional callable invoked with the finalized
        mlp-cost once the sweep passes the miss's completion — this is
        how the simulator writes cost_q into the tag store "when a miss
        gets serviced" (Section 5).

        The caller is responsible for having consulted
        :meth:`admission_time` (so ``issue`` respects capacity) and
        :meth:`lookup` (so merges never reach here).
        """
        if issue + 1e-9 < self._now:
            raise ValueError(
                "allocations must be time-ordered: issue %.1f < sweep %.1f"
                % (issue, self._now)
            )
        if complete < issue:
            raise ValueError("completion precedes issue")
        self._advance(issue)
        entry = _Entry(block, issue, complete, is_demand)
        entry.on_cost = on_cost
        if is_demand:
            entry.accumulator_start = self._accumulator
            self._demand_live += 1
            self._tiebreak += 1
            heappush(self._demand_heap, (complete, self._tiebreak, entry))
        heappush(self._occupancy_heap, complete)
        self._in_flight[block] = entry
        self.allocations += 1
        occupancy = len(self._occupancy_heap)
        if occupancy > self.peak_occupancy:
            self.peak_occupancy = occupancy
        if self.observer is not None:
            self.observer.miss_start(
                block, issue, complete, is_demand, occupancy
            )

    # -- the Algorithm 1 sweep --------------------------------------------

    def _advance(self, target: float) -> None:
        """Advance the cost integral from the current sweep time to ``target``."""
        heap = self._demand_heap
        now = self._now
        if not heap or heap[0][0] > target:
            # No completions in the interval: integrate and move on.
            if target > now:
                live = self._demand_live
                if live:
                    self._accumulator += (target - now) / live
                self._now = target
            return
        while heap and heap[0][0] <= target:
            complete, _, entry = heappop(heap)
            if complete > now:
                self._accumulator += (complete - now) / self._demand_live
                now = complete
            entry.cost = self._finalize_cost(
                self._accumulator - entry.accumulator_start
            )
            self._demand_live -= 1
            if self._in_flight.get(entry.block) is entry:
                del self._in_flight[entry.block]
            if self.observer is not None:
                self.observer.miss_finish(
                    entry.block, complete, entry.cost, self._demand_live
                )
            if entry.on_cost is not None:
                entry.on_cost(entry.cost)
        if target > now and self._demand_live:
            self._accumulator += (target - now) / self._demand_live
        self._now = max(target, now)

    def _finalize_cost(self, exact: float) -> float:
        if self.n_cost_adders:
            return math.floor(exact * self.n_cost_adders) / self.n_cost_adders
        return exact

    def advance_to(self, when: float) -> None:
        """Advance the cost sweep to ``when``, finalizing serviced misses.

        The simulator calls this before replacement decisions so that
        tag entries of already-serviced misses carry their cost_q, just
        as the hardware writes the cost at service completion.
        """
        if when > self._now:
            self._advance(when)

    def drain(self) -> None:
        """Run the sweep past every outstanding completion (end of trace)."""
        if self._demand_heap:
            horizon = max(complete for complete, _, _ in self._demand_heap)
            self._advance(horizon + 1)

    @property
    def outstanding_demand(self) -> int:
        """Demand misses the sweep currently considers in flight."""
        return self._demand_live

    @property
    def sweep_time(self) -> float:
        """How far the cost integral has advanced; allocations must not
        issue before this time."""
        return self._now
