"""Workload registry, spec language, importers, and cache keying.

Locks in the PR's API redesign: every entry point accepts a workload
*spec* (surrogate name, imported trace, CDF generator, or composition),
specs canonicalize so spellings of one workload share cache entries,
and distinct specs never alias — in the per-process trace memo, the
runner result memo, and the persistent store key.
"""

import gzip
import lzma
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

from repro.sim import runner
from repro.sim.runner import clear_cache, packed_trace
from repro.sim.store import store_key
from repro.sim import RunOptions
from repro.sim.suite import EXPORT_FIELDS, run_suite
from repro.trace.importers import (
    CHAMPSIM_RECORD,
    load_champsim,
    load_champsim_binary,
    load_lackey,
    sniff_binary_champsim,
    sniff_text_format,
)
from repro.trace.packed import PackedTrace
from repro.trace.record import LOAD, STORE, IFETCH
from repro.trace.trace_io import open_trace, save_trace
from repro.workloads import (
    UnknownWorkloadError,
    WorkloadSpecError,
    available_workloads,
    build_trace,
    build_workload,
    canonical_workload_spec,
    experiment_config,
    parse_workload_spec,
    register_workload,
    workload_fingerprint,
)
from repro.workloads.registry import SurrogateWorkload, Workload

FIXTURE = Path(__file__).parent / "fixtures" / "mix4k.champsim.gz"
BINARY_FIXTURE = (
    Path(__file__).parent / "fixtures" / "mix256.champsim.trace"
)
SCALE = 0.05


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    clear_cache()
    yield
    clear_cache()


class TestSpecParsing:
    def test_surrogate_name_canonicalizes_whitespace_and_case(self):
        assert canonical_workload_spec(" MCF ") == "mcf"
        assert canonical_workload_spec("Art") == "art"

    @pytest.mark.parametrize("spec", [
        "mcf",
        "mcf@0.5",
        "mcf(seed=9)",
        "scale(twolf,0.25)",
        "splice(mcf@0.5,ammp)",
        "interleave(mcf,art,quantum=64)",
        "cdf(web_search,ops=2000000,seed=7)",
        "champsim:traces/server.xz",
        "interleave(splice(mcf@0.25,art),cdf(data_mining,ops=2000,seed=3),quantum=32)",
    ])
    def test_canonical_is_idempotent(self, spec):
        canonical = canonical_workload_spec(spec)
        assert canonical_workload_spec(canonical) == canonical

    def test_defaults_materialize_in_canonical_form(self):
        assert canonical_workload_spec("interleave(mcf,art)") == (
            "interleave(mcf,art,quantum=64)"
        )
        assert canonical_workload_spec("cdf(web_search)") == (
            "cdf(web_search,ops=150000,seed=0)"
        )

    def test_numbers_canonicalize(self):
        # 2e6 and 2000000 are one spec; 0.50 and 0.5 are one spec.
        assert canonical_workload_spec("cdf(web_search,ops=2e6,seed=7)") == (
            "cdf(web_search,ops=2000000,seed=7)"
        )
        assert canonical_workload_spec("mcf@0.50") == "mcf@0.5"

    def test_path_shorthand_round_trips(self):
        spec = "champsim:tests/fixtures/mix4k.champsim.gz"
        workload = parse_workload_spec(spec)
        assert workload.canonical == spec
        assert parse_workload_spec(workload.canonical) == workload

    def test_workload_objects_pass_through(self):
        workload = parse_workload_spec("mcf")
        assert parse_workload_spec(workload) is workload

    def test_unknown_workload_is_keyerror_and_valueerror(self):
        with pytest.raises(KeyError):
            parse_workload_spec("gcc")
        with pytest.raises(ValueError):
            parse_workload_spec("gcc")
        with pytest.raises(UnknownWorkloadError) as info:
            parse_workload_spec("gcc")
        assert "gcc" in str(info.value)

    @pytest.mark.parametrize("bad", [
        "",
        "mcf(",
        "mcf)x",
        "interleave(mcf)",          # needs >= 2 children
        "interleave(mcf,4)",        # scalar is not a workload
        "scale(mcf)",               # missing factor
        "mcf@0",                    # clip fraction must be in (0, 1]
        "mcf@2",
    ])
    def test_malformed_specs_raise_spec_error(self, bad):
        with pytest.raises(WorkloadSpecError):
            parse_workload_spec(bad)

    def test_available_workloads_lists_builtins(self):
        names = available_workloads()
        for expected in ("mcf", "art", "cdf", "interleave", "splice",
                        "scale", "champsim", "lackey", "trace"):
            assert expected in names


class TestRegistration:
    def test_register_and_fingerprint(self):
        @register_workload("regtest-const")
        def _factory(n=100):
            return _ConstWorkload(int(n))

        try:
            workload = parse_workload_spec("regtest-const(n=8)")
            assert len(workload.build(1.0)) == 8
            # User registrations fingerprint by factory source, not
            # "builtin", so editing the factory invalidates store keys.
            assert workload.fingerprint() != "builtin"
        finally:
            from repro.workloads import registry

            registry._REGISTRY.pop("regtest-const", None)
            registry._REGISTRY_VERSION += 1

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register_workload("mcf")(lambda: None)

    def test_bad_names_rejected(self):
        for name in ("has space", "paren(", "comma,", ""):
            with pytest.raises(ValueError):
                register_workload(name)(lambda: None)


class _ConstWorkload(Workload):
    def __init__(self, n):
        self.n = n

    @property
    def canonical(self):
        return "regtest-const(n=%d)" % self.n

    def build(self, scale=1.0):
        from repro.trace.record import Access
        from repro.trace.packed import pack_trace

        accesses = [Access(64 * i, LOAD, 10) for i in range(self.n)]
        return pack_trace(accesses)


class TestImporters:
    def _write(self, path, compress=None):
        lines = [
            "# comment",
            "0x1000 R 8",
            "0x2000 W",           # gap defaults
            "4096 L 4",           # decimal address, L == load
            "0x3000 I 2",
        ]
        data = ("\n".join(lines) + "\n").encode()
        if compress == "gz":
            path.write_bytes(gzip.compress(data, mtime=0))
        elif compress == "xz":
            path.write_bytes(lzma.compress(data))
        else:
            path.write_bytes(data)
        return path

    @pytest.mark.parametrize("compress", [None, "gz", "xz"])
    def test_champsim_loads_identically_compressed_or_not(
        self, tmp_path, compress
    ):
        path = self._write(tmp_path / "t.champsim", compress)
        trace = load_champsim(path)
        assert isinstance(trace, PackedTrace)
        assert len(trace) == 4
        assert trace[0].address == 0x1000 and trace[0].kind == LOAD
        assert trace[1].kind == STORE
        assert trace[2].address == 4096
        assert trace[3].kind == IFETCH
        plain = load_champsim(self._write(tmp_path / "p.champsim"))
        assert trace.content_digest() == plain.content_digest()

    def test_champsim_bad_line_reports_location(self, tmp_path):
        path = tmp_path / "bad.champsim"
        path.write_text("0x1000 R 4\nnot a record at all extra\n")
        with pytest.raises(ValueError) as info:
            load_champsim(path)
        assert ":2:" in str(info.value)

    def test_lackey_gaps_and_modify(self, tmp_path):
        path = tmp_path / "t.lackey"
        path.write_text(
            "I  0x400000,4\n"
            "I  0x400004,4\n"
            " L 0x1000,8\n"
            " M 0x2000,4\n"
            " S 0x3000,8\n"
        )
        trace = load_lackey(path)
        # M expands to load + zero-gap store; the two I lines become
        # the first data access's instruction gap.
        assert [a.kind for a in trace] == [LOAD, LOAD, STORE, STORE]
        assert trace[0].gap == 2
        assert trace[2].gap == 0

    def test_limit_truncates(self, tmp_path):
        path = self._write(tmp_path / "t.champsim")
        assert len(load_champsim(path, limit=2)) == 2

    def test_sniffing_dispatch(self, tmp_path):
        champ = self._write(tmp_path / "c.trace")
        lackey = tmp_path / "l.trace"
        lackey.write_text(" L 0x1000,8\n S 0x2000,4\n")
        assert sniff_text_format(champ) == "champsim"
        assert sniff_text_format(lackey) == "lackey"
        assert open_trace(champ).content_digest() == (
            load_champsim(champ).content_digest()
        )
        assert len(open_trace(lackey)) == 2

    def test_open_trace_reads_native_npz(self, tmp_path):
        original = build_workload("lucas", scale=0.02)
        path = tmp_path / "lucas.npz"
        save_trace(path, original)
        loaded = open_trace(path)
        assert loaded.content_digest() == original.content_digest()

    def test_fixture_spec_builds_and_fingerprints(self):
        spec = "champsim:%s" % FIXTURE
        trace = build_workload(spec)
        assert len(trace) == 4000
        assert workload_fingerprint(spec) not in ("builtin", "missing")

    def test_missing_file_fingerprint_is_sentinel(self):
        assert workload_fingerprint("champsim:/no/such/file") == "missing"


class TestBinaryChampsim:
    """ChampSim's native 64-byte ``input_instr`` record importer."""

    @staticmethod
    def _record(ip, dest=(), src=()):
        dest = tuple(dest) + (0,) * (2 - len(dest))
        src = tuple(src) + (0,) * (4 - len(src))
        return CHAMPSIM_RECORD.pack(ip, 0, 0, 1, 2, 3, 4, 5, 6,
                                    *dest, *src)

    def _write(self, path, compress=None):
        # Three instructions with no memory operands, then a 2-load
        # instruction, a pure gap instruction, and a store instruction.
        data = b"".join([
            self._record(0x400000),
            self._record(0x400004),
            self._record(0x400008),
            self._record(0x40000C, src=(0x1000, 0x2000)),
            self._record(0x400010),
            self._record(0x400014, dest=(0x3000,)),
        ])
        if compress == "gz":
            path.write_bytes(gzip.compress(data, mtime=0))
        elif compress == "xz":
            path.write_bytes(lzma.compress(data))
        else:
            path.write_bytes(data)
        return path

    @pytest.mark.parametrize("compress", [None, "gz", "xz"])
    def test_records_decode_with_instruction_gaps(self, tmp_path, compress):
        path = self._write(tmp_path / "t.trace", compress)
        assert sniff_binary_champsim(path)
        trace = load_champsim_binary(path)
        assert [a.address for a in trace] == [0x1000, 0x2000, 0x3000]
        assert [a.kind for a in trace] == [LOAD, LOAD, STORE]
        # Gap = preceding memory-less instructions, carried by the
        # first access of the next memory instruction only.
        assert [a.gap for a in trace] == [3, 0, 1]

    def test_text_front_doors_sniff_binary(self, tmp_path):
        path = self._write(tmp_path / "t.trace")
        binary = load_champsim_binary(path)
        # Both the champsim: spec loader and the open_trace sniffing
        # front door must route binary content to the binary decoder.
        assert (load_champsim(path).content_digest()
                == binary.content_digest())
        assert (open_trace(path).content_digest()
                == binary.content_digest())

    def test_text_traces_are_not_misdetected(self, tmp_path):
        text = tmp_path / "t.champsim"
        text.write_text("0x1000 R 8\n0x2000 W\n")
        assert not sniff_binary_champsim(text)
        assert len(load_champsim(text)) == 2

    def test_truncated_record_rejected(self, tmp_path):
        path = tmp_path / "t.trace"
        path.write_bytes(self._record(0x400000, src=(0x1000,))[:-8] * 2)
        with pytest.raises(ValueError, match="truncated"):
            load_champsim_binary(path)

    def test_limit_truncates(self, tmp_path):
        path = self._write(tmp_path / "t.trace")
        assert len(load_champsim_binary(path, limit=2)) == 2
        assert len(load_champsim(path, limit=2)) == 2

    def test_committed_fixture_loads_and_simulates(self):
        trace = build_workload("champsim:%s" % BINARY_FIXTURE)
        assert len(trace) == 132
        assert trace.content_digest() == (
            open_trace(str(BINARY_FIXTURE)).content_digest()
        )
        from repro.sim.simulator import Simulator

        result = Simulator(experiment_config(), "lru").run(trace)
        assert result.l2_misses > 0


class TestCDFGenerator:
    def test_deterministic_per_seed(self):
        first = build_workload("cdf(web_search,ops=4000,seed=7)")
        second = build_workload("cdf(web_search,ops=4000,seed=7)")
        other = build_workload("cdf(web_search,ops=4000,seed=8)")
        assert first.content_digest() == second.content_digest()
        assert first.content_digest() != other.content_digest()
        assert len(first) == 4000

    def test_distributions_differ(self):
        web = build_workload("cdf(web_search,ops=4000,seed=1)")
        mining = build_workload("cdf(data_mining,ops=4000,seed=1)")
        assert web.content_digest() != mining.content_digest()

    def test_scale_multiplies_ops(self):
        half = build_workload("cdf(web_search,ops=4000,seed=1)", scale=0.5)
        assert len(half) == 2000

    def test_unknown_distribution_rejected(self):
        with pytest.raises(WorkloadSpecError):
            parse_workload_spec("cdf(pareto)")


class TestComposition:
    def test_splice_concatenates(self):
        mcf = build_workload("mcf", scale=0.02)
        art = build_workload("art", scale=0.02)
        spliced = build_workload("splice(mcf,art)", scale=0.02)
        assert len(spliced) == len(mcf) + len(art)
        assert spliced[0] == mcf[0]
        assert spliced[len(mcf)] == art[0]

    def test_clip_takes_a_prefix(self):
        full = build_workload("mcf", scale=0.02)
        clipped = build_workload("mcf@0.5", scale=0.02)
        assert len(clipped) == len(full) // 2
        assert clipped[0] == full[0]

    def test_scale_operator_composes_with_run_scale(self):
        quarter = build_workload("scale(twolf,0.25)", scale=0.2)
        direct = build_workload("twolf", scale=0.05)
        assert quarter.content_digest() == direct.content_digest()

    def test_interleave_round_robin(self):
        mixed = build_workload("interleave(mcf,art,quantum=5)", scale=0.02)
        mcf = build_workload("mcf", scale=0.02)
        art = build_workload("art", scale=0.02)
        assert len(mixed) == len(mcf) + len(art)
        assert [mixed[i].address for i in range(5)] == [
            mcf[i].address for i in range(5)
        ]
        assert [mixed[5 + i].address for i in range(5)] == [
            art[i].address for i in range(5)
        ]

    def test_composed_builds_are_deterministic(self):
        spec = "interleave(splice(mcf@0.5,ammp),art,quantum=32)"
        first = build_workload(spec, scale=0.02)
        second = build_workload(spec, scale=0.02)
        assert first.content_digest() == second.content_digest()


class TestDeprecatedShim:
    def test_build_trace_warns_and_matches_registry(self):
        with pytest.deprecated_call():
            legacy = build_trace("mcf", scale=0.02)
        via_registry = parse_workload_spec("mcf").build_accesses(0.02)
        assert legacy == via_registry

    def test_seed_override_still_works(self):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            default = build_trace("mcf", scale=0.02)
            reseeded = build_trace("mcf", scale=0.02, seed=99)
        assert default != reseeded
        workload = parse_workload_spec("mcf(seed=99)")
        assert reseeded == workload.build_accesses(0.02)

    def test_seed_rejected_for_unseedable_specs(self):
        spec = "champsim:%s" % FIXTURE
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", DeprecationWarning)
            with pytest.raises(ValueError):
                build_trace(spec, seed=3)


class TestRunnerMemo:
    def test_spellings_share_the_trace_memo(self):
        first = packed_trace(" MCF ", scale=SCALE)
        assert packed_trace("mcf", scale=SCALE) is first
        assert len(runner._TRACE_CACHE) == 1

    def test_distinct_specs_never_alias(self):
        plain = packed_trace("mcf", scale=SCALE)
        clipped = packed_trace("mcf@0.5", scale=SCALE)
        seeded = packed_trace("mcf(seed=4)", scale=SCALE)
        digests = {
            plain.content_digest(),
            clipped.content_digest(),
            seeded.content_digest(),
        }
        assert len(digests) == 3
        assert len(runner._TRACE_CACHE) == 3


class TestStoreKeys:
    def test_aliased_spellings_share_a_key(self):
        config = experiment_config()
        assert store_key(" MCF ", "lru", SCALE, config) == (
            store_key("mcf", "lru", SCALE, config)
        )
        assert store_key(
            "interleave(mcf,art)", "lru", SCALE, config
        ) == store_key(
            "interleave(mcf,art,quantum=64)", "lru", SCALE, config
        )

    def test_distinct_specs_get_distinct_keys(self):
        config = experiment_config()
        keys = {
            store_key(spec, "lru", SCALE, config)
            for spec in (
                "mcf", "mcf@0.5", "mcf(seed=4)",
                "interleave(mcf,art)", "splice(mcf,art)",
                "cdf(web_search,ops=2000,seed=1)",
                "cdf(web_search,ops=2000,seed=2)",
            )
        }
        assert len(keys) == 7

    def test_keys_stable_across_processes(self):
        config = experiment_config()
        specs = ("interleave(mcf,art)", "champsim:%s" % FIXTURE)
        script = (
            "from repro.sim.store import store_key\n"
            "from repro.workloads import experiment_config\n"
            "for spec in %r:\n"
            "    print(store_key(spec, 'lru', %r, experiment_config()))\n"
            % (specs, SCALE)
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            cwd=str(Path(__file__).parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        child_keys = out.stdout.split()
        local_keys = [
            store_key(spec, "lru", SCALE, config) for spec in specs
        ]
        assert child_keys == local_keys

    def test_imported_trace_content_changes_the_key(self, tmp_path):
        path = tmp_path / "t.champsim"
        path.write_text("0x1000 R 4\n")
        config = experiment_config()
        before = store_key("champsim:%s" % path, "lru", SCALE, config)
        path.write_text("0x2000 R 4\n")
        after = store_key("champsim:%s" % path, "lru", SCALE, config)
        assert before != after


class TestSuiteAcceptance:
    """ISSUE acceptance: composed + imported specs through run_suite."""

    BENCHMARKS = ("interleave(mcf,art)", "champsim:%s" % FIXTURE)

    def test_serial_parallel_and_warm_rerun(self, tmp_path, monkeypatch):
        serial = run_suite(
            policies=("lru",), benchmarks=self.BENCHMARKS, scale=SCALE,
        )
        assert not serial.failures

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "par"))
        clear_cache()
        parallel = run_suite(
            policies=("lru",), benchmarks=self.BENCHMARKS, scale=SCALE,
            options=RunOptions(workers=2),
        )
        assert not parallel.failures
        for benchmark in self.BENCHMARKS:
            first = serial.result(benchmark, "lru")
            second = parallel.result(benchmark, "lru")
            for field in EXPORT_FIELDS:
                assert getattr(first, field) == getattr(second, field)

        clear_cache()  # memo gone; warm store must carry the rerun
        rerun = run_suite(
            policies=("lru",), benchmarks=self.BENCHMARKS, scale=SCALE,
            options=RunOptions(workers=2),
        )
        assert rerun.meta["cache"] == {"hits": 2, "misses": 0}

    def test_unknown_workload_is_a_cell_failure_not_a_crash(self):
        # Keys canonicalize the spec parent-side, so a bad benchmark
        # surfaces before any worker runs; it must degrade to a
        # per-cell failure exactly like an unknown policy spec.
        suite = run_suite(
            policies=("lru",), benchmarks=("lucas", "bogus-workload"),
            scale=SCALE, options=RunOptions(workers=2),
        )
        assert suite.result("lucas", "lru").instructions > 0
        assert "bogus-workload" in suite.failures
        assert "unknown workload" in suite.failures["bogus-workload"]["lru"]

    def test_built_traces_digest_identically_across_processes(self):
        script = (
            "from repro.workloads import build_workload\n"
            "for spec in %r:\n"
            "    print(build_workload(spec, scale=%r).content_digest())\n"
            % (self.BENCHMARKS, SCALE)
        )
        out = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True, text=True, check=True,
            cwd=str(Path(__file__).parent.parent),
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        local = [
            build_workload(spec, scale=SCALE).content_digest()
            for spec in self.BENCHMARKS
        ]
        assert out.stdout.split() == local
