"""Integration: telemetry through the runner, store, and worker pool.

The load-bearing guarantee: metric snapshots are pure functions of the
simulated work, so running the same grid serially or across a worker
pool merges to bit-identical snapshots — scheduling order, worker
count, and cache hits cannot leak into the numbers.
"""

from __future__ import annotations

import json
import os

import pytest

from repro import obs
from repro.sim import runner
from repro.sim.store import store_key
from repro.sim.suite import run_suite
from repro.workloads import experiment_config

POLICIES = ("lru", "lin(4)")
BENCHMARKS = ("mcf", "art")
SCALE = 0.05


@pytest.fixture(autouse=True)
def _metrics_on(tmp_path):
    """Enable metrics with a test-local store and a cold memo."""
    saved_store = os.environ.get("REPRO_CACHE_DIR")
    os.environ["REPRO_CACHE_DIR"] = str(tmp_path / "store")
    obs.configure(metrics=True)
    obs.reset_session()
    runner.clear_cache()
    yield
    obs.configure(metrics=False)
    obs.reset_session()
    runner.clear_cache()
    if saved_store is not None:
        os.environ["REPRO_CACHE_DIR"] = saved_store
    else:
        os.environ.pop("REPRO_CACHE_DIR", None)


def _fresh_suite(workers: int, store_dir: str):
    """Run the grid against its own cold store and cold memo."""
    os.environ["REPRO_CACHE_DIR"] = store_dir
    runner.clear_cache()
    return run_suite(
        policies=POLICIES,
        benchmarks=BENCHMARKS,
        scale=SCALE,
        workers=workers,
    )


class TestSerialParallelEquality:
    def test_merged_metrics_identical(self, tmp_path):
        serial = _fresh_suite(0, str(tmp_path / "serial"))
        single = _fresh_suite(1, str(tmp_path / "single"))
        parallel = _fresh_suite(4, str(tmp_path / "parallel"))
        reference = json.dumps(serial.merged_metrics(), sort_keys=True)
        assert serial.merged_metrics() is not None
        assert not single.failures and not parallel.failures
        assert json.dumps(single.merged_metrics(), sort_keys=True) == (
            reference
        )
        assert json.dumps(parallel.merged_metrics(), sort_keys=True) == (
            reference
        )

    def test_counters_cover_the_grid(self, tmp_path):
        suite = _fresh_suite(0, str(tmp_path / "serial2"))
        metrics = suite.merged_metrics()
        runs = metrics["counters"]["sim.runs"][""]
        assert runs == len(POLICIES) * len(BENCHMARKS)
        total_misses = sum(
            cell.demand_misses
            for row in suite.results.values()
            for cell in row.values()
        )
        assert metrics["counters"]["sim.demand_misses"][""] == total_misses


class TestMetricsThroughTheCaches:
    def test_snapshot_survives_store_round_trip(self):
        result = runner.run_policy("mcf", "lru", scale=SCALE)
        assert result.metrics is not None
        runner.clear_cache()  # force the persistent store path
        reloaded = runner.run_policy("mcf", "lru", scale=SCALE)
        assert json.dumps(reloaded.metrics, sort_keys=True) == json.dumps(
            result.metrics, sort_keys=True
        )
        assert reloaded.metrics["counters"]["sim.runs"][""] == 1

    def test_metrics_flag_is_part_of_the_keys(self):
        """Results computed with metrics off can't serve a metrics-on
        request (and vice versa): both cache keys include the flag."""
        config = experiment_config()
        key_on = store_key("mcf", "lru", SCALE, config)
        memo_on = runner._memo_key("mcf", "lru", SCALE, None, None)
        obs.configure(metrics=False)
        assert store_key("mcf", "lru", SCALE, config) != key_on
        assert runner._memo_key("mcf", "lru", SCALE, None, None) != memo_on

    def test_disabled_results_carry_no_metrics(self):
        obs.configure(metrics=False)
        runner.clear_cache()
        result = runner.run_policy("mcf", "lru", scale=SCALE)
        assert result.metrics is None


class TestSuiteJson:
    def test_to_json_embeds_merged_metrics(self, tmp_path):
        suite = _fresh_suite(0, str(tmp_path / "json-store"))
        payload = json.loads(suite.to_json())
        assert payload["metrics"]["counters"]["sim.runs"][""] == len(
            POLICIES
        ) * len(BENCHMARKS)
