"""Figure 6: the Contest-Based Selection decision table, demonstrated.

Figure 6 is a mechanism diagram, not a data figure, so this experiment
*demonstrates* it: a crafted access sequence drives one leader set of
an SBAR controller through all four (MTD, ATD) outcome combinations
and prints the PSEL trajectory next to the paper's table:

    ATD-LIN(=leader MTD)  ATD-LRU   action
    hit                   hit       PSEL unchanged
    miss                  miss      PSEL unchanged
    hit                   miss      PSEL += cost_q of the ATD miss
    miss                  hit       PSEL -= cost_q of the MTD miss
"""

from __future__ import annotations

from typing import Optional

from repro.cache.block import BlockState
from repro.cache.cache import AccessResult
from repro.experiments.common import Report
from repro.sbar.sbar import SBARController


def _mtd(hit: bool, cost_q: int, set_index: int) -> AccessResult:
    state = BlockState(0)
    state.cost_q = cost_q
    return AccessResult(hit, state, set_index)


def run(scale: Optional[float] = None, benchmarks=None) -> Report:
    report = Report(
        "figure6", "Figure 6: CBS decision table, demonstrated on one set"
    )
    controller = SBARController(n_sets=64, associativity=4, n_leaders=8)
    leader = min(controller.leaders)
    psel = controller.psel
    rows = []

    def log(case: str, action):
        before = psel.value
        pending = action()
        deferred = ""
        if pending is not None:
            pending(6)  # the miss gets serviced with cost_q = 6
            deferred = " (deferred)"
        rows.append((case, before, psel.value, deferred or "immediate"))

    # Case 1: both miss (cold set and cold ATD).
    log(
        "MTD miss / ATD miss",
        lambda: controller.observe_access(leader, 100, _mtd(False, 0, leader)),
    )
    # Block 100 is now in the ATD.  Case 2: both hit.
    log(
        "MTD hit  / ATD hit",
        lambda: controller.observe_access(leader, 100, _mtd(True, 5, leader)),
    )
    # Case 3: MTD hit, ATD miss (LIN kept a block LRU would have lost):
    # PSEL += cost_q from the MTD tag entry.
    log(
        "MTD hit  / ATD miss",
        lambda: controller.observe_access(leader, 200, _mtd(True, 5, leader)),
    )
    # Block 200 is now in the ATD.  Case 4: MTD miss, ATD hit (LRU kept
    # it, LIN lost it): PSEL -= the serviced miss's cost_q, deferred
    # until Algorithm 1 finishes integrating that miss.
    log(
        "MTD miss / ATD hit",
        lambda: controller.observe_access(leader, 200, _mtd(False, 0, leader)),
    )

    report.add_table(
        ["case", "PSEL before", "PSEL after", "update"], rows
    )
    report.add_note(
        "PSEL moves by the quantized MLP-based cost of the miss, not by\n"
        "1: the contest selects the policy with fewer *stall cycles*,\n"
        "not fewer misses (Section 6.1).  The deferred update in the\n"
        "last row is how the simulator waits for Algorithm 1 to finish\n"
        "integrating the miss it is charging."
    )
    return report
