"""Simulation facade: run a trace through the Table 2 machine.

:class:`~repro.sim.simulator.Simulator` wires the window model, cache
hierarchy, MSHR, and memory controller together and produces a
:class:`~repro.sim.stats.SimResult` with everything the paper's
evaluation reports: IPC, demand misses, the mlp-cost distribution
(Figure 2/5), delta predictability (Table 1), and per-interval phase
samples (Figure 11).
"""

from repro.sim.options import RunOptions
from repro.sim.simulator import Simulator, build_l2_policy
from repro.sim.stats import SimResult
from repro.sim.runner import run_policy, ipc_improvement

__all__ = [
    "Simulator",
    "SimResult",
    "RunOptions",
    "build_l2_policy",
    "run_policy",
    "ipc_improvement",
    "ResultStore",
    "default_store",
]

# repro.sim.parallel (Task/run_grid), repro.sim.suite (run_suite), and
# repro.sim.resilience/chaos are imported explicitly by users; keeping
# them out of this facade avoids paying multiprocessing imports on
# every ``import repro``.


def __getattr__(name):
    # Lazy re-export (PEP 562): importing the store here eagerly would
    # make ``python -m repro.sim.store`` (the GC/maintenance CLI) warn
    # about the module already being in sys.modules.
    if name in ("ResultStore", "default_store"):
        from repro.sim import store

        return getattr(store, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
