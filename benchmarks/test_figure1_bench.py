"""Regeneration benchmark for figure1 of the paper."""

from repro.experiments import figure1


def test_figure1(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(figure1), rounds=1, iterations=1
    )
    assert report.render()
