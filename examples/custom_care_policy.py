"""Plugging a custom cost-sensitive engine into CARE.

Figure 3(a) of the paper frames replacement as a pluggable Cost Aware
Replacement Engine: "CARE can consist of any generic cost-sensitive
scheme".  This example implements a new policy — a *cost-biased random*
scheme that evicts a uniformly random block among those below a cost_q
threshold — registers it in the policy registry, and races it against
LRU and LIN on the mcf surrogate.

Registration is the important part: once a class is registered, its
spec string works everywhere a built-in does — ``Simulator(config,
"cost-biased-random(7)")``, ``run_suite(policies=(...,))``, and the
``--policies`` flag of ``python -m repro.sim.suite``.

Run::

    python examples/custom_care_policy.py
"""

import random

from repro import available_policies, register_policy
from repro.cache.replacement import ReplacementPolicy
from repro.cache.sets import CacheSet
from repro.sim.suite import run_suite


@register_policy("cost-biased-random")
class CostBiasedRandomPolicy(ReplacementPolicy):
    """Evict a random block among the cheap ones.

    Blocks with ``cost_q >= threshold`` are shielded from eviction
    unless the whole set is expensive, in which case the policy
    degenerates to plain random.
    """

    def __init__(self, threshold: int = 4, seed: int = 0) -> None:
        self.threshold = threshold
        self.name = "cost-biased-random(%d)" % threshold
        self._rng = random.Random(seed)

    def choose_victim(self, cache_set: CacheSet) -> int:
        cheap = [
            position
            for position, state in enumerate(cache_set.ways)
            if state.cost_q < self.threshold
        ]
        candidates = cheap or list(range(len(cache_set.ways)))
        return self._rng.choice(candidates)


def main() -> None:
    print("registered policies:", ", ".join(available_policies()))
    suite = run_suite(
        policies=(
            "lru",
            "lin(4)",
            "cost-biased-random(4)",
            "cost-biased-random(7)",
        ),
        benchmarks=("mcf",),
        scale=0.5,
    )
    print()
    print(suite.to_text())
    print(
        "\nAny ReplacementPolicy subclass that reads cost_q from the tag\n"
        "entries is a valid CARE engine; LIN is just the paper's choice.\n"
        "register_policy makes it a first-class spec string: usable in\n"
        "run_suite matrices, both CLIs, and the persistent result store\n"
        "(keyed on the policy's own source, so edits invalidate cleanly)."
    )


if __name__ == "__main__":
    main()
