"""Tests for the surrogate engine and the 14 benchmark specs."""

import pytest

from repro.trace.record import LOAD, STORE
from repro.trace.synthetic import BURST_GAP, ISOLATING_GAP
from repro.workloads import BENCHMARKS, SPECS, build_trace
from repro.workloads.engine import (
    SurrogateSpec,
    _draw_thresholds,
    _skew_block,
    generate_surrogate,
)
from repro.workloads.spec2000 import (
    PAPER_FIG5,
    PAPER_FIG9_SBAR,
    PAPER_TABLE1,
    PAPER_TABLE3,
    experiment_config,
)

L2_BLOCKS = 1024
N_SETS = 64


def generate(spec, seed=0):
    return generate_surrogate(spec, L2_BLOCKS, N_SETS, seed=seed)


class TestEngine:
    def test_deterministic(self):
        spec = SurrogateSpec(accesses=500)
        assert generate(spec, seed=3) == generate(spec, seed=3)

    def test_seed_changes_trace(self):
        spec = SurrogateSpec(accesses=500)
        assert generate(spec, seed=1) != generate(spec, seed=2)

    def test_access_budget_respected(self):
        spec = SurrogateSpec(accesses=777)
        trace = generate(spec)
        assert len(trace) >= 777
        # At most one burst of overshoot.
        assert len(trace) <= 777 + max(spec.burst_sizes) + 3

    def test_isolated_accesses_have_big_gaps(self):
        spec = SurrogateSpec(
            accesses=300, mix_isolated=1.0, s_pool_factor=0.1,
            burst_sizes=(1,),
        )
        trace = generate(spec)
        assert all(a.gap >= ISOLATING_GAP for a in trace)

    def test_burst_structure(self):
        spec = SurrogateSpec(
            accesses=40, mix_isolated=0.0, burst_sizes=(4,),
            store_fraction=0.0,
        )
        trace = generate(spec)
        gaps = [a.gap for a in trace]
        # Pattern: big gap then three small gaps, repeated.
        for i in range(0, 40, 4):
            assert gaps[i] >= ISOLATING_GAP
            assert gaps[i + 1 : i + 4] == [BURST_GAP] * 3

    def test_store_fraction(self):
        spec = SurrogateSpec(accesses=2000, store_fraction=0.3)
        trace = generate(spec)
        stores = sum(1 for a in trace if a.kind == STORE)
        assert 0.2 < stores / len(trace) < 0.4

    def test_draw_thresholds_normalize_burst_weight(self):
        spec = SurrogateSpec(
            mix_isolated=0.5, burst_sizes=(10,), s_pool_factor=0.1
        )
        threshold_s, _, _, _ = _draw_thresholds(spec)
        # S draws must outnumber P draws 10:1 to yield equal accesses.
        assert threshold_s > 0.85

    def test_thresholds_reject_empty_spec(self):
        spec = SurrogateSpec(mix_isolated=0.0, burst_sizes=())
        with pytest.raises((ValueError, ZeroDivisionError)):
            _draw_thresholds(spec)

    def test_set_skew_restricts_sets(self):
        spec = SurrogateSpec(
            accesses=500, set_skew=(0.25, 0.5), mix_isolated=0.1,
            s_pool_factor=0.2,
        )
        trace = generate(spec)
        sets = {(a.address // 64) % N_SETS for a in trace}
        assert min(sets) >= N_SETS // 4
        assert max(sets) < N_SETS // 4 + N_SETS // 2

    def test_skew_block_preserves_distinctness(self):
        skew = (0.5, 0.25)
        mapped = {_skew_block(b, 256, skew) for b in range(10_000)}
        assert len(mapped) == 10_000

    def test_phases_alternate(self):
        a = SurrogateSpec(mix_isolated=1.0, s_pool_factor=0.1, burst_sizes=(1,))
        b = SurrogateSpec(mix_isolated=0.0, burst_sizes=(4,))
        spec = SurrogateSpec(accesses=200, phases=((a, 50), (b, 50)))
        trace = generate(spec)
        assert len(trace) >= 200
        # Phase A emits isolated singles; phase B emits bursts; both
        # traffic classes must be present.
        gaps = [a_.gap for a_ in trace]
        assert BURST_GAP in gaps and any(g >= ISOLATING_GAP for g in gaps)

    def test_scaled_shrinks_phases(self):
        a = SurrogateSpec()
        spec = SurrogateSpec(accesses=1000, phases=((a, 400),))
        scaled = spec.scaled(0.5)
        assert scaled.accesses == 500
        assert scaled.phases[0][1] == 200

    def test_p_random_stays_in_pool(self):
        spec = SurrogateSpec(
            accesses=400, p_random=True, p_pool_factor=0.5,
            mix_isolated=0.0, burst_sizes=(4,),
        )
        trace = generate(spec)
        pool = int(0.5 * L2_BLOCKS)
        namespace = 1 << 26
        for access in trace:
            block = access.address // 64
            assert namespace <= block < namespace + pool

    def test_traffic_classes_disjoint(self):
        spec = SurrogateSpec(
            accesses=3000, mix_isolated=0.2, s_pool_factor=0.2,
            transient_rate=0.1, mix_random=0.2, random_pool_factor=2.0,
        )
        trace = generate(spec)
        classes = set()
        for access in trace:
            block = (access.address // 64) % (1 << 26)
            if block >= (3 << 24):
                classes.add("random")
            elif block >= (1 << 25):
                classes.add("transient")
            elif block >= (1 << 24):
                classes.add("s")
            else:
                classes.add("p")
        assert classes == {"p", "s", "transient", "random"}


class TestBenchmarkRegistry:
    def test_fourteen_benchmarks(self):
        assert len(BENCHMARKS) == 14
        assert set(BENCHMARKS) == set(SPECS)

    def test_paper_metadata_complete(self):
        for name in BENCHMARKS:
            assert name in PAPER_FIG5
            assert name in PAPER_FIG9_SBAR
            assert name in PAPER_TABLE1
            assert name in PAPER_TABLE3

    def test_paper_table1_buckets_sum_to_100ish(self):
        for name, (low, mid, high, _) in PAPER_TABLE1.items():
            assert 90 <= low + mid + high <= 110, name

    def test_build_trace_deterministic(self):
        assert build_trace("mcf", scale=0.05) == build_trace("mcf", scale=0.05)

    def test_build_trace_scale(self):
        short = build_trace("art", scale=0.05)
        longer = build_trace("art", scale=0.1)
        assert len(longer) > len(short) * 1.5

    def test_unknown_benchmark(self):
        with pytest.raises(KeyError):
            build_trace("gcc")

    def test_experiment_config_keeps_table2_memory(self):
        config = experiment_config()
        assert config.memory.isolated_miss_latency == 444
        assert config.l2.associativity == 16
        assert config.mshr.n_entries == 32

    @pytest.mark.parametrize("name", BENCHMARKS)
    def test_every_surrogate_generates(self, name):
        trace = build_trace(name, scale=0.02)
        assert len(trace) > 100
        assert all(a.kind in (LOAD, STORE) for a in trace)
