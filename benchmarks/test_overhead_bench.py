"""Regeneration benchmark for the SBAR hardware-overhead accounting."""

from repro.experiments import overhead


def test_overhead(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(overhead), rounds=1, iterations=1
    )
    assert "1854" in report.render()
