"""Insertion-policy family: LIP, BIP, and set-dueling DIP.

An extension beyond the paper: Qureshi et al.'s follow-up work
("Adaptive Insertion Policies for High-Performance Caching", ISCA'07)
generalized SBAR's sampling idea into *set dueling*.  Implementing the
family here lets the harness compare the recency-axis adaptive scheme
(DIP) against the cost-axis one (LIN/SBAR):

* **LIP** — LRU Insertion Policy: fills go to the LRU position, so a
  block must be reused once to be promoted.  Defeats thrashing.
* **BIP** — Bimodal Insertion: LIP, except every ``1/epsilon``-th fill
  inserts at MRU, letting the working set migrate slowly.
* **DIP** — Dynamic Insertion: dedicated leader sets run LRU-insert
  and BIP respectively; a PSEL counter tracks which leader group
  misses less and the follower sets copy the winner.

Unlike CBS/SBAR, DIP's dueling needs no auxiliary tag directory at
all — the leader sets duel inside the main cache — but its PSEL counts
raw misses, not MLP-based cost.
"""

from __future__ import annotations

from typing import FrozenSet

from repro.cache.block import BlockState
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.sets import CacheSet
from repro.sbar.leader_sets import simple_static_leaders
from repro.sbar.psel import PolicySelector


class LIPPolicy(ReplacementPolicy):
    """LRU replacement with LRU-position insertion."""

    name = "lip"

    def choose_victim(self, cache_set: CacheSet) -> int:
        return len(cache_set.ways) - 1

    def on_fill(self, cache_set: CacheSet, state: BlockState) -> None:
        cache_set.insert_lru(state)


class BIPPolicy(ReplacementPolicy):
    """Bimodal insertion: LIP with an occasional MRU insertion.

    The MRU fills happen deterministically every ``1/epsilon`` fills
    (the hardware uses a simple counter too), keeping runs repeatable.
    """

    def __init__(self, epsilon: float = 1.0 / 32.0) -> None:
        if not 0.0 < epsilon <= 1.0:
            raise ValueError("epsilon must be in (0, 1]")
        self.period = max(1, round(1.0 / epsilon))
        self.name = "bip(1/%d)" % self.period
        self._fills = 0

    def choose_victim(self, cache_set: CacheSet) -> int:
        return len(cache_set.ways) - 1

    def on_fill(self, cache_set: CacheSet, state: BlockState) -> None:
        self._fills += 1
        if self._fills % self.period == 0:
            cache_set.insert_mru(state)
        else:
            cache_set.insert_lru(state)


class DIPController:
    """Set-dueling selection between LRU and BIP insertion.

    Presents the same controller interface the simulator uses for
    SBAR/CBS (``policy_for_set`` / ``observe_access`` /
    ``note_instructions``) so ``Simulator(..., policy="dip")`` works.
    """

    #: :meth:`note_instructions` is a no-op, so the simulator may skip
    #: the per-record call entirely.
    needs_instruction_clock = False

    def __init__(
        self,
        n_sets: int,
        associativity: int,
        n_leaders: int = 32,
        psel_bits: int = 10,
        epsilon: float = 1.0 / 32.0,
    ) -> None:
        del associativity  # dueling happens in the main directory
        n_leaders = min(n_leaders, n_sets // 2)
        self.n_sets = n_sets
        self.lru = LRUPolicy()
        self.bip = BIPPolicy(epsilon)
        self.psel = PolicySelector(psel_bits)
        # LRU leaders at the simple-static positions (set c of
        # constituency c); BIP leaders at the constituency-reversed
        # offset (set size-1-c of constituency c), which never collides
        # for even constituency sizes.
        constituency_size = n_sets // n_leaders
        self.lru_leaders: FrozenSet[int] = simple_static_leaders(
            n_sets, n_leaders
        )
        self.bip_leaders: FrozenSet[int] = frozenset(
            constituency * constituency_size + (constituency_size - 1 - constituency) % constituency_size
            for constituency in range(n_leaders)
        ) - self.lru_leaders
        self.deferred_updates = 0

    @property
    def name(self) -> str:
        return "dip(%d+%d leaders)" % (
            len(self.lru_leaders), len(self.bip_leaders)
        )

    def note_instructions(self, instr_index: int) -> None:
        """DIP has no epoch behavior; present for interface parity."""

    def policy_for_set(self, set_index: int) -> ReplacementPolicy:
        if set_index in self.lru_leaders:
            return self.lru
        if set_index in self.bip_leaders:
            return self.bip
        # MSB set means the LRU leaders are missing more: follow BIP.
        return self.bip if self.psel.msb else self.lru

    def observe_access(self, set_index: int, block: int, mtd_result):
        """Count leader-set misses; no deferred cost updates needed.

        ``mtd_result`` is the cache's AccessResult (typed loosely to
        avoid a circular import with the cache package).
        """
        if mtd_result.hit:
            return None
        if set_index in self.lru_leaders:
            self.psel.increment(1)
        elif set_index in self.bip_leaders:
            self.psel.decrement(1)
        return None
