"""Resilience-layer unit tests: backoff, breaker, journal, RunOptions.

The end-to-end fault-injection properties (digest equality under
chaos, resume, pool rebuild) live in ``tests/test_chaos.py``; this
file locks in the primitives those tests compose — all deterministic,
none needing a worker pool.
"""

import argparse
import importlib
import json
import re

import pytest

from repro.sim import common_cli
from repro.sim.chaos import ChaosConfig
from repro.sim.options import RunOptions, resolve_options
from repro.sim.parallel import Task, run_grid
from repro.sim.resilience import (
    CircuitBreaker,
    RunJournal,
    backoff_delay,
    journal_root,
    list_runs,
    load_journal,
    new_run_id,
)
from repro.sim.runner import clear_cache

SCALE = 0.05


@pytest.fixture(autouse=True)
def fresh_caches(tmp_path, monkeypatch):
    """Every test gets an empty memo, store, and journal directory."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
    clear_cache()
    yield
    clear_cache()


def _task(policy="lru"):
    return Task(benchmark="lucas", policy_spec=policy, scale=SCALE)


class TestBackoff:
    def test_deterministic_in_seed_label_attempt(self):
        delay = backoff_delay(0.05, 2.0, 1, "mcf/lru", seed=1)
        assert delay == backoff_delay(0.05, 2.0, 1, "mcf/lru", seed=1)
        assert delay != backoff_delay(0.05, 2.0, 1, "mcf/lin(4)", seed=1)
        assert delay != backoff_delay(0.05, 2.0, 1, "mcf/lru", seed=2)
        assert delay != backoff_delay(0.05, 2.0, 2, "mcf/lru", seed=1)

    def test_exponential_with_bounded_jitter(self):
        for attempt in range(1, 6):
            raw = 0.05 * 2 ** (attempt - 1)
            delay = backoff_delay(0.05, 100.0, attempt, "x")
            assert raw <= delay < 2 * raw

    def test_cap_and_degenerate_inputs(self):
        assert backoff_delay(0.05, 2.0, 30, "x") == 2.0
        assert backoff_delay(0.0, 2.0, 3, "x") == 0.0
        assert backoff_delay(-1.0, 2.0, 3, "x") == 0.0
        assert backoff_delay(0.05, 2.0, 0, "x") == 0.0


class TestCircuitBreaker:
    def test_opens_after_consecutive_failures_only(self):
        breaker = CircuitBreaker(2)
        assert not breaker.open
        breaker.record_pool_failure()
        assert not breaker.open
        breaker.record_healthy_round()  # resets the consecutive count
        breaker.record_pool_failure()
        assert not breaker.open
        breaker.record_pool_failure()
        assert breaker.open
        assert breaker.total_failures == 3

    def test_zero_threshold_disables(self):
        breaker = CircuitBreaker(0)
        for _ in range(10):
            breaker.record_pool_failure()
        assert not breaker.open


class TestRunJournal:
    def test_roundtrip(self):
        journal = RunJournal.create(
            run_id="run-test-0001", meta={"workers": 2, "tasks": 1}
        )
        task = _task()
        journal.task_started(task, 1)
        journal.task_failed(task, "Boom: no", "Traceback (fake)", 1)
        journal.task_started(task, 2)
        journal.task_finished(
            task, "abc123", cache_hit=False, resumed=False, wall=0.5,
            worker=321, attempts=2,
        )
        journal.run_finished(completed=1, failed=0, interrupted=False)

        state = load_journal("run-test-0001")
        assert state.run_id == "run-test-0001"
        assert state.meta["workers"] == 2
        assert state.meta["run_id"] == "run-test-0001"
        assert list(state.completed) == ["abc123"]
        record = state.completed["abc123"]
        assert record["attempts"] == 2
        assert record["worker"] == 321
        assert record["benchmark"] == "lucas"
        assert state.failed[0]["error"] == "Boom: no"
        assert state.failed[0]["traceback"] == "Traceback (fake)"
        assert state.finished and not state.interrupted

    def test_every_event_is_flushed(self):
        journal = RunJournal.create(run_id="run-test-flush")
        journal.task_started(_task(), 1)
        # No close(): the lines must already be durable on disk.
        lines = journal.path.read_text().strip().splitlines()
        assert len(lines) == 2
        assert json.loads(lines[0])["event"] == "run_started"
        assert json.loads(lines[1])["event"] == "task_started"
        journal.close()

    def test_torn_trailing_line_is_ignored(self):
        journal = RunJournal.create(run_id="run-test-torn")
        journal.task_finished(
            _task(), "key1", cache_hit=False, resumed=False, wall=0.1,
            worker=None, attempts=1,
        )
        journal.close()
        with open(journal.path, "a") as handle:
            handle.write('{"event": "task_fini')  # killed mid-write
        state = load_journal("run-test-torn")
        assert list(state.completed) == ["key1"]
        assert not state.finished

    def test_unknown_run_id_lists_known_runs(self):
        RunJournal.create(run_id="run-test-known").close()
        with pytest.raises(FileNotFoundError) as excinfo:
            load_journal("run-test-missing")
        assert "run-test-missing" in str(excinfo.value)
        assert "run-test-known" in str(excinfo.value)

    def test_list_runs_enumerates(self):
        assert list_runs() == []
        RunJournal.create(run_id="run-test-a").run_finished(0, 0)
        RunJournal.create(run_id="run-test-b").close()
        assert [s.run_id for s in list_runs()] == [
            "run-test-a", "run-test-b",
        ]

    def test_no_store_disables_journaling(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_STORE", "1")
        assert journal_root() is None
        assert RunJournal.create() is None
        assert list_runs() == []

    def test_new_run_id_shape(self):
        run_id = new_run_id()
        assert re.match(r"^run-\d{8}-\d{6}-[0-9a-f]{6}$", run_id)


class TestGridJournalIntegration:
    def test_run_grid_journals_and_reports_run_id(self):
        grid = run_grid([_task()], options=RunOptions(workers=1))
        assert grid.run_id
        state = load_journal(grid.run_id)
        assert state.finished and not state.interrupted
        assert len(state.completed) == 1
        record = next(iter(state.completed.values()))
        assert record["cache_hit"] is False
        assert record["attempts"] == 1

    def test_cache_hits_are_journaled_as_such(self):
        run_grid([_task()], options=RunOptions(workers=1))
        grid = run_grid([_task()], options=RunOptions(workers=1))
        record = next(iter(load_journal(grid.run_id).completed.values()))
        assert record["cache_hit"] is True
        assert record["attempts"] == 0

    def test_journal_false_disables(self):
        grid = run_grid(
            [_task()], options=RunOptions(workers=1, journal=False)
        )
        assert grid.run_id is None
        assert list_runs() == []

    def test_resume_requires_the_cache(self):
        with pytest.raises(ValueError, match="use_cache"):
            run_grid(
                [_task()],
                options=RunOptions(
                    workers=1, use_cache=False, resume="run-x"
                ),
            )

    def test_resume_unknown_run_raises(self):
        with pytest.raises(FileNotFoundError):
            run_grid(
                [_task()],
                options=RunOptions(workers=1, resume="run-nope"),
            )


class TestRunOptions:
    def test_frozen_with_replace(self):
        options = RunOptions(workers=4)
        with pytest.raises(Exception):
            options.workers = 8
        derived = options.replace(max_retries=3)
        assert derived.workers == 4 and derived.max_retries == 3
        assert options.max_retries == 1  # original untouched

    def test_resolve_passthrough(self):
        assert resolve_options(None, "caller") == RunOptions()
        options = RunOptions(workers=3)
        assert resolve_options(options, "caller") is options

    def test_resolve_legacy_kwargs_warn_and_map(self):
        with pytest.warns(DeprecationWarning, match="run_suite"):
            options = resolve_options(
                None, "run_suite", workers=4, use_cache=False,
                timeout=9.0, retries=2,
            )
        assert options.workers == 4
        assert options.use_cache is False
        assert options.deadline == 9.0
        assert options.max_retries == 2

    def test_mixing_legacy_and_options_raises(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_options(RunOptions(), "run_grid", workers=2)

    def test_kernel_defaults_to_auto(self):
        assert RunOptions().kernel == "auto"

    @pytest.mark.parametrize("kernel",
                             ["auto", "batched", "fused", "generic"])
    def test_kernel_accepts_ladder_names(self, kernel):
        assert RunOptions(kernel=kernel).kernel == kernel

    def test_kernel_rejects_unknown_name(self):
        with pytest.raises(ValueError, match="kernel"):
            RunOptions(kernel="vectorised")

    def test_kernel_never_in_memo_key(self):
        # Kernels are bit-identical by contract, so two option sets
        # that differ only in kernel must share one memo entry: the
        # second call is a cache hit, not a re-simulation.
        from repro.sim import runner
        first = runner.run_policy(
            "mcf", "lru", scale=0.05,
            options=RunOptions(kernel="fused"),
        )
        hits_before = runner._MEMO_HITS["memo_hits"]
        second = runner.run_policy(
            "mcf", "lru", scale=0.05,
            options=RunOptions(kernel="generic"),
        )
        assert second is first
        assert runner._MEMO_HITS["memo_hits"] == hits_before + 1


class TestCommonCli:
    def _parse(self, argv):
        parser = argparse.ArgumentParser(
            parents=[common_cli.execution_parent()]
        )
        return parser.parse_args(argv)

    def test_flags_map_to_run_options(self):
        args = self._parse([
            "--workers", "4", "--no-cache", "--max-retries", "3",
            "--deadline", "10", "--resume", "run-z",
            "--chaos", "crash=0.2,seed=7",
        ])
        options = common_cli.options_from_args(args)
        assert options.workers == 4
        assert options.use_cache is False
        assert options.max_retries == 3
        assert options.deadline == 10.0
        assert options.resume == "run-z"
        assert options.chaos == ChaosConfig(seed=7, crash_rate=0.2)

    def test_defaults_are_run_options_defaults(self):
        options = common_cli.options_from_args(self._parse([]))
        assert options == RunOptions()

    def test_deprecated_spellings_fold_with_warning(self):
        args = self._parse(["--timeout", "5", "--retries", "2"])
        with pytest.warns(DeprecationWarning):
            options = common_cli.options_from_args(args)
        assert options.deadline == 5.0
        assert options.max_retries == 2

    def test_explicit_flags_win_over_deprecated(self):
        args = self._parse(["--deadline", "7", "--timeout", "5"])
        with pytest.warns(DeprecationWarning):
            options = common_cli.options_from_args(args)
        assert options.deadline == 7.0

    def test_progress_flag_installs_printer(self):
        options = common_cli.options_from_args(self._parse(["--progress"]))
        assert options.progress is common_cli.progress_printer

    def test_kernel_flag_maps_to_options(self):
        options = common_cli.options_from_args(
            self._parse(["--kernel", "batched"])
        )
        assert options.kernel == "batched"
        assert common_cli.options_from_args(self._parse([])).kernel == "auto"

    def test_kernel_flag_rejects_unknown_name(self, capsys):
        with pytest.raises(SystemExit):
            self._parse(["--kernel", "vectorised"])
        assert "invalid choice" in capsys.readouterr().err

    @pytest.mark.parametrize("module", [
        "repro.sim.__main__",
        "repro.sim.suite",
        "repro.experiments.__main__",
        "repro.bench.__main__",
    ])
    def test_every_cli_exposes_the_shared_flags(self, module, capsys):
        mod = importlib.import_module(module)
        with pytest.raises(SystemExit):
            mod.main(["--help"])
        out = capsys.readouterr().out
        for flag in (
            "--workers", "--no-cache", "--progress", "--resume",
            "--max-retries", "--deadline", "--chaos",
            "--metrics-out", "--trace-events",
        ):
            assert flag in out, "%s missing %s" % (module, flag)

    def test_progress_printer_labels_sources(self, capsys):
        from repro.sim.parallel import TaskReport

        task = _task()
        cases = [
            (TaskReport(task=task, ok=True, cache_hit=True, resumed=True),
             "resume"),
            (TaskReport(task=task, ok=True, cache_hit=True), "cache"),
            (TaskReport(task=task, ok=True, worker=42), "worker 42"),
            (TaskReport(task=task, ok=False, error="x"), "FAILED"),
        ]
        for report, expected in cases:
            common_cli.progress_printer(report, 1, 4)
            assert expected in capsys.readouterr().err
