"""Regeneration benchmark for table2 of the paper."""

from repro.experiments import table2


def test_table2(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(table2), rounds=1, iterations=1
    )
    assert report.render()
