"""CLI for the repro job service: ``python -m repro serve / submit``.

Server side::

    python -m repro serve --workers 4                # long-lived daemon
    python -m repro serve --port 0 --inline --chaos "delay=0.5,seed=7"
    python -m repro serve --resume                   # replay crashed jobs

Client side::

    python -m repro submit --benchmarks mcf,art --policies lru,lin4 \\
        --scale 0.25 --watch
    python -m repro submit --status JOB_ID
    python -m repro submit --stats

``python -m repro.service`` is the same CLI (the umbrella delegates
here); ``demo`` is the self-checking end-to-end smoke used by CI.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
from typing import List, Optional

from repro.sim.common_cli import service_parent, umbrella_pointer
from repro.sim.options import RunOptions


def _csv(value: str) -> List[str]:
    items = [item.strip() for item in value.split(",")]
    return [item for item in items if item]


# -- serve --------------------------------------------------------------


def _add_serve_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "serve",
        parents=[service_parent()],
        help="run the job service daemon",
        description="Run the repro job service: accepts grid "
        "submissions over newline-delimited JSON on TCP, dedups "
        "overlapping cells, and executes them across worker slots.",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="worker slots (one process each; default: 2, 0 = CPUs)",
    )
    parser.add_argument(
        "--inline", action="store_true",
        help="thread-backed slots sharing this process (tests/demos)",
    )
    parser.add_argument(
        "--queue-limit", type=int, default=1024, metavar="N",
        help="global in-flight cell bound before queue-full rejections "
             "(default: 1024; 0 disables)",
    )
    parser.add_argument(
        "--tenant-quota", type=int, default=256, metavar="N",
        help="per-tenant in-flight cell quota (default: 256; "
             "0 disables)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="do not consult or populate the persistent result store",
    )
    parser.add_argument(
        "--max-retries", type=int, default=1, metavar="N",
        help="re-executions allowed per cell after a failure",
    )
    parser.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock budget (process slots only)",
    )
    parser.add_argument(
        "--chaos", metavar="SPEC", default=None,
        help="seeded fault injection applied to every cell "
             "(tests/CI only)",
    )
    parser.add_argument(
        "--kernel", default="auto",
        choices=("auto", "native", "batched", "fused", "generic"),
        help="replay kernel ceiling for executed cells",
    )
    parser.add_argument(
        "--trip-threshold", type=int, default=3, metavar="N",
        help="consecutive failures before a worker's circuit trips",
    )
    parser.add_argument(
        "--cooldown", type=int, default=8, metavar="TICKS",
        help="dispatch ticks a tripped worker sits out before a "
             "half-open probe",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="replay incomplete job journals from a previous service "
             "run before accepting new submissions",
    )
    parser.set_defaults(handler=_cmd_serve)


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service.server import JobService, ServiceConfig

    fields = {
        "use_cache": not args.no_cache,
        "max_retries": args.max_retries,
        "deadline": args.deadline,
        "kernel": args.kernel,
    }
    if args.chaos:
        from repro.sim.chaos import ChaosConfig

        fields["chaos"] = ChaosConfig.parse(args.chaos)
    config = ServiceConfig(
        host=args.host,
        port=args.port,
        workers=args.workers,
        inline=args.inline,
        queue_limit=args.queue_limit,
        tenant_quota=args.tenant_quota,
        options=RunOptions(**fields),
        trip_threshold=args.trip_threshold,
        cooldown=args.cooldown,
        resume=args.resume,
    )

    async def _serve() -> None:
        service = JobService(config)
        await service.start()
        print(
            "repro job service listening on %s:%d (%d %s slots)"
            % (config.host, service.port, len(service._slots),
               "thread" if config.inline else "process"),
            flush=True,
        )
        try:
            await service.serve_forever()
        finally:
            await service.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("interrupted; service stopped", file=sys.stderr)
    return 0


# -- submit / job ops ----------------------------------------------------


def _add_submit_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "submit",
        parents=[service_parent()],
        help="submit grids to a running service (and query jobs)",
        description="Submit a benchmarks x policies grid to a running "
        "job service, or query/watch/cancel an existing job.",
    )
    parser.add_argument(
        "--benchmarks", metavar="CSV", default=None,
        help="comma-separated benchmark specs to submit",
    )
    parser.add_argument(
        "--policies", metavar="CSV", default=None,
        help="comma-separated policy specs to submit",
    )
    parser.add_argument(
        "--scale", type=float, default=None,
        help="trace-length multiplier (default: server default)",
    )
    parser.add_argument(
        "--watch", action="store_true",
        help="stream per-cell progress until the job completes",
    )
    parser.add_argument(
        "--no-wait", action="store_true",
        help="return right after admission instead of waiting",
    )
    parser.add_argument(
        "--include-results", action="store_true",
        help="with --status/--result: include full result payloads",
    )
    parser.add_argument(
        "--status", metavar="JOB_ID", default=None,
        help="print a job snapshot instead of submitting",
    )
    parser.add_argument(
        "--watch-job", metavar="JOB_ID", default=None,
        help="stream an existing job's progress",
    )
    parser.add_argument(
        "--cancel", metavar="JOB_ID", default=None,
        help="cancel a job",
    )
    parser.add_argument(
        "--stats", action="store_true",
        help="print service counters/quotas/worker health",
    )
    parser.add_argument(
        "--ping", action="store_true",
        help="check the service is up and protocol-compatible",
    )
    parser.add_argument(
        "--shutdown", action="store_true",
        help="ask the service to shut down",
    )
    parser.set_defaults(handler=_cmd_submit)


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient, ServiceError, \
        print_events, submit

    client = ServiceClient(
        host=args.host, port=args.port, tenant=args.tenant
    )
    try:
        if args.ping:
            print(json.dumps(client.ping(), indent=2, sort_keys=True))
            return 0
        if args.stats:
            print(json.dumps(client.stats(), indent=2, sort_keys=True))
            return 0
        if args.shutdown:
            client.shutdown()
            print("service shutting down")
            return 0
        if args.status:
            job = client.result(
                args.status, include_results=args.include_results
            )
            print(json.dumps(job, indent=2, sort_keys=True))
            return 0 if job.get("status") in ("done", "running") else 1
        if args.watch_job:
            print_events(client.watch(args.watch_job))
            return 0
        if args.cancel:
            job = client.cancel(args.cancel)
            print(json.dumps(job, indent=2, sort_keys=True))
            return 0

        if not args.benchmarks or not args.policies:
            print(
                "error: --benchmarks and --policies are required to "
                "submit (or use --status/--stats/--ping)",
                file=sys.stderr,
            )
            return 2
        benchmarks = _csv(args.benchmarks)
        policies = _csv(args.policies)
        if args.watch:
            job_id = client.submit(
                benchmarks, policies, scale=args.scale
            )
            print("job %s submitted" % job_id)
            print_events(client.watch(job_id))
            job = client.status(job_id)
        else:
            job = submit(
                benchmarks, policies, scale=args.scale,
                host=args.host, port=args.port, tenant=args.tenant,
                wait=not args.no_wait,
            )
            print(json.dumps(job, indent=2, sort_keys=True))
        return 0 if job.get("status") in ("done", "running") else 1
    except ServiceError as exc:
        hint = (
            " (retry in %.1fs)" % exc.retry_after_s
            if exc.retry_after_s else ""
        )
        print("service error %s%s" % (exc, hint), file=sys.stderr)
        return 1
    except ConnectionRefusedError:
        print(
            "error: no job service at %s:%d (start one with "
            "'python -m repro serve')" % (args.host, args.port),
            file=sys.stderr,
        )
        return 1


# -- demo ----------------------------------------------------------------


def _add_demo_parser(subparsers) -> None:
    parser = subparsers.add_parser(
        "demo",
        help="self-checking end-to-end smoke (used by CI)",
        description="Start a throwaway service, submit two overlapping "
        "grids from two concurrent clients, and verify that shared "
        "cells executed once and both clients received bit-identical "
        "digests matching a serial baseline.",
    )
    parser.add_argument(
        "--benchmarks", metavar="CSV", default="mcf,art",
        help="demo benchmarks (default: mcf,art)",
    )
    parser.add_argument(
        "--policies", metavar="CSV", default="lru,lin(4)",
        help="demo policies (default: lru,lin(4))",
    )
    parser.add_argument(
        "--scale", type=float, default=0.05,
        help="trace scale for the demo cells (default: 0.05)",
    )
    parser.add_argument(
        "--workers", type=int, default=2,
        help="worker slots for the demo service (default: 2)",
    )
    parser.add_argument(
        "--chaos", metavar="SPEC", default="delay=0.5,delay-s=0.05,seed=7",
        help="fault injection for the demo service (default adds "
             "seeded delays so the second submission overlaps the "
             "first in flight)",
    )
    parser.set_defaults(handler=_cmd_demo)


def _cmd_demo(args: argparse.Namespace) -> int:
    import os
    import tempfile
    import threading

    from repro.service.client import ServiceClient
    from repro.service.server import ServiceConfig, serve_in_thread
    from repro.sim.chaos import ChaosConfig
    from repro.sim.runner import clear_cache, run_policy
    from repro.sim.store import result_digest

    benchmarks = _csv(args.benchmarks)
    policies = _csv(args.policies)
    chaos = ChaosConfig.parse(args.chaos) if args.chaos else None

    with tempfile.TemporaryDirectory(prefix="repro-demo-") as tmp:
        service_dir = os.path.join(tmp, "service")
        serial_dir = os.path.join(tmp, "serial")
        saved = os.environ.get("REPRO_CACHE_DIR")
        os.environ["REPRO_CACHE_DIR"] = service_dir
        handle = serve_in_thread(ServiceConfig(
            port=0,
            workers=args.workers,
            inline=False,
            options=RunOptions(chaos=chaos),
        ))
        port = handle.port
        print("demo service on 127.0.0.1:%d" % port)
        try:
            snapshots = {}

            def run_client(name: str) -> None:
                client = ServiceClient(port=port, tenant=name)
                job_id = client.submit(
                    benchmarks, policies, scale=args.scale
                )
                snapshots[name] = client.wait(job_id)

            # Two concurrent tenants submit the SAME grid; seeded
            # delays keep cells in flight long enough for the second
            # submission to attach to the first's executions.
            threads = [
                threading.Thread(target=run_client, args=(name,))
                for name in ("alice", "bob")
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

            stats = ServiceClient(port=port).stats()
            ServiceClient(port=port).shutdown()
        finally:
            handle.stop()
            if saved is None:
                os.environ.pop("REPRO_CACHE_DIR", None)
            else:
                os.environ["REPRO_CACHE_DIR"] = saved

        alice, bob = snapshots.get("alice"), snapshots.get("bob")
        failures = []
        if not alice or not bob:
            failures.append("a demo client never finished")
        else:
            if alice["status"] != "done" or bob["status"] != "done":
                failures.append(
                    "job status: alice=%s bob=%s (wanted done)"
                    % (alice["status"], bob["status"])
                )
            if alice.get("digest") != bob.get("digest") or not alice.get(
                "digest"
            ):
                failures.append(
                    "digest mismatch: alice=%s bob=%s"
                    % (alice.get("digest"), bob.get("digest"))
                )
            executed = stats["counters"]["cells_executed"]
            unique = len(benchmarks) * len(policies)
            if executed != unique:
                failures.append(
                    "expected %d executed cells, saw %d (dedup broken?)"
                    % (unique, executed)
                )
            shared = (
                stats["counters"]["cells_deduped"]
                + stats["counters"]["cells_store_hits"]
            )
            if shared != unique:
                failures.append(
                    "expected %d shared cells across tenants, saw %d"
                    % (unique, shared)
                )

            # Serial baseline against a second fresh store: the service
            # digests must match byte-for-byte what run_policy computes.
            os.environ["REPRO_CACHE_DIR"] = serial_dir
            clear_cache()
            try:
                for benchmark in benchmarks:
                    for policy in policies:
                        result = run_policy(
                            benchmark, policy, scale=args.scale
                        )
                        label = "%s/%s" % (benchmark, policy)
                        want = result_digest(result.to_dict())
                        got = alice["cells"][label]["digest"]
                        if got != want:
                            failures.append(
                                "cell %s: service digest %s != serial "
                                "digest %s" % (label, got, want)
                            )
            finally:
                if saved is None:
                    os.environ.pop("REPRO_CACHE_DIR", None)
                else:
                    os.environ["REPRO_CACHE_DIR"] = saved
                clear_cache()

    if failures:
        for failure in failures:
            print("DEMO FAIL: %s" % failure, file=sys.stderr)
        return 1
    print(
        "demo ok: %d cells executed once, both tenants saw digest %s"
        % (len(benchmarks) * len(policies), alice["digest"])
    )
    return 0


# -- entry ---------------------------------------------------------------


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.service",
        description="Distributed simulation job service: one server, "
        "many tenants, deduplicated execution over a shared "
        "content-addressed result store.",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    _add_serve_parser(subparsers)
    _add_submit_parser(subparsers)
    _add_demo_parser(subparsers)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command in ("serve", "submit"):
        umbrella_pointer(args.command)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
