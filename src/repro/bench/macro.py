"""Macro-benchmarks: full-trace simulation runs.

Times complete :class:`repro.sim.simulator.Simulator` runs across the
figure1/sensitivity workload surrogates and the policy families the
experiments sweep most (plain LRU, the paper's LIN, and the SBAR/CBS
dueling controllers).  Each entry also embeds the run's key simulation
results — those are machine-independent, so two reports from different
hosts must agree on them even though their timings differ; a mismatch
means the kernel changed behavior, not just speed.

Each entry additionally records whether the run took the fused replay
loop (``fused``): a silent fall-back to the generic loop would
otherwise masquerade as a timing regression.  Traces are packed once
per workload and shared across the policy cells.
"""

from __future__ import annotations

from time import perf_counter
from typing import Dict, List, Sequence

from repro.sim.simulator import Simulator
from repro.workloads import build_workload, experiment_config

#: Workloads × policies timed by ``run_macro`` (and ``make bench``).
#: ehc/awrp track the Belady-approximation and weight-ranking
#: newcomers' generic/fused-loop cost from the day they landed.
MACRO_WORKLOADS = ("mcf", "art")
MACRO_POLICIES = (
    "lru", "lin(4)", "sbar", "cbs-global", "cbs-local", "ehc", "awrp",
)


def macro_result_fields(result) -> Dict[str, object]:
    """The machine-independent result payload embedded per cell."""
    return {
        "l2_misses": result.l2_misses,
        "cycles": result.cycles,
        "demand_misses": result.demand_misses,
        "stall_cycles": result.stall_cycles,
    }


def simulate_cell(
    workload: str, policy: str, scale: float, kernel: str = "auto"
):
    """Run one macro cell untimed; returns (SimResult, fused_replay).

    This is the re-simulation entry point the report ``--check`` mode
    uses: identical machine setup to the timed cells, so the embedded
    result fields must reproduce exactly on any host.  ``kernel`` is
    the replay-kernel ceiling to request; results are bit-identical
    across kernels by contract.
    """
    trace = build_workload(workload, scale=scale)
    sim = Simulator(experiment_config(), policy, kernel=kernel)
    result = sim.run(trace)
    return result, sim.fused_replay


def run_macro(
    scale: float = 0.5,
    repeat: int = 2,
    quick: bool = False,
    workloads: Sequence[str] = MACRO_WORKLOADS,
    policies: Sequence[str] = MACRO_POLICIES,
    kernel: str = "auto",
) -> List[Dict[str, object]]:
    """Time full simulation runs; returns one entry per (workload, policy).

    ``quick`` shrinks the traces and skips repetition for smoke tests;
    otherwise each cell reports best-of-``repeat`` wall time after one
    untimed warm-up run (first-run interpreter effects dominate
    otherwise).  ``kernel`` is the replay-kernel ceiling every cell
    requests (recorded per entry); call once per kernel to build a
    kernel-comparison report.  Repetitions are *interleaved* round-robin across the
    cells rather than run back-to-back per cell: machine noise is often
    sustained over many seconds, and consecutive repeats of one cell
    would all land in the same slow window while another cell gets all
    the quiet ones.
    """
    if quick:
        scale = 0.05
        repeat = 1
    config = experiment_config()
    entries: List[Dict[str, object]] = []
    for workload in workloads:
        trace = build_workload(workload, scale=scale)
        accesses = len(trace)
        for policy in policies:
            if not quick:
                Simulator(config, policy, kernel=kernel).run(trace)
            entries.append({
                "workload": workload,
                "policy": policy,
                "accesses": accesses,
                "scale": scale,
                "seconds": float("inf"),
                "accesses_per_sec": 0.0,
                "fused": False,
                "kernel": kernel,
                "kernel_used": "generic",
                "result": None,
                "_trace": trace,
            })
    for _ in range(repeat):
        for entry in entries:
            sim = Simulator(config, entry["policy"], kernel=kernel)
            start = perf_counter()
            result = sim.run(entry["_trace"])
            elapsed = perf_counter() - start
            if elapsed < entry["seconds"]:
                entry["seconds"] = elapsed
                entry["accesses_per_sec"] = entry["accesses"] / elapsed
                entry["fused"] = sim.fused_replay
                entry["kernel_used"] = sim.replay_kernel
                entry["result"] = macro_result_fields(result)
    for entry in entries:
        del entry["_trace"]
    return entries
