"""Tests for cache sets, the tag store, and the sparse ATD."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.block import BlockState
from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement import LINPolicy, LRUPolicy
from repro.cache.sets import CacheSet
from repro.cache.tag_directory import SparseTagDirectory
from repro.config import CacheGeometry


class TestBlockState:
    def test_defaults(self):
        state = BlockState(42)
        assert state.block == 42
        assert not state.dirty
        assert state.cost_q == 0

    def test_repr_shows_dirty_flag(self):
        state = BlockState(1)
        state.dirty = True
        assert "D" in repr(state)


class TestCacheSet:
    def test_recency_values(self):
        cache_set = CacheSet(4)
        # MRU position 0 has the highest recency value (paper's R).
        assert cache_set.recency(0) == 3
        assert cache_set.recency(3) == 0

    def test_insert_and_find(self):
        cache_set = CacheSet(2)
        cache_set.insert_mru(BlockState(10))
        cache_set.insert_mru(BlockState(20))
        assert cache_set.find(20) == 0
        assert cache_set.find(10) == 1
        assert cache_set.find(99) == -1

    def test_touch_moves_to_mru(self):
        cache_set = CacheSet(3)
        for block in (1, 2, 3):
            cache_set.insert_mru(BlockState(block))
        cache_set.touch(2)  # block 1
        assert [w.block for w in cache_set.ways] == [1, 3, 2]

    def test_insert_into_full_set_raises(self):
        cache_set = CacheSet(1)
        cache_set.insert_mru(BlockState(1))
        with pytest.raises(RuntimeError):
            cache_set.insert_mru(BlockState(2))

    def test_evict(self):
        cache_set = CacheSet(2)
        cache_set.insert_mru(BlockState(1))
        cache_set.insert_mru(BlockState(2))
        victim = cache_set.evict(1)
        assert victim.block == 1
        assert len(cache_set) == 1

    def test_zero_associativity_rejected(self):
        with pytest.raises(ValueError):
            CacheSet(0)


class TestSetAssociativeCache:
    def geometry(self):
        return CacheGeometry(4 * 2 * 64, 64, 2, 1)  # 4 sets x 2 ways

    def test_miss_then_hit(self):
        cache = SetAssociativeCache(self.geometry(), LRUPolicy())
        assert not cache.access(5).hit
        assert cache.access(5).hit
        assert cache.hits == 1
        assert cache.misses == 1

    def test_set_mapping(self):
        cache = SetAssociativeCache(self.geometry(), LRUPolicy())
        assert cache.set_index(5) == 1
        assert cache.set_index(9) == 1  # 9 % 4

    def test_lru_eviction_order(self):
        cache = SetAssociativeCache(self.geometry(), LRUPolicy())
        cache.access(0)
        cache.access(4)
        result = cache.access(8)  # third block in set 0 evicts LRU (0)
        assert result.victim_block == 0

    def test_hit_refreshes_recency(self):
        cache = SetAssociativeCache(self.geometry(), LRUPolicy())
        cache.access(0)
        cache.access(4)
        cache.access(0)  # refresh block 0
        result = cache.access(8)
        assert result.victim_block == 4

    def test_dirty_victim_flagged_for_writeback(self):
        cache = SetAssociativeCache(self.geometry(), LRUPolicy())
        cache.access(0, is_write=True)
        cache.access(4)
        result = cache.access(8)
        assert result.victim_block == 0
        assert result.victim_dirty
        assert cache.writebacks == 1

    def test_compulsory_tracking(self):
        cache = SetAssociativeCache(self.geometry(), LRUPolicy())
        assert cache.access(0).compulsory
        cache.access(4)
        cache.access(8)  # evicts 0
        result = cache.access(0)  # miss again, but not compulsory
        assert not result.hit
        assert not result.compulsory
        assert cache.compulsory_misses == 3

    def test_invalidate(self):
        cache = SetAssociativeCache(self.geometry(), LRUPolicy())
        cache.access(0)
        assert cache.invalidate(0)
        assert not cache.invalidate(0)
        assert not cache.access(0).hit

    def test_contains_does_not_touch_recency(self):
        cache = SetAssociativeCache(self.geometry(), LRUPolicy())
        cache.access(0)
        cache.access(4)
        assert cache.contains(0)
        result = cache.access(8)
        assert result.victim_block == 0  # contains() didn't refresh it

    def test_policy_selector_overrides_policy(self):
        lin = LINPolicy(4)
        lru = LRUPolicy()
        seen = []

        def selector(set_index):
            seen.append(set_index)
            return lin if set_index == 0 else lru

        cache = SetAssociativeCache(
            self.geometry(), lru, policy_selector=selector
        )
        cache.access(0)
        cache.access(1)
        assert seen == [0, 1]

    def test_miss_rate(self):
        cache = SetAssociativeCache(self.geometry(), LRUPolicy())
        assert cache.miss_rate == 0.0
        cache.access(0)
        cache.access(0)
        assert cache.miss_rate == 0.5

    @settings(max_examples=50, deadline=None)
    @given(st.lists(st.integers(min_value=0, max_value=63), min_size=1, max_size=300))
    def test_invariants_under_random_access(self, blocks):
        cache = SetAssociativeCache(self.geometry(), LRUPolicy())
        for block in blocks:
            cache.access(block)
        # No set exceeds associativity; no duplicate blocks anywhere.
        resident = cache.resident_blocks()
        assert len(resident) <= cache.geometry.n_blocks
        for set_index in range(cache.n_sets):
            ways = cache.set_state(set_index).ways
            assert len(ways) <= cache.geometry.associativity
            assert len({w.block for w in ways}) == len(ways)
            for way in ways:
                assert way.block % cache.n_sets == set_index
        # The most recent block is resident and hits.
        assert cache.access(blocks[-1]).hit


class TestSparseTagDirectory:
    def test_shadows_only_given_sets(self):
        atd = SparseTagDirectory([0, 2], 2, LRUPolicy())
        assert atd.shadows(0)
        assert not atd.shadows(1)
        assert atd.n_sets == 2
        assert atd.n_entries == 4

    def test_hit_miss_protocol(self):
        atd = SparseTagDirectory([0], 2, LRUPolicy())
        assert not atd.access(0, 100).hit
        assert atd.access(0, 100).hit
        assert atd.hits == 1
        assert atd.misses == 1

    def test_internal_victimization(self):
        atd = SparseTagDirectory([0], 2, LRUPolicy())
        atd.access(0, 1)
        atd.access(0, 2)
        result = atd.access(0, 3)
        assert result.victim_block == 1

    def test_unshadowed_set_raises(self):
        atd = SparseTagDirectory([0], 2, LRUPolicy())
        with pytest.raises(KeyError):
            atd.access(1, 5)
