"""Regeneration benchmark for the sensitivity extension experiment."""

from repro.experiments import sensitivity


def test_sensitivity(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(sensitivity), rounds=1, iterations=1
    )
    assert report.render()
