"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation prints a small result table alongside its timing:

* lambda sweep beyond the paper's 1-4 (does more cost weighting help?)
* cost-quantization granularity (3-bit cost_q vs exact cost)
* shared cost adders (footnote 3: 4 adders vs one per entry)
* PSEL width sensitivity
* the CostThreshold CARE variant vs LIN
"""

from dataclasses import replace

from repro.cache.replacement import CostThresholdPolicy, LINPolicy
from repro.config import MSHRConfig
from repro.sbar.sbar import SBARController
from repro.sim.simulator import Simulator
from repro.workloads import build_workload, experiment_config

SCALE = 0.25
BENCH = "mcf"


def _run(policy, config=None, bench=BENCH):
    config = config or experiment_config()
    return Simulator(config, policy).run(build_workload(bench, scale=SCALE))


def _print(capsys, title, rows):
    with capsys.disabled():
        print("\n[ablation] %s" % title)
        for label, value in rows:
            print("    %-28s %s" % (label, value))


def test_lambda_sweep_extended(benchmark, capsys):
    def run():
        baseline = _run("lru")
        rows = []
        for lam in (0, 1, 2, 4, 8, 16):
            result = _run("lin(%d)" % lam)
            gain = 100 * (result.ipc - baseline.ipc) / baseline.ipc
            rows.append(("lambda=%d" % lam, "%+.1f%% IPC" % gain))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, "LIN lambda sweep (mcf)", rows)


def test_shared_adders_vs_ideal(benchmark, capsys):
    def run():
        ideal = _run("lin(4)")
        shared_config = replace(
            experiment_config(), mshr=MSHRConfig(32, n_cost_adders=4)
        )
        shared = _run("lin(4)", config=shared_config)
        return [
            ("ideal adders IPC", "%.4f" % ideal.ipc),
            ("4 shared adders IPC", "%.4f" % shared.ipc),
            (
                "IPC delta",
                "%.3f%%" % (100 * abs(shared.ipc - ideal.ipc) / ideal.ipc),
            ),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, "footnote 3: shared cost adders (negligible)", rows)


def test_care_cost_threshold_vs_lin(benchmark, capsys):
    def run():
        baseline = _run("lru")
        rows = []
        for policy in (LINPolicy(4), CostThresholdPolicy(4), CostThresholdPolicy(8)):
            result = _run(policy)
            gain = 100 * (result.ipc - baseline.ipc) / baseline.ipc
            rows.append((policy.name, "%+.1f%% IPC" % gain))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, "CARE engines: LIN vs depth-limited cost threshold", rows)


def test_psel_width_sensitivity(benchmark, capsys):
    def run():
        config = experiment_config()
        baseline = _run("lru", bench="ammp")
        rows = []
        for bits in (4, 6, 8):
            controller = SBARController(
                config.l2.n_sets, config.l2.associativity,
                n_leaders=16, psel_bits=bits,
            )
            result = _run(controller, bench="ammp")
            gain = 100 * (result.ipc - baseline.ipc) / baseline.ipc
            rows.append(("PSEL %d bits" % bits, "%+.1f%% IPC" % gain))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, "PSEL width (ammp)", rows)


def test_leader_count_sweep(benchmark, capsys):
    def run():
        config = experiment_config()
        baseline = _run("lru", bench="parser")
        rows = []
        for leaders in (4, 8, 16, 32, 64):
            controller = SBARController(
                config.l2.n_sets, config.l2.associativity,
                n_leaders=leaders,
            )
            result = _run(controller, bench="parser")
            gain = 100 * (result.ipc - baseline.ipc) / baseline.ipc
            rows.append(("%d leaders" % leaders, "%+.1f%% IPC" % gain))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, "leader-count sweep (parser, SBAR vs LRU)", rows)


def test_hardware_fidelity_plru(benchmark, capsys):
    """True-LRU recency vs tree-PLRU, with and without cost awareness."""

    def run():
        baseline = _run("lru")
        rows = []
        for policy in ("plru", "lin(4)", "cost-plru"):
            result = _run(policy)
            gain = 100 * (result.ipc - baseline.ipc) / baseline.ipc
            rows.append((policy, "%+.1f%% IPC" % gain))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, "hardware fidelity: LRU stack vs PLRU tree (mcf)", rows)


def test_row_buffer_dram(benchmark, capsys):
    """Flat 400-cycle DRAM vs the open-page row-buffer refinement."""
    from repro.config import MemoryConfig

    def run():
        flat = _run("lru", bench="art")
        row_config = replace(
            experiment_config(), memory=MemoryConfig(row_buffer=True)
        )
        rows_result = _run("lru", config=row_config, bench="art")
        return [
            ("flat DRAM IPC", "%.4f" % flat.ipc),
            ("row-buffer DRAM IPC", "%.4f" % rows_result.ipc),
            ("flat avg mlp-cost", "%.0f" % flat.avg_mlp_cost),
            ("row-buffer avg mlp-cost", "%.0f" % rows_result.avg_mlp_cost),
        ]

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    _print(capsys, "DRAM model: flat vs open-page row buffer (art)", rows)
