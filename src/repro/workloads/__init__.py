"""SPEC CPU2000 surrogate workloads.

The paper evaluates on 14 SPEC CPU2000 SimPoint slices.  Without the
Alpha binaries and reference inputs, each benchmark is replaced by a
parameterized synthetic *surrogate* whose generator is tuned to the
benchmark's published fingerprint:

* the mlp-cost distribution shape of Figure 2 (burst sizes and the
  isolated-access fraction),
* the delta predictability of Table 1 (context noise: blocks whose
  parallelism context changes between visits),
* the working-set-vs-cache relationship that determines whether LIN
  helps (mcf, vpr, art, ...) or hurts (bzip2, parser, mgrid), and
* phase structure (ammp's two alternating phases, Section 7.1).

``build_trace(name)`` produces the surrogate trace;
``experiment_config()`` is the Table 2 machine with the L2 scaled to
256 KB so that working-set effects converge within Python-feasible
trace lengths (see DESIGN.md section 2).
"""

from repro.workloads.engine import SurrogateSpec, generate_surrogate
from repro.workloads.spec2000 import (
    BENCHMARKS,
    PAPER_FIG5,
    PAPER_FIG9_SBAR,
    PAPER_TABLE1,
    PAPER_TABLE3,
    SPECS,
    build_trace,
    experiment_config,
)

__all__ = [
    "SurrogateSpec",
    "generate_surrogate",
    "SPECS",
    "BENCHMARKS",
    "build_trace",
    "experiment_config",
    "PAPER_TABLE1",
    "PAPER_TABLE3",
    "PAPER_FIG5",
    "PAPER_FIG9_SBAR",
]
