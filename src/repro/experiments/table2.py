"""Table 2: the baseline machine configuration.

Prints both the faithful Table 2 machine and the experiment-scaled
variant used by the benchmark surrogates (256 KB L2; see DESIGN.md).
"""

from __future__ import annotations

from typing import Optional

from repro.config import MachineConfig, baseline_config
from repro.experiments.common import Report
from repro.workloads import experiment_config


def _describe(config: MachineConfig):
    memory = config.memory
    return [
        ("issue width", config.processor.issue_width),
        ("instruction window", config.processor.window_size),
        ("store buffer", config.processor.store_buffer_size),
        ("L1I", _cache_line(config.l1i)),
        ("L1D", _cache_line(config.l1d)),
        ("L2", _cache_line(config.l2)),
        ("MSHR entries", config.mshr.n_entries),
        ("DRAM banks", memory.n_banks),
        ("DRAM access latency", "%d cycles" % memory.dram_access_latency),
        ("bus delay / occupancy", "%d / %d cycles" % (memory.bus_delay, memory.bus_occupancy)),
        ("isolated miss latency", "%d cycles" % memory.isolated_miss_latency),
        ("max outstanding requests", memory.max_outstanding),
    ]


def _cache_line(geometry) -> str:
    return "%dKB, %dB lines, %d-way, %d sets, %d-cycle hit" % (
        geometry.size_bytes // 1024,
        geometry.line_bytes,
        geometry.associativity,
        geometry.n_sets,
        geometry.hit_latency,
    )


def run(scale: Optional[float] = None, benchmarks=None) -> Report:
    report = Report("table2", "Table 2: baseline processor configuration")
    report.add_note("Faithful Table 2 machine:")
    report.add_table(["parameter", "value"], _describe(baseline_config()))
    report.add_note(
        "Experiment machine (L2 scaled so working-set effects converge\n"
        "within Python-feasible trace lengths; everything else identical):"
    )
    report.add_table(["parameter", "value"], _describe(experiment_config()))
    return report
