"""Tests pinning down the optimized simulation kernel.

The PR 3 speedup rests on three load-bearing invariants:

* ``CacheSet._index[state.block] is state`` for exactly the entries in
  ``ways`` (the dict-backed residency index);
* the ``try_hit``/``hit_fast``/``miss_fill`` fast-path protocol applies
  byte-for-byte the same side effects as the generic ``access``;
* the fused replay loop in ``Simulator._replay_fused`` produces
  bit-identical :class:`SimResult` payloads to the generic loop.
"""

import random
from unittest import mock

import pytest

from repro import obs
from repro.cache.block import BlockState
from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.replacement.lin import LINPolicy
from repro.cache.replacement.lru import LRUPolicy
from repro.cache.sets import CacheSet
from repro.config import CacheGeometry
from repro.sim.simulator import Simulator
from repro.trace.packed import pack_trace
from repro.trace.record import Access
from repro.workloads import build_trace, experiment_config


class TestCacheSetIndex:
    def test_randomized_ops_keep_index_coherent(self):
        rng = random.Random(20060617)
        cache_set = CacheSet(8)
        reference = []  # mirror of ways maintained with plain list ops
        next_block = 0
        for _ in range(5000):
            op = rng.randrange(6)
            if op == 0 and len(reference) < 8:
                state = BlockState(next_block, next_block)
                next_block += 1
                cache_set.insert_mru(state)
                reference.insert(0, state)
            elif op == 1 and len(reference) < 8:
                state = BlockState(next_block, next_block)
                next_block += 1
                cache_set.insert_lru(state)
                reference.append(state)
            elif op == 2 and len(reference) < 8:
                state = BlockState(next_block, next_block)
                next_block += 1
                position = rng.randrange(len(reference) + 1)
                cache_set.insert_at(position, state)
                if position >= len(reference):
                    reference.append(state)
                else:
                    reference.insert(position, state)
            elif op == 3 and reference:
                position = rng.randrange(len(reference))
                assert cache_set.evict(position) is reference.pop(position)
            elif op == 4 and reference:
                position = rng.randrange(len(reference))
                state = cache_set.touch(position)
                assert state is reference.pop(position)
                reference.insert(0, state)
            elif op == 5:
                probe = rng.randrange(next_block + 1)
                expected = next(
                    (i for i, s in enumerate(reference) if s.block == probe),
                    -1,
                )
                assert cache_set.find(probe) == expected
                resident = cache_set.get(probe)
                if expected == -1:
                    assert resident is None
                else:
                    assert resident is reference[expected]
            assert cache_set.ways == reference
            assert cache_set.index_coherent()

    def test_cache_access_stream_keeps_every_set_coherent(self):
        rng = random.Random(7)
        cache = SetAssociativeCache(CacheGeometry(4096, 64, 4, 2), LRUPolicy())
        resident = set()
        for _ in range(3000):
            block = rng.randrange(200)
            if rng.random() < 0.1:
                assert cache.invalidate(block) == (block in resident)
                resident.discard(block)
            else:
                result = cache.access(block, is_write=rng.random() < 0.3)
                assert result.hit == (block in resident)
                resident.add(block)
                if result.victim_block is not None:
                    resident.discard(result.victim_block)
            assert cache.contains(block) == (block in resident)
        for set_index in range(cache.n_sets):
            assert cache.set_state(set_index).index_coherent()
        assert cache.resident_blocks() == resident


class TestFastPathProtocol:
    def _twin_caches(self):
        geometry = CacheGeometry(2048, 64, 4, 2)
        return (
            SetAssociativeCache(geometry, LRUPolicy()),
            SetAssociativeCache(geometry, LRUPolicy()),
        )

    def test_fast_path_matches_generic_access(self):
        fast, generic = self._twin_caches()
        assert fast.is_plain()
        rng = random.Random(42)
        for _ in range(4000):
            block = rng.randrange(96)
            is_write = rng.random() < 0.25
            expected = generic.access(block, is_write)
            if not fast.hit_fast(block, is_write):
                state, victim, compulsory = fast.miss_fill(block, is_write)
                assert not expected.hit
                assert state.block == expected.state.block
                victim_block = victim.block if victim is not None else None
                assert victim_block == expected.victim_block
                assert compulsory == expected.compulsory
            else:
                assert expected.hit
        for field in ("accesses", "hits", "misses", "compulsory_misses",
                      "writebacks"):
            assert getattr(fast, field) == getattr(generic, field), field
        assert fast.resident_blocks() == generic.resident_blocks()
        for set_index in range(fast.n_sets):
            assert (fast.set_state(set_index).snapshot()
                    == generic.set_state(set_index).snapshot())

    def test_try_hit_declines_when_not_plain(self):
        cache, _ = self._twin_caches()
        cache.access(0)
        assert cache.try_hit(0)
        cache.policy_selector = lambda set_index: cache.policy
        assert not cache.is_plain()
        assert not cache.try_hit(0)  # declined, not a miss

    def test_instance_access_patch_disables_fast_path(self):
        cache, _ = self._twin_caches()
        assert cache.is_plain()
        # attach_classifier-style instrumentation rebinds the bound
        # method on the instance; the fast path must stand down.
        cache.access = SetAssociativeCache.access.__get__(cache)
        assert not cache.is_plain()


class TestVictimIsLruTailFlag:
    def test_flag_values(self):
        assert LRUPolicy.victim_is_lru_tail is True
        assert LINPolicy.victim_is_lru_tail is False
        assert ReplacementPolicy.victim_is_lru_tail is False

    def test_subclass_inherits_until_choose_victim_changes(self):
        class RenamedLRU(LRUPolicy):
            name = "renamed-lru"

        assert RenamedLRU.victim_is_lru_tail is True

        class NotTailLRU(LRUPolicy):
            name = "not-tail-lru"

            def choose_victim(self, cache_set):
                return 0

        # Overriding choose_victim without redeclaring the flag must
        # reset it: the fused loop would otherwise evict the wrong way.
        assert NotTailLRU.victim_is_lru_tail is False


class TestFusedReplayDifferential:
    def test_fused_matches_generic_loop(self):
        trace = build_trace("mcf", scale=0.05)
        for policy in ("lru", "lin(4)", "sbar", "dip"):
            # kernel="fused" pins the ladder rung: under "auto" a
            # packed trace would take the batched kernel and the spy
            # below would never fire.
            fused_sim = Simulator(experiment_config(), policy,
                                  kernel="fused")
            with mock.patch.object(
                Simulator, "_replay_fused", wraps=fused_sim._replay_fused
            ) as fused_spy:
                fused = fused_sim.run(trace)
            assert fused_spy.called, policy  # really took the fused loop
            assert fused_sim.fused_replay, policy
            generic_sim = Simulator(experiment_config(), policy)
            # An instance-level ``access`` binding makes the L2 fail
            # ``is_plain`` and forces _replay down the generic loop
            # while changing no behavior.
            generic_sim.l2.access = SetAssociativeCache.access.__get__(
                generic_sim.l2
            )
            generic = generic_sim.run(trace)
            assert not generic_sim.fused_replay, policy
            assert fused.to_dict() == generic.to_dict(), policy


class TestBatchedReplayDifferential:
    """The PR 8 batched kernel: three-way kernel equivalence.

    ``_replay_batched`` must produce bit-identical :class:`SimResult`
    payloads to the fused loop and the generic loop for every policy
    family it admits, and the kernel ladder must degrade exactly one
    rung at a time: a requested kernel is a *ceiling*, never a demand.
    """

    POLICIES = ("lru", "lin(4)", "sbar", "cbs-global", "ehc", "awrp")

    @pytest.mark.parametrize("policy", POLICIES)
    def test_batched_matches_fused_and_generic(self, policy):
        trace = pack_trace(build_trace("mcf", scale=0.05))
        # kernel="batched" pins the rung: under "auto" a host with the
        # compiled extension would take the native kernel instead.
        batched_sim = Simulator(experiment_config(), policy,
                                kernel="batched")
        with mock.patch.object(
            Simulator, "_replay_batched",
            wraps=batched_sim._replay_batched,
        ) as batched_spy:
            batched = batched_sim.run(trace)
        assert batched_spy.called, policy  # really took the batched kernel
        assert batched_sim.batched_replay, policy
        assert batched_sim.replay_kernel == "batched", policy

        fused_sim = Simulator(experiment_config(), policy, kernel="fused")
        fused = fused_sim.run(trace)
        assert fused_sim.replay_kernel == "fused", policy
        assert not fused_sim.batched_replay, policy

        generic_sim = Simulator(experiment_config(), policy,
                                kernel="generic")
        generic = generic_sim.run(trace)
        assert generic_sim.replay_kernel == "generic", policy
        assert not generic_sim.fused_replay, policy

        assert batched.to_dict() == fused.to_dict(), policy
        assert batched.to_dict() == generic.to_dict(), policy
        if batched_sim.controller is not None:
            assert (controller_fingerprint(batched_sim.controller)
                    == controller_fingerprint(fused_sim.controller)), policy
            assert (controller_fingerprint(batched_sim.controller)
                    == controller_fingerprint(generic_sim.controller)), \
                policy

    def test_list_trace_falls_back_to_fused(self):
        # The batched kernel needs the numpy column views of a
        # PackedTrace; a list trace drops one rung even when batched
        # is requested explicitly.
        sim = Simulator(experiment_config(), "lru", kernel="batched")
        sim.run(build_trace("mcf", scale=0.05))
        assert sim.fused_replay
        assert not sim.batched_replay
        assert sim.replay_kernel == "fused"

    def test_wrong_path_records_fall_back_to_fused(self):
        trace = build_trace("mcf", scale=0.05)
        trace[3] = Access(trace[3].address, trace[3].kind, trace[3].gap,
                          wrong_path=True)
        sim = Simulator(experiment_config(), "lru", kernel="batched")
        sim.run(pack_trace(trace))
        assert sim.fused_replay
        assert not sim.batched_replay

    def test_observer_forces_generic_loop_same_results(self):
        trace = pack_trace(build_trace("mcf", scale=0.05))
        observed_sim = Simulator(
            experiment_config(), "lru", kernel="batched",
            observer=obs.Observer(events=obs.MemoryEventTrace()),
        )
        observed = observed_sim.run(trace)
        assert not observed_sim.fused_replay
        assert not observed_sim.batched_replay
        assert observed_sim.replay_kernel == "generic"
        batched_sim = Simulator(experiment_config(), "lru",
                                kernel="batched")
        batched = batched_sim.run(trace)
        assert batched_sim.batched_replay
        assert observed.to_dict() == batched.to_dict()

    def test_warmup_falls_back_to_fused(self):
        trace = pack_trace(build_trace("mcf", scale=0.05))
        warm_sim = Simulator(experiment_config(), "lru", kernel="batched",
                             warmup_instructions=1000)
        warm = warm_sim.run(trace)
        assert warm_sim.fused_replay
        assert not warm_sim.batched_replay
        plain_sim = Simulator(experiment_config(), "lru", kernel="fused",
                              warmup_instructions=1000)
        plain = plain_sim.run(trace)
        assert warm.to_dict() == plain.to_dict()

    def test_unknown_kernel_rejected(self):
        with pytest.raises(ValueError, match="kernel"):
            Simulator(experiment_config(), "lru", kernel="vectorized")

    def test_kernel_never_changes_results_across_ladder(self):
        # One policy, every requested kernel: identical SimResult —
        # the contract that keeps `kernel` out of memo/store keys.
        trace = pack_trace(build_trace("art", scale=0.05))
        results = {}
        for kernel in ("auto", "native", "batched", "fused", "generic"):
            sim = Simulator(experiment_config(), "sbar", kernel=kernel)
            results[kernel] = sim.run(trace).to_dict()
        assert all(r == results["auto"] for r in results.values())


def controller_fingerprint(controller):
    """Every externally visible dueling-controller counter.

    The fused fast paths must leave SBAR/CBS in *exactly* the state the
    method-call path leaves them in — not just produce equal SimResults
    — or a later epoch/report would diverge.
    """
    fingerprint = {"deferred_updates": controller.deferred_updates}
    for name in ("atd_lru", "atd_lin"):
        atd = getattr(controller, name, None)
        if atd is not None:
            fingerprint[name] = (
                atd.accesses, atd.hits, atd.misses, atd._seq,
                {index: atd.set_state(index).snapshot()
                 for index in sorted(atd._sets)},
            )
    psels = getattr(controller, "_psels", None)
    if psels is None:
        psels = [controller.psel]
    fingerprint["psels"] = [
        (psel.value, psel.increments, psel.decrements) for psel in psels
    ]
    for name in ("follower_lin_accesses", "follower_lru_accesses"):
        if hasattr(controller, name):
            fingerprint[name] = getattr(controller, name)
    return fingerprint


class TestDuelingFastPathDifferential:
    """The PR 4 dueling fast paths: SBAR/CBS inlined into the fused loop.

    Matrix required by the issue: {sbar, cbs-local, cbs-global} ×
    {packed trace, Access list} × {observer off, observer on}, always
    compared against the generic per-call loop — results *and*
    controller state bit-identical.
    """

    DUELING = ("sbar", "cbs-local", "cbs-global")

    @staticmethod
    def _generic_run(policy, trace):
        sim = Simulator(experiment_config(), policy)
        sim.l2.access = SetAssociativeCache.access.__get__(sim.l2)
        result = sim.run(trace)
        assert not sim.fused_replay
        return sim, result

    @pytest.mark.parametrize("policy", DUELING)
    def test_fast_path_matches_generic(self, policy):
        trace = build_trace("mcf", scale=0.05)
        fused_sim = Simulator(experiment_config(), policy)
        fused = fused_sim.run(pack_trace(trace))
        assert fused_sim.fused_replay, policy
        generic_sim, generic = self._generic_run(policy, trace)
        assert fused.to_dict() == generic.to_dict(), policy
        assert (controller_fingerprint(fused_sim.controller)
                == controller_fingerprint(generic_sim.controller)), policy

    @pytest.mark.parametrize("policy", DUELING)
    def test_list_and_packed_traces_agree(self, policy):
        trace = build_trace("art", scale=0.05)
        on_list = Simulator(experiment_config(), policy).run(trace)
        on_packed = Simulator(experiment_config(), policy).run(
            pack_trace(trace)
        )
        assert on_list.to_dict() == on_packed.to_dict(), policy

    @pytest.mark.parametrize("policy", DUELING)
    def test_observer_forces_generic_loop_same_results(self, policy):
        trace = build_trace("mcf", scale=0.05)
        observed_sim = Simulator(
            experiment_config(), policy,
            observer=obs.Observer(events=obs.MemoryEventTrace()),
        )
        observed = observed_sim.run(pack_trace(trace))
        # An observer must disable the fused loop entirely...
        assert not observed_sim.fused_replay, policy
        plain_sim = Simulator(experiment_config(), policy)
        plain = plain_sim.run(trace)
        assert plain_sim.fused_replay, policy
        # ...without changing a single simulated number.
        assert observed.to_dict() == plain.to_dict(), policy
        assert (controller_fingerprint(observed_sim.controller)
                == controller_fingerprint(plain_sim.controller)), policy

    def test_patched_controller_declines_fast_path_but_matches(self):
        trace = build_trace("mcf", scale=0.05)
        patched_sim = Simulator(experiment_config(), "sbar")
        controller = patched_sim.controller
        # attach-style instrumentation rebinds the bound method on the
        # instance; the dueling fast path must stand down to the
        # per-call controller path (the loop itself stays fused).
        controller.observe_access = type(controller).observe_access.__get__(
            controller
        )
        patched = patched_sim.run(pack_trace(trace))
        assert patched_sim.fused_replay
        plain_sim = Simulator(experiment_config(), "sbar")
        plain = plain_sim.run(trace)
        assert patched.to_dict() == plain.to_dict()
        assert (controller_fingerprint(patched_sim.controller)
                == controller_fingerprint(plain_sim.controller))
