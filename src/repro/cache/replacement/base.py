"""Replacement-policy protocol.

A policy is a stateless-per-set strategy object: the cache owns the
recency ordering (:class:`~repro.cache.sets.CacheSet` keeps ways MRU
first) and consults the policy at the three interesting moments: hit,
victim selection, and fill.  Policies that need global knowledge
(Belady's OPT) additionally observe every access through
:meth:`ReplacementPolicy.note_access`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

from repro.cache.block import BlockState
from repro.cache.sets import CacheSet


class ReplacementPolicy(ABC):
    """Strategy interface consulted by :class:`SetAssociativeCache`."""

    #: Short name used in reports ("lru", "lin(4)", ...).
    name = "abstract"

    def note_access(self, block: int, seq: int) -> None:
        """Observe an access before the lookup happens.

        Only policies with oracle or global state need this; the default
        does nothing.
        """

    def on_hit(self, cache_set: CacheSet, position: int) -> None:
        """React to a hit at ``position``; default is move-to-MRU."""
        cache_set.touch(position)

    @abstractmethod
    def choose_victim(self, cache_set: CacheSet) -> int:
        """Return the position of the block to evict from a full set."""

    def on_fill(self, cache_set: CacheSet, state: BlockState) -> None:
        """Install a newly fetched block; default is insert at MRU."""
        cache_set.insert_mru(state)

    def __repr__(self) -> str:
        return "<%s %s>" % (type(self).__name__, self.name)
