"""Shared experiment runner with per-process result caching.

Most figures reuse the same (benchmark, policy) simulations — Figure 4
needs LIN(1..4) and LRU, Figure 9 reuses LRU and LIN(4) and adds SBAR —
so results are memoized on (benchmark, policy-spec, scale).
"""

from __future__ import annotations

import os
from typing import Dict, Optional, Tuple

from repro.config import MachineConfig
from repro.sim.simulator import Simulator
from repro.sim.stats import SimResult

_CACHE: Dict[Tuple, SimResult] = {}


def trace_scale() -> float:
    """Global trace-length multiplier, settable via REPRO_SCALE.

    Benchmarks default to 1.0; set e.g. ``REPRO_SCALE=4`` for longer,
    more converged runs, or ``0.25`` for a quick smoke pass.
    """
    return float(os.environ.get("REPRO_SCALE", "1.0"))


def run_policy(
    benchmark: str,
    policy_spec: str,
    scale: Optional[float] = None,
    config: Optional[MachineConfig] = None,
    phase_interval: Optional[int] = None,
    use_cache: bool = True,
) -> SimResult:
    """Simulate one benchmark surrogate under one policy.

    ``policy_spec`` is a :func:`repro.sim.simulator.build_l2_policy`
    string.  Results are cached per process unless ``use_cache=False``
    or a custom config / phase sampling is requested.
    """
    from repro import workloads  # deferred: workloads import the sim layer

    if scale is None:
        scale = trace_scale()
    cacheable = use_cache and config is None and phase_interval is None
    key = (benchmark, policy_spec, scale)
    if cacheable and key in _CACHE:
        return _CACHE[key]

    if config is None:
        config = workloads.experiment_config()
    trace = workloads.build_trace(benchmark, scale=scale)
    simulator = Simulator(config, policy_spec, phase_interval=phase_interval)
    result = simulator.run(trace)
    if cacheable:
        _CACHE[key] = result
    return result


def ipc_improvement(result: SimResult, baseline: SimResult) -> float:
    """Percent IPC improvement over a baseline run (the figures' y-axis)."""
    if baseline.ipc <= 0:
        return 0.0
    return 100.0 * (result.ipc - baseline.ipc) / baseline.ipc


def miss_change(result: SimResult, baseline: SimResult) -> float:
    """Percent change in demand misses relative to a baseline run."""
    if baseline.demand_misses == 0:
        return 0.0
    return (
        100.0
        * (result.demand_misses - baseline.demand_misses)
        / baseline.demand_misses
    )


def clear_cache() -> None:
    """Drop memoized results (tests use this for isolation)."""
    _CACHE.clear()
