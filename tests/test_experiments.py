"""Tests for the experiment harness: every report builds and renders.

Data-driven experiments run on a drastically reduced benchmark subset
and trace scale so the whole file stays fast; the full regeneration
targets live in benchmarks/.
"""

import pytest

from repro.experiments import EXPERIMENTS
from repro.experiments.common import (
    Report,
    fmt_pct,
    histogram_bar,
    resolve_benchmarks,
)
from repro.sim.runner import clear_cache

TINY = dict(scale=0.05, benchmarks=["mcf", "parser"])


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


class TestCommon:
    def test_report_renders_tables(self):
        report = Report("x", "Title")
        report.add_table(["a", "bb"], [(1, 2.5), ("row", None)])
        text = report.render()
        assert "Title" in text
        assert "2.5" in text
        assert "-" in text  # None cell

    def test_fmt_pct(self):
        assert fmt_pct(19.0) == "+19%"
        assert fmt_pct(-3.3) == "-3.3%"
        assert fmt_pct(0.0) == "0.0%"
        assert fmt_pct(3.3, signed=False) == "3.3%"

    def test_histogram_bar_monotone(self):
        assert len(histogram_bar(50)) > len(histogram_bar(10))
        assert histogram_bar(0) == ""

    def test_resolve_benchmarks_default(self):
        assert len(resolve_benchmarks(None)) == 14

    def test_resolve_benchmarks_validates(self):
        with pytest.raises(KeyError):
            resolve_benchmarks(["nonsense"])


class TestRegistry:
    def test_paper_coverage(self):
        # Every table and figure of the evaluation has an experiment.
        for name in (
            "figure1", "figure2", "figure3", "figure4", "figure5",
            "figure8", "figure9", "figure10", "figure11",
            "table1", "table2", "table3", "cbs", "overhead",
        ):
            assert name in EXPERIMENTS

    def test_all_modules_expose_run(self):
        for module in EXPERIMENTS.values():
            assert callable(module.run)


class TestCheapExperiments:
    def test_figure3(self):
        text = EXPERIMENTS["figure3"].run().render()
        assert "420+ cycles" in text

    def test_figure8(self):
        text = EXPERIMENTS["figure8"].run().render()
        assert "p=0.9" in text

    def test_table2(self):
        text = EXPERIMENTS["table2"].run().render()
        assert "1024KB" in text or "1024 KB" in text.replace("KB", " KB")

    def test_overhead(self):
        text = EXPERIMENTS["overhead"].run().render()
        assert "1854" in text


class TestDataDrivenExperiments:
    def test_figure2(self):
        text = EXPERIMENTS["figure2"].run(**TINY).render()
        assert "mcf" in text and "420+" in text

    def test_table1(self):
        text = EXPERIMENTS["table1"].run(**TINY).render()
        assert "parser" in text

    def test_table3(self):
        text = EXPERIMENTS["table3"].run(**TINY).render()
        assert "compulsory" in text

    def test_figure4(self):
        text = EXPERIMENTS["figure4"].run(**TINY).render()
        assert "LIN(4)" in text

    def test_figure5(self):
        text = EXPERIMENTS["figure5"].run(**TINY).render()
        assert "dMISS" in text

    def test_figure9(self):
        text = EXPERIMENTS["figure9"].run(**TINY).render()
        assert "SBAR" in text

    def test_figure10(self):
        text = EXPERIMENTS["figure10"].run(
            scale=0.05, benchmarks=["mcf"]
        ).render()
        assert "static/8" in text

    def test_figure11(self):
        text = EXPERIMENTS["figure11"].run(scale=0.2).render()
        assert "IPC" in text and "lin(4)" in text

    def test_cbs(self):
        text = EXPERIMENTS["cbs"].run(
            scale=0.05, benchmarks=["mcf"]
        ).render()
        assert "cbs-global" in text


class TestFigure1Exact:
    def test_paper_numbers_reproduced_exactly(self):
        from repro.experiments.figure1 import PAPER, simulate_policy

        for policy, (paper_misses, paper_stalls) in PAPER.items():
            misses, stalls = simulate_policy(policy)
            assert misses == pytest.approx(paper_misses, abs=0.05), policy
            assert stalls == pytest.approx(paper_stalls, abs=0.05), policy
