"""Surrogate calibration validation.

The surrogates are tuned to the paper's published fingerprints; this
module makes the tuning contract executable.  For every benchmark it
checks, against the ``PAPER_*`` reference data:

* the **sign** of the LIN(4) IPC effect (win / loss / neutral),
* SBAR's contract (keeps wins, bounds losses),
* the Table 1 separation (losers' average delta far above winners'),

and reports per-benchmark fidelity scores.  The paper-claims test
suite asserts the hard requirements; ``python -m repro.experiments
calibration`` prints the full scorecard for humans.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.sim.runner import ipc_improvement, miss_change, run_policy
from repro.workloads.spec2000 import PAPER_FIG5, PAPER_FIG9_SBAR, PAPER_TABLE1

#: |IPC effect| below this is treated as "neutral" when comparing signs.
NEUTRAL_BAND = 1.5


@dataclass(frozen=True)
class BenchmarkFidelity:
    """Fidelity of one surrogate against the paper's fingerprint."""

    benchmark: str
    lin_ipc_measured: float
    lin_ipc_paper: float
    lin_miss_measured: float
    lin_miss_paper: float
    sbar_ipc_measured: float
    sbar_ipc_paper: float
    delta_avg_measured: float

    @property
    def lin_sign_matches(self) -> bool:
        return _signs_compatible(self.lin_ipc_measured, self.lin_ipc_paper)

    @property
    def sbar_sign_matches(self) -> bool:
        return _signs_compatible(self.sbar_ipc_measured, self.sbar_ipc_paper)

    @property
    def sbar_bounds_loss(self) -> bool:
        """SBAR must never lose much more than the paper's SBAR."""
        return self.sbar_ipc_measured > min(
            -8.0, self.sbar_ipc_paper - 8.0
        )

    @property
    def lin_magnitude_ratio(self) -> Optional[float]:
        """measured/paper effect size; None when the paper effect ~0."""
        if abs(self.lin_ipc_paper) < NEUTRAL_BAND:
            return None
        return self.lin_ipc_measured / self.lin_ipc_paper


def _signs_compatible(measured: float, paper: float) -> bool:
    if abs(paper) < NEUTRAL_BAND or abs(measured) < NEUTRAL_BAND:
        # A small effect on either side counts as neutral-compatible
        # only if the other side is also smallish.
        return abs(paper) < 6.0 and abs(measured) < 6.0 or (
            measured * paper > 0
        )
    return measured * paper > 0


def validate_benchmark(
    benchmark: str, scale: Optional[float] = None
) -> BenchmarkFidelity:
    """Run LRU/LIN/SBAR for one surrogate and score it."""
    baseline = run_policy(benchmark, "lru", scale=scale)
    lin = run_policy(benchmark, "lin(4)", scale=scale)
    sbar = run_policy(benchmark, "sbar", scale=scale)
    return BenchmarkFidelity(
        benchmark=benchmark,
        lin_ipc_measured=ipc_improvement(lin, baseline),
        lin_ipc_paper=PAPER_FIG5[benchmark][1],
        lin_miss_measured=miss_change(lin, baseline),
        lin_miss_paper=PAPER_FIG5[benchmark][0],
        sbar_ipc_measured=ipc_improvement(sbar, baseline),
        sbar_ipc_paper=PAPER_FIG9_SBAR[benchmark],
        delta_avg_measured=baseline.delta_summary.average,
    )


def validate_suite(
    benchmarks: Sequence[str], scale: Optional[float] = None
) -> List[BenchmarkFidelity]:
    return [validate_benchmark(name, scale=scale) for name in benchmarks]


def delta_separation(results: Sequence[BenchmarkFidelity]) -> float:
    """Losers' minimum average delta minus winners' maximum.

    Positive = the Table 1 causal story holds: every LIN-regression
    benchmark has a larger average delta than every LIN-win benchmark.
    """
    losers = [
        r.delta_avg_measured for r in results if r.lin_ipc_paper < -NEUTRAL_BAND
    ]
    winners = [
        r.delta_avg_measured for r in results if r.lin_ipc_paper > NEUTRAL_BAND
    ]
    if not losers or not winners:
        return 0.0
    return min(losers) - max(winners)


def paper_delta_ordering_holds(benchmark: str, measured_avg: float) -> bool:
    """Coarse check of the Table 1 bucket story for one benchmark."""
    low, mid, high, paper_avg = PAPER_TABLE1[benchmark]
    paper_unpredictable = high >= 40 or (paper_avg or 0) >= 100
    measured_unpredictable = measured_avg >= 100
    return paper_unpredictable == measured_unpredictable
