"""Recency-based baseline policies: LRU, FIFO, Random.

LRU is the paper's baseline (Equation 1): the victim is the block with
the least recency.  FIFO and Random are sanity baselines used in tests
and ablations.
"""

from __future__ import annotations

import random

from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.sets import CacheSet


class LRUPolicy(ReplacementPolicy):
    """Least Recently Used: ``victim = argmin R(i)`` (Equation 1)."""

    name = "lru"
    victim_is_lru_tail = True

    def choose_victim(self, cache_set: CacheSet) -> int:
        return len(cache_set.ways) - 1


class FIFOPolicy(ReplacementPolicy):
    """First-In First-Out: evict the oldest fill; hits do not promote."""

    name = "fifo"

    def on_hit(self, cache_set: CacheSet, position: int) -> None:
        pass  # FIFO ignores reuse.

    def choose_victim(self, cache_set: CacheSet) -> int:
        oldest_position = 0
        oldest_seq = cache_set.ways[0].fill_seq
        for position, state in enumerate(cache_set.ways):
            if state.fill_seq < oldest_seq:
                oldest_seq = state.fill_seq
                oldest_position = position
        return oldest_position


class RandomPolicy(ReplacementPolicy):
    """Uniform random victim; deterministic under a fixed seed."""

    name = "random"

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)

    def on_hit(self, cache_set: CacheSet, position: int) -> None:
        pass  # Recency is irrelevant to random replacement.

    def choose_victim(self, cache_set: CacheSet) -> int:
        return self._rng.randrange(len(cache_set.ways))
