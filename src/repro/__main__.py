"""``python -m repro`` — the unified command-line surface.

Every entry point the package grew over time lives under one
umbrella::

    python -m repro run mcf lru             # one simulation
    python -m repro suite --policies lru    # paper suite + figures
    python -m repro experiments table1      # per-table/figure drivers
    python -m repro bench --check ...       # performance harness
    python -m repro workloads list          # workload registry
    python -m repro store --stats           # result-store admin
    python -m repro chaos mcf lru           # resilience battery
    python -m repro serve --workers 4       # job-service daemon
    python -m repro submit --benchmarks ... # job-service client

Each subcommand delegates verbatim to the module that owns it
(``repro.sim``, ``repro.sim.suite``, ``repro.experiments``, ...), so
``python -m repro.sim mcf lru`` and every other historical spelling
keeps working — those modules just print a one-line pointer at this
CLI.  ``REPRO_UMBRELLA=1`` marks delegated invocations so the pointer
never fires for users already typing the new spelling.
"""

from __future__ import annotations

import os
import sys
from typing import List, Optional

#: subcommand -> (module with main(argv), summary line, argv prefix).
#: The prefix re-spells umbrella subcommands that share one backing
#: CLI (serve/submit both live in repro.service.__main__).
_COMMANDS = {
    "run": (
        "repro.sim.__main__", "simulate one benchmark under one or "
        "more policies", [],
    ),
    "suite": (
        "repro.sim.suite", "run the paper's benchmark x policy suite "
        "and emit figures", [],
    ),
    "experiments": (
        "repro.experiments.__main__", "reproduce individual "
        "tables/figures from the paper", [],
    ),
    "bench": (
        "repro.bench.__main__", "performance harness "
        "(micro/macro benchmarks, regression gate)", [],
    ),
    "workloads": (
        "repro.workloads.__main__", "list, validate, and import "
        "workloads", [],
    ),
    "store": (
        "repro.sim.store", "inspect and garbage-collect the result "
        "store", [],
    ),
    "chaos": (
        "repro.sim.chaos", "fault-injection battery for the parallel "
        "engine", [],
    ),
    "serve": (
        "repro.service.__main__", "run the simulation job service",
        ["serve"],
    ),
    "submit": (
        "repro.service.__main__", "submit grids to a running job "
        "service", ["submit"],
    ),
}


def _usage() -> str:
    lines = [
        "usage: python -m repro <command> [options]",
        "",
        "A reproduction of 'A Case for MLP-Aware Cache Replacement'",
        "(Qureshi, Lynch, Mutlu, Patt -- ISCA 2006).",
        "",
        "commands:",
    ]
    for name, (_, summary, _prefix) in _COMMANDS.items():
        lines.append("  %-12s %s" % (name, summary))
    lines += [
        "",
        "Run 'python -m repro <command> --help' for command options.",
    ]
    return "\n".join(lines)


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help", "help"):
        print(_usage())
        return 0
    if argv[0] in ("-V", "--version"):
        import repro

        print("repro %s" % repro.__version__)
        return 0
    command, rest = argv[0], argv[1:]
    entry = _COMMANDS.get(command)
    if entry is None:
        print(
            "error: unknown command %r\n\n%s" % (command, _usage()),
            file=sys.stderr,
        )
        return 2
    module_name, _summary, prefix = entry
    # Mark the delegation so the legacy module skips its pointer line.
    os.environ["REPRO_UMBRELLA"] = "1"
    import importlib

    module = importlib.import_module(module_name)
    return module.main(prefix + rest)


if __name__ == "__main__":
    sys.exit(main())
