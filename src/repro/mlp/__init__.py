"""MLP-based cost machinery: the paper's first contribution.

Algorithm 1 computes, for every demand miss, the integral of ``1/N``
over the miss's lifetime in the MSHR, where ``N`` is the number of
outstanding demand misses.  An isolated miss therefore costs the full
444-cycle service latency; k fully-overlapped misses cost ~444/k each.

:class:`~repro.mlp.mshr.MSHRFile` implements the MSHR with the cost
field; :mod:`repro.mlp.cost` holds the quantizer of Figure 3(b) and a
cycle-accurate reference used to validate the event-driven integral;
:mod:`repro.mlp.delta` reproduces the Table 1 predictability study.
"""

from repro.mlp.cost import (
    QUANTIZATION_STEP,
    MAX_COST_Q,
    quantize_cost,
    reference_mlp_costs,
)
from repro.mlp.mshr import MSHRFile, MSHRFullError
from repro.mlp.delta import DeltaTracker, DeltaSummary

__all__ = [
    "MSHRFile",
    "MSHRFullError",
    "quantize_cost",
    "reference_mlp_costs",
    "QUANTIZATION_STEP",
    "MAX_COST_Q",
    "DeltaTracker",
    "DeltaSummary",
]
