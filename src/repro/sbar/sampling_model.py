"""Analytical model of sampling (Section 6.3, Equations 3-5, Figure 8).

Assume all sets matter equally and a fraction ``p >= 0.5`` of sets
favors the globally best policy.  With ``k`` randomly chosen leader
sets, the sampling mechanism picks the best policy iff a majority of
leaders favors it (ties broken by a fair coin for even ``k``):

* odd ``k``:   P(Best) = sum_{i=0}^{(k-1)/2} C(k,i) p^(k-i) (1-p)^i
* even ``k``:  P(Best) = sum_{i=0}^{k/2-1} C(k,i) p^(k-i) (1-p)^i
               + (1/2) C(k,k/2) p^(k/2) (1-p)^(k/2)

(``i`` counts leaders favoring the losing policy.)  The paper observes
measured ``p`` between 0.74 and 0.99, hence 16-32 leaders select the
best policy with more than 95 % probability.
"""

from __future__ import annotations

from math import comb
from typing import Iterable, List, Sequence, Tuple


def probability_best_policy(k: int, p: float) -> float:
    """P(Best) for ``k`` leader sets when a fraction ``p`` favors the winner.

    >>> probability_best_policy(1, 0.7)
    0.7
    >>> round(probability_best_policy(3, 0.7), 4)  # p^3 + 3 p^2 (1-p)
    0.784
    """
    if k < 1:
        raise ValueError("need at least one leader set")
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability, got %r" % p)
    wrong_majority_limit = (k - 1) // 2 if k % 2 else k // 2 - 1
    total = sum(
        comb(k, i) * p ** (k - i) * (1.0 - p) ** i
        for i in range(wrong_majority_limit + 1)
    )
    if k % 2 == 0:
        half = k // 2
        total += 0.5 * comb(k, half) * p ** half * (1.0 - p) ** half
    return total


def figure8_series(
    leader_counts: Sequence[int] = tuple(range(1, 65)),
    p_values: Iterable[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
) -> List[Tuple[float, List[float]]]:
    """The Figure 8 curves: P(Best) vs number of leader sets, one per p.

    Returns ``[(p, [P(Best) for each k]), ...]``.
    """
    return [
        (p, [probability_best_policy(k, p) for k in leader_counts])
        for p in p_values
    ]


def leaders_needed(p: float, target: float = 0.95, max_k: int = 4096) -> int:
    """Smallest number of leader sets achieving ``P(Best) >= target``.

    For p = 0.5 the two policies are indistinguishable and no number of
    leaders beats a coin flip, so the function raises.
    """
    if p <= 0.5:
        raise ValueError("p must exceed 0.5 for sampling to converge")
    for k in range(1, max_k + 1):
        if probability_best_policy(k, p) >= target:
            return k
    raise ValueError(
        "target %.3f unreachable with %d leaders at p=%.3f"
        % (target, max_k, p)
    )
