"""Main-memory substrate: DRAM banks, split-transaction bus, controller.

The Table 2 machine services an isolated miss in 444 cycles: 400 cycles
of DRAM access plus 44 cycles of bus delay.  Parallel misses overlap
their DRAM accesses across the 32 banks but serialize on bank conflicts
and on the 16-byte bus, exactly the effects Section 4.1 says are
modeled ("bank conflicts, queueing delays, and port contention").
"""

from repro.memory.bus import SplitTransactionBus
from repro.memory.dram import DramBankArray, RowBufferBankArray
from repro.memory.controller import MemoryController

__all__ = [
    "DramBankArray",
    "RowBufferBankArray",
    "SplitTransactionBus",
    "MemoryController",
]
