"""Legacy-editable-install shim plus the *optional* native kernel build.

The C replay kernel (``repro._native.replaykernel``) is a pure
accelerator: every environment must work without it, so its build is
best-effort — any compiler or toolchain failure downgrades to a warning
and the pure-python wheel, never an install error.  Build it explicitly
with ``make native`` (or ``python setup.py build_ext --inplace``).
"""
import sys

from setuptools import Extension, setup
from setuptools.command.build_ext import build_ext


class OptionalBuildExt(build_ext):
    """build_ext that treats every failure as 'no native kernel'."""

    def run(self):
        try:
            super().run()
        except Exception as exc:  # missing compiler, headers, ...
            self._skip(exc)

    def build_extension(self, ext):
        try:
            super().build_extension(ext)
        except Exception as exc:
            self._skip(exc)

    @staticmethod
    def _skip(exc):
        print(
            "warning: native replay kernel build failed (%s); "
            "the kernel ladder will resolve to the batched kernel" % exc,
            file=sys.stderr,
        )


setup(
    ext_modules=[
        Extension(
            "repro._native.replaykernel",
            sources=["src/repro/_native/replaykernel.c"],
            optional=True,
        )
    ],
    cmdclass={"build_ext": OptionalBuildExt},
)
