"""Residency snapshots: what is sitting in the cache right now.

Used by tests and by the case-study analysis (Section 7.1) to inspect
the cost_q composition of the resident blocks — e.g., confirming that
under LIN the sets fill with maximal-cost blocks on the poisoned
benchmarks while LRU keeps the recency-hot working set.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.cache.cache import SetAssociativeCache


@dataclass(frozen=True)
class ResidencySnapshot:
    """Point-in-time summary of a cache's contents."""

    n_resident: int
    capacity: int
    cost_q_histogram: Dict[int, int]
    dirty_blocks: int
    per_set_occupancy: List[int]

    @property
    def occupancy(self) -> float:
        if not self.capacity:
            return 0.0
        return self.n_resident / self.capacity

    @property
    def avg_cost_q(self) -> float:
        if not self.n_resident:
            return 0.0
        weighted = sum(
            cost * count for cost, count in self.cost_q_histogram.items()
        )
        return weighted / self.n_resident

    def fraction_at_cost(self, cost_q: int) -> float:
        """Share of resident blocks carrying a given cost_q."""
        if not self.n_resident:
            return 0.0
        return self.cost_q_histogram.get(cost_q, 0) / self.n_resident


def snapshot_cache(cache: SetAssociativeCache) -> ResidencySnapshot:
    """Capture a residency snapshot of a tag store."""
    histogram: Dict[int, int] = {}
    dirty = 0
    per_set: List[int] = []
    total = 0
    for set_index in range(cache.n_sets):
        ways = cache.set_state(set_index).ways
        per_set.append(len(ways))
        total += len(ways)
        for state in ways:
            histogram[state.cost_q] = histogram.get(state.cost_q, 0) + 1
            if state.dirty:
                dirty += 1
    return ResidencySnapshot(
        n_resident=total,
        capacity=cache.geometry.n_blocks,
        cost_q_histogram=histogram,
        dirty_blocks=dirty,
        per_set_occupancy=per_set,
    )
