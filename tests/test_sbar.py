"""Tests for PSEL, leader sets, the sampling model, overhead, and the
SBAR/CBS controllers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.block import BlockState
from repro.cache.cache import AccessResult
from repro.config import baseline_config
from repro.sbar.cbs import CBSController
from repro.sbar.leader_sets import (
    constituency_of,
    is_simple_static_leader,
    rand_dynamic_leaders,
    simple_static_leaders,
)
from repro.sbar.overhead import cbs_overhead, sbar_overhead
from repro.sbar.psel import PolicySelector
from repro.sbar.sampling_model import (
    figure8_series,
    leaders_needed,
    probability_best_policy,
)
from repro.sbar.sbar import SBARController


class TestPolicySelector:
    def test_starts_at_midpoint_msb_set(self):
        psel = PolicySelector(6)
        assert psel.value == 32
        assert psel.msb

    def test_saturates_high(self):
        psel = PolicySelector(6)
        psel.increment(1000)
        assert psel.value == 63
        psel.increment(1)
        assert psel.value == 63

    def test_saturates_low(self):
        psel = PolicySelector(6)
        psel.decrement(1000)
        assert psel.value == 0
        assert not psel.msb

    def test_msb_threshold(self):
        psel = PolicySelector(6)
        psel.decrement(1)  # 31
        assert not psel.msb
        psel.increment(1)  # 32
        assert psel.msb

    def test_seven_bit_counter(self):
        psel = PolicySelector(7)
        assert psel.max_value == 127
        assert psel.value == 64

    def test_rejects_negative_updates(self):
        psel = PolicySelector()
        with pytest.raises(ValueError):
            psel.increment(-1)
        with pytest.raises(ValueError):
            psel.decrement(-3)

    @given(st.lists(st.tuples(st.booleans(), st.integers(0, 7)), max_size=100))
    def test_always_in_range(self, updates):
        psel = PolicySelector(6)
        for up, amount in updates:
            if up:
                psel.increment(amount)
            else:
                psel.decrement(amount)
        assert 0 <= psel.value <= 63


class TestLeaderSets:
    def test_paper_example_sets(self):
        leaders = sorted(simple_static_leaders(1024, 32))
        assert leaders[:4] == [0, 33, 66, 99]
        assert leaders[-1] == 1023

    def test_one_leader_per_constituency(self):
        leaders = simple_static_leaders(256, 16)
        constituencies = {constituency_of(s, 256, 16) for s in leaders}
        assert constituencies == set(range(16))

    def test_comparator_identification(self):
        for set_index in range(1024):
            expected = set_index in simple_static_leaders(1024, 32)
            assert is_simple_static_leader(set_index, 1024, 32) == expected

    def test_rand_dynamic_one_per_constituency(self):
        rng = random.Random(4)
        leaders = rand_dynamic_leaders(256, 8, rng)
        assert len(leaders) == 8
        constituencies = sorted(constituency_of(s, 256, 8) for s in leaders)
        assert constituencies == list(range(8))

    def test_rand_dynamic_varies_with_rng(self):
        draws = {
            rand_dynamic_leaders(1024, 32, random.Random(seed))
            for seed in range(5)
        }
        assert len(draws) > 1

    def test_geometry_validation(self):
        with pytest.raises(ValueError):
            simple_static_leaders(100, 32)  # does not divide
        with pytest.raises(ValueError):
            simple_static_leaders(16, 32)  # more leaders than sets
        with pytest.raises(ValueError):
            constituency_of(300, 256, 16)


class TestSamplingModel:
    def test_equation3_k1(self):
        assert probability_best_policy(1, 0.7) == pytest.approx(0.7)

    def test_equation3_k3(self):
        p = 0.7
        expected = p ** 3 + 3 * p ** 2 * (1 - p)
        assert probability_best_policy(3, p) == pytest.approx(expected)

    def test_even_k_tie_break(self):
        # k=2: wins need both leaders right, ties split 50/50.
        p = 0.7
        expected = p ** 2 + 0.5 * 2 * p * (1 - p)
        assert probability_best_policy(2, p) == pytest.approx(expected)

    def test_p_half_stays_half(self):
        for k in (1, 2, 7, 32):
            assert probability_best_policy(k, 0.5) == pytest.approx(0.5)

    def test_p_one_is_certain(self):
        assert probability_best_policy(16, 1.0) == pytest.approx(1.0)

    @given(
        st.integers(min_value=1, max_value=64),
        st.floats(min_value=0.5, max_value=1.0),
    )
    def test_probability_bounds(self, k, p):
        value = probability_best_policy(k, p)
        assert 0.0 <= value <= 1.0 + 1e-12
        assert value >= 0.5 - 1e-12  # never worse than a coin flip

    @given(st.floats(min_value=0.55, max_value=0.99))
    def test_more_leaders_help(self, p):
        # Odd-k subsequence is monotone non-decreasing in k.
        values = [probability_best_policy(k, p) for k in (1, 3, 9, 31)]
        assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))

    def test_paper_conclusion_16_to_32_leaders(self):
        # At the paper's measured minimum p=0.74, 16-32 leaders give
        # >95 % probability of selecting the best policy.
        assert probability_best_policy(16, 0.74) > 0.95
        assert leaders_needed(0.74, 0.95) <= 16

    def test_leaders_needed_raises_at_half(self):
        with pytest.raises(ValueError):
            leaders_needed(0.5)

    def test_figure8_series_shape(self):
        series = figure8_series(leader_counts=(1, 3), p_values=(0.6, 0.9))
        assert len(series) == 2
        assert len(series[0][1]) == 2

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            probability_best_policy(0, 0.7)
        with pytest.raises(ValueError):
            probability_best_policy(3, 1.5)


class TestOverhead:
    def test_sbar_matches_paper_budget(self):
        geometry = baseline_config().l2
        report = sbar_overhead(geometry)
        assert report.total_bytes == pytest.approx(1854, rel=0.01)
        assert report.fraction_of_cache(geometry) < 0.002  # < 0.2 %

    def test_sbar_entry_count(self):
        report = sbar_overhead(baseline_config().l2, n_leaders=32)
        assert report.atd_entries == 32 * 16

    def test_cbs_is_64x_sbar(self):
        geometry = baseline_config().l2
        sbar = sbar_overhead(geometry)
        cbs = cbs_overhead(geometry, per_set_psel=False)
        ratio = cbs.atd_entries / sbar.atd_entries
        assert ratio == 64

    def test_cbs_local_has_per_set_psels(self):
        geometry = baseline_config().l2
        report = cbs_overhead(geometry, per_set_psel=True)
        assert report.psel_counters == geometry.n_sets


def mtd_result(hit: bool, cost_q: int = 0, set_index: int = 0) -> AccessResult:
    state = BlockState(0)
    state.cost_q = cost_q
    return AccessResult(hit, state, set_index)


class TestSBARController:
    def make(self, **kwargs):
        defaults = dict(n_sets=64, associativity=4, n_leaders=8)
        defaults.update(kwargs)
        return SBARController(**defaults)

    def test_leader_sets_always_run_lin(self):
        controller = self.make()
        leader = next(iter(controller.leaders))
        controller.psel.decrement(64)  # force LRU preference
        assert controller.policy_for_set(leader) is controller.lin

    def test_followers_obey_psel(self):
        controller = self.make()
        follower = next(
            s for s in range(64) if s not in controller.leaders
        )
        assert controller.policy_for_set(follower) is controller.lin
        controller.psel.decrement(64)
        assert controller.policy_for_set(follower) is controller.lru

    def test_non_leader_access_ignored(self):
        controller = self.make()
        follower = next(
            s for s in range(64) if s not in controller.leaders
        )
        assert controller.observe_access(follower, 5, mtd_result(True)) is None
        assert controller.atd_lru.accesses == 0

    def test_lin_win_increments_by_cost(self):
        controller = self.make()
        leader = next(iter(controller.leaders))
        # Warm the ATD so it will miss a block the MTD hits.
        controller.atd_lru.access(leader, 111)
        before = controller.psel.value
        pending = controller.observe_access(
            leader, 222, mtd_result(True, cost_q=5)
        )
        assert pending is None
        assert controller.psel.value == before + 5

    def test_lru_win_defers_by_actual_cost(self):
        controller = self.make()
        leader = next(iter(controller.leaders))
        controller.atd_lru.access(leader, 333)  # now resident in ATD
        before = controller.psel.value
        pending = controller.observe_access(leader, 333, mtd_result(False))
        assert pending is not None
        assert controller.psel.value == before  # nothing yet
        pending(7)
        assert controller.psel.value == before - 7

    def test_same_outcome_leaves_psel(self):
        controller = self.make()
        leader = next(iter(controller.leaders))
        before = controller.psel.value
        # Both miss (cold ATD, MTD miss): no update and deferred None.
        assert controller.observe_access(leader, 9, mtd_result(False)) is None
        assert controller.psel.value == before

    def test_rand_dynamic_redraws_each_epoch(self):
        controller = SBARController(
            n_sets=64, associativity=4, n_leaders=8,
            selection="rand-dynamic", epoch_instructions=1000, seed=3,
        )
        first = controller.leaders
        drawn = set()
        for epoch in range(1, 12):
            controller.note_instructions(epoch * 1000)
            drawn.add(controller.leaders)
        assert any(leaders != first for leaders in drawn)

    def test_unknown_selection_rejected(self):
        with pytest.raises(ValueError):
            self.make(selection="bogus")


class TestCBSController:
    def make(self, scope="global"):
        return CBSController(n_sets=16, associativity=4, scope=scope)

    def test_default_psel_bits(self):
        assert self.make("global").psel_for_set(0).n_bits == 7
        assert self.make("local").psel_for_set(0).n_bits == 6

    def test_local_has_independent_psels(self):
        controller = self.make("local")
        controller.psel_for_set(3).decrement(64)
        assert controller.policy_for_set(3) is controller.lru
        assert controller.policy_for_set(4) is controller.lin

    def test_global_shares_one_psel(self):
        controller = self.make("global")
        controller.psel_for_set(0).decrement(128)
        assert controller.policy_for_set(9) is controller.lru

    def test_divergent_outcome_with_mtd_hit_updates_immediately(self):
        controller = self.make("global")
        # Warm ATD-LRU only (via direct access) so LIN misses, LRU hits.
        controller.atd_lru.access(0, 16)
        before = controller.psel_for_set(0).value
        pending = controller.observe_access(0, 16, mtd_result(True, cost_q=4))
        assert controller.psel_for_set(0).value == before - 4
        assert pending is None

    def test_divergent_outcome_with_mtd_miss_defers(self):
        controller = self.make("global")
        controller.atd_lru.access(0, 16)
        before = controller.psel_for_set(0).value
        pending = controller.observe_access(0, 16, mtd_result(False))
        assert pending is not None
        pending(6)
        assert controller.psel_for_set(0).value == before - 6

    def test_atd_lin_fill_gets_cost_from_mtd(self):
        controller = self.make("global")
        controller.observe_access(0, 16, mtd_result(True, cost_q=3))
        state = controller.atd_lin.set_state(0).get(16)
        assert state is not None
        assert state.cost_q == 3

    def test_atd_lin_fill_gets_deferred_cost_on_mtd_miss(self):
        controller = self.make("global")
        pending = controller.observe_access(0, 16, mtd_result(False))
        assert pending is not None
        pending(5)
        state = controller.atd_lin.set_state(0).get(16)
        assert state.cost_q == 5

    def test_invalid_scope(self):
        with pytest.raises(ValueError):
            CBSController(16, 4, scope="nope")
