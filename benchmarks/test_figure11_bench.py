"""Regeneration benchmark for figure11 of the paper."""

from repro.experiments import figure11


def test_figure11(benchmark, experiment_runner):
    report = benchmark.pedantic(
        lambda: experiment_runner(figure11), rounds=1, iterations=1
    )
    assert report.render()
