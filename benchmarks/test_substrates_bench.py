"""Micro-benchmarks of the simulator substrates.

These time the hot components in isolation (cache tag path, MSHR cost
sweep, window model, trace generation, end-to-end simulation rate) so
performance regressions in the simulator itself are visible.
"""

import random

from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement import LINPolicy, LRUPolicy
from repro.config import CacheGeometry, MemoryConfig
from repro.cpu.window import WindowModel
from repro.memory.controller import MemoryController
from repro.mlp.mshr import MSHRFile
from repro.sim.simulator import Simulator
from repro.workloads import build_workload, experiment_config

_GEOMETRY = CacheGeometry(256 * 1024, 64, 16, 15)


def _block_stream(n, spread):
    rng = random.Random(7)
    return [rng.randrange(spread) for _ in range(n)]


def test_cache_lru_access_rate(benchmark):
    blocks = _block_stream(20_000, 8_000)

    def run():
        cache = SetAssociativeCache(_GEOMETRY, LRUPolicy())
        for block in blocks:
            cache.access(block)
        return cache.misses

    assert benchmark(run) > 0


def test_cache_lin_access_rate(benchmark):
    blocks = _block_stream(20_000, 8_000)

    def run():
        cache = SetAssociativeCache(_GEOMETRY, LINPolicy(4))
        for block in blocks:
            cache.access(block)
        return cache.misses

    assert benchmark(run) > 0


def test_mshr_sweep_rate(benchmark):
    def run():
        mshr = MSHRFile(32)
        time = 0.0
        for index in range(10_000):
            time += 3.0
            mshr.allocate(index, time, time + 444.0)
        mshr.drain()
        return mshr.allocations

    assert benchmark(run) == 10_000


def test_window_model_rate(benchmark):
    def run():
        window = WindowModel()
        for _ in range(20_000):
            t = window.advance(40)
            window.complete_memory_op(t + 444)
        return window.finish()

    assert benchmark(run) > 0


def test_memory_controller_rate(benchmark):
    def run():
        controller = MemoryController(MemoryConfig())
        time = 0.0
        for block in range(10_000):
            time += 5.0
            controller.read_line(block, time)
        return controller.requests

    assert benchmark(run) == 10_000


def test_trace_generation_rate(benchmark):
    result = benchmark(lambda: build_workload("mcf", scale=0.3))
    assert len(result) > 10_000


def test_end_to_end_simulation_rate(benchmark):
    trace = build_workload("mcf", scale=0.2)

    def run():
        return Simulator(experiment_config(), "lru").run(trace).demand_misses

    assert benchmark.pedantic(run, rounds=1, iterations=1) > 0
