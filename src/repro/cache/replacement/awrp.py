"""AWRP: adaptive weight ranking replacement.

After the Adaptive Weight Ranking Policy (arXiv:1107.4851): every
resident block gets a rank combining recency with a weighted measure of
its access frequency, and the block with the *lowest* rank is evicted.
Here the rank is::

    rank(i) = R(i) + weight * min(count(i), COUNT_CAP)

where ``R`` is the recency value the LIN policy uses (MRU highest) and
``count`` is the number of touches the block has received, halved every
``DECAY_FILLS`` fills so stale popularity ages out instead of pinning
dead blocks forever.  Ties break toward the smaller recency, matching
LIN's tie-break, so ``weight=0`` ("equal weights" — frequency carries
nothing) is victim-for-victim identical to LRU; the differential
battery in ``tests/test_differential.py`` pins that equivalence.

Access counts live in a policy-level dict keyed by block number (like
the cost integrator's delta tracker, it grows with the touched
footprint; the decay sweep drops zeroed entries to bound it).
"""

from __future__ import annotations

from typing import Dict

from repro.cache.block import BlockState
from repro.cache.replacement.base import ReplacementPolicy
from repro.cache.sets import CacheSet

DEFAULT_WEIGHT = 1.0

#: Frequency saturates here so one hot block cannot become unevictable.
COUNT_CAP = 16

#: Halve every access count after this many fills (a decay "epoch").
DECAY_FILLS = 4096


class AWRPPolicy(ReplacementPolicy):
    """Adaptive weight ranking: evict the lowest recency+frequency rank."""

    def __init__(self, weight: float = DEFAULT_WEIGHT) -> None:
        if weight < 0:
            raise ValueError("weight must be non-negative, got %r" % weight)
        self.weight = float(weight)
        self.name = "awrp(%g)" % self.weight
        self._counts: Dict[int, int] = {}
        self._fills = 0

    def on_hit(self, cache_set: CacheSet, position: int) -> None:
        state = cache_set.touch(position)
        counts = self._counts
        block = state.block
        current = counts.get(block, 0)
        if current < COUNT_CAP:
            counts[block] = current + 1

    def choose_victim(self, cache_set: CacheSet) -> int:
        weight = self.weight
        ways = cache_set.ways
        counts = self._counts
        mru_recency = cache_set.associativity - 1
        best_position = 0
        best_rank = mru_recency + weight * counts.get(ways[0].block, 0)
        for position in range(1, len(ways)):
            rank = mru_recency - position + weight * counts.get(
                ways[position].block, 0
            )
            # "<=" keeps the later (lower-recency) candidate on ties,
            # the same tie-break LIN uses; with weight 0 this scan
            # always lands on the LRU tail.
            if rank <= best_rank:
                best_rank = rank
                best_position = position
        return best_position

    def on_fill(self, cache_set: CacheSet, state: BlockState) -> None:
        self._counts[state.block] = 1
        self._fills += 1
        if self._fills % DECAY_FILLS == 0:
            self._counts = {
                block: count >> 1
                for block, count in self._counts.items()
                if count > 1
            }
            self._counts[state.block] = 1
        cache_set.insert_mru(state)
