"""CLI for regenerating the paper's tables and figures.

Usage::

    python -m repro.experiments                 # everything, paper order
    python -m repro.experiments figure9 table1  # a subset
    python -m repro.experiments figure4 --scale 0.3 --benchmarks mcf,art
    python -m repro.experiments --workers 8     # fan simulations out

``--workers N`` first pushes every (benchmark x policy) cell the
selected experiments need through the parallel engine (populating the
persistent result store), then renders the reports serially from cache
hits.  ``--no-cache`` disables both the in-process memo and the store
for a guaranteed-fresh run.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

from repro import obs
from repro.cache.replacement.registry import split_specs
from repro.experiments import EXPERIMENTS
from repro.experiments.common import prewarm_tasks


def _prewarm(names, benchmarks, scale, workers, show_progress) -> None:
    """Fan the experiments' shared simulation grid out over a pool."""
    from repro.sim.parallel import run_grid
    from repro.sim.suite import _progress_printer

    tasks = prewarm_tasks(names, benchmarks=benchmarks, scale=scale)
    if not tasks:
        return
    grid = run_grid(
        tasks,
        workers=workers,
        progress=_progress_printer if show_progress else None,
    )
    # Worker-side runs finalize their telemetry in the worker process;
    # fold the merged per-result snapshots into this process's session
    # so --metrics-out sees the whole grid.
    obs.record_session(grid.merged_metrics())
    print(
        "[prewarm: %d tasks on %d workers in %.1fs — %.0f%% utilization, "
        "cache %d hit / %d miss, %d failed]"
        % (
            len(grid.reports),
            grid.workers,
            grid.elapsed,
            100.0 * grid.utilization,
            grid.cache_hits,
            grid.cache_misses,
            len(grid.failures),
        ),
        file=sys.stderr,
    )
    for task, message in grid.failures.items():
        print("[prewarm FAILED %s: %s]" % (task.label, message),
              file=sys.stderr)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "names",
        nargs="*",
        metavar="experiment",
        help="experiments to run (default: all); one of %s"
        % ", ".join(EXPERIMENTS),
    )
    parser.add_argument(
        "--scale",
        type=float,
        default=None,
        help="trace-length multiplier (default: REPRO_SCALE env or 1.0)",
    )
    parser.add_argument(
        "--benchmarks",
        default=None,
        help="comma-separated benchmark subset (default: all 14)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=0,
        metavar="N",
        help="prewarm the shared simulation grid on N worker processes "
             "before rendering reports",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the in-process memo and the persistent result store",
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help="print one line per finished prewarm task to stderr",
    )
    parser.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="enable telemetry and write the session's merged metric "
             "snapshot (plus profiling spans) as JSON",
    )
    parser.add_argument(
        "--trace-events", metavar="FILE", default=None,
        help="write a JSONL event trace (workers append .<pid>)",
    )
    args = parser.parse_args(argv)

    if args.metrics_out:
        obs.configure(metrics=True, profile=True)
    if args.trace_events:
        obs.configure(trace_events=args.trace_events)

    names = args.names or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        parser.error("unknown experiments: %s" % ", ".join(unknown))
    benchmarks = (
        split_specs(args.benchmarks) if args.benchmarks is not None else None
    )

    if args.no_cache:
        from repro.sim.runner import clear_cache

        os.environ["REPRO_NO_STORE"] = "1"
        clear_cache()
    elif args.workers:
        _prewarm(names, benchmarks, args.scale, args.workers, args.progress)

    for name in names:
        started = time.time()
        report = EXPERIMENTS[name].run(scale=args.scale, benchmarks=benchmarks)
        print(report.render())
        print("[%s finished in %.1fs]\n" % (name, time.time() - started))
    if args.metrics_out:
        payload = {
            "metrics": obs.session_snapshot(),
            "profile": obs.session_profile(),
        }
        with open(args.metrics_out, "w") as handle:
            json.dump(payload, handle, indent=2)
        print("wrote %s" % args.metrics_out)
    return 0


if __name__ == "__main__":
    sys.exit(main())
