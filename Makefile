# Convenience targets for the MLP-aware cache replacement reproduction.

PYTHON ?= python

.PHONY: install native test bench bench-quick bench-pytest suite oracle chaos workload-zoo serve submit-demo experiments experiments-fast examples lint clean

install:
	pip install -e . --no-build-isolation || $(PYTHON) setup.py develop

# Compile the optional C replay kernel in place (the `native` rung of
# the kernel ladder).  Failure is non-fatal by design: without the
# extension the ladder resolves to the batched kernel.
native:
	$(PYTHON) setup.py build_ext --inplace

test:
	$(PYTHON) -m pytest tests/

# Kernel performance report (micro + macro benchmarks) -> BENCH_local.json.
# KERNEL selects the replay kernel(s): auto/batched/fused/generic/all.
KERNEL ?= auto
bench:
	PYTHONPATH=src $(PYTHON) -m repro.bench --out BENCH_local.json --force \
		--kernel $(KERNEL)

# Smoke-sized bench run (what CI executes); timings are meaningless.
bench-quick:
	PYTHONPATH=src $(PYTHON) -m repro.bench --quick --out BENCH_smoke.json \
		--force --kernel $(KERNEL)

bench-pytest:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only

# Quick 2-worker smoke matrix (also run by CI).
suite:
	$(PYTHON) -m repro.sim.suite --policies "lru,lin(4)" \
		--benchmarks mcf,art --workers 2 --scale 0.25 --progress

# Oracle referee smoke (also run by CI): the property battery plus one
# suite cell under --oracle; regrets must be non-negative and columns
# bit-identical serial vs parallel.
oracle:
	PYTHONPATH=src $(PYTHON) -m pytest tests/test_oracle.py -q
	PYTHONPATH=src $(PYTHON) -m repro.sim.suite \
		--policies "lru,lin(4),ehc,awrp" --benchmarks mcf,art \
		--scale 0.25 --oracle

# Seeded chaos differential (also run by CI): injected crashes, delays,
# and store corruption must not change the suite's content digest.
chaos:
	PYTHONPATH=src $(PYTHON) -m repro.sim.chaos --scale 0.25 --workers 2
	PYTHONPATH=src $(PYTHON) -m repro.sim.chaos --scale 0.25 --workers 2 --hard

# Workload registry smoke (also run by CI): list, import a committed
# ChampSim fixture, run a composed spec, and check digest determinism.
workload-zoo:
	PYTHONPATH=src $(PYTHON) -m repro.workloads --list
	PYTHONPATH=src $(PYTHON) -m repro.sim \
		--workload "champsim:tests/fixtures/mix4k.champsim.gz" --policy lru
	PYTHONPATH=src $(PYTHON) -m repro.sim \
		--workload "interleave(mcf,art)" --policy sbar --scale 0.1
	PYTHONPATH=src $(PYTHON) -m repro.workloads \
		--digest "interleave(mcf,art)" --scale 0.1

# Run the job service daemon on the default port (Ctrl-C to stop).
serve:
	PYTHONPATH=src $(PYTHON) -m repro serve --workers 2

# Self-checking service end-to-end demo (also run by CI): throwaway
# store, seeded chaos delays, two concurrent tenants submitting the
# same grid — shared cells must execute once and both tenants must see
# digests bit-identical to a serial baseline.
submit-demo:
	PYTHONPATH=src $(PYTHON) -m repro.service demo --scale 0.25

# Full-scale regeneration of every table and figure (~10 minutes).
experiments:
	$(PYTHON) -m repro.experiments

# Quick regeneration at reduced trace scale (~2 minutes).
experiments-fast:
	REPRO_SCALE=0.25 $(PYTHON) -m repro.experiments

examples:
	$(PYTHON) examples/quickstart.py
	$(PYTHON) examples/pointer_chasing.py
	$(PYTHON) examples/adaptive_phases.py
	$(PYTHON) examples/custom_care_policy.py
	$(PYTHON) examples/wrong_path_injection.py
	$(PYTHON) examples/workload_analysis.py
	$(PYTHON) examples/figure1_walkthrough.py

clean:
	find . -name __pycache__ -type d -exec rm -rf {} +
	rm -rf .pytest_cache .hypothesis *.egg-info src/*.egg-info
