"""Tests for the DRAM bank array, bus, and memory controller."""

import pytest

from repro.config import MemoryConfig
from repro.memory.bus import SplitTransactionBus
from repro.memory.controller import MemoryController
from repro.memory.dram import DramBankArray


class TestDramBankArray:
    def test_uncontended_access_latency(self):
        banks = DramBankArray(4, 400)
        assert banks.access(0, 100.0) == 500.0

    def test_same_bank_conflicts_serialize(self):
        banks = DramBankArray(4, 400)
        first = banks.access(0, 0.0)
        second = banks.access(4, 0.0)  # block 4 maps to bank 0 too
        assert first == 400.0
        assert second == 800.0
        assert banks.conflicts == 1

    def test_different_banks_overlap(self):
        banks = DramBankArray(4, 400)
        assert banks.access(0, 0.0) == 400.0
        assert banks.access(1, 0.0) == 400.0
        assert banks.conflicts == 0

    def test_bank_mapping_low_order_interleave(self):
        banks = DramBankArray(32, 400)
        assert banks.bank_of(33) == 1
        assert banks.bank_of(64) == 0

    def test_conflict_rate(self):
        banks = DramBankArray(1, 10)
        banks.access(0, 0.0)
        banks.access(1, 0.0)
        assert banks.conflict_rate == 0.5

    def test_reset(self):
        banks = DramBankArray(2, 100)
        banks.access(0, 0.0)
        banks.reset()
        assert banks.accesses == 0
        assert banks.access(0, 0.0) == 100.0

    def test_validation(self):
        with pytest.raises(ValueError):
            DramBankArray(0, 400)
        with pytest.raises(ValueError):
            DramBankArray(4, 0)


class TestBus:
    def test_uncontended_transfer(self):
        bus = SplitTransactionBus(44, 16)
        assert bus.transfer(100.0) == 144.0

    def test_back_to_back_transfers_pipeline(self):
        bus = SplitTransactionBus(44, 16)
        first = bus.transfer(0.0)
        second = bus.transfer(0.0)
        assert first == 44.0
        assert second == 16.0 + 44.0
        assert bus.contended == 1

    def test_idle_bus_no_contention(self):
        bus = SplitTransactionBus(44, 16)
        bus.transfer(0.0)
        bus.transfer(1000.0)
        assert bus.contended == 0

    def test_occupancy_validation(self):
        with pytest.raises(ValueError):
            SplitTransactionBus(10, 16)  # delay shorter than occupancy
        with pytest.raises(ValueError):
            SplitTransactionBus(44, 0)

    def test_contention_rate(self):
        bus = SplitTransactionBus(44, 16)
        assert bus.contention_rate == 0.0
        bus.transfer(0.0)
        bus.transfer(0.0)
        assert bus.contention_rate == 0.5


class TestMemoryController:
    def test_isolated_read_takes_444_cycles(self):
        controller = MemoryController(MemoryConfig())
        assert controller.read_line(0, 0.0) == 444.0
        assert controller.isolated_latency == 444

    def test_parallel_reads_overlap_on_banks(self):
        controller = MemoryController(MemoryConfig())
        first = controller.read_line(0, 0.0)
        second = controller.read_line(1, 0.0)
        # Both DRAM accesses overlap; the bus serializes by 16 cycles.
        assert first == 444.0
        assert second == 460.0

    def test_bank_conflict_serializes(self):
        controller = MemoryController(MemoryConfig())
        first = controller.read_line(0, 0.0)
        second = controller.read_line(32, 0.0)  # same bank
        assert second - first == 400.0

    def test_outstanding_limit_queues(self):
        config = MemoryConfig(max_outstanding=2)
        controller = MemoryController(config)
        controller.read_line(0, 0.0)
        controller.read_line(1, 0.0)
        third = controller.read_line(2, 0.0)
        # The third request waits for the first completion (444).
        assert third >= 444.0 + 400.0
        assert controller.queueing_stalls >= 1

    def test_writebacks_counted(self):
        controller = MemoryController(MemoryConfig())
        controller.write_line(0, 0.0)
        assert controller.writebacks == 1
        assert controller.requests == 1

    def test_writeback_occupies_bank_and_bus(self):
        controller = MemoryController(MemoryConfig())
        controller.write_line(0, 0.0)
        # A read to the same bank right after queues behind the write.
        read = controller.read_line(32, 0.0)
        assert read > 444.0

    def test_reset(self):
        controller = MemoryController(MemoryConfig())
        controller.read_line(0, 0.0)
        controller.reset()
        assert controller.requests == 0
        assert controller.read_line(0, 0.0) == 444.0
