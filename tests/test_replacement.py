"""Tests for replacement policies: LRU/FIFO/Random, Belady, LIN, CARE."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.cache.block import BlockState
from repro.cache.cache import SetAssociativeCache
from repro.cache.replacement import (
    BeladyPolicy,
    CostThresholdPolicy,
    FIFOPolicy,
    LINPolicy,
    LRUPolicy,
    RandomPolicy,
)
from repro.cache.replacement.belady import (
    NEVER,
    collapse_consecutive,
    next_use_distances,
)
from repro.cache.sets import CacheSet
from repro.config import CacheGeometry


def make_set(entries):
    """Build a set from (block, cost_q) pairs, first = MRU."""
    cache_set = CacheSet(len(entries))
    for block, cost_q in reversed(entries):
        state = BlockState(block)
        state.cost_q = cost_q
        cache_set.insert_mru(state)
    return cache_set


class TestLRUFamily:
    def test_lru_picks_last_position(self):
        cache_set = make_set([(1, 0), (2, 0), (3, 0)])
        assert LRUPolicy().choose_victim(cache_set) == 2

    def test_fifo_ignores_hits(self):
        geometry = CacheGeometry(2 * 64, 64, 2, 1)
        cache = SetAssociativeCache(geometry, FIFOPolicy())
        cache.access(0)
        cache.access(1)
        cache.access(0)  # hit; FIFO must not refresh
        result = cache.access(2)
        assert result.victim_block == 0

    def test_random_is_deterministic_with_seed(self):
        cache_set = make_set([(1, 0), (2, 0), (3, 0), (4, 0)])
        picks_a = [RandomPolicy(seed=9).choose_victim(cache_set) for _ in range(5)]
        picks_b = [RandomPolicy(seed=9).choose_victim(cache_set) for _ in range(5)]
        assert picks_a == picks_b

    def test_random_in_range(self):
        cache_set = make_set([(1, 0), (2, 0)])
        policy = RandomPolicy(seed=3)
        for _ in range(20):
            assert policy.choose_victim(cache_set) in (0, 1)


class TestLIN:
    def test_lambda_zero_degenerates_to_lru(self):
        cache_set = make_set([(1, 7), (2, 3), (3, 0)])
        assert LINPolicy(0).choose_victim(cache_set) == 2

    def test_high_cost_block_protected(self):
        # LRU-position block has cost 7; LIN(4) evicts a cheaper,
        # more recent block instead.
        cache_set = make_set([(1, 0), (2, 0), (3, 7)])
        victim = LINPolicy(4).choose_victim(cache_set)
        assert cache_set.ways[victim].block == 2  # R=1, cost 0 -> score 1

    def test_equation2_argmin(self):
        # Scores with lambda=2: R + 2*cost.
        cache_set = make_set([(1, 1), (2, 0), (3, 2)])
        # R: pos0=2,pos1=1,pos2=0 -> scores: 4, 1, 4 -> victim pos1.
        assert LINPolicy(2).choose_victim(cache_set) == 1

    def test_tie_breaks_toward_smaller_recency(self):
        # lambda=1: scores R + cost: pos0: 2+0=2, pos1: 1+1=2, pos2: 0+2=2.
        cache_set = make_set([(1, 0), (2, 1), (3, 2)])
        assert LINPolicy(1).choose_victim(cache_set) == 2

    def test_uniform_costs_reduce_to_lru(self):
        cache_set = make_set([(1, 5), (2, 5), (3, 5)])
        assert LINPolicy(4).choose_victim(cache_set) == 2

    def test_negative_lambda_rejected(self):
        with pytest.raises(ValueError):
            LINPolicy(-1)

    def test_name_includes_lambda(self):
        assert LINPolicy(3).name == "lin(3)"

    @settings(max_examples=100, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=7), min_size=2, max_size=16
        ),
        st.integers(min_value=0, max_value=8),
    )
    def test_victim_minimizes_score(self, costs, lam):
        cache_set = make_set([(i, c) for i, c in enumerate(costs)])
        victim = LINPolicy(lam).choose_victim(cache_set)
        scores = [
            cache_set.recency(p) + lam * c for p, c in enumerate(costs)
        ]
        assert scores[victim] == min(scores)


class TestCostThreshold:
    def test_depth_one_is_lru(self):
        cache_set = make_set([(1, 0), (2, 7), (3, 3)])
        assert CostThresholdPolicy(1).choose_victim(cache_set) == 2

    def test_evicts_cheapest_within_depth(self):
        cache_set = make_set([(1, 0), (2, 1), (3, 7)])
        # Depth 2 considers positions 1 and 2; cheapest is position 1.
        assert CostThresholdPolicy(2).choose_victim(cache_set) == 1

    def test_tie_prefers_least_recent(self):
        cache_set = make_set([(1, 3), (2, 3), (3, 3)])
        assert CostThresholdPolicy(3).choose_victim(cache_set) == 2

    def test_invalid_depth(self):
        with pytest.raises(ValueError):
            CostThresholdPolicy(0)


class TestBelady:
    def test_next_use_distances(self):
        assert next_use_distances([1, 2, 1, 3, 2]) == [2, 4, NEVER, NEVER, NEVER]

    def test_collapse_consecutive(self):
        assert collapse_consecutive([1, 1, 2, 2, 2, 1]) == [1, 2, 1]

    def test_opt_on_classic_sequence(self):
        # Classic example: 2-way cache, sequence 1 2 3 1 2.
        blocks = [1, 2, 3, 1, 2]
        geometry = CacheGeometry(2 * 64, 64, 2, 1)
        policy = BeladyPolicy(next_use_distances(blocks), expected_blocks=blocks)
        cache = SetAssociativeCache(geometry, policy)
        outcomes = [cache.access(b).hit for b in blocks]
        # OPT: misses 1,2,3 (3 evicts 2? no: evicts the farthest = 2's
        # next use at 4 vs 1's at 3 -> evicts 2... then 1 hits, 2 misses.
        assert outcomes == [False, False, False, True, False]
        assert cache.misses == 4

    def test_opt_never_worse_than_lru(self):
        import random
        rng = random.Random(5)
        blocks = [rng.randrange(8) for _ in range(400)]
        geometry = CacheGeometry(4 * 64, 64, 4, 1)
        lru_cache = SetAssociativeCache(geometry, LRUPolicy())
        opt_policy = BeladyPolicy(
            next_use_distances(blocks), expected_blocks=blocks
        )
        opt_cache = SetAssociativeCache(geometry, opt_policy)
        for block in blocks:
            lru_cache.access(block)
            opt_cache.access(block)
        assert opt_cache.misses <= lru_cache.misses

    def test_oracle_desync_detected(self):
        policy = BeladyPolicy([NEVER, NEVER], expected_blocks=[1, 2])
        geometry = CacheGeometry(2 * 64, 64, 2, 1)
        cache = SetAssociativeCache(geometry, policy)
        with pytest.raises(ValueError):
            cache.access(9)

    def test_oracle_horizon_enforced(self):
        policy = BeladyPolicy([NEVER])
        geometry = CacheGeometry(2 * 64, 64, 2, 1)
        cache = SetAssociativeCache(geometry, policy)
        cache.access(1)
        with pytest.raises(IndexError):
            cache.access(2)
