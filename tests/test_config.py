"""Tests for the Table 2 machine description."""

import pytest

from repro.config import (
    CacheGeometry,
    MemoryConfig,
    baseline_config,
    scaled_config,
)


class TestCacheGeometry:
    def test_table2_l2_geometry(self):
        l2 = baseline_config().l2
        assert l2.size_bytes == 1024 * 1024
        assert l2.line_bytes == 64
        assert l2.associativity == 16
        assert l2.n_sets == 1024
        assert l2.n_blocks == 16384

    def test_table2_l1_geometry(self):
        config = baseline_config()
        for l1 in (config.l1i, config.l1d):
            assert l1.size_bytes == 16 * 1024
            assert l1.associativity == 4
            assert l1.n_sets == 64

    def test_inconsistent_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry(1000, 64, 16, 1)

    def test_n_blocks_consistency(self):
        geometry = CacheGeometry(8192, 64, 4, 1)
        assert geometry.n_blocks == geometry.n_sets * geometry.associativity


class TestMemoryConfig:
    def test_isolated_miss_latency_is_444(self):
        assert MemoryConfig().isolated_miss_latency == 444

    def test_table2_memory_parameters(self):
        memory = baseline_config().memory
        assert memory.n_banks == 32
        assert memory.dram_access_latency == 400
        assert memory.bus_delay == 44
        assert memory.max_outstanding == 32


class TestBaseline:
    def test_window_and_width(self):
        processor = baseline_config().processor
        assert processor.issue_width == 8
        assert processor.window_size == 128
        assert processor.store_buffer_size == 128

    def test_mshr_entries(self):
        assert baseline_config().mshr.n_entries == 32

    def test_scaled_config_changes_only_l2(self):
        scaled = scaled_config(256)
        base = baseline_config()
        assert scaled.l2.size_bytes == 256 * 1024
        assert scaled.l2.associativity == base.l2.associativity
        assert scaled.l1d == base.l1d
        assert scaled.memory == base.memory

    def test_block_bits(self):
        assert baseline_config().block_bits == 6  # 64B lines
