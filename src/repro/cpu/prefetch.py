"""Stride prefetcher substrate.

The paper's related-work section frames prefetching as one of the
techniques that *create* MLP ("techniques such as non-blocking caches,
... and prefetching improve performance by parallelizing long-latency
memory operations").  This module provides a classic reference
-prediction-table stride prefetcher so the interaction between
prefetching and MLP-aware replacement can be studied (see
``python -m repro.experiments prefetch``): a prefetcher that converts
isolated misses into overlapped ones shrinks exactly the cost
differential LIN feeds on.

The table is PC-less (indexed by block region) since traces carry no
PCs: each region tracks its last block and stride, with a 2-bit
confidence counter; on a confident match, the next ``degree`` blocks
along the stride are predicted.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


class StridePrefetcher:
    """Region-based stride predictor with confidence counters."""

    def __init__(
        self,
        n_entries: int = 256,
        region_blocks: int = 4096,
        degree: int = 2,
        confidence_threshold: int = 2,
    ) -> None:
        if n_entries < 1 or degree < 1:
            raise ValueError("entries and degree must be positive")
        self.n_entries = n_entries
        self.region_blocks = region_blocks
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        # region -> (last block, stride, confidence)
        self._table: Dict[int, Tuple[int, int, int]] = {}
        self._order: List[int] = []  # FIFO replacement of regions
        self.predictions = 0
        self.trainings = 0

    def _region_of(self, block: int) -> int:
        return block // self.region_blocks

    def observe(self, block: int) -> List[int]:
        """Train on one demand access; return blocks to prefetch."""
        self.trainings += 1
        region = self._region_of(block)
        entry = self._table.get(region)
        prefetches: List[int] = []
        if entry is None:
            self._install(region, (block, 0, 0))
            return prefetches
        last, stride, confidence = entry
        new_stride = block - last
        if new_stride == 0:
            return prefetches
        if new_stride == stride:
            confidence = min(confidence + 1, 3)
        else:
            confidence = max(confidence - 1, 0)
            if confidence == 0:
                stride = new_stride
        self._table[region] = (block, stride, confidence)
        if confidence >= self.confidence_threshold and stride != 0:
            for ahead in range(1, self.degree + 1):
                candidate = block + stride * ahead
                if candidate >= 0:
                    prefetches.append(candidate)
            self.predictions += len(prefetches)
        return prefetches

    def _install(self, region: int, entry: Tuple[int, int, int]) -> None:
        if region not in self._table and len(self._table) >= self.n_entries:
            oldest = self._order.pop(0)
            del self._table[oldest]
        if region not in self._table:
            self._order.append(region)
        self._table[region] = entry

    @property
    def table_occupancy(self) -> int:
        return len(self._table)
