"""Workload registry CLI: list, describe, digest, export.

Usage::

    python -m repro.workloads --list
    python -m repro.workloads --describe "interleave(mcf,art)"
    python -m repro.workloads --digest mcf "splice(mcf@0.5,ammp)" --scale 0.1
    python -m repro.workloads --save art.npz --spec art --scale 0.25

``--digest`` builds each spec and prints ``<content digest>  <records>
<canonical spec>`` — CI's workload-zoo smoke job runs it twice and
diffs the output to assert deterministic trace generation.
"""

from __future__ import annotations

import argparse
import sys

from repro.workloads.registry import (
    UnknownWorkloadError,
    WorkloadSpecError,
    available_workloads,
    parse_workload_spec,
)


def _describe(spec: str, scale: float) -> int:
    workload = parse_workload_spec(spec)
    trace = workload.build(scale)
    print("spec:        %s" % spec)
    print("canonical:   %s" % workload.canonical)
    print("fingerprint: %s" % workload.fingerprint())
    print("records:     %d  (scale %s)" % (len(trace), scale))
    print("instructions:%d" % trace.total_instructions())
    print("digest:      %s" % trace.content_digest())
    return 0


def _digest(specs, scale: float) -> int:
    for spec in specs:
        workload = parse_workload_spec(spec)
        trace = workload.build(scale)
        print(
            "%s  %8d  %s"
            % (trace.content_digest(), len(trace), workload.canonical)
        )
    return 0


def _save(spec: str, path: str, scale: float) -> int:
    from repro.trace.trace_io import save_trace

    trace = parse_workload_spec(spec).build(scale)
    save_trace(path, trace)
    print("wrote %s (%d records, digest %s)"
          % (path, len(trace), trace.content_digest()))
    return 0


def _list() -> int:
    from repro.workloads.registry import _BUILTIN

    for name in available_workloads():
        print("%-12s %s" % (name, "" if name in _BUILTIN else "(user)"))
    return 0


def main(argv=None) -> int:
    from repro.sim.common_cli import umbrella_pointer

    umbrella_pointer("workloads")
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Inspect the workload registry and build traces.",
    )
    action = parser.add_mutually_exclusive_group()
    action.add_argument(
        "--list", action="store_true",
        help="list registered workload names (default action)",
    )
    action.add_argument(
        "--describe", metavar="SPEC",
        help="parse SPEC and print its canonical form, fingerprint, "
             "and built-trace stats",
    )
    action.add_argument(
        "--digest", metavar="SPEC", nargs="+",
        help="build each SPEC and print its deterministic content "
             "digest, record count, and canonical form",
    )
    action.add_argument(
        "--save", metavar="FILE",
        help="build --spec and save it as a native .npz trace",
    )
    parser.add_argument(
        "--spec", metavar="SPEC", default=None,
        help="workload spec for --save",
    )
    parser.add_argument(
        "--scale", type=float, default=1.0,
        help="trace-length multiplier (default 1.0)",
    )
    args = parser.parse_args(argv)

    try:
        if args.describe:
            return _describe(args.describe, args.scale)
        if args.digest:
            return _digest(args.digest, args.scale)
        if args.save:
            if not args.spec:
                parser.error("--save needs --spec")
            return _save(args.spec, args.save, args.scale)
        return _list()
    except (UnknownWorkloadError, WorkloadSpecError) as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
