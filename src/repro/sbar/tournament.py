"""K-way policy tournament: SBAR generalized beyond two policies.

Section 6 notes that "previous research has not looked at dynamically
selecting between multiple cache replacement schemes by implementing
the multiple schemes concurrently"; SBAR makes the two-policy case
practical.  This module extends the sampling idea to *k* candidate
policies, a natural future-work item:

* Each candidate owns one group of leader sets in the main directory
  (disjoint by constituency offset) that always run that policy.
* Every leader group is shadowed by one sparse ATD running the same
  candidate, fed by the accesses of *every other* group's leader sets?
  No — that would multiply storage.  Instead the tournament keeps one
  cost-weighted **miss-cost score** per candidate, accumulated only in
  its own leader sets, normalized by leader-set accesses; follower
  sets copy the candidate with the lowest score.

This is the TADIP/set-dueling style generalization: no auxiliary
directories at all, at the price of comparing policies on *different*
sets (sampling noise the analytical model of Section 6.3 quantifies).
Scores decay geometrically so the tournament tracks phase changes.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from repro.cache.replacement.base import ReplacementPolicy
from repro.sbar.leader_sets import _check_geometry


class TournamentController:
    """Sampling-based selection among k replacement policies.

    Args:
        n_sets: sets in the main directory.
        policies: candidate policy instances (k >= 2); each candidate
            gets ``n_leaders_per_policy`` dedicated leader sets.
        n_leaders_per_policy: leader sets per candidate.
        decay: per-update geometric decay of the running scores; closer
            to 1.0 = longer memory, smaller = faster phase tracking.
    """

    #: :meth:`note_instructions` is a no-op, so the simulator may skip
    #: the per-record call entirely.
    needs_instruction_clock = False

    def __init__(
        self,
        n_sets: int,
        policies: Sequence[ReplacementPolicy],
        n_leaders_per_policy: int = 8,
        decay: float = 0.999,
    ) -> None:
        if len(policies) < 2:
            raise ValueError("a tournament needs at least two policies")
        if not 0.0 < decay <= 1.0:
            raise ValueError("decay must be in (0, 1]")
        total_leaders = len(policies) * n_leaders_per_policy
        constituency_size = _check_geometry(n_sets, n_leaders_per_policy)
        if total_leaders > n_sets:
            raise ValueError(
                "%d policies x %d leaders exceed %d sets"
                % (len(policies), n_leaders_per_policy, n_sets)
            )
        if constituency_size < len(policies):
            raise ValueError("constituencies too small for the field")
        self.n_sets = n_sets
        self.policies = list(policies)
        self.decay = decay
        # Candidate p's leader in constituency c sits at offset
        # (c + p) % constituency_size: diagonal placement keeps groups
        # disjoint and spread like simple-static.
        self._leader_owner: Dict[int, int] = {}
        for candidate in range(len(policies)):
            for constituency in range(n_leaders_per_policy):
                offset = (constituency + candidate) % constituency_size
                set_index = constituency * constituency_size + offset
                self._leader_owner[set_index] = candidate
        # Cost-weighted miss score and access count per candidate.
        self._scores: List[float] = [0.0] * len(policies)
        self._accesses: List[float] = [1e-9] * len(policies)
        self.deferred_updates = 0
        #: Optional :class:`repro.obs.Observer`; each serviced leader
        #: miss reports the cost charged to its candidate.
        self.observer = None

    @property
    def name(self) -> str:
        return "tournament(%s)" % ",".join(p.name for p in self.policies)

    def leader_sets_of(self, candidate: int) -> List[int]:
        return sorted(
            set_index
            for set_index, owner in self._leader_owner.items()
            if owner == candidate
        )

    def note_instructions(self, instr_index: int) -> None:
        """No epoch behavior; present for controller-interface parity."""

    def winner(self) -> int:
        """Candidate with the lowest normalized miss-cost score."""
        rates = [
            score / accesses
            for score, accesses in zip(self._scores, self._accesses)
        ]
        return min(range(len(rates)), key=rates.__getitem__)

    def policy_for_set(self, set_index: int) -> ReplacementPolicy:
        owner = self._leader_owner.get(set_index)
        if owner is not None:
            return self.policies[owner]
        return self.policies[self.winner()]

    def observe_access(
        self, set_index: int, block: int, mtd_result
    ) -> Optional[Callable[[int], None]]:
        """Accumulate leader-group scores; misses charge their cost_q.

        Returns a deferred update for misses (their cost is known when
        Algorithm 1 finishes integrating them), mirroring SBAR.
        """
        owner = self._leader_owner.get(set_index)
        if owner is None:
            return None
        self._scores[owner] *= self.decay
        self._accesses[owner] = self._accesses[owner] * self.decay + 1.0
        if mtd_result.hit:
            return None
        self.deferred_updates += 1

        def charge(cost_q: int) -> None:
            # +1 keeps zero-cost misses from being free.
            self._scores[owner] += 1.0 + cost_q
            if self.observer is not None:
                self.observer.tournament_update(
                    self.policies[owner].name, cost_q
                )

        return charge

    def score_table(self) -> List[Dict[str, object]]:
        """Diagnostic: per-candidate normalized scores."""
        return [
            {
                "policy": policy.name,
                "score_per_access": score / accesses,
                "is_winner": index == self.winner(),
            }
            for index, (policy, score, accesses) in enumerate(
                zip(self.policies, self._scores, self._accesses)
            )
        ]
