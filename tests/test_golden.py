"""Golden-stats regression tests against committed JSON snapshots.

Tiny-configuration runs of the ``figure1`` and ``sensitivity``
experiments are compared against ``tests/golden/*.json``.  The
simulator is deterministic (seeded synthetic workloads, pure-Python
float arithmetic), so any drift here is a behavior change — either a
bug or an intentional change, in which case regenerate with::

    PYTHONPATH=src python -m pytest tests/test_golden.py --update-golden
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import MSHRConfig, scaled_config
from repro.experiments import figure1, sensitivity

#: Small but non-trivial: enough accesses for misses to overlap.
SCALE = 0.05


class TestFigure1Golden:
    def test_per_iteration_stats(self, golden_check):
        payload = {}
        for policy in ("belady", "mlp-aware (lin)", "lru"):
            misses, stalls = figure1.simulate_policy(policy)
            payload[policy] = {"misses": misses, "stalls": stalls}
        golden_check("figure1", payload)

    def test_paper_ordering_holds(self):
        """Independent of exact numbers: the paper's Figure 1 ranking."""
        belady = figure1.simulate_policy("belady")
        lin = figure1.simulate_policy("mlp-aware (lin)")
        lru = figure1.simulate_policy("lru")
        assert belady[0] < lin[0] <= lru[0]  # OPT minimizes misses
        assert lin[1] < lru[1]  # LIN takes fewer long stalls than LRU
        assert lin[1] < belady[1]  # ... and than OPT


class TestSensitivityGolden:
    def test_l2_capacity_sweep(self, golden_check):
        payload = {
            "%dkb" % l2_kb: sensitivity._gain(
                scaled_config(l2_kb), "mcf", SCALE
            )
            for l2_kb in (64, 256)
        }
        golden_check("sensitivity_l2", payload)

    def test_mshr_sweep(self, golden_check):
        payload = {}
        for entries in (2, 32):
            config = replace(
                scaled_config(256), mshr=MSHRConfig(n_entries=entries)
            )
            payload["mshr%d" % entries] = sensitivity._gain(
                config, "art", SCALE
            )
        golden_check("sensitivity_mshr", payload)
